"""Tests for the experiment harness: every table/figure driver and its claims."""

from __future__ import annotations

import pytest

from repro.harness import (
    figure3_imb_supermuc,
    figure4_graviton2,
    figure5_npb_ior_hpcg,
    figure6_translation_overhead,
    figure7_faasm_comparison,
    hpcg_scaling_model,
    imb_model_series,
    table1_compiler_backends,
    table2_binary_sizes,
)
from repro.harness.report import format_table, geometric_mean_ratio, rows_to_csv, series_to_csv
from repro.sim.machines import graviton2, supermuc_ng

SMALL_SIZES = (1, 64, 4096, 65536, 1 << 20)


# ------------------------------------------------------------------- reporting


def test_format_table_aligns_columns():
    text = format_table(["a", "metric"], [[1, 2.5], ["xx", 0.001]], title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "a" in lines[1] and "metric" in lines[1]
    assert len(lines) == 5


def test_csv_helpers():
    csv_text = series_to_csv({1: {"x": 2}, 2: {"x": 3}}, x_name="size")
    assert csv_text.splitlines()[0] == "size,x"
    assert rows_to_csv(["a"], [[1], [2]]).splitlines() == ["a", "1", "2"]
    assert geometric_mean_ratio({1: 4.0}, {1: 2.0}) == pytest.approx(2.0)
    assert geometric_mean_ratio({}, {}) == 0.0


# --------------------------------------------------------------------- Table 1


@pytest.fixture(scope="module")
def table1():
    return table1_compiler_backends(dims=(8, 4, 4), kernel_iterations=10)


def test_table1_has_all_backends(table1):
    assert set(table1) == {"singlepass", "cranelift", "llvm"}
    for row in table1.values():
        assert row["compile_ms"] >= 0
        assert row["kernel_mflops"] > 0


def test_table1_orderings_match_paper(table1):
    # Compile time: Singlepass < Cranelift < LLVM; runtime: LLVM fastest.
    assert table1["singlepass"]["compile_ms"] <= table1["cranelift"]["compile_ms"]
    assert table1["cranelift"]["compile_ms"] < table1["llvm"]["compile_ms"]
    assert table1["llvm"]["kernel_mflops"] > table1["singlepass"]["kernel_mflops"]
    assert table1["llvm"]["kernel_mflops"] > table1["cranelift"]["kernel_mflops"]
    # All back-ends compute the same checksum (they agree bit-for-bit).
    checks = {round(row["checksum"], 6) for row in table1.values()}
    assert len(checks) == 1


# --------------------------------------------------------------------- Table 2


def test_table2_reproduces_headline_claims():
    result = table2_binary_sizes()
    assert len(result["rows"]) == 5
    assert 110 <= result["average_static_to_wasm_ratio"] <= 175   # paper: 139.5x
    assert set(result["wasm_larger_than_dynamic"]) == {"HPCG", "IS", "DT"}
    # The repository's own guest modules encode to real (non-trivial) binaries.
    for name, size in result["encoded_guest_module_bytes"].items():
        assert size > 500, name


# -------------------------------------------------------------------- Figure 3


@pytest.fixture(scope="module")
def figure3():
    return figure3_imb_supermuc(message_sizes=SMALL_SIZES)


def test_figure3_covers_all_nine_routines(figure3):
    assert set(figure3["series"]) == {
        "pingpong", "sendrecv", "bcast", "allreduce", "allgather", "alltoall",
        "reduce", "gather", "scatter",
    }


def test_figure3_wasm_close_to_native(figure3):
    for routine, slowdown in figure3["gm_slowdowns"].items():
        assert -0.01 <= slowdown <= 0.20, routine   # paper: 0.05x-0.14x


def test_figure3_pingpong_bandwidth_matches_paper_magnitude(figure3):
    # Paper: ~12.8 GiB/s native, ~13.4 GiB/s Wasm maximum PingPong bandwidth.
    assert 8 <= figure3["max_bandwidth_native_gib_s"] <= 16
    assert 8 <= figure3["max_bandwidth_wasm_gib_s"] <= 16


def test_figure3_times_grow_with_message_size_and_ranks(figure3):
    series = figure3["series"]["allreduce"]
    for nranks, rows in series.items():
        sizes = sorted(rows)
        assert rows[sizes[-1]]["native_us"] > rows[sizes[0]]["native_us"]
    assert series[6144][65536]["native_us"] > series[768][65536]["native_us"]


# -------------------------------------------------------------------- Figure 4


def test_figure4_graviton_slowdowns_are_small():
    result = figure4_graviton2(message_sizes=SMALL_SIZES)
    assert set(result["series"]) == {"pingpong", "sendrecv", "allreduce", "allgather", "alltoall"}
    for routine, slowdown in result["gm_slowdowns"].items():
        assert -0.05 <= slowdown <= 0.35, routine
    hpcg = result["hpcg"]
    assert hpcg[32]["native_gflops"] > hpcg[1]["native_gflops"]
    # Single node: Wasm tracks native closely (paper Figure 4f).
    assert hpcg[32]["wasm_reduction"] < 0.08


# -------------------------------------------------------------------- Figure 5


@pytest.fixture(scope="module")
def figure5():
    return figure5_npb_ior_hpcg()


def test_figure5_is_scaling(figure5):
    is_series = figure5["is"]
    assert is_series[1024]["native_mops"] > is_series[64]["native_mops"]
    for row in is_series.values():
        assert row["wasm_mops"] <= row["native_mops"]
        assert row["wasm_mops"] > 0.8 * row["native_mops"]


def test_figure5_dt_simd_ablation(figure5):
    for row in figure5["dt"].values():
        assert row["native_mb_s"] >= row["wasm_simd_mb_s"] >= row["wasm_nosimd_mb_s"]
    # Paper: SIMD gives the Wasm DT build ~1.36x more throughput.
    assert 1.15 <= figure5["dt_simd_speedup"] <= 2.2


def test_figure5_ior_wasi_overhead_negligible(figure5):
    for row in figure5["ior"].values():
        assert row["wasm_read_mib_s"] == pytest.approx(row["native_read_mib_s"], rel=0.05)
        assert row["wasm_write_mib_s"] == pytest.approx(row["native_write_mib_s"], rel=0.05)
        assert row["native_read_mib_s"] < 47684 * 1.05   # the 400 Gbit/s ceiling


def test_figure5_hpcg_gap_grows_with_scale(figure5):
    hpcg = figure5["hpcg"]
    assert hpcg[6144]["wasm_reduction"] == pytest.approx(0.14, abs=0.05)   # paper: 14%
    assert hpcg[192]["wasm_reduction"] < hpcg[6144]["wasm_reduction"]
    assert hpcg[6144]["native_gflops"] > hpcg[192]["native_gflops"]


def test_hpcg_scaling_model_monotone_in_ranks():
    model = hpcg_scaling_model(supermuc_ng(), rank_counts=(48, 192, 768))
    assert model[768]["native_gflops"] > model[192]["native_gflops"] > model[48]["native_gflops"]


# -------------------------------------------------------------------- Figure 6


def test_figure6_translation_overheads_match_paper_band():
    result = figure6_translation_overhead(functional=False)
    avg = result["average_ns"]
    assert set(avg) == {"MPI_BYTE", "MPI_CHAR", "MPI_INT", "MPI_FLOAT", "MPI_DOUBLE", "MPI_LONG"}
    # The paper's per-datatype averages are 85-105 ns; the sweep includes
    # multi-MiB messages where the lock-contention knee raises the mean.
    for name, value in avg.items():
        assert 70 <= value <= 220, name
    assert avg["MPI_BYTE"] < avg["MPI_LONG"]
    # Knee above 256 KiB is visible in the per-size series.
    model = result["model_ns"]["MPI_DOUBLE"]
    assert model[1048576] > model[1024] + 30


def test_figure6_functional_measurement_agrees_with_model():
    result = figure6_translation_overhead(message_sizes=(8, 1024), functional=True)
    measured = result["measured_mean_ns"]
    assert measured, "expected instrumented samples from the functional run"
    for name, value in measured.items():
        assert 60 <= value <= 250, name


# -------------------------------------------------------------------- Figure 7


def test_figure7_mpiwasm_beats_faasm_by_paper_factor():
    result = figure7_faasm_comparison(message_sizes=SMALL_SIZES)
    assert result["gm_speedup"] == pytest.approx(4.28, rel=0.45)   # paper: 4.28x
    assert not result["faasm_runs_imb"]
    for row in result["series"].values():
        assert row["faasm_us"] > row["mpiwasm_us"]


# -------------------------------------------------------------- imb model sanity


def test_imb_model_series_slowdown_positive_and_bounded():
    series = imb_model_series(graviton2(), "allreduce", 32, SMALL_SIZES)
    for row in series.values():
        assert row["wasm_us"] >= row["native_us"]
        assert row["slowdown"] < 0.5


def test_harness_cli_runs_selected_experiment(capsys):
    from repro.harness.cli import main

    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "static/wasm" in out
    with pytest.raises(SystemExit):
        main(["tableX"])


def test_harness_cli_profile_emits_fusion_report(capsys):
    import json

    from repro.harness.cli import main

    assert main(["profile", "allreduce", "--nranks", "2",
                 "--emit-fusion-report"]) == 0
    out = capsys.readouterr().out
    assert "mined superinstruction candidates" in out

    assert main(["profile", "allreduce", "--nranks", "2",
                 "--emit-fusion-report", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert "fusion_report" in report
    for rec in report["fusion_report"]:
        assert rec["width"] == len(rec["kinds"]) >= 2 and rec["score"] > 0
