"""Layered configuration tests: precedence (defaults < file < env < kwargs),
provenance recording, parsing, and the consolidated env-var helpers."""

from __future__ import annotations

import json

import pytest

from repro.api import ResolvedConfig


def test_defaults_and_provenance(monkeypatch):
    for var in ("REPRO_BACKEND", "REPRO_MACHINE", "REPRO_NRANKS", "REPRO_CACHE_DIR",
                "REPRO_CONFIG", "REPRO_CACHE", "REPRO_COLL_ALGO"):
        monkeypatch.delenv(var, raising=False)
    config = ResolvedConfig.resolve()
    assert config.backend == "llvm"
    assert config.machine == "supermuc-ng"
    assert config.nranks == 4 and config.workers == 1
    assert config.cache_dir is None and config.enable_cache is True
    assert all(source == "default" for source in config.provenance.values())


def test_file_env_kwarg_precedence(tmp_path, monkeypatch):
    path = tmp_path / "repro.json"
    path.write_text(json.dumps({
        "backend": "cranelift",       # survives (nothing above sets it)
        "nranks": 8,                  # beaten by env
        "machine": "graviton2",       # beaten by kwarg
        "max_call_depth": 128,        # survives
    }))
    monkeypatch.setenv("REPRO_NRANKS", "16")
    monkeypatch.setenv("REPRO_MACHINE", "faasm-cloud")
    config = ResolvedConfig.resolve(config_file=path, machine="supermuc-ng")
    assert config.backend == "cranelift"
    assert config.nranks == 16
    assert config.machine == "supermuc-ng"
    assert config.max_call_depth == 128
    assert config.provenance["backend"] == f"file:{path}"
    assert config.provenance["nranks"] == "env:REPRO_NRANKS"
    assert config.provenance["machine"] == "kwarg"
    assert config.provenance["workers"] == "default"
    explained = config.explain()
    assert "env:REPRO_NRANKS" in explained and "kwarg" in explained


def test_repro_config_env_names_the_file(tmp_path, monkeypatch):
    path = tmp_path / "site.json"
    path.write_text(json.dumps({"backend": "singlepass"}))
    monkeypatch.setenv("REPRO_CONFIG", str(path))
    config = ResolvedConfig.resolve()
    assert config.backend == "singlepass"
    assert config.provenance["backend"] == f"file:{path}"
    # An explicit None opts out of the environment's config file.
    assert ResolvedConfig.resolve(config_file=None).backend == "llvm"


def test_env_parsing_flags_ints_and_algorithms(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.setenv("REPRO_VALIDATE", "false")
    monkeypatch.setenv("REPRO_MAX_CALL_DEPTH", "99")
    monkeypatch.setenv("REPRO_COLL_ALGO", "allreduce:ring,bcast:binomial")
    config = ResolvedConfig.resolve()
    assert config.enable_cache is False and config.validate is False
    assert config.max_call_depth == 99
    assert config.collective_algorithms == {"allreduce": "ring", "bcast": "binomial"}
    assert config.provenance["collective_algorithms"] == "env:REPRO_COLL_ALGO"


def test_malformed_values_fail_loudly(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NRANKS", "many")
    with pytest.raises(ValueError, match="REPRO_NRANKS"):
        ResolvedConfig.resolve()
    monkeypatch.delenv("REPRO_NRANKS")
    with pytest.raises(ValueError, match="unknown configuration fields"):
        ResolvedConfig.resolve(bogus_field=1)
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"bogus": 1}))
    with pytest.raises(ValueError, match="unknown config file keys"):
        ResolvedConfig.resolve(config_file=path)
    path.write_text("{not json")
    with pytest.raises(ValueError, match="cannot load config file"):
        ResolvedConfig.resolve(config_file=path)


def test_replaced_keeps_base_and_marks_kwargs():
    base = ResolvedConfig.resolve(backend="cranelift")
    updated = base.replaced(nranks=2)
    assert updated.backend == "cranelift" and updated.nranks == 2
    assert updated.provenance["backend"] == "kwarg"      # inherited from base
    assert updated.provenance["nranks"] == "kwarg"
    assert base.nranks != 2 or base.nranks == 2  # base unchanged (frozen)
    assert base.provenance["nranks"] == "default"


def test_embedder_config_materialisation():
    config = ResolvedConfig.resolve(
        backend="singlepass", cache_dir=None, max_call_depth=64,
        collective_algorithms={"allreduce": "ring"}, guest_args=["x"],
    )
    embedder = config.embedder_config()
    assert embedder.compiler_backend == "singlepass"
    assert embedder.cache_dir is None
    assert embedder.max_call_depth == 64
    assert embedder.collective_algorithms == {"allreduce": "ring"}
    assert embedder.guest_args == ("x",)
    assert config.embedder_config(compiler_backend="llvm").compiler_backend == "llvm"


# ------------------------------------------------- consolidated env-var surface


def test_core_env_reexports_env_helpers(monkeypatch):
    from repro.core import env as core_env

    assert "REPRO_CACHE_DIR" in core_env.KNOWN_ENV_VARS
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
    assert core_env.env_cache_dir() == "/tmp/somewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert core_env.env_cache_dir() is None
    monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
    assert core_env.env_flag("REPRO_BENCH_SMOKE") is True
    snap = core_env.env_snapshot()
    assert snap.get("REPRO_BENCH_SMOKE") == "1"


def test_scoped_env_restores_previous_state(monkeypatch):
    import os

    from repro.core.envvars import scoped

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    with scoped("REPRO_CACHE_DIR", "/tmp/a"):
        assert os.environ["REPRO_CACHE_DIR"] == "/tmp/a"
    assert "REPRO_CACHE_DIR" not in os.environ
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/original")
    with scoped("REPRO_CACHE_DIR", "/tmp/b"):
        assert os.environ["REPRO_CACHE_DIR"] == "/tmp/b"
    assert os.environ["REPRO_CACHE_DIR"] == "/tmp/original"
    with scoped("REPRO_CACHE_DIR", None):                 # None -> no-op
        assert os.environ["REPRO_CACHE_DIR"] == "/tmp/original"


def test_embedder_config_default_cache_dir_reads_env(monkeypatch, tmp_path):
    from repro.core.config import EmbedderConfig

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert EmbedderConfig().cache_dir == str(tmp_path)
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    assert EmbedderConfig().cache_dir is None
