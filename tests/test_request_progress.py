"""Regression tests for the request state machine and progress engine.

Covers the two request-layer bugs this layer was rebuilt around:

* ``wait``/``test`` on an ``MPI_Isend`` never drained the posted message, so
  a rendezvous send was never synchronised with the receiver's virtual clock
  (the way ``sendrecv`` synchronises);
* ``waitany``'s post-spin fallback blocked on ``active[0]`` unconditionally,
  deadlocking (or returning the wrong index) when a *different* request was
  the one that could complete.

Plus the progress-engine property those fixes rest on: any outstanding
request advances whenever the rank sits in a ``test``/``wait``-family call.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import datatypes, ops
from repro.mpi.runtime import MPIRuntime
from repro.mpi.status import Request
from repro.sim.engine import DeadlockError
from tests.conftest import run_mpi_program

#: Any payload larger than the shared-memory transport's eager threshold
#: (64 KiB on the graviton2 preset) takes the rendezvous protocol.
RENDEZVOUS_BYTES = 128 * 1024


# ------------------------------------------------------------- isend draining


def test_wait_on_rendezvous_isend_synchronises_with_receiver_clock():
    """A rendezvous isend's wait must block until the receiver drains the
    message and advance the sender's clock to the consumption time -- the
    same synchronisation ``sendrecv`` performs (previously wait returned
    immediately and the send was never drained)."""
    delay = 0.01

    def program(rt, ctx):
        if ctx.rank == 0:
            data = np.arange(RENDEZVOUS_BYTES, dtype=np.uint8)
            req = rt.isend(data, RENDEZVOUS_BYTES, datatypes.BYTE, 1, 7)
            status = rt.wait(req)
            return (rt.wtime(), status.count_bytes)
        ctx.advance(delay)  # the receiver shows up late
        buf = np.zeros(RENDEZVOUS_BYTES, dtype=np.uint8)
        rt.recv(buf, RENDEZVOUS_BYTES, datatypes.BYTE, 0, 7)
        return buf[:4].tolist()

    results = run_mpi_program(program, 2)
    sender_time, count_bytes = results[0]
    assert count_bytes == RENDEZVOUS_BYTES
    # The sender cannot have left the wait before the late receiver consumed.
    assert sender_time >= delay
    assert results[1] == [0, 1, 2, 3]


def test_test_on_rendezvous_isend_false_until_drained():
    """``MPI_Test`` on a rendezvous isend reports False until the receiver
    consumes the message, then completes with the send status."""

    def program(rt, ctx):
        if ctx.rank == 0:
            data = np.full(RENDEZVOUS_BYTES, 5, dtype=np.uint8)
            req = rt.isend(data, RENDEZVOUS_BYTES, datatypes.BYTE, 1, 3)
            # Rank 1 cannot have consumed yet: its recv is gated on our token.
            flag_before, _ = rt.test(req)
            rt.send(np.ones(1, dtype=np.uint8), 1, datatypes.BYTE, 1, 98)
            ack = np.zeros(1, dtype=np.uint8)
            rt.recv(ack, 1, datatypes.BYTE, 1, 99)
            flag_after, status = rt.test(req)
            return (flag_before, flag_after, status.count_bytes)
        token = np.zeros(1, dtype=np.uint8)
        rt.recv(token, 1, datatypes.BYTE, 0, 98)
        buf = np.zeros(RENDEZVOUS_BYTES, dtype=np.uint8)
        rt.recv(buf, RENDEZVOUS_BYTES, datatypes.BYTE, 0, 3)
        rt.send(np.ones(1, dtype=np.uint8), 1, datatypes.BYTE, 0, 99)
        return None

    flag_before, flag_after, count_bytes = run_mpi_program(program, 2)[0]
    assert flag_before is False
    assert flag_after is True
    assert count_bytes == RENDEZVOUS_BYTES


def test_wait_on_eager_isend_does_not_block():
    """An eager (below-threshold) isend is buffered at post time: its wait
    completes immediately, well before the receiver even posts the recv."""
    delay = 0.05

    def program(rt, ctx):
        if ctx.rank == 0:
            req = rt.isend(np.arange(4, dtype=np.int32), 4, datatypes.INT, 1, 5)
            status = rt.wait(req)
            return (rt.wtime(), status.count_bytes)
        ctx.advance(delay)
        buf = np.zeros(4, dtype=np.int32)
        rt.recv(buf, 4, datatypes.INT, 0, 5)
        return buf.tolist()

    results = run_mpi_program(program, 2)
    sender_time, count_bytes = results[0]
    assert count_bytes == 16
    assert sender_time < delay / 2  # nowhere near the receiver's late recv
    assert results[1] == [0, 1, 2, 3]


# -------------------------------------------------------------- waitany fallback


def test_waitany_fallback_unblocks_on_any_request(monkeypatch):
    """After the spin budget, waitany must block on progress of *any* active
    request: request 0's sender is gated on waitany returning first, so only
    request 1 (whose sender shows up late) can complete.  The old fallback
    blocked on request 0 unconditionally -- a deadlock."""
    monkeypatch.setattr(MPIRuntime, "WAITANY_SPIN_LIMIT", 8)
    late = 0.01  # far beyond 8 spin ticks of 1 ns

    def program(rt, ctx):
        if ctx.rank == 0:
            buf1 = np.zeros(4, dtype=np.int32)
            buf2 = np.zeros(4, dtype=np.int32)
            requests = [
                rt.irecv(buf1, 4, datatypes.INT, 1, 11),
                rt.irecv(buf2, 4, datatypes.INT, 2, 22),
            ]
            first, status = rt.waitany(requests)
            requests[first] = Request.null()
            # Only now release rank 1, whose send satisfies request 0.
            rt.send(np.zeros(1, dtype=np.int32), 1, datatypes.INT, 1, 99)
            second, _ = rt.waitany(requests)
            return (first, second, status.source, buf1.tolist(), buf2.tolist())
        if ctx.rank == 1:
            token = np.zeros(1, dtype=np.int32)
            rt.recv(token, 1, datatypes.INT, 0, 99)
            rt.send(np.full(4, 10, dtype=np.int32), 4, datatypes.INT, 0, 11)
        else:
            ctx.advance(late)  # the only completable sender arrives late
            rt.send(np.full(4, 20, dtype=np.int32), 4, datatypes.INT, 0, 22)
        return None

    first, second, source_first, buf1, buf2 = run_mpi_program(program, 3)[0]
    assert first == 1, "waitany returned a request that could not have completed"
    assert source_first == 2
    assert second == 0
    assert buf1 == [10] * 4
    assert buf2 == [20] * 4


def test_waitany_genuine_deadlock_still_detected(monkeypatch):
    """When *no* request can ever complete, the fallback must still block (so
    the engine's deadlock detection fires) instead of spinning forever."""
    monkeypatch.setattr(MPIRuntime, "WAITANY_SPIN_LIMIT", 8)

    def program(rt, ctx):
        if ctx.rank == 0:
            buf = np.zeros(1, dtype=np.int32)
            req = rt.irecv(buf, 1, datatypes.INT, 1, 5)
            rt.waitany([req])  # rank 1 never sends
        else:
            buf = np.zeros(1, dtype=np.int32)
            rt.recv(buf, 1, datatypes.INT, 0, 6)  # rank 0 never sends
        return None

    with pytest.raises(DeadlockError):
        run_mpi_program(program, 2)


# -------------------------------------------------------------- progress engine


def test_wait_on_unrelated_request_advances_stalled_sibling_collective():
    """Weak progress across requests: while rank 0 waits on an irecv, its
    outstanding iallreduce -- stalled on a data-dependent step that only time
    can unblock -- must still advance and post its later-round sends, or the
    peers (and hence the irecv's sender) never finish their own collectives."""
    count = 2048  # 16 KiB of doubles: eager messages, no rendezvous wakes

    def program(rt, ctx):
        if ctx.rank == 0:
            # Post late: the round-1 partner message is then already buffered
            # with an arrival still in the future, so consuming it at post
            # time leaves the schedule stalled on its data-dependent step.
            ctx.advance(2e-7)
            ctx.yield_turn()
        send = np.full(count, float(ctx.rank + 1), dtype=np.float64)
        recv = np.zeros(count, dtype=np.float64)
        coll_req = rt.iallreduce(send, recv, count, datatypes.DOUBLE, ops.SUM)
        if ctx.rank == 0:
            token = np.zeros(1, dtype=np.uint8)
            token_req = rt.irecv(token, 1, datatypes.BYTE, 2, 77)
            rt.wait(token_req)  # rank 2 sends only after its collective
            rt.wait(coll_req)
        else:
            rt.wait(coll_req)
            if ctx.rank == 2:
                rt.send(np.ones(1, dtype=np.uint8), 1, datatypes.BYTE, 0, 77)
        return recv.tolist()

    results = run_mpi_program(program, 4)
    expected = [float(sum(range(1, 5)))] * count
    assert all(r == expected for r in results)


def test_wait_on_one_request_progresses_other_outstanding_requests():
    """While blocked in wait(B), the progress engine must keep consuming
    messages for the sibling request A as they arrive."""

    def program(rt, ctx):
        if ctx.rank == 0:
            buf_a = np.zeros(4, dtype=np.int32)
            buf_b = np.zeros(4, dtype=np.int32)
            req_a = rt.irecv(buf_a, 4, datatypes.INT, 1, 1)
            req_b = rt.irecv(buf_b, 4, datatypes.INT, 2, 2)
            rt.wait(req_b)  # A's message arrives while we wait on B
            flag, status = rt.test(req_a)
            return (flag, status.count_bytes, buf_a.tolist(), buf_b.tolist())
        if ctx.rank == 1:
            rt.send(np.full(4, 10, dtype=np.int32), 4, datatypes.INT, 0, 1)
        else:
            ctx.advance(0.01)  # B's sender is the late one
            rt.send(np.full(4, 20, dtype=np.int32), 4, datatypes.INT, 0, 2)
        return None

    flag, count_bytes, buf_a, buf_b = run_mpi_program(program, 3)[0]
    assert flag is True
    assert count_bytes == 16
    assert buf_a == [10] * 4
    assert buf_b == [20] * 4
