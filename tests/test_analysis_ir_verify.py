"""Lowered-IR/fusion-table verifier: clean round-trips + mutation corpus."""

from __future__ import annotations

import copy

import pytest

from repro.analysis.ir_verify import (
    CHAIN_STACK_EFFECT,
    chain_stack_effect,
    verify_artifact,
    verify_function,
    verify_fusion_table,
    verify_payload,
)
from repro.wasm import ModuleBuilder, validate_module
from repro.wasm.errors import ValidationError
from repro.wasm.lowering import (
    _CHAINABLE_KINDS,
    IR_VERSION,
    LoweredFunction,
    apply_fusion_table,
    deserialize_lowered,
    lower_module,
    mine_superinstructions,
    serialize_lowered,
)


def _sum_module():
    mb = ModuleBuilder(name="ir-verify-tests")
    mb.add_memory(1)
    f = mb.function("sum_to", params=[("n", "i32")], results=["i32"], export=True)
    f.add_local("i", "i32")
    f.add_local("acc", "i32")
    with f.for_range("i", end_local="n"):
        f.get("acc").get("i").emit("i32.add").set("acc")
    f.get("acc")
    module = mb.build()
    validate_module(module)
    return module


def _clean_payload():
    return serialize_lowered(lower_module(_sum_module()))


def _mined_payload():
    lowered = lower_module(_sum_module())
    table = mine_superinstructions(lowered, min_occurrences=1)
    assert table, "miner found no chains in the fixture module"
    assert apply_fusion_table(lowered, table) >= 1
    return serialize_lowered(lowered, fusion_table=table)


def _find_op(payload, kind):
    for fi, fn in enumerate(payload["functions"]):
        for pc, op in enumerate(fn["ops"]):
            if op[0] == kind:
                return fi, pc
    raise AssertionError(f"no {kind!r} op in fixture payload")


# ------------------------------------------------------------- clean artifacts


def test_clean_payload_verifies_and_loads_under_verify():
    payload = _clean_payload()
    report = verify_payload(payload)
    assert report.ok and not report.findings, report.format_text(verbose=True)
    rebuilt = deserialize_lowered(payload, verify=True)
    assert rebuilt is not None and len(rebuilt) == 1


def test_mined_payload_verifies_chain_and_table():
    payload = _mined_payload()
    _find_op(payload, "fused.mined")  # the chain really is in the artifact
    report = verify_payload(payload)
    assert report.ok and not report.findings, report.format_text(verbose=True)
    assert deserialize_lowered(payload, verify=True) is not None


def test_non_lowered_artifacts_are_notes_not_errors():
    assert verify_payload({"kind": "module"}).ok
    assert verify_payload(b"not even a dict").ok
    stale = _clean_payload()
    stale["ir_version"] = IR_VERSION + 1
    report = verify_payload(stale)
    assert report.ok
    assert [f.rule for f in report.notes] == ["ir-version-mismatch"]
    # verify_artifact ignores non-lowered artifacts entirely.
    assert len(verify_artifact({"kind": "module", "blob": b"x"})) == 0


# ------------------------------------------------------------ mutation corpus


def _expect_rejection(payload, *rules):
    report = verify_payload(payload)
    assert not report.ok, "mutation was not detected"
    found = {f.rule for f in report.errors}
    assert set(rules) & found, f"expected one of {rules}, got {sorted(found)}"
    with pytest.raises(ValidationError, match="lowered-IR artifact rejected"):
        deserialize_lowered(payload, verify=True)
    return report


def test_out_of_bounds_block_target_is_rejected():
    payload = _clean_payload()
    fi, pc = _find_op(payload, "block")
    payload["functions"][fi]["ops"][pc][1] = [payload["functions"][fi]["ops"][pc][1][0], 99999]
    report = _expect_rejection(payload, "bad-jump-target")
    [finding] = report.errors
    assert f"op {pc}" in finding.location


def test_unknown_op_kind_is_rejected():
    payload = _clean_payload()
    payload["functions"][0]["ops"][0][0] = "i32.frobnicate"
    _expect_rejection(payload, "unknown-kind")


def test_bad_branch_depth_is_rejected():
    payload = _clean_payload()
    fi, pc = _find_op(payload, "fused.get_get_cmp_br_if")
    imm = list(payload["functions"][fi]["ops"][pc][1])
    imm[3] = 40  # far deeper than any open control frame
    payload["functions"][fi]["ops"][pc][1] = imm
    _expect_rejection(payload, "bad-branch-depth")


def test_unchainable_kind_in_mined_chain_is_rejected():
    payload = _mined_payload()
    fi, pc = _find_op(payload, "fused.mined")
    kinds, imms = payload["functions"][fi]["ops"][pc][1]
    payload["functions"][fi]["ops"][pc][1] = (["br", *list(kinds)[1:]], list(imms))
    _expect_rejection(payload, "unchainable-kind")


def test_chain_length_mismatch_is_rejected():
    payload = _mined_payload()
    fi, pc = _find_op(payload, "fused.mined")
    kinds, imms = payload["functions"][fi]["ops"][pc][1]
    payload["functions"][fi]["ops"][pc][1] = (list(kinds), list(imms)[:-1])
    _expect_rejection(payload, "bad-chain")


def test_corrupt_fusion_table_is_rejected():
    payload = _mined_payload()
    payload["fusion_table"][0]["kinds"] = ["br", "end"]
    _expect_rejection(payload, "unchainable-kind")
    payload = _mined_payload()
    payload["fusion_table"] = [{"kinds": ["const", "local.set"], "width": 7}]
    _expect_rejection(payload, "bad-fusion-table")
    payload = _mined_payload()
    payload["fusion_table"] = "not-a-table"
    _expect_rejection(payload, "bad-fusion-table")


def test_pad_accounting_catches_stray_and_missing_pads():
    payload = _clean_payload()
    fi, pc = _find_op(payload, "fused.get_get_cmp_br_if")
    # Overwrite the first interior pad with a real op: missing-pad.
    mutated = copy.deepcopy(payload)
    mutated["functions"][fi]["ops"][pc + 1] = ["nop", None]
    _expect_rejection(mutated, "missing-pad")
    # Turn a standalone op into a pad: stray-pad (executing it traps).
    mutated = copy.deepcopy(payload)
    mutated["functions"][fi]["ops"][0] = ["fused.pad", None]
    _expect_rejection(mutated, "stray-pad")


def test_unbalanced_control_is_rejected():
    payload = _clean_payload()
    fi, pc = _find_op(payload, "end")
    ops = payload["functions"][fi]["ops"]
    payload["functions"][fi]["ops"] = ops[:pc] + ops[pc + 1:]
    report = verify_payload(payload)
    assert not report.ok
    assert "unbalanced-control" in {f.rule for f in report.errors}


def test_garbage_structures_become_findings_not_crashes():
    for broken in (
        {"kind": "lowered-ir", "ir_version": IR_VERSION, "functions": "nope"},
        {"kind": "lowered-ir", "ir_version": IR_VERSION, "functions": [{"ops": 3}]},
        {"kind": "lowered-ir", "ir_version": IR_VERSION,
         "functions": [{"ops": [["const"]], "nresults": 1, "local_defaults": []}]},
        {"kind": "lowered-ir", "ir_version": IR_VERSION,
         "functions": [{"ops": [[b"x", 0]], "nresults": "one", "local_defaults": []}]},
    ):
        report = verify_payload(broken)
        assert not report.ok, broken


def test_verify_on_load_default_off_still_loads_corrupt_payloads():
    # The process-wide default stays off: trusted in-process artifacts load
    # unverified (benchmark fast path); only explicit/serve loads verify.
    from repro.wasm import lowering

    assert lowering.VERIFY_ON_LOAD is False
    payload = _clean_payload()
    payload["functions"][0]["ops"][0][0] = "i32.frobnicate"
    assert deserialize_lowered(payload) is not None


# -------------------------------------------------------------- chain algebra


def test_chain_stack_effect_covers_all_chainable_kinds():
    assert set(CHAIN_STACK_EFFECT) == set(_CHAINABLE_KINDS)


def test_chain_stack_effect_composition():
    assert chain_stack_effect(["const", "local.set"]) == (0, 0)
    assert chain_stack_effect(["local.get", "local.get", "bin"]) == (0, 1)
    assert chain_stack_effect(["bin", "local.set"]) == (2, 0)
    assert chain_stack_effect(["drop", "drop"]) == (2, 0)
    assert chain_stack_effect(["local.get", "store.i"]) == (1, 0)


def test_verify_function_flags_bad_nresults():
    fn = LoweredFunction(ops=[("const", 1), ("return", 2)], nresults="x",
                         local_defaults=())
    report = verify_function(fn)
    assert "bad-function" in {f.rule for f in report.errors}


def test_verify_fusion_table_accepts_miner_output():
    lowered = lower_module(_sum_module())
    table = mine_superinstructions(lowered, min_occurrences=1)
    assert verify_fusion_table(table).ok
