"""Cross-rank schedule analyzer: full-registry sweep + mutation corpus."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.findings import Severity
from repro.analysis.schedule_check import (
    DEFAULT_SWEEP_NRANKS,
    build_schedule,
    check_point,
    check_schedules,
    parse_nranks_spec,
    registered_points,
    sweep,
)
from repro.mpi.algorithms.schedule import RecvStep, Schedule, SendStep


def _clone_with_flat(schedule: Schedule, flat) -> Schedule:
    out = Schedule()
    out.temps = dict(schedule.temps)
    out.round(list(flat))
    return out


# -------------------------------------------------------------------- the sweep


def test_full_builder_sweep_is_clean():
    """Every registered builder x log-spaced nranks up to 4096 verifies clean.

    The per-point step budget keeps the quadratic-step builders (ring
    allreduce and friends at >= 1024 ranks) affordable; skipped points are
    notes, never silent, and the log-cost builders genuinely reach 4096.
    """
    report = sweep(max_steps=200_000)
    assert report.ok, report.format_text()
    assert not report.warnings
    summary = [f for f in report.notes if f.rule == "sweep-summary"]
    assert len(summary) == 1
    # Every skip is accounted for as an explicit note.
    skipped = [f for f in report.notes if f.rule == "point-skipped"]
    assert f"skipped {len(skipped)}" in summary[0].message
    # The log-cost builders reached the top of the rank range.
    top = max(DEFAULT_SWEEP_NRANKS)
    assert top == 4096
    checked_4096 = check_point("bcast", "binomial", top, 4096, max_steps=200_000)
    assert checked_4096.ok and not checked_4096.notes


def test_registry_has_all_known_builders():
    points = registered_points()
    assert ("allreduce", "recursive_doubling") in points
    assert ("alltoall", "pairwise") in points
    assert len(points) >= 11


def test_nonzero_roots_checked_for_rooted_collectives():
    for root in (1, 6):
        report = check_point("bcast", "scatter_allgather", 7, 128, root=root)
        assert report.ok, report.format_text()
        report = check_point("reduce", "binomial", 7, 128, root=root)
        assert report.ok, report.format_text()


def test_parse_nranks_spec_forms():
    assert parse_nranks_spec("8") == [8]
    assert parse_nranks_spec("2,8,3") == [2, 3, 8]
    assert parse_nranks_spec("2:5") == [2, 3, 4, 5]
    assert parse_nranks_spec("2:4096:log") == [2 ** k for k in range(1, 13)]
    with pytest.raises(ValueError):
        parse_nranks_spec("1:8")
    with pytest.raises(ValueError):
        parse_nranks_spec("2:8:cubic")


def test_over_budget_point_is_note_not_error():
    report = check_point("alltoall", "pairwise", 64, 4096, max_steps=50)
    assert report.ok
    [note] = report.findings
    assert note.severity is Severity.NOTE and note.rule == "point-skipped"


# ------------------------------------------------------------- mutation corpus


def test_deadlock_cycle_is_reported_rank_by_rank():
    def deadlocked(rank: int) -> Schedule:
        sched = Schedule()
        peer = 1 - rank
        sched.round([RecvStep(peer=peer, tag=7)])
        sched.round([SendStep(peer=peer, tag=7)])
        return sched

    report = check_schedules([deadlocked(r) for r in range(2)], "barrier", 0,
                             loc="fixture p=2")
    assert not report.ok
    [finding] = [f for f in report.errors if f.rule == "deadlock-cycle"]
    assert finding.severity is Severity.ERROR
    # The cycle is printed rank by rank, naming both waiting receives.
    assert "rank 0 waits" in finding.message
    assert "rank 1 waits" in finding.message
    assert finding.details["cycle"] == [0, 1] or finding.details["cycle"] == [1, 0]


def test_dropped_recv_step_is_caught():
    schedules = [build_schedule("bcast", "binomial", r, 8, 64) for r in range(8)]
    flat = schedules[5].flat()
    victim = next(i for i, st in enumerate(flat) if isinstance(st, RecvStep))
    schedules[5] = _clone_with_flat(
        schedules[5], [st for i, st in enumerate(flat) if i != victim])
    report = check_schedules(schedules, "bcast", 64, loc="fixture dropped-recv")
    assert not report.ok
    rules = {f.rule for f in report.errors}
    # The vanished receive orphans its matching send, and rank 5's output
    # buffer is no longer fully written.
    assert "orphan-send" in rules
    assert "incomplete-result" in rules


def test_swapped_peers_are_caught():
    schedules = [build_schedule("allgather", "ring", r, 6, 32) for r in range(6)]
    flat = schedules[2].flat()
    si = next(i for i, st in enumerate(flat) if isinstance(st, SendStep))
    ri = next(i for i, st in enumerate(flat) if isinstance(st, RecvStep))
    send_peer, recv_peer = flat[si].peer, flat[ri].peer
    assert send_peer != recv_peer
    flat[si] = dataclasses.replace(flat[si], peer=recv_peer)
    flat[ri] = dataclasses.replace(flat[ri], peer=send_peer)
    schedules[2] = _clone_with_flat(schedules[2], flat)
    report = check_schedules(schedules, "allgather", 32, loc="fixture swap")
    assert not report.ok
    rules = {f.rule for f in report.errors}
    assert {"orphan-send", "orphan-recv"} <= rules


def test_bad_peer_and_self_send_are_caught():
    sched0, sched1 = Schedule(), Schedule()
    sched0.round([SendStep(peer=9, tag=1), SendStep(peer=0, tag=1)])
    sched1.round([])
    report = check_schedules([sched0, sched1], "barrier", 0, loc="fixture")
    rules = {f.rule for f in report.errors}
    assert "bad-peer" in rules


def test_read_before_write_on_temp_is_caught():
    # A rank that sends from a declared-but-never-written temp buffer.
    sched0, sched1 = Schedule(), Schedule()
    sched0.temp("scratch", 64)
    sched0.round([SendStep(peer=1, tag=3, buf="scratch", lo=0, nbytes=64)])
    sched1.round([RecvStep(peer=0, tag=3)])
    report = check_schedules([sched0, sched1], "barrier", 0, loc="fixture")
    rules = {f.rule for f in report.errors}
    assert "read-before-write" in rules


def test_bytes_mismatch_is_caught():
    sched0, sched1 = Schedule(), Schedule()
    sched0.temp("a", 64)
    sched1.temp("b", 64)
    sched0.round([RecvStep(peer=1, tag=2, buf="a", lo=0, nbytes=32)])
    sched1.round([SendStep(peer=0, tag=2, buf="b", lo=0, nbytes=16)])
    report = check_schedules([sched0, sched1], "barrier", 0, loc="fixture")
    rules = {f.rule for f in report.errors}
    assert "bytes-mismatch" in rules
    # the send still reads an unwritten temp
    assert "read-before-write" in rules


def test_buffer_overrun_is_caught():
    sched0, sched1 = Schedule(), Schedule()
    sched0.round([RecvStep(peer=1, tag=2, buf="data", lo=60, nbytes=16)])
    sched1.round([SendStep(peer=0, tag=2)])
    report = check_schedules([sched0, sched1], "bcast", 64, root=1, loc="fx")
    rules = {f.rule for f in report.errors}
    assert "buffer-overrun" in rules


def test_describe_and_round_index_agree_with_builders():
    schedule = build_schedule("allreduce", "recursive_doubling", 0, 4, 64)
    for round_no, rnd in enumerate(schedule.rounds):
        for step in rnd:
            assert step.round_index == round_no
            assert f"@round {round_no}" in step.describe()
