"""End-to-end chaos acceptance: the ``chaos`` experiment and its CLI mounts.

The acceptance scenario of the fault subsystem: kill a rank mid-allreduce in
a chaos campaign, recover by deterministic restart, resume the checkpoint,
and verify everything against the uninterrupted oracle -- with the injected
fault and the recovery visible in the trace and the metrics.  Also covers
the ``repro-harness campaign --journal/--resume`` and ``mpiwasm-run
--fault-plan`` command-line surfaces.
"""

from __future__ import annotations

import json

import pytest

from repro.api.session import Session, use_session
from repro.harness.experiments import chaos_recovery


@pytest.fixture(scope="module")
def chaos_result():
    from repro.obs import tracing

    with Session(backend="cranelift", machine="graviton2") as session, \
            use_session(session):
        with tracing() as recorder:
            result = chaos_recovery(nranks=4)
        snapshot = recorder.snapshot()
    return result, snapshot


def test_chaos_recovers_and_matches_oracle(chaos_result):
    result, _snapshot = chaos_result
    assert result["recovered"] is True
    assert result["attempts"] == 2
    assert result["fired"] and result["fired"][0]["kind"] == "kill_rank"
    assert result["checkpoint"]["ranks_captured"] == 4
    # The three oracle checks: the checkpointed run, the recovered run, and
    # the resumed run are all bit-for-bit the uninterrupted run.
    assert result["checkpoint_run_matches_oracle"] is True
    assert result["recovered_matches_oracle"] is True
    assert result["resume_matches_oracle"] is True


def test_chaos_fault_events_reach_trace_and_metrics(chaos_result):
    result, snapshot = chaos_result
    names = [str(e.get("name", "")) for e in snapshot.get("events", ())]
    assert any(n == "fault.injected" for n in names)
    assert any(n == "fault.recovery.restart" for n in names)
    assert any(n == "fault.recovered" for n in names)
    assert result["fault_counters"]["fault.injected"] == 1
    assert result["fault_counters"]["fault.restarts"] == 1
    assert result["fault_counters"]["fault.recovered"] == 1


# ------------------------------------------------------------------------ CLI


def test_cli_chaos_smoke(tmp_path, capsys):
    from repro.harness.cli import main

    trace_out = tmp_path / "chaos.trace.json"
    assert main(["chaos", "--nranks", "2", "--victim", "1",
                 "--kill-call-index", "1", "--trace-out", str(trace_out)]) == 0
    printed = capsys.readouterr().out
    assert "recovered" in printed
    assert "oracle" in printed
    doc = json.loads(trace_out.read_text())
    fault_events = [e for e in doc["traceEvents"]
                    if str(e.get("name", "")).startswith("fault.")]
    assert fault_events, "injected faults must be visible in the trace"


def test_cli_chaos_json_output(capsys):
    from repro.harness.cli import main

    assert main(["chaos", "--nranks", "2", "--victim", "0",
                 "--kill-call-index", "1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["recovered"] is True
    assert payload["resume_matches_oracle"] is True
    assert payload["fault_events"]


def test_cli_campaign_journal_and_resume(tmp_path, capsys):
    from repro.harness.cli import main

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "cli-journal",
        "benchmarks": [{"benchmark": "allreduce", "nranks": 2}],
    }))
    jdir = tmp_path / "journal"
    assert main(["campaign", str(spec_path), "--journal", str(jdir),
                 "--out", str(tmp_path / "c1.json")]) == 0
    capsys.readouterr()
    assert main(["campaign", "--resume", str(jdir),
                 "--out", str(tmp_path / "c2.json")]) == 0
    printed = capsys.readouterr().out
    assert "(restored)" in printed
    first = json.loads((tmp_path / "c1.json").read_text())
    second = json.loads((tmp_path / "c2.json").read_text())
    assert [j["fingerprint"] for j in first["jobs"]] == \
        [j["fingerprint"] for j in second["jobs"]]


def test_cli_campaign_resume_flag_conflicts(tmp_path):
    from repro.harness.cli import main

    spec_path = tmp_path / "spec.json"
    spec_path.write_text("{}")
    with pytest.raises(SystemExit):
        main(["campaign", str(spec_path), "--resume", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["campaign", "--resume", str(tmp_path), "--journal", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["campaign"])  # no spec and not resuming


def test_launcher_fault_plan_flag(tmp_path, capsys):
    from repro.core.launcher import main as launcher_main
    from repro.fault import Fault, FaultPlan

    plan = FaultPlan(faults=(
        Fault(kind="kill_rank", rank=1, call="MPI_Allreduce", call_index=0),))
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(plan.to_json())
    assert launcher_main(["allreduce", "-np", "2", "--backend", "cranelift",
                          "--fault-plan", str(plan_path)]) == 0
    printed = capsys.readouterr().out
    assert "injected" in printed
    assert "recovered after 2 attempt(s)" in printed


def test_launcher_rejects_bad_fault_plan(tmp_path):
    from repro.core.launcher import main as launcher_main

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit):
        launcher_main(["allreduce", "-np", "2", "--fault-plan", str(bad)])
