"""Tests for the toolchain: guest ABI, wasicc, allocator, linker size model."""

from __future__ import annotations

import pytest

from repro.toolchain import mpi_header as abi
from repro.toolchain.guest import GuestProgram
from repro.toolchain.libraries import KIB, MIB
from repro.toolchain.linker import (
    ApplicationProfile,
    LinkerModel,
    PAPER_APPLICATIONS,
    table2_rows,
)
from repro.toolchain.wasicc import HEAP_BASE, compile_guest
from repro.wasm import ImportObject, Instance, decode_module, validate_module
from repro.wasm.module import ExternKind


# -------------------------------------------------------------------- mpi.h ABI


def test_guest_abi_has_all_paper_functions():
    for name in ("MPI_Init", "MPI_Finalize", "MPI_Send", "MPI_Recv", "MPI_Allreduce",
                 "MPI_Alloc_mem", "MPI_Free_mem", "MPI_Comm_split", "MPI_Wtime"):
        assert name in abi.MPI_SIGNATURES
    params, results = abi.MPI_SIGNATURES["MPI_Send"]
    assert len(params) == 6 and results == ["i32"]       # Listing 2/3 signature
    assert abi.MPI_SIGNATURES["MPI_Wtime"] == ([], ["f64"])


def test_datatype_handles_are_integers_and_sized():
    assert abi.datatype_size(abi.MPI_DOUBLE) == 8
    assert abi.datatype_size(abi.MPI_INT) == 4
    assert abi.datatype_size(abi.MPI_BYTE) == 1
    with pytest.raises(KeyError):
        abi.datatype_size(9999)


def test_header_source_renders_custom_mpi_h():
    src = abi.header_source()
    assert "typedef int MPI_Comm;" in src
    assert "typedef int MPI_Datatype;" in src
    assert "int MPI_Send(" in src
    assert f"#define MPI_COMM_WORLD {abi.MPI_COMM_WORLD}" in src


# ---------------------------------------------------------------------- wasicc


@pytest.fixture(scope="module")
def compiled_stub():
    program = GuestProgram(name="stub", main=lambda api, args: 0, memory_pages=4)
    return compile_guest(program)


def test_compile_guest_produces_valid_binary(compiled_stub):
    assert compiled_stub.wasm_bytes[:4] == b"\x00asm"
    module = decode_module(compiled_stub.wasm_bytes)
    validate_module(module)
    exports = {e.name for e in module.exports}
    assert {"malloc", "free", "_start", "memory"} <= exports


def test_compiled_module_imports_full_mpi_abi(compiled_stub):
    imported = {imp.name for imp in compiled_stub.module.imports if imp.kind == ExternKind.FUNC}
    assert set(abi.MPI_SIGNATURES) <= imported
    assert "fd_write" in imported and "proc_exit" in imported


def test_wasm_malloc_is_a_working_bump_allocator(compiled_stub):
    inst = Instance(compiled_stub.module, _stub_imports(compiled_stub.module))
    [p1] = inst.invoke("malloc", 100)
    [p2] = inst.invoke("malloc", 100)
    assert p1 >= HEAP_BASE
    assert p2 >= p1 + 100
    assert p1 % 8 == 0 and p2 % 8 == 0       # 8-byte alignment
    inst.invoke("free", p1)                    # free is a no-op but must not trap
    [top] = inst.invoke("__heap_top")
    assert top >= p2 + 100


def test_wasm_malloc_grows_memory_when_needed(compiled_stub):
    inst = Instance(compiled_stub.module, _stub_imports(compiled_stub.module))
    before = inst.exported_memory().pages
    [ptr] = inst.invoke("malloc", 5 * 65536)
    assert inst.exported_memory().pages > before
    # The new allocation is usable end to end.
    inst.exported_memory().store_int(ptr + 5 * 65536 - 4, 77, 4)


def _stub_imports(module):
    """Import object with do-nothing implementations for every import."""
    from repro.wasm import FuncType

    imports = ImportObject()
    for imp in module.imports:
        if imp.kind != ExternKind.FUNC:
            continue
        ft = module.types[imp.desc]
        n_results = len(ft.results)
        imports.register(
            imp.module, imp.name, ft,
            lambda inst, *args, _n=n_results: (0,) * _n if _n else None,
        )
    return imports


def test_simd_flag_propagates_to_compiled_application():
    program = GuestProgram(name="p", main=lambda api, args: 0)
    assert compile_guest(program, simd=False).simd is False
    assert compile_guest(program.with_simd(False)).simd is False
    assert compile_guest(program).simd is True


# ------------------------------------------------------------------ linker model


def test_table2_rows_match_paper_shape():
    rows = {r.application: r for r in table2_rows()}
    assert set(rows) == {"IMB", "HPCG", "IOR", "IS", "DT"}
    # Statically linked binaries are tens of MiB; Wasm binaries are KiB-scale.
    for r in rows.values():
        assert r.static > 10 * MIB
        assert r.wasm < 2 * MIB
        assert r.static_to_wasm_ratio > 20
    # The paper's qualitative finding: three of the five applications have a
    # larger Wasm binary than dynamically linked native binary (HPCG, IS, DT).
    larger = {r.application for r in rows.values() if r.wasm_larger_than_dynamic}
    assert larger == {"HPCG", "IS", "DT"}


def test_average_static_to_wasm_ratio_near_paper_value():
    model = LinkerModel()
    ratio = model.average_static_to_wasm_ratio(table2_rows())
    assert 110 <= ratio <= 175     # paper: 139.5x


def test_table2_absolute_sizes_close_to_paper():
    rows = {r.application: r.row() for r in table2_rows()}
    paper = {
        "IMB": (1087, 27, 893),
        "HPCG": (164, 26, 722),
        "IOR": (364, 16, 315.32),
        "IS": (36, 15, 57.88),
        "DT": (40, 15, 49.51),
    }
    for app, (dyn_kib, static_mib, wasm_kib) in paper.items():
        row = rows[app]
        assert row["native_dynamic_kib"] == pytest.approx(dyn_kib, rel=0.15)
        assert row["native_static_mib"] == pytest.approx(static_mib, rel=0.15)
        assert row["wasm_kib"] == pytest.approx(wasm_kib, rel=0.15)


def test_cpp_applications_link_larger_static_binaries():
    model = LinkerModel()
    c_app = ApplicationProfile(name="c", object_code_size=100 * KIB, is_cpp=False)
    cpp_app = ApplicationProfile(name="cpp", object_code_size=100 * KIB, is_cpp=True)
    assert model.static_size(cpp_app) > model.static_size(c_app)
    assert model.wasm_size(cpp_app) > model.wasm_size(c_app)


def test_unknown_library_raises():
    model = LinkerModel()
    app = ApplicationProfile(name="x", object_code_size=1 * KIB,
                             extra_static_libraries=("libunicorn",))
    with pytest.raises(KeyError):
        model.static_size(app)
