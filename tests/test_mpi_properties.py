"""Seeded property-based tests over the MPI layer.

Two conformance properties, checked on randomized draws with Hypothesis in
``derandomize`` mode (the shrink-friendly equivalent of a fixed seed, so CI
runs are reproducible):

* **Collective/oracle agreement** -- for random (algorithm x nranks x dtype x
  count) draws, every registered algorithm of every collective in
  ``repro.mpi.algorithms`` must agree *bit-for-bit* with a plain NumPy oracle
  computed outside the simulator.  Reduction draws use order-insensitive
  (op, dtype) pairs only, exactly as in real MPI libraries: different
  algorithms combine contributions in different orders and floating-point
  addition is not associative.
* **Point-to-point non-overtaking** -- for a random sequence of tagged sends
  from one rank and a random sequence of receive patterns (specific tag or
  ``ANY_TAG``) on the other, every receive must deliver the *earliest-sent*
  buffered message matching its pattern (MPI-3.1 §3.5 ordering).
* **Non-blocking/blocking agreement** -- for random (algorithm x nranks x
  dtype x count) draws (including ``count == 0``) and either completion order
  (immediate ``test`` polling or ``wait``), every non-blocking collective
  must agree *bit-for-bit* with the same NumPy oracle as its blocking
  counterpart.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.mpi import datatypes, ops  # noqa: E402
from repro.mpi.algorithms import registry  # noqa: E402
from repro.mpi.algorithms import schedule as schedules  # noqa: E402
from repro.mpi.runtime import MPIRuntime, MPIWorld  # noqa: E402
from repro.sim.cluster import Cluster  # noqa: E402
from repro.sim.engine import SimEngine  # noqa: E402
from repro.sim.machines import graviton2  # noqa: E402

#: Fixed-seed mode: every example sequence is derived deterministically from
#: the test function, never from entropy -- what the CI main job relies on.
PROPERTY_SETTINGS = settings(max_examples=25, derandomize=True, deadline=None)

#: (MPI datatype, NumPy dtype) pairs the draws sample.
DTYPES = (
    (datatypes.BYTE, np.uint8),
    (datatypes.INT, np.int32),
    (datatypes.LONG, np.int64),
    (datatypes.DOUBLE, np.float64),
)

#: Order-insensitive reduction ops per dtype kind (float SUM is excluded:
#: its result legitimately depends on the combine order).
INT_OPS = (ops.SUM, ops.MIN, ops.MAX, ops.BAND, ops.BOR, ops.BXOR)
FLOAT_OPS = (ops.MIN, ops.MAX)


def _run_ranks(program, nranks: int, forced=None):
    """Run ``program(runtime, ctx)`` on every rank of a fresh simulation."""
    preset = graviton2()
    cluster = Cluster(preset, nranks, min(nranks, preset.cores_per_node))
    engine = SimEngine(nranks)
    world = MPIWorld.install(cluster, engine)
    if forced:
        world.collectives.force_many(forced)

    def make(rank):
        def rank_main(ctx):
            runtime = MPIRuntime(world, ctx)
            runtime.init()
            result = program(runtime, ctx)
            runtime.finalize()
            return result

        return rank_main

    engine.spawn_all(make)
    return engine.run()


def _rand_inputs(rng, nranks, count, npdtype):
    if np.issubdtype(npdtype, np.floating):
        return [rng.integers(-999, 999, size=count).astype(npdtype) for _ in range(nranks)]
    info = np.iinfo(npdtype)
    lo, hi = max(info.min, -1000), min(info.max, 1000)
    return [rng.integers(lo, hi + 1, size=count, dtype=npdtype) for _ in range(nranks)]


def _oracle_reduce(inputs, op, npdtype):
    acc = inputs[0].copy()
    for contribution in inputs[1:]:
        acc = op.apply(acc, contribution).astype(npdtype)
    return acc


# --------------------------------------------------- collectives vs the oracle


@st.composite
def collective_draws(draw):
    collective = draw(st.sampled_from(registry.COLLECTIVES))
    algorithm = draw(st.sampled_from(registry.algorithms_for(collective)))
    nranks = draw(st.integers(min_value=2, max_value=7))
    dtype, npdtype = draw(st.sampled_from(DTYPES))
    if collective in ("reduce", "allreduce"):
        count = draw(st.integers(min_value=0, max_value=70))
        op_pool = FLOAT_OPS if np.issubdtype(npdtype, np.floating) else INT_OPS
        op = draw(st.sampled_from(op_pool))
    else:
        count = draw(st.integers(min_value=1, max_value=70))
        op = None
    root = draw(st.integers(min_value=0, max_value=nranks - 1))
    data_seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return collective, algorithm, nranks, dtype, npdtype, count, op, root, data_seed


@PROPERTY_SETTINGS
@given(collective_draws())
def test_collectives_agree_with_numpy_oracle(params):
    collective, algorithm, nranks, dtype, npdtype, count, op, root, data_seed = params
    rng = np.random.default_rng(data_seed)
    forced = {collective: algorithm}

    if collective == "barrier":
        def program(rt, ctx):
            ctx.advance(0.001 * (ctx.rank + 1))
            rt.barrier()
            return rt.wtime()

        times = _run_ranks(program, nranks, forced)
        # Oracle: nobody leaves the barrier before the slowest entrant joined.
        assert min(times) >= 0.001 * nranks
        return

    inputs = _rand_inputs(rng, nranks, count, npdtype)

    if collective == "bcast":
        expected = inputs[root].tobytes()

        def program(rt, ctx):
            buf = inputs[ctx.rank].copy() if ctx.rank == root else np.zeros(count, dtype=npdtype)
            rt.bcast(buf, count, dtype, root=root)
            return buf.tobytes()

        assert all(r == expected for r in _run_ranks(program, nranks, forced))

    elif collective == "reduce":
        expected = _oracle_reduce(inputs, op, npdtype).tobytes()

        def program(rt, ctx):
            recv = np.zeros(count, dtype=npdtype) if ctx.rank == root else None
            rt.reduce(inputs[ctx.rank].copy(), recv, count, dtype, op, root=root)
            return recv.tobytes() if ctx.rank == root else None

        results = _run_ranks(program, nranks, forced)
        assert results[root] == expected

    elif collective == "allreduce":
        expected = _oracle_reduce(inputs, op, npdtype).tobytes()

        def program(rt, ctx):
            recv = np.zeros(count, dtype=npdtype)
            rt.allreduce(inputs[ctx.rank].copy(), recv, count, dtype, op)
            return recv.tobytes()

        assert all(r == expected for r in _run_ranks(program, nranks, forced))

    elif collective == "gather":
        expected = b"".join(block.tobytes() for block in inputs)

        def program(rt, ctx):
            recv = np.zeros(count * nranks, dtype=npdtype) if ctx.rank == root else None
            rt.gather(inputs[ctx.rank].copy(), count, dtype, recv, count, dtype, root=root)
            return recv.tobytes() if ctx.rank == root else None

        results = _run_ranks(program, nranks, forced)
        assert results[root] == expected

    elif collective == "scatter":
        flat = np.concatenate(inputs)

        def program(rt, ctx):
            send = flat.copy() if ctx.rank == root else None
            recv = np.zeros(count, dtype=npdtype)
            rt.scatter(send, count, dtype, recv, count, dtype, root=root)
            return recv.tobytes()

        results = _run_ranks(program, nranks, forced)
        for rank, received in enumerate(results):
            assert received == inputs[rank].tobytes()

    elif collective == "allgather":
        expected = b"".join(block.tobytes() for block in inputs)

        def program(rt, ctx):
            recv = np.zeros(count * nranks, dtype=npdtype)
            rt.allgather(inputs[ctx.rank].copy(), count, dtype, recv, count, dtype)
            return recv.tobytes()

        assert all(r == expected for r in _run_ranks(program, nranks, forced))

    elif collective == "alltoall":
        matrix = _rand_inputs(rng, nranks, count * nranks, npdtype)

        def program(rt, ctx):
            recv = np.zeros(count * nranks, dtype=npdtype)
            rt.alltoall(matrix[ctx.rank].copy(), count, dtype, recv, count, dtype)
            return recv.tobytes()

        results = _run_ranks(program, nranks, forced)
        for rank, received in enumerate(results):
            expected = b"".join(
                matrix[src][rank * count : (rank + 1) * count].tobytes() for src in range(nranks)
            )
            assert received == expected

    else:  # pragma: no cover - keeps the draw space and dispatch in sync
        pytest.fail(f"collective {collective!r} not covered by the oracle")


# --------------------------------------- non-blocking collectives vs the oracle

#: The collectives exposed through the non-blocking API.
NBC_COLLECTIVES = ("barrier", "bcast", "allreduce", "allgather", "alltoall")


def _complete(rt, ctx, request, mode: str):
    """Drive a request to completion the drawn way: blocking wait or an
    immediate-``test`` polling loop (both must yield identical payloads)."""
    if mode == "wait":
        return rt.wait(request)
    flag, status = rt.test(request)
    while not flag:
        flag, status = rt.test(request)
    return status


@st.composite
def nbc_draws(draw):
    collective = draw(st.sampled_from(NBC_COLLECTIVES))
    algorithm = draw(st.sampled_from(schedules.builders_for(collective)))
    nranks = draw(st.integers(min_value=2, max_value=6))
    dtype, npdtype = draw(st.sampled_from(DTYPES))
    if collective == "allreduce":
        count = draw(st.integers(min_value=0, max_value=48))
        op_pool = FLOAT_OPS if np.issubdtype(npdtype, np.floating) else INT_OPS
        op = draw(st.sampled_from(op_pool))
    else:
        count = draw(st.integers(min_value=0 if collective == "bcast" else 1, max_value=48))
        op = None
    root = draw(st.integers(min_value=0, max_value=nranks - 1))
    mode = draw(st.sampled_from(("wait", "test")))
    data_seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return collective, algorithm, nranks, dtype, npdtype, count, op, root, mode, data_seed


@PROPERTY_SETTINGS
@given(nbc_draws())
def test_nonblocking_collectives_agree_with_blocking_oracle(params):
    collective, algorithm, nranks, dtype, npdtype, count, op, root, mode, data_seed = params
    rng = np.random.default_rng(data_seed)
    forced = {collective: algorithm}

    if collective == "barrier":
        def program(rt, ctx):
            ctx.advance(0.001 * (ctx.rank + 1))
            _complete(rt, ctx, rt.ibarrier(), mode)
            return rt.wtime()

        times = _run_ranks(program, nranks, forced)
        # Oracle: nobody leaves the barrier before the slowest entrant joined.
        assert min(times) >= 0.001 * nranks
        return

    inputs = _rand_inputs(rng, nranks, count, npdtype)

    if collective == "bcast":
        expected = inputs[root].tobytes()

        def program(rt, ctx):
            buf = inputs[ctx.rank].copy() if ctx.rank == root else np.zeros(count, dtype=npdtype)
            _complete(rt, ctx, rt.ibcast(buf, count, dtype, root=root), mode)
            return buf.tobytes()

        assert all(r == expected for r in _run_ranks(program, nranks, forced))

    elif collective == "allreduce":
        expected = _oracle_reduce(inputs, op, npdtype).tobytes()

        def program(rt, ctx):
            recv = np.zeros(count, dtype=npdtype)
            _complete(rt, ctx, rt.iallreduce(inputs[ctx.rank].copy(), recv, count, dtype, op), mode)
            return recv.tobytes()

        assert all(r == expected for r in _run_ranks(program, nranks, forced))

    elif collective == "allgather":
        expected = b"".join(block.tobytes() for block in inputs)

        def program(rt, ctx):
            recv = np.zeros(count * nranks, dtype=npdtype)
            request = rt.iallgather(inputs[ctx.rank].copy(), count, dtype, recv, count, dtype)
            _complete(rt, ctx, request, mode)
            return recv.tobytes()

        assert all(r == expected for r in _run_ranks(program, nranks, forced))

    elif collective == "alltoall":
        matrix = _rand_inputs(rng, nranks, count * nranks, npdtype)

        def program(rt, ctx):
            recv = np.zeros(count * nranks, dtype=npdtype)
            request = rt.ialltoall(matrix[ctx.rank].copy(), count, dtype, recv, count, dtype)
            _complete(rt, ctx, request, mode)
            return recv.tobytes()

        results = _run_ranks(program, nranks, forced)
        for rank, received in enumerate(results):
            expected = b"".join(
                matrix[src][rank * count : (rank + 1) * count].tobytes() for src in range(nranks)
            )
            assert received == expected

    else:  # pragma: no cover - keeps the draw space and dispatch in sync
        pytest.fail(f"collective {collective!r} not covered by the oracle")


# ------------------------------------------------------- pt2pt non-overtaking


@st.composite
def pt2pt_draws(draw):
    n_messages = draw(st.integers(min_value=1, max_value=8))
    tags = draw(
        st.lists(st.integers(min_value=0, max_value=2), min_size=n_messages, max_size=n_messages)
    )
    # Each receive either names the tag of a specific pending message stream
    # or uses ANY_TAG; both must obey send-order within what they match.
    use_any = draw(
        st.lists(st.booleans(), min_size=n_messages, max_size=n_messages)
    )
    sizes = draw(
        st.lists(st.integers(min_value=1, max_value=64), min_size=n_messages, max_size=n_messages)
    )
    return tags, use_any, sizes


def _expected_delivery(tags, use_any):
    """Oracle for the receive order: MPI non-overtaking over one sender.

    Walks the receive patterns, always consuming the earliest-sent pending
    message matching the pattern; returns the message index each receive
    must observe (or None when nothing pending matches -- the draw then
    falls back to ANY_TAG for that receive to avoid a deadlock).
    """
    pending = list(range(len(tags)))
    order = []
    patterns = []
    for i, any_tag in enumerate(use_any):
        wanted = None if any_tag else tags[i]
        match = next((m for m in pending if wanted is None or tags[m] == wanted), None)
        if match is None:
            wanted = None
            match = pending[0]
        patterns.append(wanted)
        order.append(match)
        pending.remove(match)
    return patterns, order


@PROPERTY_SETTINGS
@given(pt2pt_draws())
def test_pt2pt_non_overtaking(params):
    tags, use_any, sizes = params
    n = len(tags)
    patterns, expected_order = _expected_delivery(tags, use_any)
    payloads = [np.full(sizes[i], i + 1, dtype=np.uint8) for i in range(n)]

    def program(rt, ctx):
        if ctx.rank == 0:
            for i in range(n):
                rt.send(payloads[i], sizes[i], datatypes.BYTE, dest=1, tag=tags[i])
            return None
        observed = []
        for wanted in patterns:
            buf = np.zeros(64, dtype=np.uint8)
            status = rt.recv(
                buf, 64, datatypes.BYTE, source=0,
                tag=rt.ANY_TAG if wanted is None else wanted,
            )
            observed.append((buf[0] - 1, status.tag, status.count_bytes))
        return observed

    results = _run_ranks(program, 2)
    observed = results[1]
    for recv_idx, (msg_idx, tag, nbytes) in enumerate(observed):
        expected_msg = expected_order[recv_idx]
        assert msg_idx == expected_msg, (
            f"receive {recv_idx} (pattern {patterns[recv_idx]!r}) got message {msg_idx}, "
            f"but non-overtaking requires message {expected_msg} (tags={tags})"
        )
        assert tag == tags[expected_msg]
        assert nbytes == sizes[expected_msg]


@PROPERTY_SETTINGS
@given(pt2pt_draws())
def test_pt2pt_payloads_survive_wildcard_matching(params):
    """Companion property: whatever the matching order, payload bytes and
    status metadata always belong to one single sent message (no mixing)."""
    tags, use_any, sizes = params
    n = len(tags)
    patterns, _ = _expected_delivery(tags, use_any)
    rng = np.random.default_rng(sum(sizes) * 31 + n)
    payloads = [rng.integers(0, 256, size=sizes[i], dtype=np.uint8) for i in range(n)]

    def program(rt, ctx):
        if ctx.rank == 0:
            for i in range(n):
                rt.send(payloads[i], sizes[i], datatypes.BYTE, dest=1, tag=tags[i])
            return None
        got = []
        for wanted in patterns:
            buf = np.zeros(64, dtype=np.uint8)
            status = rt.recv(
                buf, 64, datatypes.BYTE, source=0,
                tag=rt.ANY_TAG if wanted is None else wanted,
            )
            got.append(bytes(buf[: status.count_bytes]))
        return got

    results = _run_ranks(program, 2)
    sent = {p.tobytes() for p in payloads}
    received = results[1]
    assert len(received) == n
    for blob in received:
        assert blob in sent
    # Every message is delivered exactly once.
    assert sorted(received) == sorted(p.tobytes() for p in payloads)
