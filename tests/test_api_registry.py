"""Registry subsystem tests: discovery, override semantics, helpful lookup
errors, and third-party registration through the public decorators."""

from __future__ import annotations

import pytest

from repro.api import (
    BACKENDS,
    BENCHMARKS,
    MACHINES,
    MODES,
    DuplicateEntryError,
    Registry,
    Session,
    UnknownEntryError,
    register_backend,
    register_benchmark,
    register_machine,
    register_mode,
)


# ------------------------------------------------------------- generic registry


def test_registry_register_get_names_contains():
    reg = Registry("widget")
    reg.register("a", obj=1)

    @reg.register("b")
    def widget_b():
        return 2

    assert reg.get("a") == 1 and reg.get("b") is widget_b
    assert reg.names() == ["a", "b"]
    assert "a" in reg and "zz" not in reg
    assert len(reg) == 2


def test_registry_infers_name_from_target():
    reg = Registry("widget")

    @reg.register()
    def my_widget():
        pass

    assert reg.get("my_widget") is my_widget


def test_registry_duplicate_requires_override():
    reg = Registry("widget")
    reg.register("x", obj=1)
    with pytest.raises(DuplicateEntryError, match="already registered"):
        reg.register("x", obj=2)
    assert reg.get("x") == 1
    reg.register("x", obj=2, override=True)
    assert reg.get("x") == 2
    reg.unregister("x")
    reg.unregister("x")  # idempotent
    assert "x" not in reg


def test_unknown_entry_error_is_keyerror_and_lists_known():
    reg = Registry("widget")
    reg.register("alpha", obj=1)
    with pytest.raises(KeyError):
        reg.get("beta")
    with pytest.raises(UnknownEntryError, match="unknown widget 'beta'.*alpha"):
        reg.get("beta")


# --------------------------------------------- helpful errors (bugfix satellite)


def test_unknown_machine_lists_registered_presets():
    """The old ``_resolve_machine`` path raised a bare KeyError; the registry
    must name the registry and list every preset."""
    from repro.api.session import resolve_machine

    with pytest.raises(UnknownEntryError, match="machine preset 'summit'.*graviton2"):
        resolve_machine("summit")


def test_unknown_backend_benchmark_algorithm_list_known():
    from repro.benchmarks_suite import registry as bench_registry
    from repro.mpi.algorithms import registry as algo_registry
    from repro.wasm.compilers import get_backend

    with pytest.raises(UnknownEntryError, match="compiler backend 'gcc'.*llvm"):
        get_backend("gcc")
    with pytest.raises(UnknownEntryError, match="benchmark 'linpack'.*pingpong"):
        bench_registry.get_program("linpack")
    with pytest.raises(algo_registry.UnknownAlgorithmError, match="known.*ring"):
        algo_registry.get("allreduce", "quantum")


def test_session_run_unknown_mode_lists_modes():
    with Session(machine="graviton2") as session:
        with pytest.raises(UnknownEntryError, match="execution mode 'jit'.*native.*wasm"):
            session.run("pingpong", 1, mode="jit")


# ----------------------------------------------------- third-party registration


def test_third_party_backend_registers_and_compiles():
    """A back-end defined outside the code base plugs in through the public
    decorator and is immediately discoverable and usable."""
    from repro.wasm.compilers import CompiledModule, backend_names, get_backend
    from repro.wasm.compilers.cranelift import CraneliftBackend

    @register_backend
    class TestOnlyBackend(CraneliftBackend):
        name = "test-only"

    try:
        assert "test-only" in backend_names()
        backend = get_backend("test-only")
        from repro.toolchain.guest import GuestProgram
        from repro.toolchain.wasicc import compile_guest

        app = compile_guest(GuestProgram(name="third-party", main=lambda api, args: 0))
        compiled = backend.compile(app.module)
        assert isinstance(compiled, CompiledModule)
        assert compiled.backend_name == "test-only"
        # And a Session can run jobs on it by name.
        with Session(machine="graviton2", backend="test-only") as session:
            job = session.run("pingpong", 2)
            assert job.exit_codes() == [0, 0]
    finally:
        BACKENDS.unregister("test-only")


def test_third_party_machine_and_benchmark():
    from repro.sim.machines import graviton2
    from repro.toolchain.guest import GuestProgram

    register_machine(graviton2().with_overrides(name="test-box", cores_per_node=4))

    @register_benchmark("test-noop")
    def make_noop():
        def main(api, args):
            api.mpi_init()
            api.mpi_finalize()
            return 0

        return GuestProgram(name="test-noop", main=main)

    try:
        assert MACHINES.get("test-box").cores_per_node == 4
        with Session() as session:
            job = session.run("test-noop", 2, machine="test-box")
            assert job.machine == "test-box" and job.exit_codes() == [0, 0]
    finally:
        MACHINES.unregister("test-box")
        BENCHMARKS.unregister("test-noop")


def test_third_party_mode_receives_run_request():
    seen = {}

    @register_mode("echo")
    def echo_mode(session, app, *, nranks, preset, ranks_per_node, config,
                  guest_args, session_store=True):
        from repro.api import JobResult
        from repro.sim.metrics import MetricsRegistry

        seen.update(nranks=nranks, machine=preset.name, backend=config.compiler_backend)
        return JobResult(nranks=nranks, machine=preset.name, mode="echo",
                         rank_results=[0] * nranks, makespan=0.0,
                         metrics=MetricsRegistry(), stdout="")

    try:
        with Session(machine="graviton2", backend="singlepass") as session:
            job = session.run("pingpong", 3, mode="echo")
        assert job.mode == "echo"
        assert seen == {"nranks": 3, "machine": "graviton2", "backend": "singlepass"}
    finally:
        MODES.unregister("echo")


# -------------------------------------------------------- legacy views stay live


def test_legacy_tables_alias_the_registries():
    from repro.benchmarks_suite.registry import _FACTORIES
    from repro.harness.experiments import EXPERIMENT_DRIVERS
    from repro.sim.machines import PRESETS

    assert PRESETS is MACHINES.entries
    assert _FACTORIES is BENCHMARKS.entries
    from repro.api import EXPERIMENTS

    assert EXPERIMENT_DRIVERS is EXPERIMENTS.entries
    assert {"table1", "figure5", "nbc", "algosweep"} <= set(EXPERIMENT_DRIVERS)
