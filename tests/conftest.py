"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.runtime import MPIRuntime, MPIWorld
from repro.sim.cluster import Cluster
from repro.sim.engine import SimEngine
from repro.sim.machines import graviton2, supermuc_ng


def run_mpi_program(program, nranks: int, machine=None, ranks_per_node=None):
    """Run ``program(runtime, ctx)`` on every rank of a small simulated job."""
    preset = machine or graviton2()
    cluster = Cluster(preset, nranks, ranks_per_node or min(nranks, preset.cores_per_node))
    engine = SimEngine(nranks)
    world = MPIWorld.install(cluster, engine)

    def make(rank):
        def rank_main(ctx):
            runtime = MPIRuntime(world, ctx)
            runtime.init()
            result = program(runtime, ctx)
            if not runtime.finalized:
                runtime.finalize()
            return result

        return rank_main

    engine.spawn_all(make)
    return engine.run()


@pytest.fixture
def graviton():
    """The Graviton2 machine preset."""
    return graviton2()


@pytest.fixture
def supermuc():
    """The SuperMUC-NG machine preset."""
    return supermuc_ng()


@pytest.fixture
def small_cluster(graviton):
    """A 4-rank single-node cluster."""
    return Cluster(graviton, nranks=4, ranks_per_node=4)
