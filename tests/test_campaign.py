"""Tests for the parallel experiment campaign runner.

Covers the full subsystem: scenario-matrix expansion and validation,
deterministic per-job seeding, serial execution, multi-process execution
with the shared compile cache (identical results to the serial path, each
distinct module compiled exactly once across the pool), graceful per-job
failure capture, metrics aggregation, ``campaign.json``, and the
``repro-harness campaign`` CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.campaign import (
    CampaignResult,
    CampaignSpec,
    JobSpec,
    run_campaign,
    run_job,
    spec_for_experiments,
)
from repro.harness.report import format_campaign_report

#: A figure-5-class mini-sweep: functional benchmark matrix + a figure driver.
SWEEP_SPEC = {
    "name": "mini-sweep",
    "seed": 11,
    "benchmarks": [
        {"benchmark": ["allreduce", "alltoall"], "mode": ["wasm", "native"],
         "backend": "cranelift", "nranks": 2, "machine": "graviton2"},
    ],
    "experiments": [
        {"experiment": "figure6", "params": {"functional": False}},
    ],
}


# ------------------------------------------------------------------ expansion


def test_matrix_expansion_is_a_full_product():
    spec = CampaignSpec.from_mapping({
        "benchmarks": [
            {"benchmark": ["allreduce", "alltoall"], "mode": ["wasm", "native"],
             "backend": ["singlepass", "cranelift"], "nranks": [2, 4], "repeats": 2},
        ],
    })
    jobs = spec.expand()
    # The raw product is 2 benchmarks x 2 modes x 2 backends x 2 nranks x
    # 2 repeats = 32, but the backend axis collapses out of native job ids,
    # so expansion keeps exactly one job per distinct id: 16 wasm + 8 native.
    assert len(jobs) == 24
    assert len({j.job_id for j in jobs}) == 24
    assert sum(1 for j in jobs if j.mode == "native") == 8
    assert all(isinstance(j, JobSpec) for j in jobs)


def test_algorithm_variants_sweep_as_an_axis():
    spec = CampaignSpec.from_mapping({
        "benchmarks": [
            {"benchmark": "allreduce", "nranks": 3,
             "algorithms": [{"allreduce": "ring"}, {"allreduce": "recursive_doubling"}]},
        ],
    })
    jobs = spec.expand()
    assert len(jobs) == 2
    assert {j.algorithms for j in jobs} == {
        (("allreduce", "ring"),), (("allreduce", "recursive_doubling"),)
    }


@pytest.mark.parametrize("mapping,match", [
    ({"benchmarks": [{"benchmark": "no-such-benchmark"}]}, "unknown benchmark"),
    ({"benchmarks": [{"benchmark": "allreduce", "mode": "jit"}]}, "unknown mode"),
    ({"benchmarks": [{"benchmark": "allreduce", "backend": "gcc"}]}, "unknown backend"),
    ({"benchmarks": [{"benchmark": "allreduce", "typo_key": 1}]}, "unknown benchmark matrix keys"),
    ({"benchmarks": [{"nranks": 2}]}, "missing 'benchmark'"),
    ({"experiments": [{"experiment": "figure99"}]}, "unknown experiment"),
    ({"experiments": [{"experiment": "figure5", "bogus": 1}]}, "unknown experiment keys"),
    ({}, "zero jobs"),
    ({"bogus_top": 1}, "unknown campaign spec keys"),
])
def test_spec_validation_fails_loudly(mapping, match):
    with pytest.raises(ValueError, match=match):
        CampaignSpec.from_mapping(mapping).expand()


def test_spec_from_json_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SWEEP_SPEC))
    spec = CampaignSpec.from_file(path)
    assert spec.name == "mini-sweep" and spec.seed == 11
    assert len(spec.expand()) == 5


def test_bundled_example_spec_expands():
    spec = CampaignSpec.from_file("examples/campaign.json")
    assert len(spec.expand()) == 12


# ----------------------------------------------------------------- job seeds


def test_job_seeds_are_deterministic_and_distinct():
    jobs = CampaignSpec.from_mapping(SWEEP_SPEC).expand()
    seeds = [j.seed(11) for j in jobs]
    assert seeds == [j.seed(11) for j in jobs]          # stable
    assert len(set(seeds)) == len(seeds)                # distinct per job
    assert seeds != [j.seed(12) for j in jobs]          # campaign seed matters
    repeat = JobSpec(kind="benchmark", name="allreduce", repeat=1)
    assert repeat.seed(11) != JobSpec(kind="benchmark", name="allreduce").seed(11)


# ------------------------------------------------------------ serial running


@pytest.fixture(scope="module")
def serial_result() -> CampaignResult:
    return run_campaign(CampaignSpec.from_mapping(SWEEP_SPEC))


def test_serial_campaign_runs_every_job(serial_result):
    assert len(serial_result.outcomes) == 5
    assert serial_result.ok
    assert [o.status for o in serial_result.outcomes] == ["ok"] * 5
    wasm = serial_result.outcome("allreduce/wasm/cranelift/np2/graviton2#r0")
    assert wasm.makespan > 0 and wasm.exit_codes == [0, 0]
    figure = serial_result.outcome("figure6/functional=False#r0")
    assert figure.result["average_ns"]


def test_campaign_aggregates_metrics_and_cache(serial_result):
    summary = serial_result.metrics.collective_summary()
    assert summary["allreduce"]["calls"] > 0
    assert summary["alltoall"]["calls"] > 0
    # Both wasm jobs share one guest module: one compile, everything else hits.
    assert serial_result.cache_stats["compiles"] == 1
    assert len(set(serial_result.compiled_modules)) == 1
    assert serial_result.cache_stats["hits"] >= 1


def test_campaign_json_is_machine_readable(serial_result, tmp_path):
    path = serial_result.write(tmp_path / "campaign.json")
    payload = json.loads(path.read_text())
    assert payload["name"] == "mini-sweep"
    assert payload["jobs_total"] == 5 and payload["jobs_failed"] == 0
    assert payload["cache"]["compiles"] == 1
    job = payload["jobs"][0]
    assert {"job_id", "spec", "seed", "status", "cache", "fingerprint"} <= set(job)


def test_campaign_report_renders(serial_result):
    text = format_campaign_report(serial_result)
    assert "mini-sweep" in text
    assert "allreduce/wasm/cranelift/np2/graviton2#r0" in text
    assert "1 compiles" in text and "1 distinct modules" in text


# --------------------------------------------------------- parallel identity


def test_parallel_campaign_matches_serial_and_compiles_once(serial_result):
    """Acceptance: the --workers path produces identical per-job results to
    the serial path, and the shared cache compiles each distinct guest
    module exactly once across the pool."""
    parallel = run_campaign(CampaignSpec.from_mapping(SWEEP_SPEC), workers=2)
    assert parallel.ok and parallel.workers == 2
    assert parallel.fingerprints() == serial_result.fingerprints()
    # Same per-job virtual makespans and return values, job by job.
    for outcome in parallel.outcomes:
        twin = serial_result.outcome(outcome.job_id)
        assert outcome.makespan == twin.makespan
        assert outcome.return_values == twin.return_values
    assert parallel.cache_stats["compiles"] == 1
    assert set(parallel.compiled_modules) == set(serial_result.compiled_modules)


def test_serial_campaign_is_reproducible(serial_result):
    again = run_campaign(CampaignSpec.from_mapping(SWEEP_SPEC))
    assert again.fingerprints() == serial_result.fingerprints()


def test_persistent_cache_dir_stats_are_scoped_per_campaign(tmp_path):
    spec = CampaignSpec.from_mapping({
        "benchmarks": [{"benchmark": "allreduce", "nranks": 2}],
    })
    first = run_campaign(spec, cache_dir=str(tmp_path))
    second = run_campaign(spec, cache_dir=str(tmp_path))
    # Run 1 compiles; run 2 is served entirely from the warm directory and
    # must not report run 1's compile as its own.
    assert first.cache_stats["compiles"] == 1
    assert second.cache_stats["compiles"] == 0
    assert second.cache_stats["misses"] == 0
    assert second.cache_stats["hits"] >= 1
    assert second.compiled_modules == []
    assert second.fingerprints() == first.fingerprints()


def test_repro_cache_dir_env_is_honoured(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "persistent"))
    spec = CampaignSpec.from_mapping({
        "benchmarks": [{"benchmark": "allreduce", "nranks": 2}],
    })
    run_campaign(spec)
    # The user's persistent cache received the artifact (no throwaway dir).
    assert list((tmp_path / "persistent").glob("*.mpiwasm"))
    second = run_campaign(spec)
    assert second.cache_stats == {"hits": 2, "misses": 0, "compiles": 0}


def test_fingerprints_ignore_wall_clock_measurements():
    """table1's compile times and kernel throughput are host measurements;
    two runs must still fingerprint identically."""
    spec = spec_for_experiments(["table1"])
    first = run_campaign(spec)
    second = run_campaign(spec)
    a = first.outcomes[0].result
    b = second.outcomes[0].result
    assert a["llvm"]["compile_ms"] != b["llvm"]["compile_ms"]  # really measured
    assert first.fingerprints() == second.fingerprints()


# ------------------------------------------------------------ failure capture


def test_failed_job_yields_error_record_not_dead_campaign():
    spec = CampaignSpec.from_mapping({
        "name": "partial-failure",
        "benchmarks": [
            {"benchmark": "allreduce", "nranks": 2, "machine": "graviton2"},
            {"benchmark": "allreduce", "nranks": 2, "machine": "graviton2",
             "algorithms": {"allreduce": "not-an-algorithm"}},
        ],
    })
    result = run_campaign(spec)
    assert len(result.outcomes) == 2
    assert not result.ok and len(result.errors) == 1
    failed = result.errors[0]
    assert failed.status == "error"
    assert "not-an-algorithm" in failed.error["message"]
    assert failed.error["traceback"]
    # The healthy job still completed and aggregated.
    healthy = result.outcome("allreduce/wasm/cranelift/np2/graviton2#r0")
    assert healthy.ok and healthy.makespan > 0


def test_failure_capture_works_identically_under_workers():
    spec = CampaignSpec.from_mapping({
        "benchmarks": [
            {"benchmark": "allreduce", "nranks": 2,
             "algorithms": [{}, {"allreduce": "not-an-algorithm"}]},
        ],
    })
    serial = run_campaign(spec)
    parallel = run_campaign(spec, workers=2)
    assert len(serial.errors) == len(parallel.errors) == 1
    assert serial.fingerprints() == parallel.fingerprints()


def test_run_job_unknown_kind_is_captured():
    outcome = run_job(JobSpec(kind="nonsense", name="x"))
    assert outcome.status == "error" and outcome.error["type"] == "ValueError"


# -------------------------------------------------------------- experiments path


def test_spec_for_experiments_runs_drivers():
    result = run_campaign(spec_for_experiments(["table2"]))
    assert result.ok
    outcome = result.outcomes[0]
    assert outcome.spec.kind == "experiment"
    assert outcome.result["average_static_to_wasm_ratio"] > 0


def test_crosscheck_campaign_matches_driver_shape():
    from repro.harness.experiments import functional_crosscheck_campaign

    out = functional_crosscheck_campaign(nranks=2)
    assert set(out) == {"pingpong", "allreduce", "alltoall"}
    for row in out.values():
        assert row["wasm_makespan_us"] > 0
        assert row["native_makespan_us"] > 0


# ------------------------------------------------------------------------ CLI


def test_cli_campaign_subcommand(tmp_path, capsys):
    from repro.harness.cli import main

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "cli-smoke",
        "benchmarks": [{"benchmark": "allreduce", "mode": ["wasm", "native"], "nranks": 2}],
    }))
    out_path = tmp_path / "campaign.json"
    assert main(["campaign", str(spec_path), "--workers", "2", "--out", str(out_path)]) == 0
    printed = capsys.readouterr().out
    assert "cli-smoke" in printed and str(out_path) in printed
    payload = json.loads(out_path.read_text())
    assert payload["jobs_failed"] == 0 and payload["workers"] == 2


def test_cli_campaign_exits_nonzero_on_job_error(tmp_path, capsys):
    from repro.harness.cli import main

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "benchmarks": [{"benchmark": "allreduce", "nranks": 2,
                        "algorithms": {"allreduce": "not-an-algorithm"}}],
    }))
    assert main(["campaign", str(spec_path), "--out", str(tmp_path / "c.json")]) == 1
    assert "1 of 1 jobs failed" in capsys.readouterr().out


def test_cli_campaign_rejects_bad_spec(tmp_path):
    from repro.harness.cli import main

    spec_path = tmp_path / "bad.json"
    spec_path.write_text("{not json")
    with pytest.raises(SystemExit):
        main(["campaign", str(spec_path)])


def test_cli_run_back_compat_and_workers(capsys):
    from repro.harness.cli import main

    # Bare experiment names (the historical repro-experiments interface).
    assert main(["table2"]) == 0
    assert "static/wasm" in capsys.readouterr().out
    # Explicit subcommand with a worker pool.
    assert main(["run", "table2", "--workers", "2"]) == 0
    assert "static/wasm" in capsys.readouterr().out


# ------------------------------------------------------- graceful interrupts


def _register_interrupt_drivers():
    """In-test experiment drivers for the KeyboardInterrupt contract.

    Registered lazily (idempotently) so importing this module never mutates
    the registry for unrelated tests.
    """
    from repro.api.registry import EXPERIMENTS, register_experiment

    if "ki-noop" not in EXPERIMENTS.entries:
        @register_experiment("ki-noop")
        def _noop_driver():
            return {"ran": True}

    if "ki-self-signal" not in EXPERIMENTS.entries:
        @register_experiment("ki-self-signal")
        def _self_signal_driver():
            # A self-signalling job: raise the interrupt exactly the way a
            # Ctrl-C would surface it mid-job (SIGINT to ourselves; the
            # Python handler turns it into KeyboardInterrupt at the next
            # bytecode boundary, which time.sleep guarantees reaching).
            import os
            import signal
            import time

            os.kill(os.getpid(), signal.SIGINT)
            time.sleep(5)
            return {"ran": True}  # pragma: no cover - the signal fires first


def test_keyboard_interrupt_yields_partial_campaign(tmp_path):
    """Serial path: an interrupt mid-campaign terminates cleanly, records the
    in-flight job and every never-started job as 'interrupted', and the
    partial campaign.json still accounts for the whole job list."""
    _register_interrupt_drivers()
    spec = CampaignSpec.from_mapping({
        "name": "interrupt-serial",
        "experiments": [
            {"experiment": "ki-noop"},
            {"experiment": "ki-self-signal"},
            {"experiment": "figure6", "params": {"functional": False}},
        ],
    })
    result = run_campaign(spec)
    assert result.interrupted
    assert not result.ok
    by_id = {o.spec.name: o for o in result.outcomes}
    assert len(result.outcomes) == 3, "every job must have a record"
    assert by_id["ki-noop"].ok
    assert by_id["ki-self-signal"].status == "interrupted"
    assert by_id["ki-self-signal"].error["type"] == "KeyboardInterrupt"
    assert by_id["figure6"].status == "interrupted"
    out = result.write(tmp_path / "campaign.json")
    doc = json.loads(out.read_text())
    assert doc["interrupted"] is True
    assert doc["jobs_total"] == 3
    assert doc["jobs_failed"] == 2
    statuses = {j["job_id"]: j["status"] for j in doc["jobs"]}
    assert sorted(statuses.values()) == ["interrupted", "interrupted", "ok"]


def test_keyboard_interrupt_terminates_parallel_pool(tmp_path):
    """Parallel path: SIGINT delivered to the parent while workers are busy
    terminates and joins the pool (no orphans, no hang) and produces
    interrupted records for unfinished jobs."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method required for in-test drivers")
    _register_interrupt_drivers()
    from repro.api.registry import EXPERIMENTS, register_experiment

    if "ki-signal-parent" not in EXPERIMENTS.entries:
        @register_experiment("ki-signal-parent")
        def _signal_parent_driver():
            import os
            import signal
            import time

            os.kill(os.getppid(), signal.SIGINT)
            time.sleep(30)  # keep this worker busy so terminate() matters
            return {"ran": True}  # pragma: no cover

    spec = CampaignSpec.from_mapping({
        "name": "interrupt-parallel",
        "experiments": [
            {"experiment": "ki-signal-parent"},
            {"experiment": "ki-noop", "repeats": 3},
        ],
    })
    result = run_campaign(spec, workers=2)
    assert result.interrupted
    assert len(result.outcomes) == 4, "every job must have a record"
    interrupted = [o for o in result.outcomes if o.status == "interrupted"]
    assert interrupted, "the busy job must be recorded as interrupted"
    assert all(o.error["type"] == "KeyboardInterrupt" for o in interrupted)
    # The partial result still serialises.
    doc = json.loads(result.write(tmp_path / "campaign.json").read_text())
    assert doc["interrupted"] is True
