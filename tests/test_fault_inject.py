"""Tests for :mod:`repro.fault` injection, recovery, and failure teardown.

Covers the seeded fault plans (serialization, one-shot firing, every fault
kind end-to-end), restart-level recovery proving bit-for-bit determinism
past an injected kill, the ULFM-style revoke/shrink/agree primitives, and
the engine's deterministic survivor teardown on a rank failure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.session import Session
from repro.fault import (
    Fault,
    FaultPlan,
    InjectedFault,
    inject_faults,
    run_with_recovery,
)
from repro.fault import recover
from repro.fault.inject import _corrupt
from repro.fault.recover import _injected_cause
from repro.mpi import datatypes, ops
from repro.sim.engine import DeadlockError, RankFailedError, RankState, SimEngine
from repro.toolchain.guest import GuestProgram
from tests.conftest import run_mpi_program


@pytest.fixture()
def session():
    with Session(backend="cranelift", machine="graviton2") as s:
        yield s


# ------------------------------------------------------------------ the plans


def test_fault_plan_json_round_trip():
    plan = FaultPlan(
        faults=(
            Fault(kind="kill_rank", rank=1, call="MPI_Allreduce", call_index=2),
            Fault(kind="kill_rank", rank=0, round=3),
            Fault(kind="drop_message", src=0, dst=1, match_index=4),
            Fault(kind="corrupt_message", src=2, dst=3, seed=9),
            Fault(kind="delay_link", src=1, dst=0, delay=1e-4),
        ),
        seed=17,
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_fault_validation_rejects_nonsense():
    with pytest.raises(ValueError):
        Fault(kind="explode_node")
    with pytest.raises(ValueError):
        Fault(kind="kill_rank", rank=0)  # neither a call nor a round
    with pytest.raises(ValueError):
        Fault(kind="delay_link", src=0, dst=1)  # no delay


def test_corruption_is_seeded_and_deterministic():
    fault = Fault(kind="corrupt_message", src=0, dst=1, seed=5)
    data = bytes(range(64))
    once = _corrupt(data, 3, fault)
    again = _corrupt(data, 3, fault)
    assert once == again, "same seed must corrupt identically"
    assert once != data, "corruption must change the payload"
    assert len(once) == len(data)
    assert _corrupt(data, 4, fault) != once, "plan seed must matter"


# --------------------------------------------------------------- fault firing


def test_kill_rank_at_call_tears_down_run(session):
    plan = FaultPlan(
        faults=(Fault(kind="kill_rank", rank=1, call="MPI_Allreduce", call_index=0),))
    with inject_faults(plan) as active:
        with pytest.raises(RankFailedError) as excinfo:
            session.run("allreduce", 4)
    err = excinfo.value
    assert err.rank == 1
    assert isinstance(_injected_cause(err), InjectedFault)
    assert active.fired and active.fired[0]["kind"] == "kill_rank"
    # The failure carries the post-mortem attachments (satellite 1): every
    # rank's clock, the survivor teardown states, and a metrics snapshot.
    assert len(err.rank_clocks) == 4
    survivor_states = {r: s for r, s in err.rank_states.items() if r != 1}
    assert all(s in (RankState.TORN_DOWN, RankState.DONE)
               for s in survivor_states.values())
    assert err.rank_states[1] is RankState.FAILED
    assert "counters" in err.metrics_snapshot


def test_kill_rank_at_schedule_round(session):
    plan = FaultPlan(faults=(Fault(kind="kill_rank", rank=0, round=1),))
    with inject_faults(plan) as active:
        with pytest.raises(RankFailedError) as excinfo:
            session.run("allreduce", 4)
    assert excinfo.value.rank == 0
    assert active.fired and active.fired[0]["round"] == 1


def test_faults_fire_once_and_disarmed_faults_stay_dark(session):
    plan = FaultPlan(
        faults=(Fault(kind="kill_rank", rank=1, call="MPI_Allreduce", call_index=0),))
    with inject_faults(plan, disarmed=[0]) as active:
        job = session.run("allreduce", 2)
    assert active.fired == []
    assert job.exit_codes() == [0, 0]


def test_drop_message_starves_the_receiver():
    plan = FaultPlan(faults=(Fault(kind="drop_message", src=0, dst=1),))

    def program(rt, ctx):
        buf = np.full(4, 7, dtype=np.int32)
        if ctx.rank == 0:
            rt.send(buf, 4, datatypes.INT, dest=1, tag=0)
            return "sent"
        rt.recv(buf, 4, datatypes.INT, source=0, tag=0)
        return "received"  # pragma: no cover - the payload never arrives

    with inject_faults(plan) as active:
        with pytest.raises((DeadlockError, RankFailedError)):
            run_mpi_program(program, 2)
    assert active.fired and active.fired[0]["kind"] == "drop_message"


def test_corrupt_message_flips_received_bytes():
    def program(rt, ctx):
        buf = np.arange(16, dtype=np.int32)
        if ctx.rank == 0:
            rt.send(buf, 16, datatypes.INT, dest=1, tag=0)
            return buf.tolist()
        recv = np.zeros(16, dtype=np.int32)
        rt.recv(recv, 16, datatypes.INT, source=0, tag=0)
        return recv.tolist()

    clean = run_mpi_program(program, 2)
    plan = FaultPlan(faults=(Fault(kind="corrupt_message", src=0, dst=1),), seed=3)
    with inject_faults(plan) as active:
        corrupted = run_mpi_program(program, 2)
    assert active.fired and active.fired[0]["kind"] == "corrupt_message"
    assert corrupted[1] != clean[1], "receiver must observe corrupted bytes"
    assert corrupted[0] == clean[0], "sender's buffer is untouched"


def test_delay_link_shifts_arrival_time():
    def program(rt, ctx):
        buf = np.zeros(1, dtype=np.int32)
        if ctx.rank == 0:
            rt.send(buf, 1, datatypes.INT, dest=1, tag=0)
            return 0.0
        rt.recv(buf, 1, datatypes.INT, source=0, tag=0)
        return ctx.now

    clean = run_mpi_program(program, 2)
    delay = 1.25e-3
    plan = FaultPlan(faults=(Fault(kind="delay_link", src=0, dst=1, delay=delay),))
    with inject_faults(plan) as active:
        delayed = run_mpi_program(program, 2)
    assert active.fired and active.fired[0]["kind"] == "delay_link"
    assert delayed[1] == pytest.approx(clean[1] + delay)


# ------------------------------------------------------------------- recovery


def test_recovery_replays_bit_for_bit(session):
    baseline = session.run("allreduce", 4)
    plan = FaultPlan(
        faults=(Fault(kind="kill_rank", rank=1, call="MPI_Allreduce", call_index=2),))
    result = run_with_recovery("allreduce", 4, plan=plan, session=session)
    assert result.recovered and result.attempts == 2
    assert len(result.fired) == 1
    assert result.failures[0]["injected"] is True
    # Deterministic replay: the recovered run is indistinguishable from a
    # run that never saw the fault.
    assert result.job.makespan == baseline.makespan
    assert result.job.exit_codes() == baseline.exit_codes()
    assert result.job.return_values() == baseline.return_values()
    counters = result.job.metrics.counters()
    assert counters["fault.injected"] == 1
    assert counters["fault.restarts"] == 1
    assert counters["fault.recovered"] == 1


def test_recovery_budget_exhaustion_reraises(session):
    plan = FaultPlan(
        faults=(Fault(kind="kill_rank", rank=0, call="MPI_Allreduce", call_index=0),))
    with pytest.raises(RankFailedError):
        run_with_recovery("allreduce", 2, plan=plan, max_restarts=0, session=session)


def test_recovery_never_masks_genuine_failures(session):
    def main(api, args):
        api.mpi_init()
        if api.rank() == 0:
            raise RuntimeError("genuine bug, not an injection")
        api.mpi_finalize()
        return 0

    program = GuestProgram(name="genuine-failure", main=main)
    with pytest.raises(RankFailedError) as excinfo:
        run_with_recovery(program, 2, plan=FaultPlan(), session=session)
    assert _injected_cause(excinfo.value) is None


# ------------------------------------------------------------ ULFM primitives


def test_ulfm_revoke_shrink_agree_continue_on_survivors():
    nranks, victim = 4, 2

    def program(rt, ctx):
        if ctx.rank == victim:
            recover.mark_failed(rt)
            recover.revoke(rt)
            return "left"
        # Survivors: wait for the revocation to become visible, shrink the
        # world to the survivor communicator, and keep computing on it.
        for _ in range(10_000):
            if recover.is_revoked(rt):
                break
            ctx.advance(rt.wtick())
            ctx.yield_turn()
        assert recover.is_revoked(rt)
        failed = recover.failed_ranks(rt)
        assert failed == {victim}
        shrunk = recover.shrink(rt.comm_world, failed)
        assert rt.comm_size(shrunk) == nranks - 1
        send = np.array([ctx.rank + 1], dtype=np.int64)
        out = np.zeros(1, dtype=np.int64)
        rt.allreduce(send, out, 1, datatypes.LONG, ops.SUM, comm=shrunk)
        agreed = recover.agree(rt, shrunk, True, failed=failed)
        return (int(out[0]), agreed)

    results = run_mpi_program(program, nranks)
    survivor_sum = sum(r + 1 for r in range(nranks) if r != victim)
    for rank, result in enumerate(results):
        if rank == victim:
            assert result == "left"
        else:
            assert result == (survivor_sum, True)


def test_shrink_is_deterministic_and_rejects_empty_survivors():
    from repro.mpi.communicator import world_communicator
    from repro.mpi.errors import MPIError

    world = world_communicator(4)
    once = recover.shrink(world, {1})
    again = recover.shrink(world, {1})
    assert once.context_id == again.context_id
    assert once.group.world_ranks == (0, 2, 3)
    assert once.context_id != world.context_id
    with pytest.raises(MPIError):
        recover.shrink(world, {0, 1, 2, 3})


# ------------------------------------------------------------- engine teardown


def test_engine_tears_down_blocked_survivors():
    engine = SimEngine(3)

    def make(rank):
        def main(ctx):
            if ctx.rank == 1:
                ctx.advance(1.0)
                raise ValueError("rank 1 exploded")
            ctx.block("waiting forever")
            return "unreachable"  # pragma: no cover

        return main

    engine.spawn_all(make)
    with pytest.raises(RankFailedError) as excinfo:
        engine.run()
    err = excinfo.value
    assert err.rank == 1
    assert isinstance(err.original, ValueError)
    assert len(err.rank_clocks) == 3
    assert err.rank_states[0] is RankState.TORN_DOWN
    assert err.rank_states[1] is RankState.FAILED
    assert err.rank_states[2] is RankState.TORN_DOWN


def test_teardown_cannot_be_swallowed_by_guest_except():
    engine = SimEngine(2)

    def make(rank):
        def main(ctx):
            if ctx.rank == 0:
                try:
                    ctx.block("forever")
                except Exception:  # noqa: BLE001 - the point of the test
                    return "caught"  # pragma: no cover - must never happen
                return "fell through"  # pragma: no cover
            ctx.advance(0.5)
            raise RuntimeError("die")

        return main

    engine.spawn_all(make)
    with pytest.raises(RankFailedError) as excinfo:
        engine.run()
    assert excinfo.value.rank == 1
    # The blocked rank was unwound via the uncatchable teardown signal, not
    # resumed through its except handler.
    assert excinfo.value.rank_states[0] is RankState.TORN_DOWN
