"""Tests for the Wasm substrate: values, encoding, builder, validation, memory."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.wasm import (
    FuncType,
    Limits,
    MemoryType,
    Module,
    ModuleBuilder,
    ValType,
    decode_module,
    encode_module,
    module_to_wat,
    validate_module,
)
from repro.wasm import values as V
from repro.wasm.builder import BuildError
from repro.wasm.decoder import DecodeError, _Reader
from repro.wasm.encoder import encode_s32, encode_s64, encode_u32
from repro.wasm.errors import (
    IntegerDivideByZeroTrap,
    IntegerOverflowTrap,
    MemoryOutOfBoundsTrap,
    ValidationError,
    WasmError,
)
from repro.wasm.instructions import make
from repro.wasm.memory import PAGE_SIZE, LinearMemory
from repro.wasm.opcodes import count as opcode_count, info


# ----------------------------------------------------------------------- values


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
@settings(max_examples=200, deadline=None)
def test_signed32_roundtrip(x):
    assert V.signed32(V.wrap32(x)) == x


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
@settings(max_examples=200, deadline=None)
def test_signed64_roundtrip(x):
    assert V.signed64(V.wrap64(x)) == x


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_div_rem_identity_u32(a, b):
    if b == 0:
        with pytest.raises(IntegerDivideByZeroTrap):
            V.div_u(a, b, 32)
    else:
        q = V.div_u(a, b, 32)
        r = V.rem_u(a, b, 32)
        assert q * b + r == a


def test_div_s_overflow_traps():
    with pytest.raises(IntegerOverflowTrap):
        V.div_s(0x80000000, 0xFFFFFFFF, 32)  # INT_MIN / -1


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=100))
@settings(max_examples=100, deadline=None)
def test_rotl_rotr_inverse(a, b):
    assert V.rotr(V.rotl(a, b, 32), b, 32) == a


def test_clz_ctz_popcnt():
    assert V.clz(1, 32) == 31
    assert V.clz(0, 32) == 32
    assert V.ctz(0b1000, 32) == 3
    assert V.ctz(0, 64) == 64
    assert V.popcnt(0xFF00FF00, 32) == 16


def test_trunc_traps_on_nan_and_overflow():
    with pytest.raises(IntegerOverflowTrap):
        V.trunc_to_int(float("nan"), 32, True)
    with pytest.raises(IntegerOverflowTrap):
        V.trunc_to_int(1e20, 32, True)
    assert V.trunc_to_int(-3.7, 32, True) == V.wrap32(-3)


def test_nearest_ties_to_even():
    assert V.nearest(2.5) == 2.0
    assert V.nearest(3.5) == 4.0
    assert V.nearest(-0.5) == -0.0


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
@settings(max_examples=100, deadline=None)
def test_f32_reinterpret_roundtrip(x):
    assert V.reinterpret_i32_to_f32(V.reinterpret_f32_to_i32(x)) == pytest.approx(x, nan_ok=True) or x != x


def test_float_min_max_zero_signs():
    assert str(V.float_min(0.0, -0.0)) == "-0.0"
    assert str(V.float_max(-0.0, 0.0)) == "0.0"


# ----------------------------------------------------------------------- LEB128


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=200, deadline=None)
def test_uleb_roundtrip(x):
    assert _Reader(encode_u32(x)).u32() == x


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
@settings(max_examples=200, deadline=None)
def test_sleb32_roundtrip(x):
    assert _Reader(encode_s32(x)).s32() == x


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
@settings(max_examples=200, deadline=None)
def test_sleb64_roundtrip(x):
    assert _Reader(encode_s64(x)).s64() == x


# --------------------------------------------------------------------- opcodes


def test_opcode_table_sanity():
    assert opcode_count() > 180
    assert info("i32.add").opcode == 0x6A
    assert info(0x6A).name == "i32.add"
    assert info("f64x2.mul").is_simd
    with pytest.raises(KeyError):
        info("i128.add")


# ----------------------------------------------------------------------- memory


def test_linear_memory_bounds_checks():
    mem = LinearMemory(MemoryType(Limits(1, 2)))
    assert mem.size == PAGE_SIZE
    mem.store_int(0, 0xDEADBEEF, 4)
    assert mem.load_int(0, 4) == 0xDEADBEEF
    with pytest.raises(MemoryOutOfBoundsTrap):
        mem.read(PAGE_SIZE - 2, 4)
    with pytest.raises(MemoryOutOfBoundsTrap):
        mem.write(-1, b"x")


def test_linear_memory_grow_respects_maximum():
    mem = LinearMemory(MemoryType(Limits(1, 2)))
    assert mem.grow(1) == 1
    assert mem.pages == 2
    assert mem.grow(1) == -1  # beyond the maximum
    assert mem.grow(-1) == -1


def test_linear_memory_zero_copy_view():
    mem = LinearMemory(MemoryType(Limits(1)))
    view = mem.view(100, 8)
    view[:] = b"ABCDEFGH"
    assert mem.read(100, 8) == b"ABCDEFGH"
    arr = mem.ndarray(100, 2, "int32")
    arr[0] = 7
    assert mem.load_int(100, 4) == 7


def test_linear_memory_float_and_string_access():
    mem = LinearMemory(MemoryType(Limits(1)))
    mem.store_f64(8, 2.5)
    assert mem.load_f64(8) == 2.5
    mem.store_f32(16, 1.5)
    assert mem.load_f32(16) == 1.5
    n = mem.write_cstring(64, "hello")
    assert n == 6
    assert mem.read_cstring(64) == "hello"


# ---------------------------------------------------------------------- builder


def _simple_module() -> Module:
    mb = ModuleBuilder(name="unit")
    mb.add_memory(1)
    mb.add_global("g", "i32", 5)
    mb.add_data(64, b"hi")
    f = mb.function("addg", params=[("x", "i32")], results=["i32"], export=True)
    f.get("x").emit("global.get", "g").emit("i32.add")
    return mb.build()


def test_builder_produces_valid_module():
    module = _simple_module()
    validate_module(module)
    assert module.export_by_name("addg") is not None
    assert module.export_by_name("memory") is not None
    assert module.summary()["functions"] == 1


def test_builder_rejects_duplicate_names_and_unknown_refs():
    mb = ModuleBuilder()
    mb.function("f")
    with pytest.raises(BuildError):
        mb.function("f")
    g = mb.function("g")
    g.call("nonexistent")
    with pytest.raises(BuildError):
        mb.build()
    mb2 = ModuleBuilder()
    mb2.add_memory(1)
    with pytest.raises(BuildError):
        mb2.add_memory(1)


def test_builder_local_management():
    mb = ModuleBuilder()
    f = mb.function("f", params=[("a", "i32")])
    idx = f.add_local("tmp", "f64")
    assert idx == 1
    with pytest.raises(BuildError):
        f.add_local("tmp", "f64")
    with pytest.raises(BuildError):
        f.get("missing")


# ------------------------------------------------------------------- round trip


def test_encode_decode_roundtrip_preserves_structure():
    module = _simple_module()
    data = encode_module(module)
    assert data[:4] == b"\x00asm"
    decoded = decode_module(data)
    validate_module(decoded)
    assert decoded.summary()["functions"] == module.summary()["functions"]
    assert [e.name for e in decoded.exports] == [e.name for e in module.exports]
    assert decoded.functions[0].body[-1].name == module.functions[0].body[-1].name
    assert decoded.data[0].data == b"hi"
    # Round-tripping again is byte-stable.
    assert encode_module(decoded) == data


def test_decoder_rejects_garbage():
    with pytest.raises(DecodeError):
        decode_module(b"not a wasm module")
    with pytest.raises(DecodeError):
        decode_module(b"\x00asm\x02\x00\x00\x00")


@given(st.integers(min_value=-100, max_value=100), st.integers(min_value=0, max_value=7))
@settings(max_examples=50, deadline=None)
def test_instruction_roundtrip_through_binary(const_value, local_index):
    mb = ModuleBuilder()
    mb.add_memory(1)
    f = mb.function("f", params=[("a", "i32")] * (local_index + 1), results=["i32"], export=True)
    f.i32_const(const_value).get(local_index).emit("i32.add")
    module = mb.build()
    decoded = decode_module(encode_module(module))
    body = decoded.functions[0].body
    assert body[0].operands[0] == const_value
    assert body[1].operands[0] == local_index


# ------------------------------------------------------------------------- WAT


def test_wat_rendering_mentions_key_constructs():
    module = _simple_module()
    wat = module_to_wat(module)
    assert wat.startswith("(module")
    assert '(export "addg"' in wat
    assert "i32.add" in wat
    assert "(memory" in wat


# ------------------------------------------------------------------ validation


def test_validator_rejects_type_mismatch():
    mb = ModuleBuilder()
    f = mb.function("bad", results=["i32"])
    f.f64_const(1.0)  # f64 left on the stack where an i32 result is required
    with pytest.raises(ValidationError):
        validate_module(mb.build())


def test_validator_rejects_stack_underflow():
    mb = ModuleBuilder()
    f = mb.function("bad")
    f.emit("i32.add")
    with pytest.raises(ValidationError):
        validate_module(mb.build())


def test_validator_rejects_bad_local_and_branch_depth():
    mb = ModuleBuilder()
    f = mb.function("bad")
    f.emit("local.get", 3)
    with pytest.raises(ValidationError):
        validate_module(mb.build())

    mb2 = ModuleBuilder()
    g = mb2.function("bad2")
    g.emit("br", 4)
    with pytest.raises(ValidationError):
        validate_module(mb2.build())


def test_validator_rejects_memory_ops_without_memory():
    mb = ModuleBuilder()
    f = mb.function("bad", results=["i32"])
    f.i32_const(0).load("i32.load")
    with pytest.raises(ValidationError):
        validate_module(mb.build())


def test_validator_accepts_unreachable_code():
    mb = ModuleBuilder()
    f = mb.function("ok", results=["i32"])
    f.emit("unreachable")
    f.emit("i32.add")  # dead code after unreachable is allowed to be polymorphic
    validate_module(mb.build())


def test_validator_rejects_duplicate_exports():
    module = _simple_module()
    module.exports.append(module.exports[0])
    with pytest.raises(ValidationError):
        validate_module(module)


def test_functype_wat_and_valtype_helpers():
    ft = FuncType.of(["i32", "f64"], ["i32"])
    assert ft.wat() == "(param i32 f64) (result i32)"
    assert ValType.from_byte(0x7F) is ValType.I32
    with pytest.raises(ValueError):
        ValType.from_byte(0x00)


# ----------------------------------------- untrusted-bytes decode hardening

import random as _random  # noqa: E402

from repro.wasm.decoder import MAX_FUNCTION_LOCALS  # noqa: E402


def _fuzz_corpus_modules():
    """Small seeded builder modules covering every binary section kind."""
    modules = []
    for seed in (11, 29, 47):
        rng = _random.Random(seed)
        mb = ModuleBuilder(name=f"harden-{seed}")
        mb.add_memory(1)
        mb.add_data(0, bytes(rng.randrange(256) for _ in range(16)))
        g = mb.add_global("counter", "i32", rng.randrange(-100, 100), mutable=True)
        f = mb.function("work", params=[("a", "i32"), ("b", "i32")],
                        results=["i32"], export=True)
        f.add_local("t", "i32")
        for _ in range(rng.randrange(3, 7)):
            f.get(rng.choice(("a", "b")))
            f.i32_const(rng.randrange(-1000, 1000))
            f.emit(rng.choice(("i32.add", "i32.sub", "i32.mul", "i32.xor")))
            f.set("t")
        f.i32_const(rng.randrange(0, 64) * 4)
        f.get("t")
        f.store("i32.store")
        f.get("t")
        f.get_global(g) if hasattr(f, "get_global") else f.emit("drop")
        modules.append(mb.build())
    return modules


def test_decode_error_is_a_typed_wasm_error():
    assert issubclass(DecodeError, WasmError)
    assert issubclass(DecodeError, ValueError)  # backwards compatibility


@pytest.mark.parametrize("module", _fuzz_corpus_modules(),
                         ids=lambda m: m.name or "m")
def test_truncation_fuzz_raises_only_typed_errors(module):
    """Every truncation of a valid module either decodes (a prefix can be a
    complete smaller module) or raises a typed WasmError -- never a raw
    struct.error / IndexError / KeyError."""
    data = encode_module(module)
    decode_module(data)  # the full module must decode
    for cut in range(len(data)):
        truncated = data[:cut]
        try:
            decoded = decode_module(truncated)
        except WasmError:
            continue
        # A truncation that still decodes must also survive validation
        # without leaking low-level exceptions.
        try:
            validate_module(decoded)
        except WasmError:
            pass


@pytest.mark.parametrize("module", _fuzz_corpus_modules(),
                         ids=lambda m: m.name or "m")
def test_mutation_fuzz_raises_only_typed_errors(module):
    """Seeded random byte flips: garbage input must never escape the
    WasmError family from decode or validation."""
    data = bytearray(encode_module(module))
    rng = _random.Random(0xF00D ^ len(data))
    for _trial in range(300):
        mutated = bytearray(data)
        for _ in range(rng.randrange(1, 4)):
            mutated[rng.randrange(8, len(mutated))] = rng.randrange(256)
        try:
            decoded = decode_module(bytes(mutated))
            validate_module(decoded)
        except WasmError:
            continue


def test_decoder_rejects_oversized_section_and_locals():
    # Section declaring more bytes than the stream holds.
    with pytest.raises(DecodeError):
        decode_module(b"\x00asm\x01\x00\x00\x00" + b"\x01\x7f\x01")
    # Hostile locals count: one entry declaring ~2^32 i32 locals must be
    # rejected by the MAX_FUNCTION_LOCALS bound, not attempted as an
    # allocation.
    mb = ModuleBuilder()
    f = mb.function("f", results=["i32"])
    f.i32_const(1)
    data = bytearray(encode_module(mb.build()))
    # Locate the code section (id 10) and rewrite its single body to declare
    # a huge run of locals: body = [locals_vec_len=1, (n=0xFFFFFFFF, i32)].
    idx = data.index(b"\x0a", 8)
    huge = b"\x01" + b"\xff\xff\xff\xff\x0f" + b"\x7f"  # 1 entry, n=2^32-1, i32
    body = huge + b"\x41\x01\x0b"                        # i32.const 1; end
    code = b"\x01" + bytes([len(body)]) + body           # 1 function
    data[idx:] = b"\x0a" + bytes([len(code)]) + code
    with pytest.raises(DecodeError) as excinfo:
        decode_module(bytes(data))
    assert str(MAX_FUNCTION_LOCALS) in str(excinfo.value)
