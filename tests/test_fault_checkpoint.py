"""Tests for :mod:`repro.fault.checkpoint` and the checkpoint analyzer.

Covers the snapshot file format (content digest, atomic publish, load-time
verification), the digest-validated deterministic-replay restore path --
including the acceptance round-trip: checkpoint at a seeded-random round,
restore in a *fresh process*, and compare bit-for-bit against the
uninterrupted run on both the singlepass and cranelift back-ends -- the
quiescent write-back restore of instance state, and the static
``analyze checkpoint`` document verifier.
"""

from __future__ import annotations

import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.session import Session
from repro.fault import (
    Checkpoint,
    capture_checkpoint,
    job_descriptor,
    load_checkpoint,
    resume_from_checkpoint,
)
from repro.fault.checkpoint import (
    CheckpointError,
    CheckpointStateMismatch,
    capture_instance_state,
    content_digest,
    restore_instance_state,
    write_checkpoint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture()
def session():
    with Session(backend="cranelift", machine="graviton2") as s:
        yield s


def _capture_payload(session, nranks=2, at_round=1, backend="cranelift"):
    job = job_descriptor("allreduce", nranks, backend=backend, machine="graviton2")
    with capture_checkpoint(at_round, job=job) as capture:
        session.run("allreduce", nranks)
    return capture.build()


def _oracle(job) -> dict:
    return {
        "makespan": job.makespan,
        "exit_codes": job.exit_codes(),
        "rows": job.return_values()[0]["rows"],
    }


# ---------------------------------------------------------------- file format


def test_capture_write_load_round_trip(session, tmp_path):
    payload = _capture_payload(session, nranks=2, at_round=1)
    path = write_checkpoint(payload, tmp_path / "run.ckpt.json")
    ckpt = load_checkpoint(path)
    assert ckpt.at_round == 1
    assert ckpt.nranks == 2
    assert ckpt.job["benchmark"] == "allreduce"
    for rank in range(2):
        state = ckpt.rank_state(rank)
        assert state is not None
        assert state["round_crossing"] == 1
        assert state["executor"]["pc"] >= 0
        guest = state["guest"]
        assert guest["memory_pages"] > 0
        assert guest["memory_b64"] is not None
        assert guest["memory_digest"]


def test_tampered_checkpoint_is_rejected(session, tmp_path):
    path = write_checkpoint(_capture_payload(session), tmp_path / "t.ckpt.json")
    doc = json.loads(path.read_text())
    doc["ranks"][0]["clock"] += 1.0  # bit-flip after publish
    path.write_text(json.dumps(doc))
    with pytest.raises(CheckpointError, match="digest mismatch"):
        load_checkpoint(path)


def test_load_rejects_foreign_and_future_documents(tmp_path):
    alien = tmp_path / "alien.json"
    alien.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(CheckpointError, match="not a"):
        load_checkpoint(alien)
    future = {"format": "repro.fault.checkpoint", "version": 99}
    future["digest"] = content_digest(future)
    path = tmp_path / "future.ckpt.json"
    path.write_text(json.dumps(future))
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(path)


def test_write_is_atomic_no_tmp_residue(session, tmp_path):
    write_checkpoint(_capture_payload(session), tmp_path / "a.ckpt.json")
    leftovers = [p for p in tmp_path.iterdir() if p.name != "a.ckpt.json"]
    assert leftovers == []


# -------------------------------------------------------------------- restore


def test_resume_in_process_matches_uninterrupted_run(session):
    baseline = session.run("allreduce", 2)
    ckpt = Checkpoint(_capture_payload(session))
    resumed = resume_from_checkpoint(ckpt, session=session)
    assert _oracle(resumed) == _oracle(baseline)


def test_resume_detects_state_divergence(session):
    payload = _capture_payload(session)
    payload["ranks"][0]["clock"] += 0.5  # pretend the past was different
    with pytest.raises(CheckpointStateMismatch, match="clock diverged"):
        resume_from_checkpoint(Checkpoint(payload), session=session)


def test_resume_detects_unreachable_round(session):
    payload = _capture_payload(session)
    payload["at_round"] = 10_000  # the replay can never cross this boundary
    with pytest.raises(CheckpointStateMismatch, match="never reached"):
        resume_from_checkpoint(Checkpoint(payload), session=session)


def test_resume_requires_a_job_descriptor(session):
    payload = _capture_payload(session)
    payload["job"] = None
    with pytest.raises(CheckpointError, match="no job descriptor"):
        resume_from_checkpoint(Checkpoint(payload), session=session)


_RESUME_SCRIPT = """\
import json, sys
from repro.api.session import Session
from repro.fault import resume_from_checkpoint

with Session() as session:
    job = resume_from_checkpoint(sys.argv[1], session=session)
print(json.dumps({
    "makespan": job.makespan,
    "exit_codes": job.exit_codes(),
    "rows": job.return_values()[0]["rows"],
}))
"""


@pytest.mark.parametrize("backend", ["singlepass", "cranelift"])
def test_round_trip_restores_bit_for_bit_in_fresh_process(backend, tmp_path):
    with Session(backend=backend, machine="graviton2") as session:
        baseline = session.run("allreduce", 2)
        # Pick the checkpoint round at random (seeded) among the boundaries
        # every rank actually crosses, probed from a throwaway capture.
        with capture_checkpoint(0) as probe:
            session.run("allreduce", 2)
        crossings = min(probe._round_counts.values())
        at_round = random.Random(0xC0FFEE).randrange(crossings)
        job = job_descriptor("allreduce", 2, backend=backend, machine="graviton2")
        with capture_checkpoint(at_round, job=job) as capture:
            session.run("allreduce", 2)
        path = capture.write(tmp_path / f"{backend}.ckpt.json")
    proc = subprocess.run(
        [sys.executable, "-c", _RESUME_SCRIPT, str(path)],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    # Round-trip the oracle through JSON too: row keys stringify, the float
    # timings themselves must survive bit-for-bit.
    expected = json.loads(json.dumps(_oracle(baseline)))
    assert json.loads(proc.stdout.strip().splitlines()[-1]) == expected


# ---------------------------------------------------------- write-back restore


def _snapshot_module():
    from repro.wasm import ImportObject, Instance, ModuleBuilder, validate_module

    mb = ModuleBuilder(name="ckpt-writeback")
    mb.add_memory(1)
    mb.add_global("counter", "i32", 0)
    poke = mb.function("poke", params=[("addr", "i32"), ("v", "i32")],
                       results=[], export=True)
    poke.get("addr").get("v").store("i32.store")
    peek = mb.function("peek", params=[("addr", "i32")], results=["i32"], export=True)
    peek.get("addr").load("i32.load")
    bump = mb.function("bump", params=[], results=["i32"], export=True)
    bump.emit("global.get", "counter").i32_const(1).emit("i32.add")
    bump.emit("global.set", "counter")
    bump.emit("global.get", "counter")
    module = mb.build()
    validate_module(module)
    return lambda: Instance(module, ImportObject())


def test_instance_write_back_restore():
    make = _snapshot_module()
    source = make()
    source.invoke("poke", 128, 0xBEEF)
    source.invoke("bump")
    source.invoke("bump")
    state = capture_instance_state(source)

    target = make()
    assert target.invoke("peek", 128) == [0]
    restore_instance_state(target, state)
    assert target.invoke("peek", 128) == [0xBEEF]
    assert target.invoke("bump") == [3], "restored global continues from 2"


def test_write_back_rejects_mismatched_shapes():
    make = _snapshot_module()
    state = capture_instance_state(make())
    target = make()
    bad_globals = dict(state, globals=[0, 1, 2])
    with pytest.raises(CheckpointError, match="globals"):
        restore_instance_state(target, bad_globals)
    shrunk = dict(state, memory_pages=0)
    with pytest.raises(CheckpointError):
        restore_instance_state(target, shrunk)


def test_digest_only_snapshot_skips_memory_write_back():
    make = _snapshot_module()
    source = make()
    source.invoke("poke", 64, 7)
    state = capture_instance_state(source, include_memory=False)
    assert state["memory_b64"] is None
    target = make()
    restore_instance_state(target, state)  # globals/tables only, no error
    assert target.invoke("peek", 64) == [0]


# ------------------------------------------------------------ static analyzer


def test_analyze_checkpoint_accepts_good_snapshot(session, tmp_path, capsys):
    from repro.analysis.cli import main as analyze_main

    path = write_checkpoint(_capture_payload(session), tmp_path / "ok.ckpt.json")
    assert analyze_main(["checkpoint", str(path)]) == 0
    capsys.readouterr()
    assert analyze_main(["checkpoint", str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True


def test_analyze_checkpoint_flags_corruption(session, tmp_path, capsys):
    from repro.analysis.cli import main as analyze_main

    payload = _capture_payload(session)
    payload["ranks"][0]["executor"]["pc"] = -5
    payload["ranks"][1]["guest"]["memory_b64"] = "!!! not base64 !!!"
    doc = dict(payload)
    doc["digest"] = "0" * 32
    path = tmp_path / "bad.ckpt.json"
    path.write_text(json.dumps(doc))
    rc = analyze_main(["checkpoint", str(path)])
    out = capsys.readouterr().out
    assert rc != 0
    assert "digest-mismatch" in out
    assert "pc-out-of-bounds" in out
    assert "bad-memory-image" in out


def test_harness_mounts_analyze_checkpoint(session, tmp_path):
    from repro.harness.cli import main as harness_main

    path = write_checkpoint(_capture_payload(session), tmp_path / "h.ckpt.json")
    assert harness_main(["analyze", "checkpoint", str(path)]) == 0
