"""Differential fuzzing: the three back-ends agree bit-for-bit on the new IR.

Generates small random (seeded, fully deterministic) arithmetic/control-flow
modules through :mod:`repro.wasm.builder`, runs them under Singlepass,
Cranelift and LLVM, and asserts identical results.  The generator emits by
construction-valid, trap-free code (no division/truncation), so any
divergence is a genuine lowering or code-generation bug.

Two extra corpora cover the PR-7 surface: v128 lane modules (splat, lane
arithmetic/comparisons, extract/replace lane) and bulk-memory modules
(``memory.copy``/``memory.fill``, including overlapping ranges).  Those are
additionally executed under the plain interpreter with a *mined* fusion
table applied, so profile-guided superinstructions are in the bit-for-bit
contract too.
"""

from __future__ import annotations

import random

import pytest

from repro.wasm import ImportObject, Instance, ModuleBuilder, validate_module
from repro.wasm.compilers import get_backend
from repro.wasm.interpreter import Interpreter
from repro.wasm.lowering import (
    apply_fusion_table,
    lower_module,
    mine_superinstructions,
)

BACKENDS = ("singlepass", "cranelift", "llvm")

#: Trap-free i32 binary operators the generator draws from.
_BINARY = (
    "i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or", "i32.xor",
    "i32.shl", "i32.shr_u", "i32.shr_s", "i32.rotl", "i32.rotr",
    "i32.eq", "i32.ne", "i32.lt_s", "i32.lt_u", "i32.gt_s", "i32.gt_u",
    "i32.le_s", "i32.ge_u",
)

#: Trap-free i32 unary operators.
_UNARY = ("i32.clz", "i32.ctz", "i32.popcnt", "i32.eqz", "i32.extend8_s", "i32.extend16_s")

_LOCALS = ("v0", "v1", "v2", "v3")


class _ModuleFuzzer:
    """Emits one random function body through a FunctionBuilder."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.mb = ModuleBuilder(name=f"fuzz-{seed}")
        self.mb.add_memory(1)
        self.f = self.mb.function(
            "fuzz", params=[("a", "i32"), ("b", "i32")], results=["i32"], export=True
        )
        for name in _LOCALS:
            self.f.add_local(name, "i32")
        self.f.add_local("loop_i", "i32")
        self.f.add_local("loop_end", "i32")

    # ---------------------------------------------------------- expressions

    def expr(self, depth: int) -> None:
        """Emit instructions leaving exactly one i32 on the stack."""
        rng = self.rng
        if depth <= 0:
            kind = rng.randrange(3)
        else:
            kind = rng.randrange(5)
        if kind == 0:
            self.f.i32_const(rng.randrange(-(2**31), 2**31))
        elif kind == 1:
            self.f.get(rng.choice(("a", "b")))
        elif kind == 2:
            self.f.get(rng.choice(_LOCALS))
        elif kind == 3:
            self.expr(depth - 1)
            self.f.emit(rng.choice(_UNARY))
        else:
            self.expr(depth - 1)
            self.expr(depth - 1)
            self.f.emit(rng.choice(_BINARY))

    # ----------------------------------------------------------- statements

    def stmt(self, allow_loop: bool = True) -> None:
        rng = self.rng
        kind = rng.randrange(5 if allow_loop else 4)
        if kind == 0:
            self.expr(2)
            self.f.set(rng.choice(_LOCALS))
        elif kind == 1:
            # if/else assigning different locals in each arm.
            self.expr(2)
            with self.f.if_():
                self.expr(1)
                self.f.set(rng.choice(_LOCALS))
                if rng.random() < 0.7:
                    self.f.else_()
                    self.expr(1)
                    self.f.set(rng.choice(_LOCALS))
        elif kind == 2:
            # Store to a fixed in-page address, load back into a local.
            addr = rng.randrange(0, 1024) * 4
            self.f.i32_const(addr)
            self.expr(1)
            self.f.store("i32.store")
            self.f.i32_const(addr)
            self.f.load("i32.load")
            self.f.set(rng.choice(_LOCALS))
        elif kind == 3:
            # block with a conditional early exit.
            with self.f.block():
                self.expr(1)
                self.f.br_if(0)
                self.expr(1)
                self.f.set(rng.choice(_LOCALS))
        else:
            # Bounded counted loop mutating a local each iteration.
            self.f.i32_const(rng.randrange(2, 6)).set("loop_end")
            with self.f.for_range("loop_i", end_local="loop_end"):
                for _ in range(rng.randrange(1, 3)):
                    self.stmt(allow_loop=False)

    def build(self):
        for _ in range(self.rng.randrange(4, 9)):
            self.stmt()
        # Fold everything observable into the result.
        self.f.get("a")
        for name in _LOCALS:
            self.f.get(name).emit("i32.xor")
        module = self.mb.build()
        validate_module(module)
        return module


@pytest.mark.parametrize("seed", range(12))
def test_backends_bit_for_bit_identical(seed):
    module = _ModuleFuzzer(seed).build()
    inputs = [(0, 0), (1, 2), (0xFFFFFFFF, 7), (123456789, 0x80000000), (2**31 - 1, 2**31)]
    results = {}
    for name in BACKENDS:
        backend = get_backend(name)
        compiled = backend.compile(module)
        instance = Instance(module, ImportObject(), executor=backend.executor_for(compiled))
        results[name] = [instance.invoke("fuzz", a, b) for a, b in inputs]
    assert results["singlepass"] == results["cranelift"] == results["llvm"], (
        f"seed {seed}: back-ends diverge: {results}"
    )


@pytest.mark.parametrize(
    "value", [float("inf"), float("-inf"), float("nan"), -0.0, 1.5e308, 6.25]
)
def test_non_finite_float_constants_agree(value):
    """repr() of inf/-inf/nan in generated code must still evaluate (LLVM)."""
    mb = ModuleBuilder(name="float-consts")
    f = mb.function("k", params=[("x", "f64")], results=["f64"], export=True)
    f.f64_const(value).get("x").emit("f64.add")
    module = mb.build()
    validate_module(module)
    results = []
    for name in BACKENDS:
        backend = get_backend(name)
        instance = Instance(module, ImportObject(),
                            executor=backend.executor_for(backend.compile(module)))
        [r] = instance.invoke("k", 1.0)
        results.append(r)
    # Compare by bit pattern so NaN results also count as equal.
    import struct as _struct

    bits = {_struct.pack("<d", r) for r in results}
    assert len(bits) == 1, f"backends diverge on f64.const {value!r}: {results}"


def _all_executor_results(module, export, inputs):
    """Results per executor: interpreter, interpreter+mined fusion, back-ends."""
    results = {}
    plain = lower_module(module)
    instance = Instance(module, ImportObject(), executor=Interpreter(lowered=plain))
    results["interpreter"] = [instance.invoke(export, *args) for args in inputs]

    fused = lower_module(module)
    table = mine_superinstructions(fused, min_occurrences=1)
    formed = apply_fusion_table(fused, table)
    instance = Instance(module, ImportObject(), executor=Interpreter(lowered=fused))
    results["interpreter+mined"] = [instance.invoke(export, *args) for args in inputs]

    for name in BACKENDS:
        backend = get_backend(name)
        compiled = backend.compile(module)
        instance = Instance(module, ImportObject(),
                            executor=backend.executor_for(compiled))
        results[name] = [instance.invoke(export, *args) for args in inputs]
    return results, formed


def _assert_all_agree(results, label):
    reference = results["interpreter"]
    for name, rows in results.items():
        assert rows == reference, (
            f"{label}: {name} diverges from the interpreter:\n"
            f"  {name}: {rows}\n  interpreter: {reference}"
        )


_V128_BIN = (
    "i32x4.add", "i32x4.sub", "i32x4.mul",
    "i32x4.eq", "i32x4.ne", "i32x4.lt_s", "i32x4.gt_u",
    "i32x4.le_s", "i32x4.ge_u",
    "v128.and", "v128.or", "v128.xor",
)

_V128_UN = ("i32x4.neg", "i32x4.abs", "v128.not")


def _v128_module(seed: int):
    """A seeded module mixing splats, lane ops and extract/replace lanes."""
    rng = random.Random(seed ^ 0x5E1F)
    mb = ModuleBuilder(name=f"v128-fuzz-{seed}")
    mb.add_memory(1)
    f = mb.function("vfuzz", params=[("a", "i32"), ("b", "i32")],
                    results=["i32"], export=True)
    f.add_local("x", "v128")
    f.add_local("y", "v128")
    f.get("a").emit("i32x4.splat").set("x")
    f.get("b").emit("i32x4.splat").set("y")
    for _ in range(rng.randrange(4, 9)):
        kind = rng.randrange(4)
        if kind == 0:
            f.get("x").get("y").emit(rng.choice(_V128_BIN)).set("x")
        elif kind == 1:
            f.get(rng.choice(("x", "y"))).emit(rng.choice(_V128_UN)).set("y")
        elif kind == 2:
            # Replace one lane of x with a scalar derived from a lane of y.
            f.get("x")
            f.get("y").emit("i32x4.extract_lane", rng.randrange(4))
            f.i32_const(rng.randrange(-(2**31), 2**31)).emit("i32.xor")
            f.emit("i32x4.replace_lane", rng.randrange(4))
            f.set("x")
        else:
            # Round-trip through linear memory (v128.store / v128.load).
            addr = rng.randrange(0, 256) * 16
            f.i32_const(addr).get("x").store("v128.store")
            f.i32_const(addr).load("v128.load").set("y")
    # Fold all four lanes of x into the scalar result.
    f.get("x").emit("i32x4.extract_lane", 0)
    for lane in (1, 2, 3):
        f.get("x").emit("i32x4.extract_lane", lane).emit("i32.xor")
    module = mb.build()
    validate_module(module)
    return module


@pytest.mark.parametrize("seed", range(8))
def test_v128_lane_modules_bit_for_bit(seed):
    module = _v128_module(seed)
    inputs = [(0, 0), (1, -1), (0x7FFFFFFF, 0x80000000), (123456789, 42)]
    results, _formed = _all_executor_results(module, "vfuzz", inputs)
    _assert_all_agree(results, f"v128 seed {seed}")


def _bulk_memory_module(seed: int):
    """A seeded module of fills, (overlapping) copies, and a checksum loop."""
    rng = random.Random(seed ^ 0xB17C)
    mb = ModuleBuilder(name=f"bulk-fuzz-{seed}")
    mb.add_memory(1)
    f = mb.function("blk", params=[("a", "i32"), ("b", "i32")],
                    results=["i32"], export=True)
    f.add_local("acc", "i32")
    f.add_local("i", "i32")
    f.add_local("end", "i32")
    for _ in range(rng.randrange(4, 8)):
        kind = rng.randrange(3)
        if kind == 0:
            # memory.fill: value comes from a parameter (low byte is used).
            dst = rng.randrange(0, 1024) * 4
            f.i32_const(dst).get(rng.choice(("a", "b")))
            f.i32_const(rng.randrange(0, 512)).emit("memory.fill")
        elif kind == 1:
            # memory.copy with ranges that may overlap in either direction.
            dst = rng.randrange(0, 1024) * 4
            src = rng.randrange(max(0, dst // 4 - 64), 1024) * 4
            f.i32_const(dst).i32_const(src)
            f.i32_const(rng.randrange(0, 512)).emit("memory.copy")
        else:
            # Seed some non-uniform bytes so copies move real data around.
            addr = rng.randrange(0, 1024) * 4
            f.i32_const(addr).get("a").get("b").emit("i32.xor")
            f.i32_const(rng.randrange(-(2**31), 2**31)).emit("i32.add")
            f.store("i32.store")
    # Order-sensitive checksum of the first 4 KiB: acc = rotl(acc, 1) ^ word.
    f.i32_const(1024).set("end")
    with f.for_range("i", end_local="end"):
        f.get("acc").i32_const(1).emit("i32.rotl")
        f.get("i").i32_const(2).emit("i32.shl").load("i32.load")
        f.emit("i32.xor").set("acc")
    f.get("acc")
    module = mb.build()
    validate_module(module)
    return module


@pytest.mark.parametrize("seed", range(8))
def test_bulk_memory_modules_bit_for_bit(seed):
    module = _bulk_memory_module(seed)
    inputs = [(0, 0), (0xAB, 0xCD), (0xFFFFFFFF, 1), (77, 0x12345678)]
    results, _formed = _all_executor_results(module, "blk", inputs)
    _assert_all_agree(results, f"bulk-memory seed {seed}")


def test_extended_corpus_forms_mined_chains():
    """The mined-fusion leg must actually fuse something across the corpus."""
    total = 0
    for seed in range(8):
        for module, export in ((_v128_module(seed), "vfuzz"),
                               (_bulk_memory_module(seed), "blk")):
            lowered = lower_module(module)
            table = mine_superinstructions(lowered, min_occurrences=1)
            total += apply_fusion_table(lowered, table)
    assert total > 0, "no mined superinstruction ever applied to the corpus"


def test_fuzz_corpus_exercises_superinstructions():
    """The corpus must actually cover the fused fast paths, not skirt them."""
    fused_kinds = set()
    for seed in range(12):
        module = _ModuleFuzzer(seed).build()
        for lowered in lower_module(module):
            fused_kinds.update(
                kind for kind, _imm in lowered.ops if kind.startswith("fused.")
            )
            fused_kinds.discard("fused.pad")
    assert "fused.get_get_cmp_br_if" in fused_kinds  # for_range exit checks
    assert any(k in fused_kinds for k in ("fused.get_get_bin", "fused.get_const_bin"))
