"""Tests of the repro.obs tracing/profiling subsystem.

Covers the recorder primitives (ring buffer, span stacks, enable/disable),
the Chrome trace-event exporter and validator, the interpreter profiling
hooks (including proof that the fused superinstruction handlers fire), and
the acceptance path: a traced campaign produces ONE merged, valid Chrome
trace with per-job lanes and per-rank spans whose schedule rounds nest
inside the owning MPI-call span.
"""

import json

import pytest

from repro.harness.campaign import CampaignSpec, run_campaign
from repro.obs import (
    InterpreterProfiler,
    TraceRecorder,
    merge_traces,
    profiling,
    to_chrome_trace,
    to_jsonl,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs import trace as trace_mod


# ---------------------------------------------------------------- the recorder


def test_recorder_span_nesting_and_durations():
    r = TraceRecorder()
    r.begin("outer", tid=0, ts=1.0)
    r.begin("inner", tid=0, ts=2.0)
    r.end(tid=0, ts=3.0)
    r.end(tid=0, ts=5.0)
    events = r.events()
    assert [e["name"] for e in events] == ["inner", "outer"]   # completion order
    inner, outer = events
    assert inner["ts"] == 2.0 and inner["dur"] == pytest.approx(1.0)
    assert outer["ts"] == 1.0 and outer["dur"] == pytest.approx(4.0)
    assert r.open_spans() == 0 and r.unbalanced == 0


def test_recorder_per_tid_stacks_are_independent():
    r = TraceRecorder()
    r.begin("a", tid=0, ts=0.0)
    r.begin("b", tid=1, ts=0.5)
    r.end(tid=0, ts=1.0)                # closes rank 0's span, not rank 1's
    assert r.events()[0]["name"] == "a"
    assert r.open_spans(1) == 1


def test_recorder_ring_buffer_drops_oldest_and_counts():
    r = TraceRecorder(capacity=4)
    for i in range(10):
        r.instant(f"e{i}", tid=0, ts=float(i))
    events = r.events()
    assert len(events) == 4
    assert [e["name"] for e in events] == ["e6", "e7", "e8", "e9"]
    assert r.dropped == 6
    assert r.snapshot()["dropped"] == 6


def test_recorder_unbalanced_end_is_counted_not_fatal():
    r = TraceRecorder()
    r.end(tid=0, ts=1.0)
    assert r.unbalanced == 1 and r.events() == []


def test_tracing_context_installs_and_restores():
    assert not trace_mod.ENABLED
    with tracing() as recorder:
        assert trace_mod.ENABLED and trace_mod.RECORDER is recorder
        with recorder.span("s", tid=3, now=lambda: 1.0):
            pass
    assert not trace_mod.ENABLED and trace_mod.RECORDER is None
    assert recorder.events()[0]["tid"] == 3


# ------------------------------------------------------------------- exporters


def _sample_snapshot():
    r = TraceRecorder()
    r.begin("MPI_Allreduce", tid=0, ts=1e-6)
    r.instant("pt2pt.post", tid=0, ts=2e-6, args={"nbytes": 64})
    r.end(tid=0, ts=1e-5)
    return r.snapshot()


def test_chrome_export_shape_and_units():
    doc = to_chrome_trace(_sample_snapshot(), process_name="job")
    assert validate_chrome_trace(doc) == []
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    (span,) = spans
    assert span["ts"] == pytest.approx(1.0)          # sim seconds -> microseconds
    assert span["dur"] == pytest.approx(9.0)
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert instants[0]["args"]["nbytes"] == 64
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {e["name"] for e in meta}
    assert {"process_name", "thread_name"} <= names


def test_merge_traces_assigns_one_pid_per_job():
    doc = merge_traces([("job-a", _sample_snapshot()), ("job-b", _sample_snapshot())])
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {1, 2}
    process_names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert process_names == {"job-a", "job-b"}
    assert validate_chrome_trace(doc) == []


def test_write_chrome_trace_and_jsonl(tmp_path):
    path = write_chrome_trace(tmp_path / "t.json", _sample_snapshot())
    doc = json.loads(path.read_text())
    assert "traceEvents" in doc and validate_chrome_trace(doc) == []
    lines = to_jsonl(_sample_snapshot()).strip().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["name"] == "pt2pt.post" or json.loads(lines[0])["name"] == "MPI_Allreduce"


def test_validator_flags_broken_documents():
    assert validate_chrome_trace({"traceEvents": "nope"})
    missing = {"traceEvents": [{"ph": "X", "ts": 0}]}
    assert any("missing" in p for p in validate_chrome_trace(missing))
    overlap = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 0},
        {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0, "pid": 1, "tid": 0},
    ]}
    assert any("overlap" in p for p in validate_chrome_trace(overlap))


# ------------------------------------------------------ instrumented MPI layer


def test_session_run_records_per_rank_spans_and_instants():
    from repro.api import Session

    with Session(backend="singlepass", trace=True) as session:
        job = session.run("allreduce", 4)
    assert job.trace is not None
    events = job.trace["events"]
    names = {e["name"] for e in events}
    assert "MPI_Allreduce" in names
    assert "pt2pt.post" in names and "pt2pt.consume" in names
    assert "coll.algorithm" in names
    assert {e["tid"] for e in events} == {0, 1, 2, 3}
    assert job.trace["unbalanced"] == 0


def test_tracing_disabled_records_nothing():
    from repro.api import Session

    with Session(backend="singlepass") as session:       # trace defaults off
        job = session.run("allreduce", 2)
    assert job.trace is None
    assert not trace_mod.ENABLED


def test_nbc_schedule_emits_instants_not_spans():
    """Incrementally-executed NBC schedules must not emit round spans (their
    rounds interleave with unrelated MPI calls, which would break nesting);
    they emit nbc_step/nbc_complete instants instead."""
    from repro.api import Session

    with Session(backend="singlepass", trace=True) as session:
        job = session.run("iallreduce", 2)
    names = {e["name"] for e in job.trace["events"]}
    assert "sched.nbc_complete" in names
    doc = to_chrome_trace(job.trace)
    assert validate_chrome_trace(doc) == []


# -------------------------------------------------------- campaign acceptance


def test_traced_campaign_merges_into_one_valid_timeline(tmp_path):
    spec = CampaignSpec.from_mapping({
        "name": "trace-acceptance",
        "seed": 1,
        "trace": True,
        "cache_dir": False,
        "benchmarks": [
            {"benchmark": ["allreduce", "alltoall"], "mode": "wasm",
             "backend": "singlepass", "nranks": 4, "machine": "graviton2"},
        ],
    })
    result = run_campaign(spec)
    assert result.ok
    assert all(o.trace for o in result.outcomes)

    doc = result.trace_timeline()
    assert validate_chrome_trace(doc) == []

    # One lane ("process") per job, one "thread" per rank.
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert len(pids) == 2
    for pid in pids:
        tids = {e["tid"] for e in doc["traceEvents"]
                if e["pid"] == pid and e["ph"] == "X"}
        assert tids == {0, 1, 2, 3}

    # Schedule rounds nest inside the owning collective's MPI-call span.
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    rounds = [e for e in spans if e["name"].startswith("sched.round")]
    mpi_calls = [e for e in spans if e["name"].startswith("MPI_")]
    assert rounds and mpi_calls
    eps = 1e-6      # microseconds; absorbs float rounding in the µs conversion
    def encloses(outer, inner):
        return (outer["pid"] == inner["pid"] and outer["tid"] == inner["tid"]
                and outer["ts"] <= inner["ts"] + eps
                and inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + eps)
    assert all(any(encloses(m, r) for m in mpi_calls) for r in rounds)

    # And the written file is a valid Chrome trace document.
    path = result.write_trace(tmp_path / "timeline.json")
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) == []
    assert loaded["metadata"]["dropped_events"] == 0


def test_untraced_campaign_has_no_timeline():
    spec = CampaignSpec.from_mapping({
        "name": "untraced",
        "cache_dir": False,
        "benchmarks": [{"benchmark": "allreduce", "mode": "wasm",
                        "backend": "singlepass", "nranks": 2}],
    })
    result = run_campaign(spec)
    assert result.trace_timeline() is None
    with pytest.raises(ValueError):
        result.write_trace("unused.json")


def test_traced_campaign_fingerprints_match_untraced():
    """Tracing must not perturb the simulation: per-job fingerprints agree
    with an untraced run of the same spec."""
    mapping = {
        "name": "fp",
        "seed": 3,
        "cache_dir": False,
        "benchmarks": [{"benchmark": "allreduce", "mode": "wasm",
                        "backend": "singlepass", "nranks": 2}],
    }
    plain = run_campaign(CampaignSpec.from_mapping(mapping))
    traced = run_campaign(CampaignSpec.from_mapping(mapping), trace=True)
    assert plain.fingerprints() == traced.fingerprints()


# ---------------------------------------------------------------- the profiler


def test_profiler_counts_fused_superinstructions():
    from repro.api import Session

    with profiling() as profiler:
        with Session(backend="singlepass") as session:
            session.run("allreduce", 2)
    report = profiler.report()
    assert report["estimated_dispatches"] > 0
    assert profiler.fused_hits() > 0                 # fused handlers really fire
    assert any(name.startswith("_h_") for name in report["handlers"])


def test_profiler_attributes_mined_superinstructions_by_chain():
    from repro.obs import format_profile_report
    from repro.wasm import ImportObject, Instance, ModuleBuilder, validate_module
    from repro.wasm.interpreter import Interpreter
    from repro.wasm.lowering import (
        apply_fusion_table,
        lower_module,
        mine_superinstructions,
    )

    mb = ModuleBuilder(name="mined-attribution")
    mb.add_memory(1)
    f = mb.function("mix", params=[("a", "i32")], results=["i32"], export=True)
    f.add_local("x", "v128")
    f.get("a").emit("i32x4.splat").set("x")
    f.get("a").emit("i32x4.splat").set("x")
    f.get("x").emit("i32x4.extract_lane", 0)
    f.get("x").emit("i32x4.extract_lane", 1).emit("i32.xor")
    module = mb.build()
    validate_module(module)

    lowered = lower_module(module)
    table = mine_superinstructions(lowered, min_occurrences=1)
    assert apply_fusion_table(lowered, table) > 0
    with profiling() as profiler:
        instance = Instance(module, ImportObject(),
                            executor=Interpreter(lowered=lowered))
        assert instance.invoke("mix", 7) == [0]
    mined = profiler.mined_hits()
    assert mined, "mined chain executors must appear in the histogram"
    assert all(name.startswith("_h_fused_mined__") for name in mined)
    assert profiler.report()["mined_superinstructions"] == mined
    assert "mined superinstruction" in format_profile_report(profiler)


def test_profiler_sampling_scales_estimates():
    p = InterpreterProfiler(sample_every=4)
    p.handler_hits["_h_bin"] = 10
    assert p.handler_histogram()["_h_bin"] == 40
    with pytest.raises(ValueError):
        InterpreterProfiler(sample_every=0)


def test_profiler_self_time_excludes_children():
    p = InterpreterProfiler()
    p.enter("parent")
    p.enter("child")
    p.exit("child")
    p.exit("parent")
    assert p.self_seconds["parent"] == pytest.approx(
        p.total_seconds["parent"] - p.total_seconds["child"], abs=1e-6)
    assert p.calls["parent"] == 1 and p.calls["child"] == 1


def test_profiling_context_restores_prior_state():
    from repro.obs import profile as profile_mod

    assert profile_mod.ACTIVE is None
    with profiling() as p:
        assert profile_mod.ACTIVE is p
    assert profile_mod.ACTIVE is None
