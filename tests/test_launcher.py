"""Direct unit coverage of the launcher: ``JobResult`` accessors and the
error paths (previously only exercised incidentally via ``DeadlockError``
tests)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EmbedderConfig
from repro.core.embedder import GuestResult
from repro.core.launcher import JobResult, run_native, run_wasm
from repro.sim.engine import RankFailedError
from repro.sim.metrics import MetricsRegistry
from repro.toolchain.guest import GuestProgram


def _guest_result(rank: int, exit_code: int, return_value=None) -> GuestResult:
    return GuestResult(
        rank=rank,
        exit_code=exit_code,
        return_value=return_value,
        elapsed_virtual=0.0,
        stdout="",
        stderr="",
        call_counts={},
        metrics=MetricsRegistry(),
        compile_seconds=0.0,
        cache_hit=False,
    )


def _job(rank_results) -> JobResult:
    return JobResult(
        nranks=len(rank_results),
        machine="graviton2",
        mode="wasm",
        rank_results=rank_results,
        makespan=0.0,
        metrics=MetricsRegistry(),
        stdout="",
    )


# ------------------------------------------------------------------ accessors


def test_exit_codes_maps_guest_results_ints_and_other():
    job = _job([_guest_result(0, 3), 5, "not-an-exit-code", _guest_result(3, 0)])
    # GuestResult -> its exit code, int -> itself, anything else -> 0.
    assert job.exit_codes() == [3, 5, 0, 0]


def test_return_values_unwraps_guest_results():
    job = _job([_guest_result(0, 0, return_value={"x": 1}), 7])
    assert job.return_values() == [{"x": 1}, 7]


def test_nonzero_guest_exit_code_propagates():
    def main(api, args):
        api.mpi_init()
        rank = api.rank()
        api.mpi_finalize()
        return 17 if rank == 1 else 0

    job = run_wasm(GuestProgram(name="exit-17", main=main), 2, machine="graviton2")
    assert job.exit_codes() == [0, 17]


# ---------------------------------------------------------------- error paths


def test_rank_raising_mid_collective_surfaces_as_rank_failure():
    """A rank that dies *between* entering MPI and joining the collective the
    others are blocked in must fail the job with its own traceback, not hang
    or blame the engine."""

    def main(api, args):
        api.mpi_init()
        ptr, arr = api.alloc_array(64, 1)  # MPI_BYTE handle is 1 in the guest ABI
        if api.rank() == 1:
            raise ValueError("guest exploded mid-collective")
        api.bcast(ptr, 64, 1, 0)
        api.mpi_finalize()
        return 0

    with pytest.raises(RankFailedError) as excinfo:
        run_wasm(GuestProgram(name="mid-collective-crash", main=main), 3, machine="graviton2")
    err = excinfo.value
    assert err.rank == 1
    assert isinstance(err.original, ValueError)
    assert "guest exploded mid-collective" in err.rank_traceback


def test_native_rank_failure_carries_rank_and_traceback():
    def main(api, args):
        api.mpi_init()
        if api.rank() == 2:
            raise RuntimeError("native rank down")
        api.barrier()
        api.mpi_finalize()
        return 0

    with pytest.raises(RankFailedError) as excinfo:
        run_native(GuestProgram(name="native-crash", main=main), 3, machine="graviton2")
    assert excinfo.value.rank == 2
    assert "native rank down" in excinfo.value.rank_traceback


def test_launcher_cli_runs_and_returns_max_exit_code(capsys):
    from repro.core.launcher import main

    assert main(["allreduce", "-np", "2", "--machine", "graviton2"]) == 0
    out = capsys.readouterr().out
    assert "mode=wasm" in out and "makespan=" in out

    assert main(["allreduce", "-np", "2", "--machine", "graviton2", "--native"]) == 0
    assert "mode=native" in capsys.readouterr().out


def test_campaign_turns_rank_failure_into_error_record():
    """The campaign runner's contract for the same failure: a structured
    error record, not an exception (and not a dead campaign)."""
    from repro.harness.campaign import JobSpec, run_job

    outcome = run_job(
        JobSpec(kind="benchmark", name="allreduce", nranks=2,
                algorithms=(("allreduce", "no-such-algorithm"),)),
        campaign_seed=0,
    )
    assert outcome.status == "error"
    assert outcome.error["type"] in ("UnknownAlgorithmError", "RankFailedError")
    assert "no-such-algorithm" in outcome.error["message"]
    assert outcome.error["traceback"]
