"""Tests for :mod:`repro.fault.journal` and resumable campaigns.

Covers the append-only journal itself (last-record-wins replay, torn-tail
tolerance, atomic metadata), the campaign journal integration
(``run_campaign(journal_dir=..., resume=...)``: restored outcomes, identical
fingerprints, zero re-compiles on resume), and the acceptance chaos case:
a campaign worker SIGKILLed mid-job neither hangs the campaign nor loses an
accepted job -- the job surfaces as a structured ``BrokenProcessPool`` error,
is journaled non-terminally, and a ``--resume`` re-runs exactly it.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.fault.journal import KNOWN_EVENTS, TERMINAL_EVENTS, Journal
from repro.harness.campaign import CampaignSpec, run_campaign

BENCH_SPEC = {
    "name": "journal-sweep",
    "seed": 5,
    "benchmarks": [
        {"benchmark": "allreduce", "nranks": 2, "backend": "cranelift",
         "machine": "graviton2", "repeats": 2},
    ],
}


# -------------------------------------------------------------- journal unit


def test_replay_keeps_last_record_per_job(tmp_path):
    journal = Journal(tmp_path)
    journal.record("accepted", "a")
    journal.record("accepted", "b")
    journal.record("started", "a")
    journal.record("done", "a", status="ok")
    journal.record("started", "b")
    state = journal.replay()
    assert list(state) == ["a", "b"], "first-seen order"
    assert state["a"]["event"] == "done" and state["a"]["status"] == "ok"
    assert state["b"]["event"] == "started"
    assert journal.unfinished() == {"b": state["b"]}
    assert set(journal.finished()) == {"a"}
    assert journal.event_count() == 5
    assert journal.event_count("accepted") == 2


def test_unknown_event_is_rejected(tmp_path):
    journal = Journal(tmp_path)
    with pytest.raises(ValueError, match="unknown journal event"):
        journal.record("exploded", "a")
    assert "broken" in KNOWN_EVENTS and "broken" not in TERMINAL_EVENTS


def test_torn_tail_is_skipped_not_fatal(tmp_path):
    journal = Journal(tmp_path)
    journal.record("accepted", "a")
    journal.record("done", "a")
    with open(journal.path, "ab") as fh:
        fh.write(b'\xff\xfe not even text\n')
        fh.write(b'{"event": "accepted", "job_id": "b", "trunca')  # SIGKILL here
    assert set(journal.replay()) == {"a"}
    assert journal.finished().keys() == {"a"}
    # The journal stays appendable after the torn tail.
    journal.record("accepted", "c")
    assert set(journal.replay()) == {"a", "c"}


def test_meta_documents_publish_atomically(tmp_path):
    journal = Journal(tmp_path)
    assert journal.read_meta("spec.json") is None
    journal.write_meta("spec.json", {"name": "x", "seed": 3})
    assert journal.read_meta("spec.json") == {"name": "x", "seed": 3}
    residue = [p.name for p in tmp_path.iterdir()
               if p.name not in ("spec.json",) and p.name != Journal.FILENAME]
    assert residue == []


# -------------------------------------------------------- campaign integration


def test_journaled_campaign_records_full_lifecycle(tmp_path):
    jdir = tmp_path / "journal"
    result = run_campaign(dict(BENCH_SPEC), journal_dir=jdir,
                          cache_dir=str(tmp_path / "cache"))
    assert result.ok
    journal = Journal(jdir)
    assert journal.read_meta("spec.json")["name"] == "journal-sweep"
    assert journal.event_count("accepted") == 2
    assert journal.event_count("started") == 2
    assert set(journal.finished()) == {o.job_id for o in result.outcomes}
    assert journal.unfinished() == {}
    record = journal.finished()[result.outcomes[0].job_id]
    assert record["fingerprint"] == result.outcomes[0].fingerprint()


def test_resume_runs_only_unfinished_jobs_with_zero_recompiles(tmp_path):
    jdir, cache = tmp_path / "journal", str(tmp_path / "cache")
    first = run_campaign(dict(BENCH_SPEC), journal_dir=jdir, cache_dir=cache)
    assert first.ok and first.cache_stats["compiles"] == 1
    job_ids = [o.job_id for o in first.outcomes]

    # Forge a crash: scrub job 1's terminal record, as if the process died
    # after "started" -- earlier records survive untouched (O_APPEND).
    journal = Journal(jdir)
    keep = [r for r in journal.events()
            if not (r["job_id"] == job_ids[1] and r["event"] == "done")]
    journal.path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in keep))
    assert set(journal.unfinished()) == {job_ids[1]}

    resumed = run_campaign(None, journal_dir=jdir, resume=True, cache_dir=cache)
    assert resumed.ok and len(resumed.outcomes) == 2
    assert resumed.outcome(job_ids[0]).resumed is True
    assert resumed.outcome(job_ids[1]).resumed is False
    # Bit-for-bit: restored and re-run jobs both reproduce the original
    # fingerprints, and the warm cache means nothing re-compiles.
    assert resumed.fingerprints() == first.fingerprints()
    assert resumed.cache_stats["compiles"] == 0
    # Only the re-run job was re-accepted.
    assert Journal(jdir).event_count("accepted") == 3


def test_full_resume_restores_everything_without_running(tmp_path):
    jdir, cache = tmp_path / "journal", str(tmp_path / "cache")
    first = run_campaign(dict(BENCH_SPEC), journal_dir=jdir, cache_dir=cache)
    resumed = run_campaign(None, journal_dir=jdir, resume=True, cache_dir=cache)
    assert resumed.ok
    assert all(o.resumed for o in resumed.outcomes)
    assert resumed.fingerprints() == first.fingerprints()
    assert resumed.cache_stats["compiles"] == 0
    assert Journal(jdir).event_count("started") == 2  # nothing re-ran


def test_resume_error_paths(tmp_path):
    with pytest.raises(ValueError, match="requires journal_dir"):
        run_campaign(None, resume=True)
    with pytest.raises(ValueError, match="no stored spec"):
        run_campaign(None, journal_dir=tmp_path / "empty", resume=True)
    with pytest.raises(ValueError, match="spec is required"):
        run_campaign(None)


# -------------------------------------------------------------- SIGKILL chaos


def _register_chaos_drivers():
    """In-test drivers for the worker-death contract (idempotent)."""
    from repro.api.registry import EXPERIMENTS, register_experiment

    if "journal-noop" not in EXPERIMENTS.entries:
        @register_experiment("journal-noop")
        def _noop_driver():
            return {"ran": True}

    if "kill-once" not in EXPERIMENTS.entries:
        @register_experiment("kill-once")
        def _kill_once_driver(marker=""):
            # First execution: leave a marker, then die the hard way (SIGKILL
            # is uncatchable -- the worker process vanishes mid-job).  A
            # resumed execution finds the marker and completes normally.
            import os
            import signal
            from pathlib import Path

            path = Path(marker)
            if not path.exists():
                path.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return {"ran": True, "survived": True}  # pragma: no cover - resume path


def test_sigkilled_worker_neither_hangs_nor_loses_jobs(tmp_path):
    """Acceptance: SIGKILL a campaign worker mid-job.  The campaign completes
    (no hang), the dead worker's job becomes a structured error journaled
    non-terminally, and ``resume`` re-runs exactly the lost work."""
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method required for in-test drivers")
    _register_chaos_drivers()
    jdir = tmp_path / "journal"
    marker = tmp_path / "killed.marker"
    spec = {
        "name": "sigkill-chaos",
        "seed": 3,
        "experiments": [
            {"experiment": "kill-once", "params": {"marker": str(marker)}},
            {"experiment": "journal-noop", "repeats": 2},
        ],
    }
    result = run_campaign(spec, workers=2, journal_dir=jdir,
                          cache_dir=str(tmp_path / "cache"))
    assert len(result.outcomes) == 3, "every accepted job has a record"
    kill = next(o for o in result.outcomes if o.spec.name == "kill-once")
    assert kill.status == "error"
    assert kill.error["type"] == "BrokenProcessPool"
    assert marker.exists(), "the worker really ran (and died) once"

    journal = Journal(jdir)
    assert journal.event_count("broken") >= 1
    assert kill.job_id in journal.unfinished(), \
        "a broken job is non-terminal: a resume must re-run it"
    # Zero accepted jobs lost: every accepted id has an outcome record.
    accepted = {r["job_id"] for r in journal.events() if r["event"] == "accepted"}
    assert accepted == {o.job_id for o in result.outcomes}

    resumed = run_campaign(None, journal_dir=jdir, resume=True,
                           cache_dir=str(tmp_path / "cache"))
    assert resumed.ok, [o.error for o in resumed.errors]
    rerun = resumed.outcome(kill.job_id)
    assert rerun.resumed is False and rerun.ok
    assert rerun.result["survived"] is True
