"""Execution tests: interpreter and the three compiler back-ends agree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.wasm import FuncType, ImportObject, Instance, ModuleBuilder, validate_module
from repro.wasm.compilers import backend_names, get_backend
from repro.wasm.errors import (
    IntegerDivideByZeroTrap,
    MemoryOutOfBoundsTrap,
    StackExhaustionTrap,
    Trap,
    UnreachableTrap,
)

BACKENDS = ("singlepass", "cranelift", "llvm")


def build_test_module():
    """A module exercising arithmetic, control flow, memory, calls and SIMD."""
    mb = ModuleBuilder(name="exec-tests")
    mb.add_memory(1)
    mb.add_global("counter", "i32", 0)

    fib = mb.function("fib", params=[("n", "i32")], results=["i32"], export=True)
    fib.get("n").i32_const(2).emit("i32.lt_s")
    with fib.if_("i32"):
        fib.get("n")
        fib.else_()
        fib.get("n").i32_const(1).emit("i32.sub").call("fib")
        fib.get("n").i32_const(2).emit("i32.sub").call("fib")
        fib.emit("i32.add")

    gcd = mb.function("gcd", params=[("a", "i32"), ("b", "i32")], results=["i32"], export=True)
    with gcd.block():
        with gcd.loop():
            gcd.get("b").emit("i32.eqz").br_if(1)
            gcd.get("a").get("b").emit("i32.rem_u")
            gcd.get("b").set("a")
            gcd.set("b")
            gcd.br(0)
    gcd.get("a")

    sumn = mb.function("sum_to", params=[("n", "i32")], results=["i32"], export=True)
    sumn.add_local("i", "i32")
    sumn.add_local("acc", "i32")
    with sumn.for_range("i", end_local="n"):
        sumn.get("acc").get("i").emit("i32.add").set("acc")
    sumn.get("acc")

    divs = mb.function("div_s", params=[("a", "i32"), ("b", "i32")], results=["i32"], export=True)
    divs.get("a").get("b").emit("i32.div_s")

    boom = mb.function("boom", params=[], results=[], export=True)
    boom.emit("unreachable")

    poke = mb.function("poke", params=[("addr", "i32"), ("v", "f64")], results=["f64"], export=True)
    poke.get("addr").get("v").store("f64.store")
    poke.get("addr").load("f64.load")

    oob = mb.function("read_oob", params=[], results=["i32"], export=True)
    oob.i32_const(10 * 65536).load("i32.load")

    bump = mb.function("bump", params=[], results=["i32"], export=True)
    bump.emit("global.get", "counter").i32_const(1).emit("i32.add")
    bump.emit("global.set", "counter")
    bump.emit("global.get", "counter")

    f64ops = mb.function("mix_f64", params=[("x", "f64")], results=["f64"], export=True)
    f64ops.get("x").emit("f64.sqrt").f64_const(1.0).emit("f64.add").emit("f64.floor")

    conv = mb.function("to_i64", params=[("x", "i32")], results=["i64"], export=True)
    conv.get("x").emit("i64.extend_i32_s").i64_const(1000).emit("i64.mul")

    select_fn = mb.function("pick", params=[("c", "i32")], results=["i32"], export=True)
    select_fn.i32_const(111).i32_const(222).get("c").emit("select")

    simd = mb.function("v_add4", params=[("a", "i32"), ("b", "i32"), ("out", "i32")],
                       results=[], export=True)
    simd.get("out")
    simd.get("a").load("v128.load")
    simd.get("b").load("v128.load")
    simd.emit("i32x4.add")
    simd.store("v128.store")

    br_table = mb.function("classify", params=[("x", "i32")], results=["i32"], export=True)
    with br_table.block():        # depth 2 from inside the inner block
        with br_table.block():    # depth 1
            with br_table.block():  # depth 0
                br_table.get("x")
                br_table.emit("br_table", (0, 1), 2)
            br_table.i32_const(100).ret()
        br_table.i32_const(200).ret()
    br_table.i32_const(300)

    module = mb.build()
    validate_module(module)
    return module


@pytest.fixture(scope="module")
def compiled_instances():
    module = build_test_module()
    instances = {}
    for name in BACKENDS:
        backend = get_backend(name)
        compiled = backend.compile(module)
        instances[name] = Instance(module, ImportObject(), executor=backend.executor_for(compiled))
    return instances


def test_all_backends_registered():
    assert set(backend_names()) >= set(BACKENDS)
    with pytest.raises(KeyError):
        get_backend("gcc")


@pytest.mark.parametrize("backend", BACKENDS)
def test_fibonacci_and_gcd(compiled_instances, backend):
    inst = compiled_instances[backend]
    assert inst.invoke("fib", 12) == [144]
    assert inst.invoke("gcd", 48, 36) == [12]
    assert inst.invoke("gcd", 17, 5) == [1]


@pytest.mark.parametrize("backend", BACKENDS)
def test_loop_and_branching(compiled_instances, backend):
    inst = compiled_instances[backend]
    assert inst.invoke("sum_to", 100) == [4950]
    assert inst.invoke("classify", 0) == [100]
    assert inst.invoke("classify", 1) == [200]
    assert inst.invoke("classify", 7) == [300]
    assert inst.invoke("pick", 1) == [111]
    assert inst.invoke("pick", 0) == [222]


@pytest.mark.parametrize("backend", BACKENDS)
def test_memory_and_globals(compiled_instances, backend):
    inst = compiled_instances[backend]
    assert inst.invoke("poke", 256, 6.25) == [6.25]
    first = inst.invoke("bump")[0]
    second = inst.invoke("bump")[0]
    assert second == first + 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_float_and_conversion_ops(compiled_instances, backend):
    inst = compiled_instances[backend]
    assert inst.invoke("mix_f64", 9.0) == [4.0]
    assert inst.invoke("to_i64", -3) == [(-3000) & 0xFFFFFFFFFFFFFFFF]


@pytest.mark.parametrize("backend", BACKENDS)
def test_simd_lane_addition(compiled_instances, backend):
    inst = compiled_instances[backend]
    mem = inst.exported_memory()
    import numpy as np

    a = mem.ndarray(512, 4, "int32")
    b = mem.ndarray(528, 4, "int32")
    a[:] = [1, 2, 3, 4]
    b[:] = [10, 20, 30, 40]
    inst.invoke("v_add4", 512, 528, 544)
    assert mem.ndarray(544, 4, "int32").tolist() == [11, 22, 33, 44]


@pytest.mark.parametrize("backend", BACKENDS)
def test_traps(compiled_instances, backend):
    inst = compiled_instances[backend]
    with pytest.raises(UnreachableTrap):
        inst.invoke("boom")
    with pytest.raises(IntegerDivideByZeroTrap):
        inst.invoke("div_s", 5, 0)
    with pytest.raises(MemoryOutOfBoundsTrap):
        inst.invoke("read_oob")


def test_stack_exhaustion_guard():
    mb = ModuleBuilder()
    f = mb.function("loop_forever", params=[("n", "i32")], results=["i32"], export=True)
    f.get("n").i32_const(1).emit("i32.add").call("loop_forever")
    module = mb.build()
    backend = get_backend("cranelift")
    inst = Instance(module, ImportObject(), executor=backend.executor_for(backend.compile(module)))
    with pytest.raises(StackExhaustionTrap):
        inst.invoke("loop_forever", 0)


@given(n=st.integers(min_value=0, max_value=15), a=st.integers(min_value=1, max_value=500),
       b=st.integers(min_value=1, max_value=500))
@settings(max_examples=25, deadline=None)
def test_backends_agree_on_random_inputs(compiled_instances, n, a, b):
    expected_fib = compiled_instances["cranelift"].invoke("fib", n)
    expected_gcd = compiled_instances["cranelift"].invoke("gcd", a, b)
    for backend in BACKENDS:
        inst = compiled_instances[backend]
        assert inst.invoke("fib", n) == expected_fib
        assert inst.invoke("gcd", a, b) == expected_gcd


def test_compile_time_ordering_matches_table1():
    module = build_test_module()
    times = {name: get_backend(name).compile(module).compile_seconds for name in BACKENDS}
    # LLVM (code generation) must be the most expensive compile, as in Table 1.
    assert times["llvm"] > times["singlepass"]
    assert times["llvm"] > times["cranelift"]


def test_host_function_call_and_link_errors():
    mb = ModuleBuilder()
    mb.add_memory(1)
    mb.import_function("env", "add_host", ["i32", "i32"], ["i32"])
    f = mb.function("call_host", params=[("x", "i32")], results=["i32"], export=True)
    f.get("x").i32_const(5).call("add_host")
    module = mb.build()

    imports = ImportObject()
    imports.register("env", "add_host", FuncType.of(["i32", "i32"], ["i32"]),
                     lambda inst, a, b: a + b)
    inst = Instance(module, imports)
    assert inst.invoke("call_host", 7) == [12]

    from repro.wasm.errors import LinkError

    with pytest.raises(LinkError):
        Instance(module, ImportObject())  # missing import
    bad = ImportObject()
    bad.register("env", "add_host", FuncType.of(["i32"], ["i32"]), lambda inst, a: a)
    with pytest.raises(LinkError):
        Instance(module, bad)  # signature mismatch
