"""Edge cases of MetricsRegistry snapshot/merge and the bounded series.

The campaign runner relies on snapshots being a faithful wire format (ship a
worker's metrics to the parent, merge, fingerprint); these tests pin the
algebra down: disjoint series, empty registries, merge associativity, and
percentile fields surviving a ``from_snapshot`` round trip.
"""

import math

import pytest

from repro.sim.metrics import RESERVOIR_SIZE, Histogram, MetricsRegistry, SampleSeries


def _filled(name_values):
    reg = MetricsRegistry()
    for name, values in name_values.items():
        for v in values:
            reg.record(name, v)
    return reg


# ------------------------------------------------------------- sample series


def test_series_is_bounded_with_exact_running_stats():
    s = SampleSeries()
    n = RESERVOIR_SIZE * 4
    for i in range(n):
        s.add(float(i))
    assert len(s.values) == RESERVOIR_SIZE          # bounded memory
    assert s.count == n                             # ...but exact aggregates
    assert s.total == pytest.approx(n * (n - 1) / 2)
    assert s.mean == pytest.approx((n - 1) / 2)
    assert s.minimum == 0.0
    assert s.maximum == float(n - 1)
    # Exact population stddev of 0..n-1.
    expected = math.sqrt((n * n - 1) / 12.0)
    assert s.stddev == pytest.approx(expected, rel=1e-9)


def test_series_percentiles_exact_below_capacity():
    s = SampleSeries()
    for v in range(1, 101):
        s.add(float(v))
    assert s.percentile(50) == 50.0
    assert s.percentile(95) == 95.0
    assert s.percentile(99) == 99.0
    summary = s.summary()
    for key in ("p50", "p95", "p99"):
        assert key in summary


def test_series_percentiles_approximate_above_capacity():
    s = SampleSeries()
    for v in range(10 * RESERVOIR_SIZE):
        s.add(float(v))
    top = 10 * RESERVOIR_SIZE - 1
    # Uniform reservoir sampling: nearest-rank p50 should land mid-range.
    assert s.percentile(50) == pytest.approx(top / 2, rel=0.15)
    assert s.percentile(99) > s.percentile(50) > s.percentile(5)


def test_series_geometric_mean_exact_despite_bounded_reservoir():
    s = SampleSeries()
    for v in (1.0, 2.0, 3.0):
        s.add(v)
    assert s.geometric_mean() == pytest.approx((1 * 2 * 3) ** (1 / 3))
    big = SampleSeries(reservoir_size=4)
    for v in range(1, 1001):
        big.add(float(v))
    expected = math.exp(sum(math.log(v) for v in range(1, 1001)) / 1000)
    assert big.geometric_mean() == pytest.approx(expected, rel=1e-9)


# ---------------------------------------------------------------- merge algebra


def test_merge_disjoint_series_is_union():
    a = _filled({"x": [1.0, 2.0]})
    b = _filled({"y": [10.0]})
    a.merge(b)
    assert sorted(a.series_names()) == ["x", "y"]
    assert a.series("x").count == 2
    assert a.series("y").count == 1
    assert b.series_names() == ["y"]                # merge does not mutate source


def test_merge_empty_registries():
    a = MetricsRegistry()
    a.merge(MetricsRegistry())
    assert a.series_names() == []
    assert a.counters() == {}

    b = _filled({"x": [1.0]})
    b.increment("c")
    b.merge(MetricsRegistry())                      # empty right identity
    assert b.series("x").count == 1 and b.counter("c") == 1

    c = MetricsRegistry()
    c.merge(b)                                      # empty left identity
    assert c.series("x").count == 1 and c.counter("c") == 1


def _assert_registries_equal(a: MetricsRegistry, b: MetricsRegistry):
    assert a.counters() == b.counters()
    assert sorted(a.series_names()) == sorted(b.series_names())
    for name in a.series_names():
        sa, sb = a.series(name), b.series(name)
        assert sa.count == sb.count
        assert sa.total == pytest.approx(sb.total)
        assert sa.mean == pytest.approx(sb.mean)
        assert sa.stddev == pytest.approx(sb.stddev, abs=1e-12)
        assert sa.minimum == sb.minimum and sa.maximum == sb.maximum


def test_merge_is_associative():
    def make():
        return (
            _filled({"x": [1.0, 5.0], "y": [2.0]}),
            _filled({"x": [3.0], "z": [7.0, 8.0]}),
            _filled({"x": [4.0, 9.0], "y": [6.0]}),
        )

    a1, b1, c1 = make()
    a1.merge(b1)
    a1.merge(c1)                                    # (a + b) + c

    a2, b2, c2 = make()
    b2.merge(c2)
    a2.merge(b2)                                    # a + (b + c)

    _assert_registries_equal(a1, a2)


def test_merge_snapshot_matches_direct_merge():
    a, b = _filled({"x": [1.0, 2.0]}), _filled({"x": [3.0, 4.0], "y": [5.0]})
    b.increment("wasm.cache.hit", 2)
    direct = _filled({"x": [1.0, 2.0]})
    direct.merge(b)
    a.merge_snapshot(b.snapshot())
    _assert_registries_equal(a, direct)


def test_percentiles_survive_from_snapshot_round_trip():
    reg = MetricsRegistry()
    for v in range(1, 101):
        reg.record("lat", float(v))
    restored = MetricsRegistry.from_snapshot(reg.snapshot())
    original = reg.series("lat").summary()
    after = restored.series("lat").summary()
    for key in ("count", "total", "mean", "min", "max", "stddev", "p50", "p95", "p99"):
        assert after[key] == pytest.approx(original[key]), key


def test_merge_snapshot_accepts_legacy_value_lists():
    reg = MetricsRegistry()
    # Pre-reservoir snapshots shipped each series as a bare list of values.
    reg.merge_snapshot({"counters": {"c": 3}, "series": {"x": [1.0, 2.0, 3.0]}})
    assert reg.counter("c") == 3
    s = reg.series("x")
    assert s.count == 3
    assert s.mean == pytest.approx(2.0)
    assert s.percentile(50) == 2.0


def test_empty_series_summary_and_percentile():
    s = SampleSeries()
    assert s.percentile(50) == 0.0
    summary = s.summary()
    assert summary["count"] == 0 and summary["p99"] == 0.0


# ------------------------------------------------------------------ histograms


def test_histogram_observe_merge_snapshot():
    reg = MetricsRegistry()
    reg.observe("wasm.handlers", "_h_bin", 5)
    reg.observe("wasm.handlers", "_h_const", 2)
    other = MetricsRegistry()
    other.observe("wasm.handlers", "_h_bin", 1)
    other.observe("wasm.handlers", "_h_pad", 4)
    reg.merge(other)
    h = reg.histogram("wasm.handlers")
    assert h.counts() == {"_h_bin": 6, "_h_pad": 4, "_h_const": 2}
    assert h.total == 12

    restored = MetricsRegistry.from_snapshot(reg.snapshot())
    assert restored.histogram("wasm.handlers").counts() == h.counts()
    assert restored.histogram_names() == ["wasm.handlers"]


def test_snapshot_without_histograms_section_still_merges():
    reg = MetricsRegistry()
    reg.merge_snapshot({"counters": {}, "series": {}})
    assert reg.histogram_names() == []


def test_histogram_counts_sorted_by_frequency():
    h = Histogram()
    h.observe("rare")
    h.observe("common", 10)
    h.observe("mid", 5)
    assert list(h.counts()) == ["common", "mid", "rare"]


# ------------------------------------------------------------- cache counters


def test_cache_summary_distinguishes_tiers():
    reg = MetricsRegistry()
    reg.record_cache_event(False)
    reg.record_cache_event(True, tier="memory")
    reg.record_cache_event(True, tier="memory")
    reg.record_cache_event(True, tier="fs")
    summary = reg.cache_summary()
    assert summary["hits"] == 3 and summary["misses"] == 1
    assert summary["hits_memory"] == 2
    assert summary["hits_fs"] == 1
    assert summary["hit_rate"] == pytest.approx(0.75)


def test_cache_event_unknown_tier_counts_as_plain_hit():
    reg = MetricsRegistry()
    reg.record_cache_event(True, tier=None)
    reg.record_cache_event(True, tier="weird")
    summary = reg.cache_summary()
    assert summary["hits"] == 2
    assert summary["hits_memory"] == 0 and summary["hits_fs"] == 0
