"""Session API tests: warm artifact reuse across jobs, lifecycle, per-run
overrides, campaign integration, and the compile-once-per-worker smoke the
CI ``api-stability`` job runs."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.toolchain.guest import GuestProgram


def _noop_program(name: str = "api-noop") -> GuestProgram:
    def main(api, args):
        api.mpi_init()
        api.mpi_finalize()
        return 0

    return GuestProgram(name=name, main=main)


# --------------------------------------------------- warm cross-job artifact reuse


def test_two_jobs_one_session_compile_once():
    """Acceptance criterion: a two-job same-module run on one Session with
    ``cache_dir=None`` records exactly one compile in ``cache_summary()``."""
    with Session(machine="graviton2", backend="cranelift", cache_dir=None) as session:
        first = session.run("pingpong", 2)
        second = session.run("pingpong", 2)
    assert first.exit_codes() == [0, 0] and second.exit_codes() == [0, 0]
    summary = session.metrics.cache_summary()
    # 2 jobs x 2 ranks = 4 lookups; only the very first one compiles.
    assert summary["misses"] == 1
    assert summary["hits"] == 3
    assert session.jobs_run == 2


def test_sessions_do_not_share_artifact_stores():
    program = _noop_program()
    with Session(machine="graviton2", backend="cranelift") as a:
        a.run(program, 1)
        assert a.metrics.cache_summary()["misses"] == 1
    with Session(machine="graviton2", backend="cranelift") as b:
        b.run(program, 1)
        # A fresh session has a cold store: it compiles again.
        assert b.metrics.cache_summary()["misses"] == 1


def test_session_compile_precompiles_for_run():
    with Session(machine="graviton2", backend="cranelift") as session:
        compiled = session.compile("pingpong")
        assert compiled.backend_name == "cranelift"
        assert session.metrics.cache_summary()["misses"] == 1
        session.run("pingpong", 2)
        # Both ranks were served by the artifact session.compile produced.
        assert session.metrics.cache_summary()["misses"] == 1


def test_session_tiers_over_the_fs_cache(tmp_path):
    program = _noop_program("fs-tiered")
    with Session(machine="graviton2", backend="cranelift",
                 cache_dir=str(tmp_path)) as warm:
        warm.run(program, 2)
        warm.run(program, 2)
        assert warm.metrics.cache_summary()["misses"] == 1
    assert list(tmp_path.glob("*.mpiwasm")), "artifact must be published to disk"
    # A cold session over the same directory is served from disk, not compiled.
    with Session(machine="graviton2", backend="cranelift",
                 cache_dir=str(tmp_path)) as cold:
        cold.run(program, 2)
        assert cold.metrics.cache_summary()["misses"] == 0


# ------------------------------------------------------------ lifecycle/overrides


def test_closed_session_rejects_work():
    session = Session(machine="graviton2")
    session.close()
    assert session.closed
    with pytest.raises(RuntimeError, match="closed"):
        session.run("pingpong", 1)
    with pytest.raises(RuntimeError, match="closed"):
        session.compile("pingpong")
    session.close()  # idempotent


def test_per_run_overrides_beat_session_config():
    with Session(machine="supermuc-ng", backend="llvm", nranks=4) as session:
        job = session.run("pingpong", machine="graviton2", backend="singlepass", np=2)
        assert job.machine == "graviton2" and job.nranks == 2
        default_job = session.run("pingpong")
        assert default_job.machine == "supermuc-ng" and default_job.nranks == 4


def test_session_config_file_layer(tmp_path):
    import json

    path = tmp_path / "session.json"
    path.write_text(json.dumps({"machine": "graviton2", "backend": "cranelift"}))
    with Session(config_file=path, nranks=2) as session:
        assert session.config.machine == "graviton2"
        assert session.config.provenance["machine"] == f"file:{path}"
        job = session.run("pingpong")
        assert job.machine == "graviton2" and job.nranks == 2


def test_native_mode_matches_wasm_results():
    with Session(machine="graviton2", backend="cranelift") as session:
        from repro.benchmarks_suite import make_imb_program

        program = make_imb_program("allreduce", message_sizes=(64,), iterations=1)
        wasm = session.run(program, 2)
        native = session.run(program, 2, mode="native")
    assert wasm.mode == "wasm" and native.mode == "native"
    assert wasm.makespan > native.makespan          # the embedder overhead
    assert wasm.return_values()[0]["routine"] == native.return_values()[0]["routine"]


def test_forced_algorithms_flow_through_session():
    with Session(machine="graviton2", backend="cranelift") as session:
        from repro.benchmarks_suite import make_imb_program

        program = make_imb_program("allreduce", message_sizes=(64,), iterations=1)
        job = session.run(program, 2, algorithms={"allreduce": "ring"})
    algos = job.metrics.collective_summary()["allreduce"]["algorithms"]
    assert set(algos) == {"ring"}


# ------------------------------------------------------------------- campaigns


def test_session_campaign_serial_runs_on_this_session(tmp_path):
    spec = {
        "name": "session-serial",
        "benchmarks": [{"benchmark": "pingpong", "nranks": 2,
                        "machine": "graviton2", "repeats": 2}],
    }
    with Session(machine="graviton2") as session:
        result = session.campaign(spec, cache_dir=str(tmp_path))
    assert result.ok and len(result.outcomes) == 2
    # Both jobs ran warm on the caller's session: one compile total.
    assert session.metrics.cache_summary()["misses"] == 1
    assert result.cache_stats["compiles"] == 1


def test_warm_session_campaign_compiles_once_per_worker():
    """CI smoke: 2 workers, FS cache disabled -- the warm per-worker sessions
    alone must bound compiles to at most one per worker (and at least one),
    proven via the aggregated metrics counters."""
    from repro.harness.campaign import run_campaign

    spec = {
        "name": "warm-workers",
        "cache_dir": False,                       # no on-disk cache at all
        "benchmarks": [{"benchmark": "pingpong", "mode": "wasm",
                        "backend": "cranelift", "nranks": 2,
                        "machine": "graviton2", "repeats": 4}],
    }
    result = run_campaign(spec, workers=2)
    assert result.ok and len(result.outcomes) == 4
    summary = result.metrics.cache_summary()
    lookups = summary["hits"] + summary["misses"]
    assert lookups == 8                           # 4 jobs x 2 ranks
    assert 1 <= summary["misses"] <= 2, (
        f"expected at most one compile per worker, got {summary}"
    )
    assert result.cache_stats == {
        "hits": int(summary["hits"]),
        "misses": int(summary["misses"]),
        "compiles": int(summary["misses"]),
    }


def test_fs_cache_disabled_serial_compiles_once():
    from repro.harness.campaign import run_campaign

    spec = {
        "cache_dir": False,
        "benchmarks": [{"benchmark": "pingpong", "nranks": 2,
                        "machine": "graviton2", "repeats": 3}],
    }
    result = run_campaign(spec)
    assert result.ok
    assert result.metrics.cache_summary()["misses"] == 1
    assert result.compiled_modules == []          # nothing touched a disk cache


# ----------------------------------------------------------- one-shot interface


def test_module_level_run_uses_ambient_session():
    import repro.api as api
    from repro.api import current_session, use_session

    with Session(machine="graviton2", backend="cranelift") as scoped:
        with use_session(scoped):
            assert current_session() is scoped
            job = api.run("pingpong", 2)
        assert scoped.jobs_run == 1
    assert current_session() is not scoped
    assert job.machine == "graviton2"


# ----------------------------------------------------- review-found regressions


def test_default_session_tracks_environment_changes(monkeypatch):
    """The legacy shims re-read REPRO_* per call: exporting or unsetting a
    knob between shim calls must keep taking effect."""
    from repro.api.session import default_session

    monkeypatch.delenv("REPRO_COLL_ALGO", raising=False)
    before = default_session()
    monkeypatch.setenv("REPRO_COLL_ALGO", "allreduce:ring")
    forced = default_session()
    assert forced is not before
    assert forced.config.collective_algorithms == {"allreduce": "ring"}
    monkeypatch.delenv("REPRO_COLL_ALGO")
    cleared = default_session()
    assert cleared.config.collective_algorithms == {}


def test_warm_application_memo_is_bounded():
    with Session(machine="graviton2", backend="cranelift") as session:
        for i in range(session.MAX_WARM_APPLICATIONS + 10):
            session._compiled_application(_noop_program(f"bounded-{i}"))
        assert len(session._apps) == session.MAX_WARM_APPLICATIONS


def test_session_campaign_defaults_to_session_cache_dir(tmp_path):
    spec = {"benchmarks": [{"benchmark": "pingpong", "nranks": 2,
                            "machine": "graviton2"}]}
    with Session(machine="graviton2", cache_dir=str(tmp_path)) as session:
        result = session.campaign(spec)
    assert result.ok
    assert list(tmp_path.glob("*.mpiwasm")), (
        "campaign artifacts must land in the session's configured cache_dir"
    )


def test_registry_populate_failure_is_retried():
    from repro.api import Registry

    reg = Registry("gadget", populate=("no_such_module_xyz",))
    with pytest.raises(ModuleNotFoundError):
        reg.names()
    # The failure must not latch: the real error surfaces again, not an
    # empty-registry UnknownEntryError.
    with pytest.raises(ModuleNotFoundError):
        reg.get("anything")


def test_spec_cache_dir_beats_env_through_session_campaign(tmp_path, monkeypatch):
    """run_campaign's documented precedence (arg > spec > env > temp) must
    survive the Session.campaign front door: an env-resolved session
    cache_dir may not shadow the spec's."""
    env_dir = tmp_path / "envcache"
    spec_dir = tmp_path / "speccache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(env_dir))
    spec = {"cache_dir": str(spec_dir),
            "benchmarks": [{"benchmark": "pingpong", "nranks": 2,
                            "machine": "graviton2"}]}
    with Session(machine="graviton2") as session:
        result = session.campaign(spec)
    assert result.ok
    assert list(spec_dir.glob("*.mpiwasm")), "spec's cache_dir must receive the artifact"
    assert not list(env_dir.glob("*.mpiwasm")) if env_dir.exists() else True


def test_disabled_fs_cache_ignores_persistent_env_dir(tmp_path, monkeypatch):
    """With the on-disk cache disabled, a persistent REPRO_CACHE_DIR in the
    surrounding environment must not leak into any job -- including
    experiment drivers that compile through the ambient session."""
    env_dir = tmp_path / "envcache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(env_dir))
    spec = {"cache_dir": False,
            "benchmarks": [{"benchmark": "pingpong", "nranks": 2,
                            "machine": "graviton2"}],
            "experiments": [{"experiment": "figure6"}]}   # functional: compiles
    with Session(machine="graviton2") as session:
        result = session.campaign(spec)
    assert result.ok
    assert not env_dir.exists() or not list(env_dir.glob("*.mpiwasm")), (
        "disabled campaign must not read or write the environment's cache dir"
    )
