"""The analyze CLI: exit codes, JSON reports, harness mounting."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.analysis.cli import main as analyze_main
from repro.harness.cli import main as harness_main


def _corrupt_artifact(tmp_path):
    from repro.wasm import ModuleBuilder, validate_module
    from repro.wasm.lowering import lower_module, serialize_lowered

    mb = ModuleBuilder(name="cli-tests")
    f = mb.function("one", params=[], results=["i32"], export=True)
    f.i32_const(1)
    module = mb.build()
    validate_module(module)
    payload = serialize_lowered(lower_module(module))
    payload["functions"][0]["ops"][0][0] = "i32.frobnicate"
    path = tmp_path / ("b" * 64 + ".mpiwasm")
    path.write_bytes(pickle.dumps({"artifact": payload}))
    return path


def test_schedules_subset_sweep_exits_zero(capsys):
    rc = analyze_main(["schedules", "--collective", "bcast",
                       "--nranks", "2:9", "--nbytes", "64"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "error" not in out.lower() or "0 error" in out.lower()


def test_schedules_json_report_is_machine_readable(capsys):
    rc = analyze_main(["schedules", "--collective", "barrier", "--json",
                       "--nranks", "2,3,4"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["counts"]["error"] == 0


def test_schedules_requires_a_selection():
    with pytest.raises(SystemExit) as excinfo:
        analyze_main(["schedules"])
    assert excinfo.value.code != 0


def test_broken_artifact_gives_nonzero_exit_and_location(tmp_path, capsys):
    path = _corrupt_artifact(tmp_path)
    rc = analyze_main(["ir", str(tmp_path)])
    assert rc != 0
    out = capsys.readouterr().out
    assert "unknown-kind" in out
    assert path.name.split(".")[0] in out or str(path) in out
    assert "op 0" in out


def test_clean_artifact_dir_exits_zero(tmp_path, capsys):
    from repro.wasm import ModuleBuilder, validate_module
    from repro.wasm.lowering import lower_module, serialize_lowered

    mb = ModuleBuilder(name="cli-clean")
    f = mb.function("one", params=[], results=["i32"], export=True)
    f.i32_const(1)
    module = mb.build()
    validate_module(module)
    payload = serialize_lowered(lower_module(module))
    (tmp_path / ("c" * 64 + ".mpiwasm")).write_bytes(
        pickle.dumps({"artifact": payload}))
    assert analyze_main(["ir", str(tmp_path)]) == 0


def test_lint_flags_violations_in_given_paths(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    rc = analyze_main(["lint", str(bad)])
    assert rc != 0
    assert "no-mutable-default-args" in capsys.readouterr().out


def test_self_lint_is_clean(capsys):
    assert analyze_main(["--self-lint"]) == 0


def test_harness_mounts_analyze(capsys):
    rc = harness_main(["analyze", "schedules", "--collective", "barrier",
                       "--nranks", "2,4"])
    assert rc == 0
