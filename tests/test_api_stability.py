"""API-stability gate: the public surface matches the checked-in manifest,
the generated docs cover it, and every superseded entry point warns (these
tests pass under ``-W error::DeprecationWarning``, as the CI job runs them)."""

from __future__ import annotations

import importlib
import json
import sys
from pathlib import Path

import pytest

import repro.api as api

DOCS = Path(__file__).resolve().parent.parent / "docs"


# ------------------------------------------------------------- surface contract


def test_all_matches_checked_in_manifest():
    manifest = json.loads((DOCS / "api_manifest.json").read_text())
    assert manifest["api_version"] == api.API_VERSION
    assert manifest["names"] == sorted(api.__all__), (
        "repro.api.__all__ drifted from docs/api_manifest.json; if the change "
        "is intentional, regenerate with `python -m repro.api.docgen`"
    )


def test_every_public_name_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_docs_api_md_covers_the_surface():
    text = (DOCS / "API.md").read_text()
    for name in api.__all__:
        assert f"`{name}`" in text, f"docs/API.md is missing {name}"
    for old, new in api.DEPRECATIONS.items():
        assert old in text and new in text, f"docs/API.md is missing {old} -> {new}"


def test_deprecations_point_into_the_new_surface():
    assert set(api.DEPRECATIONS) == {
        "repro.core.launcher.run_wasm",
        "repro.core.launcher.run_native",
        "repro.core.embedder.MPIWasm(...)",
        "repro.core.cache",
    }
    for replacement in api.DEPRECATIONS.values():
        assert "repro." in replacement


# ------------------------------------------------------------ deprecation shims


def _noop_program():
    from repro.toolchain.guest import GuestProgram

    def main(api_obj, args):
        api_obj.mpi_init()
        api_obj.mpi_finalize()
        return 0

    return GuestProgram(name="shim-noop", main=main)


def test_run_wasm_shim_warns_and_still_works():
    from repro.core.launcher import run_wasm

    with pytest.warns(DeprecationWarning, match="Session.run"):
        job = run_wasm(_noop_program(), 1, machine="graviton2")
    assert job.mode == "wasm" and job.exit_codes() == [0]


def test_run_native_shim_warns_and_still_works():
    from repro.core.launcher import run_native

    with pytest.warns(DeprecationWarning, match="Session.run"):
        job = run_native(_noop_program(), 1, machine="graviton2")
    assert job.mode == "native" and job.exit_codes() == [0]


def test_direct_mpiwasm_construction_warns():
    from repro.core.config import EmbedderConfig
    from repro.core.embedder import MPIWasm

    with pytest.warns(DeprecationWarning, match="repro.api.Session"):
        embedder = MPIWasm(EmbedderConfig(compiler_backend="cranelift"))
    assert embedder.config.compiler_backend == "cranelift"


def test_core_cache_facade_warns_on_import():
    sys.modules.pop("repro.core.cache", None)
    with pytest.warns(DeprecationWarning, match="repro.wasm.compilers.cache"):
        module = importlib.import_module("repro.core.cache")
    # The façade still re-exports the real names.
    from repro.wasm.compilers.cache import FileSystemCache, InMemoryCache

    assert module.FileSystemCache is FileSystemCache
    assert module.InMemoryCache is InMemoryCache


def test_session_path_emits_no_deprecation_warnings(recwarn):
    """The new front door must be warning-free -- including the embedders it
    constructs internally and the mpiwasm-run CLI built on it."""
    import warnings

    from repro.api import Session

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with Session(machine="graviton2", backend="cranelift") as session:
            job = session.run("pingpong", 2)
        assert job.exit_codes() == [0, 0]


def test_launcher_cli_is_warning_free(capsys):
    import warnings

    from repro.core.launcher import main

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert main(["pingpong", "-np", "2", "--machine", "graviton2",
                     "--backend", "cranelift"]) == 0
    assert "mode=wasm" in capsys.readouterr().out
