"""Tests for the WASI layer: virtual filesystem, isolation, host functions."""

from __future__ import annotations

import pytest

from repro.wasi.errno import EACCES, EBADF, ENOENT, ENOTCAPABLE, SUCCESS, WasiError, errno_name
from repro.wasi.snapshot_preview1 import WasiEnvironment, build_wasi_imports
from repro.wasi.vfs import VirtualFilesystem
from repro.wasm import FuncType, ImportObject, Instance, ModuleBuilder
from repro.wasm.errors import ExitTrap


# ------------------------------------------------------------------------- vfs


def test_preopen_and_create_write_read_roundtrip():
    vfs = VirtualFilesystem()
    vfs.preopen("/work")
    dirfd = vfs.preopen_fd(0)
    # Create the subdirectory first (path_open does not mkdir -p), then the file.
    subdir_fd = vfs.path_open(dirfd, "out", create=True, directory=True, write=True)
    assert subdir_fd > dirfd
    fd = vfs.path_open(dirfd, "out/data.bin", create=True, write=True, read=True)
    assert vfs.fd_write(fd, b"hello") == 5
    vfs.fd_seek(fd, 0, 0)
    assert vfs.fd_read(fd, 10) == b"hello"
    assert vfs.fd_filesize(fd) == 5
    vfs.fd_close(fd)
    with pytest.raises(WasiError):
        vfs.fd_read(fd, 1)  # closed


def test_missing_intermediate_directory_raises_enoent():
    vfs = VirtualFilesystem()
    vfs.preopen("/data")
    with pytest.raises(WasiError) as excinfo:
        vfs.path_open(vfs.preopen_fd(0), "a/b/c.txt", create=True, write=True)
    assert excinfo.value.errno == ENOENT


def test_path_escape_is_rejected():
    vfs = VirtualFilesystem()
    vfs.preopen("/sandbox")
    with pytest.raises(WasiError) as excinfo:
        vfs.path_open(vfs.preopen_fd(0), "../etc/passwd", create=False)
    assert excinfo.value.errno == ENOTCAPABLE


def test_read_only_preopen_blocks_writes():
    vfs = VirtualFilesystem()
    vfs.preopen("/ro", read=True, write=False)
    dirfd = vfs.preopen_fd(0)
    with pytest.raises(WasiError) as excinfo:
        vfs.path_open(dirfd, "new.txt", create=True, write=True)
    assert excinfo.value.errno == ENOTCAPABLE


def test_virtual_directory_tree_hides_host_paths():
    vfs = VirtualFilesystem()
    pre = vfs.preopen("/home/alice/results/deep/path")
    # The module only ever sees a single root-level component (§3.4).
    assert pre.guest_path == "/home"
    vfs2 = VirtualFilesystem()
    assert vfs2.preopen("results").guest_path == "/results"


def test_stdout_stderr_capture_and_unlink():
    vfs = VirtualFilesystem()
    vfs.preopen("/w")
    vfs.fd_write(1, b"out\n")
    vfs.fd_write(2, b"err\n")
    assert vfs.stdout_text() == "out\n"
    assert vfs.stderr_text() == "err\n"
    fd = vfs.path_open(vfs.preopen_fd(0), "tmp.txt", create=True, write=True)
    vfs.fd_close(fd)
    vfs.unlink(vfs.preopen_fd(0), "tmp.txt")
    with pytest.raises(WasiError):
        vfs.path_open(vfs.preopen_fd(0), "tmp.txt", create=False)


def test_seek_whence_variants_and_errors():
    vfs = VirtualFilesystem()
    vfs.preopen("/w")
    fd = vfs.path_open(vfs.preopen_fd(0), "f", create=True, write=True, read=True)
    vfs.fd_write(fd, b"0123456789")
    assert vfs.fd_seek(fd, 2, 0) == 2
    assert vfs.fd_seek(fd, 3, 1) == 5
    assert vfs.fd_seek(fd, -1, 2) == 9
    with pytest.raises(WasiError):
        vfs.fd_seek(fd, -100, 0)
    with pytest.raises(WasiError):
        vfs.fd_seek(999, 0, 0)
    assert errno_name(EBADF) == "EBADF"


def test_cannot_close_preopen_or_stdio():
    vfs = VirtualFilesystem()
    vfs.preopen("/w")
    vfs.fd_close(1)  # silently ignored for stdio
    with pytest.raises(WasiError):
        vfs.fd_close(vfs.preopen_fd(0))


# -------------------------------------------------------- wasi host functions


def _wasi_instance(env: WasiEnvironment):
    """A minimal module importing the WASI functions used below."""
    mb = ModuleBuilder()
    mb.add_memory(4)
    for name, params, results in (
        ("fd_write", ["i32", "i32", "i32", "i32"], ["i32"]),
        ("fd_read", ["i32", "i32", "i32", "i32"], ["i32"]),
        ("proc_exit", ["i32"], []),
        ("args_sizes_get", ["i32", "i32"], ["i32"]),
        ("args_get", ["i32", "i32"], ["i32"]),
        ("clock_time_get", ["i32", "i64", "i32"], ["i32"]),
        ("random_get", ["i32", "i32"], ["i32"]),
        ("environ_sizes_get", ["i32", "i32"], ["i32"]),
    ):
        mb.import_function("wasi_snapshot_preview1", name, params, results)
    f = mb.function("noop", export=True)
    f.emit("nop")
    module = mb.build()
    return Instance(module, build_wasi_imports(env))


def test_fd_write_through_iovecs():
    env = WasiEnvironment()
    inst = _wasi_instance(env)
    mem = inst.exported_memory()
    mem.write(1000, b"hello ")
    mem.write(1010, b"world\n")
    # Two iovecs at address 64: (1000, 6) and (1010, 6).
    mem.store_int(64, 1000, 4); mem.store_int(68, 6, 4)
    mem.store_int(72, 1010, 4); mem.store_int(76, 6, 4)
    fd_write = inst.imports.lookup("wasi_snapshot_preview1", "fd_write")
    assert fd_write(inst, 1, 64, 2, 128) == SUCCESS
    assert mem.load_int(128, 4) == 12
    assert env.vfs.stdout_text() == "hello world\n"


def test_args_and_clock_and_random():
    env = WasiEnvironment(args=["app", "--size", "4"], clock=lambda: 1.5)
    inst = _wasi_instance(env)
    mem = inst.exported_memory()
    sizes = inst.imports.lookup("wasi_snapshot_preview1", "args_sizes_get")
    assert sizes(inst, 16, 20) == SUCCESS
    argc = mem.load_int(16, 4)
    assert argc == 4  # "wasm-app" + the three user args
    clock = inst.imports.lookup("wasi_snapshot_preview1", "clock_time_get")
    assert clock(inst, 0, 0, 32) == SUCCESS
    assert mem.load_int(32, 8) == int(1.5e9)
    random_get = inst.imports.lookup("wasi_snapshot_preview1", "random_get")
    assert random_get(inst, 200, 16) == SUCCESS
    assert mem.read(200, 16) != bytes(16)


def test_proc_exit_raises_exit_trap_and_records_code():
    env = WasiEnvironment()
    inst = _wasi_instance(env)
    proc_exit = inst.imports.lookup("wasi_snapshot_preview1", "proc_exit")
    with pytest.raises(ExitTrap) as excinfo:
        proc_exit(inst, 3)
    assert excinfo.value.exit_code == 3
    assert env.exit_code == 3
    assert inst.exit_code == 3
