"""Tests for the lowering pass, the lowered-IR artifacts and the AoT cache."""

from __future__ import annotations

import pytest

from repro.core import EmbedderConfig, MPIWasm, run_wasm
from repro.harness.report import format_cache_report
from repro.toolchain.guest import GuestProgram
from repro.toolchain.wasicc import compile_guest
from repro.wasm import ImportObject, Instance, ModuleBuilder, validate_module
from repro.wasm.compilers import FileSystemCache, get_backend
from repro.wasm.compilers.cache import module_hash
from repro.wasm.interpreter import Interpreter
from repro.wasm.lowering import (
    IR_VERSION,
    LoweredFunction,
    apply_fusion_table,
    deserialize_lowered,
    lower_module,
    mine_superinstructions,
    serialize_lowered,
)


def _sum_module():
    mb = ModuleBuilder(name="lowering-tests")
    mb.add_memory(1)
    f = mb.function("sum_to", params=[("n", "i32")], results=["i32"], export=True)
    f.add_local("i", "i32")
    f.add_local("acc", "i32")
    with f.for_range("i", end_local="n"):
        f.get("acc").get("i").emit("i32.add").set("acc")
    f.get("acc")
    module = mb.build()
    validate_module(module)
    return module


# ----------------------------------------------------------------- lowered IR


def test_lowering_pre_resolves_branches_and_constants():
    module = _sum_module()
    [lowered] = lower_module(module)
    kinds = [kind for kind, _ in lowered.ops]
    # No string-dispatch leftovers: every op is a resolved kind, and the
    # for_range exit check collapsed into one compare-branch superinstruction.
    assert "fused.get_get_cmp_br_if" in kinds
    assert "fused.get_get_bin_set" in kinds      # acc + i -> acc, stack-free
    assert "fused.get_const_bin_set_br" in kinds  # i + 1 -> i, plus back-edge
    # Branch targets are absolute offsets, not run-time scans.
    block_imms = [imm for kind, imm in lowered.ops if kind == "block"]
    assert block_imms and all(isinstance(imm[1], int) for imm in block_imms)


def test_serial_roundtrip_executes_identically():
    module = _sum_module()
    lowered = lower_module(module)
    payload = serialize_lowered(lowered)
    assert payload["ir_version"] == IR_VERSION
    rebuilt = deserialize_lowered(payload)
    assert rebuilt is not None
    direct = Instance(module, ImportObject(), executor=Interpreter(lowered=lowered))
    roundtrip = Instance(module, ImportObject(), executor=Interpreter(lowered=rebuilt))
    for n in (0, 1, 7, 100):
        assert direct.invoke("sum_to", n) == roundtrip.invoke("sum_to", n) == [n * (n - 1) // 2]


def test_stale_ir_version_is_rejected():
    payload = serialize_lowered(lower_module(_sum_module()))
    payload["ir_version"] = IR_VERSION + 1
    assert deserialize_lowered(payload) is None
    assert deserialize_lowered({"kind": "something-else"}) is None
    assert deserialize_lowered(None) is None


def test_lazy_interpreter_lowers_on_first_call_only():
    module = _sum_module()
    executor = Interpreter(lazy=True)
    instance = Instance(module, ImportObject(), executor=executor)
    assert executor._functions == {}            # prepare() did no work
    assert instance.invoke("sum_to", 10) == [45]
    assert set(executor._functions) == {0}      # lowered exactly on first call


# -------------------------------------------- profile-guided superinstructions


def _v128_mix_module():
    """Repeated (local.get, splat) and (local.get, extract_lane) runs: chains
    the static fusion pass does not cover, so the miner has work to do."""
    mb = ModuleBuilder(name="mining-tests")
    mb.add_memory(1)
    f = mb.function("mix", params=[("a", "i32"), ("b", "i32")],
                    results=["i32"], export=True)
    f.add_local("x", "v128")
    f.get("a").emit("i32x4.splat")
    f.get("b").emit("i32x4.splat")
    f.emit("i32x4.add").set("x")
    f.get("a").emit("i32x4.splat")
    f.get("b").emit("i32x4.splat")
    f.emit("i32x4.mul")
    f.get("x").emit("v128.xor").set("x")
    f.get("x").emit("i32x4.extract_lane", 0)
    for lane in (1, 2, 3):
        f.get("x").emit("i32x4.extract_lane", lane).emit("i32.xor")
    module = mb.build()
    validate_module(module)
    return module


def test_mined_fusion_round_trips_through_serialized_artifact():
    """Acceptance: mine -> apply -> serialize -> deserialize -> link -> run."""
    module = _v128_mix_module()
    inputs = [(0, 0), (5, 9), (-3, 0x7FFFFFFF)]
    plain = Instance(module, ImportObject(), executor=Interpreter())
    reference = [plain.invoke("mix", a, b) for a, b in inputs]

    lowered = lower_module(module)
    table = mine_superinstructions(lowered)
    assert table, "the repeated splat/extract runs must clear default thresholds"
    assert all(rec["width"] >= 2 and rec["occurrences"] >= 2 for rec in table)
    formed = apply_fusion_table(lowered, table)
    assert formed > 0
    [mixed] = lowered
    assert any(kind == "fused.mined" for kind, _ in mixed.ops)

    payload = serialize_lowered(lowered, fusion_table=table)
    assert payload["fusion_table"] == table     # decisions ride in the artifact
    rebuilt = deserialize_lowered(payload)
    assert any(kind == "fused.mined" for kind, _ in rebuilt[0].ops)

    fused = Instance(module, ImportObject(), executor=Interpreter(lowered=lowered))
    replayed = Instance(module, ImportObject(), executor=Interpreter(lowered=rebuilt))
    for (a, b), expected in zip(inputs, reference):
        assert fused.invoke("mix", a, b) == expected
        assert replayed.invoke("mix", a, b) == expected


def test_mining_consumes_profiler_traces_and_histogram():
    from repro.obs import profiling

    module = _v128_mix_module()
    with profiling() as profiler:
        instance = Instance(module, ImportObject(), executor=Interpreter())
        instance.invoke("mix", 1, 2)
    assert profiler.ir_traces, "profiled execution must record serial IR traces"
    table = mine_superinstructions(profiler.ir_traces.values(),
                                   histogram=profiler.handler_histogram())
    assert table and all(rec["score"] > 0 for rec in table)
    # A histogram in which no constituent handler ever fired kills every chain.
    assert mine_superinstructions(profiler.ir_traces.values(),
                                  histogram={"_h_unrelated": 99}) == []


# -------------------------------------------------------------------- caching


def test_module_hash_keyed_on_bytes_backend_and_ir_version():
    a = module_hash(b"module-bytes", "llvm")
    assert a == module_hash(b"module-bytes", "llvm")
    assert a != module_hash(b"module-bytes!", "llvm")
    assert a != module_hash(b"module-bytes", "cranelift")
    assert a != module_hash(b"module-bytes", "llvm", ir_version=IR_VERSION + 1)


@pytest.mark.parametrize("backend_name", ["singlepass", "cranelift", "llvm"])
def test_every_backend_artifact_is_serializable(backend_name, tmp_path):
    app = compile_guest(GuestProgram(name="artifact-test", main=lambda api, args: 0))
    compiled = get_backend(backend_name).compile(app.module)
    assert isinstance(compiled.artifact, dict)
    assert compiled.artifact["ir_version"] == IR_VERSION
    cache = FileSystemCache(tmp_path)
    key = module_hash(app.wasm_bytes, backend_name)
    cache.store(key, compiled)
    loaded = cache.load(key, app.module)
    assert loaded is not None and loaded.artifact == compiled.artifact
    assert loaded.compile_seconds == 0.0
    # The reloaded artifact must yield a working executor without recompiling.
    assert loaded.make_executor() is not None


def test_filesystem_cache_rejects_stale_ir_artifacts(tmp_path):
    app = compile_guest(GuestProgram(name="stale-test", main=lambda api, args: 0))
    compiled = get_backend("cranelift").compile(app.module)
    compiled.ir_version = IR_VERSION + 1  # simulate an artifact from an older IR
    cache = FileSystemCache(tmp_path)
    key = module_hash(app.wasm_bytes, "cranelift")
    cache.store(key, compiled)
    assert cache.load(key, app.module) is None
    assert cache.stats() == {"hits": 0, "misses": 1}


def test_second_identical_compile_does_zero_work(tmp_path):
    """Acceptance: a cache hit skips lowering/codegen entirely."""
    app = compile_guest(GuestProgram(name="zero-work", main=lambda api, args: 0))
    config = EmbedderConfig(compiler_backend="llvm", cache_dir=str(tmp_path))
    embedder = MPIWasm(config)
    first = embedder.compile_module(app.wasm_bytes, app.module)
    assert not embedder.last_cache_hit and first.compile_seconds > 0
    second = embedder.compile_module(app.wasm_bytes, app.module)
    assert embedder.last_cache_hit
    assert second.compile_seconds == 0.0
    assert embedder.cache.stats() == {"hits": 1, "misses": 1}


def test_cache_dir_env_knob(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "aot"))
    config = EmbedderConfig()
    assert config.cache_dir == str(tmp_path / "aot")
    embedder = MPIWasm(config)
    assert isinstance(embedder.cache, FileSystemCache)
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert EmbedderConfig().cache_dir is None


def test_cache_counters_surface_in_metrics_and_report(tmp_path):
    program = GuestProgram(name="metrics-cache", main=None)

    def main(api, args):
        api.mpi_init()
        api.mpi_finalize()
        return 0

    program.main = main
    # A fresh on-disk cache keeps this independent of the process-wide
    # in-memory cache other tests may already have warmed.
    job = run_wasm(program, 2, machine="graviton2",
                   config=EmbedderConfig(compiler_backend="cranelift",
                                         cache_dir=str(tmp_path)))
    summary = job.metrics.cache_summary()
    # Rank 0 compiles (miss), rank 1 hits the shared in-process cache.
    assert summary["misses"] >= 1 and summary["hits"] >= 1
    assert summary["hits"] + summary["misses"] == 2
    rendered = format_cache_report(job.metrics)
    assert "hit rate" in rendered and "AoT compilation cache" in rendered
    assert job.rank_results[1].cache_hit


# -------------------------------------------------- executor interface wiring


def test_embedder_configures_executor_call_depth():
    app = compile_guest(GuestProgram(name="depth-test", main=lambda api, args: 0))
    config = EmbedderConfig(compiler_backend="cranelift", max_call_depth=64)
    embedder = MPIWasm(config)
    compiled = embedder.compile_module(app.wasm_bytes, app.module)
    executor = compiled.make_executor()
    executor.configure(max_call_depth=config.max_call_depth)
    assert executor.max_call_depth == 64
