"""Tests for :mod:`repro.serve` -- the multi-tenant job service.

The centrepiece is the end-to-end two-tenant smoke
(:class:`TestTwoTenantSmoke`): a real HTTP server with two warm workers,
an in-quota tenant whose campaign runs to completion (compiled artifacts
fetched back out of the shared on-disk cache, compile-once-per-worker
proven from the per-worker cache counters in ``/metrics``), an over-quota
tenant throttled with 429 + ``Retry-After``, and queue flooding shed with
503 (depth and shed counts visible in ``/healthz`` and ``/metrics``).
"""

from __future__ import annotations

import base64
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    BoundedJobQueue,
    JobRecord,
    JobService,
    JobStore,
    ServeConfig,
    Tenant,
    TenantStore,
    TokenBucket,
    WireError,
    create_server,
    validate_submission,
)
from repro.serve.server import ServeHTTPServer, _Handler

ALICE_KEY = "alice-key-0123456789"
BOB_KEY = "bob-key-0123456789"


# --------------------------------------------------------------- HTTP helpers


def _call(base, method, path, body=None, key=None):
    """(status, headers, parsed-json-or-bytes) for one request."""
    req = urllib.request.Request(base + path, method=method)
    if key:
        req.add_header("Authorization", f"Bearer {key}")
    data = None
    if body is not None:
        data = json.dumps(body).encode()
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, data=data, timeout=30) as resp:
            raw = resp.read()
            headers = dict(resp.headers)
            status = resp.status
    except urllib.error.HTTPError as err:
        raw = err.read()
        headers = dict(err.headers)
        status = err.code
    if headers.get("Content-Type", "").startswith("application/json"):
        return status, headers, json.loads(raw or b"{}")
    return status, headers, raw


def _wait_done(base, key, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, body = _call(base, "GET", f"/v1/jobs/{job_id}", key=key)
        assert status == 200
        if body["state"] in ("done", "error", "cancelled"):
            return body
        time.sleep(0.05)
    pytest.fail(f"job {job_id} did not finish within {timeout}s")


def _scrape(base):
    """Parse /metrics into {name: value} and {(name, labels): value}."""
    _, _, raw = _call(base, "GET", "/metrics")
    flat, labelled = {}, {}
    for line in raw.decode().splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name_part, value = line.rsplit(" ", 1)
        if "{" in name_part:
            name, labels = name_part.split("{", 1)
            labelled[(name, labels.rstrip("}"))] = float(value)
        else:
            flat[name_part] = float(value)
    return flat, labelled


# ------------------------------------------------------------------ fixtures


@pytest.fixture()
def two_tenant_server(tmp_path):
    tenants = TenantStore([
        Tenant(name="alice", key=ALICE_KEY, rate=100.0, burst=200),
        # bob's quota covers exactly one single-job submission.
        Tenant(name="bob", key=BOB_KEY, rate=100.0, burst=200, max_jobs=1),
    ])
    server = create_server(ServeConfig(
        port=0, workers=2, queue_size=32, tenants=tenants,
        backend="cranelift", cache_dir=str(tmp_path / "aot-cache"),
    ))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", server
    finally:
        server.close(drain=False)
        thread.join(10)


# -------------------------------------------------------- end-to-end smoke


class TestTwoTenantSmoke:
    def test_two_tenant_smoke(self, two_tenant_server):
        base, server = two_tenant_server

        # Unauthenticated and wrong-key requests are 401.
        assert _call(base, "GET", "/v1/jobs")[0] == 401
        assert _call(base, "GET", "/v1/jobs", key="wrong-key-000000")[0] == 401

        # alice warms both workers with identical run jobs, then runs a
        # campaign of the same module.
        run_ids = []
        for _ in range(4):
            status, _, body = _call(base, "POST", "/v1/jobs", {
                "kind": "run", "benchmark": "pingpong", "nranks": 2,
                "backend": "cranelift",
            }, key=ALICE_KEY)
            assert status == 202
            run_ids.append(body["job_id"])
        status, _, body = _call(base, "POST", "/v1/jobs", {
            "kind": "campaign",
            "spec": {"name": "smoke", "benchmarks": [
                {"benchmark": "pingpong", "nranks": [2], "backend": "cranelift",
                 "repeats": 2},
            ]},
        }, key=ALICE_KEY)
        assert status == 202
        assert body["cost"] == 2
        campaign_id = body["job_id"]

        for job_id in run_ids:
            record = _wait_done(base, ALICE_KEY, job_id)
            assert record["state"] == "done", record
        campaign_record = _wait_done(base, ALICE_KEY, campaign_id)
        assert campaign_record["state"] == "done", campaign_record

        # The campaign result names the compiled artifacts; fetch the run
        # result's artifact too and pull the bytes out of the shared cache.
        _, _, result = _call(base, "GET", f"/v1/jobs/{campaign_id}/result",
                             key=ALICE_KEY)
        campaign_result = result["result"]
        assert campaign_result["jobs_total"] == 2
        assert campaign_result["jobs_failed"] == 0
        assert len(campaign_result["artifacts"]) == 1
        artifact_key = campaign_result["artifacts"][0]

        _, _, run_result = _call(base, "GET", f"/v1/jobs/{run_ids[0]}/result",
                                 key=ALICE_KEY)
        assert run_result["result"]["artifact"]["key"] == artifact_key
        assert run_result["result"]["exit_codes"] == [0, 0]
        assert run_result["result"]["makespan"] > 0

        status, _, index = _call(base, "GET", "/v1/artifacts", key=ALICE_KEY)
        assert status == 200
        assert artifact_key in [a["key"] for a in index["artifacts"]]
        status, _, blob = _call(base, "GET", f"/v1/artifacts/{artifact_key}",
                                key=ALICE_KEY)
        assert status == 200 and isinstance(blob, bytes) and len(blob) > 0

        # Compile-once-per-worker, proven from the per-worker cache counters:
        # exactly one worker missed (compiled); every worker that ran jobs
        # got warm hits for everything else.
        flat, labelled = _scrape(base)
        misses = {labels: v for (name, labels), v in labelled.items()
                  if name == "repro_serve_worker_cache_misses"}
        hits = {labels: v for (name, labels), v in labelled.items()
                if name == "repro_serve_worker_cache_hits"}
        jobs = {labels: v for (name, labels), v in labelled.items()
                if name == "repro_serve_worker_jobs"}
        assert sum(misses.values()) == 1, (misses, hits)
        for labels, njobs in jobs.items():
            if njobs > 0:
                assert hits[labels] >= 1, (labels, hits)

        # bob is within quota for one job, then 429 with Retry-After.
        status, _, body = _call(base, "POST", "/v1/jobs", {
            "benchmark": "pingpong", "nranks": 2, "backend": "cranelift",
        }, key=BOB_KEY)
        assert status == 202
        bob_job = body["job_id"]
        status, headers, body = _call(base, "POST", "/v1/jobs", {
            "benchmark": "pingpong", "nranks": 2,
        }, key=BOB_KEY)
        assert status == 429
        assert body["code"] == "quota_exhausted"
        assert int(headers["Retry-After"]) >= 1
        assert _wait_done(base, BOB_KEY, bob_job)["state"] == "done"

        # Tenants cannot see each other's jobs.
        assert _call(base, "GET", f"/v1/jobs/{bob_job}", key=ALICE_KEY)[0] == 404
        _, _, listing = _call(base, "GET", "/v1/jobs", key=BOB_KEY)
        assert {j["tenant"] for j in listing["jobs"]} == {"bob"}

        # /healthz reflects the accounting.
        status, _, health = _call(base, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["jobs"]["done"] == 6
        assert health["admission"]["quota_refused_total"] == 1
        assert flat["repro_serve_quota_refused_total"] >= 0  # scraped earlier

    def test_rate_limit_throttles_with_retry_after(self, tmp_path):
        tenants = TenantStore([
            Tenant(name="slow", key="slow-key-0123456789", rate=0.001, burst=1),
        ])
        server = create_server(ServeConfig(
            port=0, workers=1, queue_size=4, tenants=tenants,
            backend="cranelift", cache_dir=str(tmp_path),
        ))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            body = {"benchmark": "pingpong", "nranks": 2}
            assert _call(base, "POST", "/v1/jobs", body,
                         key="slow-key-0123456789")[0] == 202
            status, headers, payload = _call(base, "POST", "/v1/jobs", body,
                                             key="slow-key-0123456789")
            assert status == 429
            assert payload["code"] == "rate_limited"
            assert int(headers["Retry-After"]) >= 1
        finally:
            server.close(drain=False)
            thread.join(10)


class TestBackpressure:
    def test_queue_flood_sheds_with_503(self, tmp_path):
        """With no workers draining, the bounded queue fills and every
        further submission is shed: 503 + Retry-After, zero buffering."""
        config = ServeConfig(
            port=0, workers=1, queue_size=2,
            tenants=TenantStore([Tenant(name="t", key="t-key-0123456789",
                                        rate=1000.0, burst=1000)]),
            cache_dir=str(tmp_path),
        )
        service = JobService(config)   # pool deliberately NOT started
        server = ServeHTTPServer((config.host, 0), _Handler)
        server.service = service
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            body = {"benchmark": "pingpong", "nranks": 2}
            for _ in range(2):
                assert _call(base, "POST", "/v1/jobs", body,
                             key="t-key-0123456789")[0] == 202
            for _ in range(3):
                status, headers, payload = _call(base, "POST", "/v1/jobs", body,
                                                 key="t-key-0123456789")
                assert status == 503
                assert payload["code"] == "queue_full"
                assert int(headers["Retry-After"]) >= 1

            _, _, health = _call(base, "GET", "/healthz")
            assert health["queue"]["depth"] == 2
            assert health["queue"]["capacity"] == 2
            assert health["queue"]["shed_total"] == 3

            flat, _ = _scrape(base)
            assert flat["repro_serve_queue_depth"] == 2
            assert flat["repro_serve_queue_shed_total"] == 3
            # Shed submissions were refunded: the ledger holds only the
            # two admitted jobs.
            assert service.admission.ledger.used("t") == 2
        finally:
            server.shutdown()
            server.server_close()
            # Never-started pool: cancel the queued records directly.
            for record in service.queue.drain_now():
                service.store.mark_cancelled(record, "test teardown")
            thread.join(10)

    def test_draining_service_refuses_with_503(self, tmp_path):
        config = ServeConfig(
            port=0, workers=1, queue_size=4,
            tenants=TenantStore([Tenant(name="t", key="t-key-0123456789")]),
            cache_dir=str(tmp_path), backend="cranelift",
        )
        server = create_server(config)
        service = server.service
        try:
            service.begin_drain()
            with pytest.raises(WireError) as excinfo:
                service.submit("t-key-0123456789",
                               {"benchmark": "pingpong", "nranks": 2})
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
            assert service.health()["status"] == "draining"
        finally:
            server.close(drain=True)

    def test_graceful_drain_finishes_queued_jobs(self, tmp_path):
        config = ServeConfig(
            port=0, workers=2, queue_size=8,
            tenants=TenantStore([Tenant(name="t", key="t-key-0123456789")]),
            cache_dir=str(tmp_path), backend="cranelift",
        )
        server = create_server(config)
        service = server.service
        accepted = [
            service.submit("t-key-0123456789",
                           {"benchmark": "pingpong", "nranks": 2})
            for _ in range(4)
        ]
        cancelled = server.close(drain=True)
        assert cancelled == 0
        for body in accepted:
            record = service.store.get(body["job_id"])
            assert record is not None and record.state == "done", record.state


# ------------------------------------------------------------- wire validation


class TestValidation:
    def _reject(self, payload, fragment):
        with pytest.raises(WireError) as excinfo:
            validate_submission(payload)
        assert excinfo.value.status == 400
        assert fragment in str(excinfo.value)

    def test_rejects_non_object_and_unknown_kind(self):
        self._reject([1, 2], "JSON object")
        self._reject({"kind": "exec"}, "unknown submission kind")

    def test_rejects_unknown_names_with_listing(self):
        self._reject({"benchmark": "nope"}, "nope")
        self._reject({"benchmark": "pingpong", "mode": "jit"}, "jit")
        self._reject({"benchmark": "pingpong", "backend": "gcc"}, "gcc")
        self._reject({"benchmark": "pingpong", "machine": "laptop"}, "laptop")

    def test_rejects_bad_nranks(self):
        self._reject({"benchmark": "pingpong", "nranks": 0}, "nranks")
        self._reject({"benchmark": "pingpong", "nranks": "four"}, "nranks")
        self._reject({"benchmark": "pingpong", "nranks": True}, "nranks")
        with pytest.raises(WireError):
            validate_submission({"benchmark": "pingpong", "nranks": 10_000_000})

    def test_campaign_cost_is_expanded_job_count(self):
        normalized = validate_submission({
            "kind": "campaign",
            "spec": {"benchmarks": [
                {"benchmark": "pingpong", "nranks": [2, 4], "repeats": 3},
            ]},
        })
        assert normalized["cost"] == 6

    def test_campaign_limits_and_bad_specs(self):
        self._reject({"kind": "campaign", "spec": {"bogus_key": 1}}, "invalid campaign spec")
        self._reject({"kind": "campaign", "spec": {}}, "zero jobs")
        with pytest.raises(WireError) as excinfo:
            validate_submission({
                "kind": "campaign",
                "spec": {"benchmarks": [
                    {"benchmark": "pingpong", "nranks": [2], "repeats": 500},
                ]},
            }, max_campaign_jobs=16)
        assert "service limit" in str(excinfo.value)

    def test_compile_rejects_bad_base64_and_hostile_modules(self):
        self._reject({"kind": "compile", "wasm_base64": "!!!"}, "base64")
        hostile = base64.b64encode(b"\x00asm" + b"\xff" * 64).decode()
        with pytest.raises(WireError) as excinfo:
            validate_submission({"kind": "compile", "wasm_base64": hostile})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_module"

    def test_compile_accepts_a_real_module(self):
        from repro.toolchain.guest import GuestProgram
        from repro.toolchain.wasicc import compile_guest

        app = compile_guest(GuestProgram(name="wire-test", main=lambda api, args: 0))
        normalized = validate_submission({
            "kind": "compile",
            "wasm_base64": base64.b64encode(app.wasm_bytes).decode(),
        })
        assert normalized["kind"] == "compile"
        assert normalized["wasm_bytes"] == app.wasm_bytes


# ------------------------------------------------------------------ auth/quota


class TestAuthAndQuota:
    def test_tenant_store_rejects_duplicates_and_weak_keys(self):
        with pytest.raises(ValueError):
            TenantStore([Tenant(name="a", key="aaaaaaaa"),
                         Tenant(name="a", key="bbbbbbbb")])
        with pytest.raises(ValueError):
            TenantStore([Tenant(name="a", key="same-key-123"),
                         Tenant(name="b", key="same-key-123")])
        with pytest.raises(ValueError):
            Tenant(name="a", key="short")

    def test_authenticate(self):
        store = TenantStore([Tenant(name="a", key="key-a-0123456789")])
        assert store.authenticate("key-a-0123456789").name == "a"
        with pytest.raises(WireError) as excinfo:
            store.authenticate("key-b-0123456789")
        assert excinfo.value.status == 401
        with pytest.raises(WireError):
            store.authenticate(None)

    def test_tenants_file_round_trip(self, tmp_path):
        store = TenantStore([Tenant(name="a", key="key-a-0123456789",
                                    rate=2.0, burst=5, max_jobs=7)])
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(store.to_mapping()))
        loaded = TenantStore.from_file(path)
        tenant = loaded.authenticate("key-a-0123456789")
        assert (tenant.rate, tenant.burst, tenant.max_jobs) == (2.0, 5, 7)

    def test_token_bucket_refills_monotonically(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        retry = bucket.acquire()
        assert retry > 0
        time.sleep(retry + 0.02)
        assert bucket.acquire() == 0.0


# ----------------------------------------------------------------- job store


class TestJobStore:
    def _record(self, i, state="queued"):
        record = JobRecord(job_id=f"job-{i}", tenant="t", kind="run", payload={})
        record.state = state
        return record

    def test_retention_evicts_finished_not_live(self):
        store = JobStore(max_records=3)
        live = self._record(0, "running")
        store.add(live)
        for i in range(1, 6):
            store.add(self._record(i, "done"))
        assert len(store) == 3
        assert store.get("job-0") is live          # in-flight survives
        assert store.get("job-5") is not None      # newest survives

    def test_tenant_scoping(self):
        store = JobStore()
        store.add(JobRecord(job_id="x", tenant="a", kind="run", payload={}))
        assert store.get("x", tenant="a") is not None
        assert store.get("x", tenant="b") is None

    def test_bounded_queue_sheds_at_capacity(self):
        q = BoundedJobQueue(2)
        a, b, c = (self._record(i) for i in range(3))
        assert q.try_put(a) and q.try_put(b)
        assert not q.try_put(c)
        assert q.depth() == 2


# ----------------------------------------------------------- artifact hygiene


class TestArtifacts:
    def test_artifact_key_validation_blocks_traversal(self, tmp_path):
        config = ServeConfig(
            port=0, workers=1, queue_size=2,
            tenants=TenantStore([Tenant(name="t", key="t-key-0123456789")]),
            cache_dir=str(tmp_path),
        )
        service = JobService(config)   # no pool needed
        (tmp_path / "secret.mpiwasm").write_bytes(b"data")
        for hostile in ("../secret", "..%2Fsecret", "secret", "A" * 64):
            with pytest.raises(WireError) as excinfo:
                service.artifact_bytes("t-key-0123456789", hostile)
            assert excinfo.value.status == 400
        with pytest.raises(WireError) as excinfo:
            service.artifact_bytes("t-key-0123456789", "0" * 64)
        assert excinfo.value.status == 404


class TestArtifactVerification:
    """Artifact GETs run the static IR verifier before streaming bytes."""

    KEY = "a" * 64

    def _service(self, tmp_path):
        config = ServeConfig(
            port=0, workers=1, queue_size=2,
            tenants=TenantStore([Tenant(name="t", key="t-key-0123456789")]),
            cache_dir=str(tmp_path),
        )
        return JobService(config)   # no pool needed

    def _write(self, tmp_path, payload):
        import pickle

        (tmp_path / f"{self.KEY}.mpiwasm").write_bytes(pickle.dumps(payload))

    def _lowered_payload(self):
        from repro.wasm import ModuleBuilder, validate_module
        from repro.wasm.lowering import lower_module, serialize_lowered

        mb = ModuleBuilder(name="serve-artifact")
        f = mb.function("one", params=[], results=["i32"], export=True)
        f.i32_const(1)
        module = mb.build()
        validate_module(module)
        return serialize_lowered(lower_module(module))

    def test_clean_artifact_streams(self, tmp_path):
        service = self._service(tmp_path)
        self._write(tmp_path, {"artifact": self._lowered_payload()})
        raw = service.artifact_bytes("t-key-0123456789", self.KEY)
        assert raw
        assert service.metrics.counter("serve.artifact_verify_failures") == 0

    def test_corrupt_lowered_ir_is_500_and_counted(self, tmp_path):
        service = self._service(tmp_path)
        payload = self._lowered_payload()
        payload["functions"][0]["ops"][0][0] = "i32.frobnicate"
        self._write(tmp_path, {"artifact": payload})
        with pytest.raises(WireError) as excinfo:
            service.artifact_bytes("t-key-0123456789", self.KEY)
        assert excinfo.value.status == 500
        assert excinfo.value.code == "artifact_corrupt"
        assert "failed static verification" in excinfo.value.message
        assert service.metrics.counter("serve.artifact_verify_failures") == 1

    def test_unpicklable_artifact_is_500_and_counted(self, tmp_path):
        service = self._service(tmp_path)
        (tmp_path / f"{self.KEY}.mpiwasm").write_bytes(b"\x80garbage not a pickle")
        with pytest.raises(WireError) as excinfo:
            service.artifact_bytes("t-key-0123456789", self.KEY)
        assert excinfo.value.status == 500
        assert excinfo.value.code == "artifact_corrupt"
        assert service.metrics.counter("serve.artifact_verify_failures") == 1

    def test_non_lowered_artifact_still_streams(self, tmp_path):
        # Backends whose artifacts carry no lowered IR are passed through.
        service = self._service(tmp_path)
        self._write(tmp_path, {"artifact": {"kind": "module", "blob": b"x"}})
        assert service.artifact_bytes("t-key-0123456789", self.KEY)

    def test_metric_appears_in_metrics_text(self, tmp_path):
        service = self._service(tmp_path)
        payload = self._lowered_payload()
        payload["functions"][0]["ops"][0][0] = "i32.frobnicate"
        self._write(tmp_path, {"artifact": payload})
        with pytest.raises(WireError):
            service.artifact_bytes("t-key-0123456789", self.KEY)
        text = service.metrics_text()
        assert "repro_serve_artifact_verify_failures 1" in text
        assert "repro_serve_artifact_verify_failures_total" not in text


class TestCancellation:
    """DELETE /v1/jobs/<id>: tenant-scoped cancellation of queued jobs."""

    def _quiet_service(self, tmp_path):
        """Service whose pool never starts: submissions stay QUEUED."""
        config = ServeConfig(
            port=0, workers=1, queue_size=8,
            tenants=TenantStore([
                Tenant(name="t", key="t-key-0123456789", rate=1000.0, burst=1000),
                Tenant(name="u", key="u-key-0123456789", rate=1000.0, burst=1000),
            ]),
            cache_dir=str(tmp_path),
        )
        service = JobService(config)
        server = ServeHTTPServer((config.host, 0), _Handler)
        server.service = service
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        return service, server, thread, f"http://{host}:{port}"

    def test_cancel_queued_job_refunds_and_counts(self, tmp_path):
        service, server, thread, base = self._quiet_service(tmp_path)
        try:
            _, _, accepted = _call(base, "POST", "/v1/jobs", {
                "benchmark": "pingpong", "nranks": 2,
            }, key="t-key-0123456789")
            job_id = accepted["job_id"]
            assert service.admission.ledger.used("t") == 1

            status, _, body = _call(base, "DELETE", f"/v1/jobs/{job_id}",
                                    key="t-key-0123456789")
            assert status == 200
            assert body["state"] == "cancelled"
            assert service.admission.ledger.used("t") == 0, "quota refunded"
            flat, _ = _scrape(base)
            assert flat["repro_serve_jobs_cancelled_total"] == 1

            # A second DELETE conflicts: the job already finished (cancelled).
            status, _, body = _call(base, "DELETE", f"/v1/jobs/{job_id}",
                                    key="t-key-0123456789")
            assert status == 409 and body["code"] == "finished"
        finally:
            server.shutdown()
            server.server_close()
            for record in service.queue.drain_now():
                service.store.mark_cancelled(record, "test teardown")
            thread.join(10)

    def test_cancel_is_tenant_scoped_and_404s_missing(self, tmp_path):
        service, server, thread, base = self._quiet_service(tmp_path)
        try:
            _, _, accepted = _call(base, "POST", "/v1/jobs", {
                "benchmark": "pingpong", "nranks": 2,
            }, key="t-key-0123456789")
            job_id = accepted["job_id"]
            # Another tenant's job reads as absent, not forbidden.
            status, _, body = _call(base, "DELETE", f"/v1/jobs/{job_id}",
                                    key="u-key-0123456789")
            assert status == 404 and body["code"] == "not_found"
            assert _call(base, "DELETE", "/v1/jobs/nope",
                         key="t-key-0123456789")[0] == 404
            assert _call(base, "DELETE", f"/v1/jobs/{job_id}")[0] == 401
            # Still queued: the failed cancels changed nothing.
            record = service.store.get(job_id)
            assert record.state == "queued"
        finally:
            server.shutdown()
            server.server_close()
            for record in service.queue.drain_now():
                service.store.mark_cancelled(record, "test teardown")
            thread.join(10)

    def test_cancel_running_job_conflicts(self, tmp_path):
        config = ServeConfig(
            port=0, workers=1, queue_size=4,
            tenants=TenantStore([Tenant(name="t", key="t-key-0123456789")]),
            cache_dir=str(tmp_path),
        )
        service = JobService(config)   # no pool: drive the transition by hand
        accepted = service.submit("t-key-0123456789",
                                  {"benchmark": "pingpong", "nranks": 2})
        record = service.store.get(accepted["job_id"])
        assert service.store.mark_running(record, worker="w0")
        with pytest.raises(WireError) as excinfo:
            service.cancel_job("t-key-0123456789", record.job_id)
        assert excinfo.value.status == 409
        assert excinfo.value.code == "running"
        service.store.mark_cancelled(record, "test teardown")

    def test_cancel_finished_job_conflicts(self, two_tenant_server):
        base, _server = two_tenant_server
        _, _, accepted = _call(base, "POST", "/v1/jobs", {
            "benchmark": "pingpong", "nranks": 2, "backend": "cranelift",
        }, key=ALICE_KEY)
        assert _wait_done(base, ALICE_KEY, accepted["job_id"])["state"] == "done"
        status, _, body = _call(base, "DELETE", f"/v1/jobs/{accepted['job_id']}",
                                key=ALICE_KEY)
        assert status == 409 and body["code"] == "finished"


class TestServeJournal:
    """serve --journal-dir: jobs survive a service restart."""

    def _config(self, tmp_path):
        return ServeConfig(
            port=0, workers=1, queue_size=8,
            tenants=TenantStore([Tenant(name="t", key="t-key-0123456789")]),
            cache_dir=str(tmp_path / "cache"), backend="cranelift",
            journal_dir=str(tmp_path / "journal"),
        )

    def test_restart_restores_finished_and_requeues_unfinished(self, tmp_path):
        from repro.fault.journal import Journal

        first = JobService(self._config(tmp_path))
        first.start()
        try:
            done_id = first.submit("t-key-0123456789", {
                "benchmark": "pingpong", "nranks": 2})["job_id"]
            deadline = time.monotonic() + 60
            while not first.store.get(done_id).finished:
                assert time.monotonic() < deadline
                time.sleep(0.05)
        finally:
            first.shutdown(drain=True)
        # Forge a job the service accepted but never finished (as if the
        # process was killed mid-run): journal it behind the service's back.
        journal = Journal(tmp_path / "journal")
        journal.record("accepted", "lostjob0000000aa", tenant="t", kind="run",
                       cost=1, payload={"kind": "run", "benchmark": "pingpong",
                                        "nranks": 2})
        journal.record("started", "lostjob0000000aa", worker="w0")

        second = JobService(self._config(tmp_path))
        try:
            restored = second.store.get(done_id)
            assert restored is not None and restored.state == "done"
            assert restored.result["exit_codes"] == [0, 0]
            assert second.store.get("lostjob0000000aa").state == "queued"
            assert second.queue.depth() == 1, "unfinished job re-queued"
            assert second.metrics.counter("serve.jobs.requeued") == 1
            # Replay re-appended nothing: the done job stays accepted once.
            accepted = [r for r in journal.events()
                        if r["event"] == "accepted" and r["job_id"] == done_id]
            assert len(accepted) == 1
            # Run the re-queued job to completion on the new service.
            second.start()
            deadline = time.monotonic() + 60
            while not second.store.get("lostjob0000000aa").finished:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            assert second.store.get("lostjob0000000aa").state == "done"
        finally:
            second.shutdown(drain=True)

    def test_cancellation_is_durable_across_restart(self, tmp_path):
        first = JobService(self._config(tmp_path))   # pool never started
        job_id = first.submit("t-key-0123456789", {
            "benchmark": "pingpong", "nranks": 2})["job_id"]
        assert first.cancel_job("t-key-0123456789", job_id)["state"] == "cancelled"
        first.shutdown(drain=False)

        second = JobService(self._config(tmp_path))
        try:
            record = second.store.get(job_id)
            assert record is not None and record.state == "cancelled"
            assert second.queue.depth() == 0, "cancelled jobs are not re-queued"
        finally:
            second.shutdown(drain=False)


class TestPoolVerifyFlag:
    def test_pool_lifetime_scopes_verify_on_load(self):
        from repro.serve.pool import WorkerPool
        from repro.wasm import lowering

        class _FakeSession:
            def close(self):
                pass

        store = JobStore()
        queue = BoundedJobQueue(capacity=2)
        pool = WorkerPool(1, lambda name: _FakeSession(), store, queue)
        assert lowering.VERIFY_ON_LOAD is False
        pool.start()
        try:
            assert lowering.VERIFY_ON_LOAD is True
        finally:
            pool.stop(drain=False, timeout=2.0)
        assert lowering.VERIFY_ON_LOAD is False
