"""Test suite for the MPIWasm reproduction."""
