"""Tests for the pluggable collective-algorithm subsystem.

Covers:

* registry contents (every collective has at least two algorithms),
* cross-algorithm payload equivalence -- every registered algorithm of a
  collective produces byte-identical results on randomized payloads, sizes
  and communicator sizes, including non-power-of-two rank counts,
* the size-based decision table and forced overrides,
* the ``REPRO_COLL_ALGO`` environment knob end-to-end
  (guest -> embedder -> dispatcher), and the ``EmbedderConfig`` override.

The reduction equivalence cases use order-insensitive (op, dtype) pairs --
integer SUM/XOR and floating-point MAX -- because, exactly as in real MPI
libraries, different reduction algorithms combine contributions in different
orders and floating-point addition is not associative.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import datatypes, ops
from repro.mpi.algorithms import CollectiveSelector, DecisionTable, Rule, registry
from repro.mpi.algorithms.decision import ENV_KNOB, parse_env_knob
from repro.mpi.runtime import MPIRuntime, MPIWorld
from repro.sim.cluster import Cluster
from repro.sim.engine import SimEngine
from repro.sim.machines import graviton2

#: Rank counts exercising both power-of-two and non-power-of-two topologies.
RANK_COUNTS = (2, 3, 5, 8)

#: Randomized payload sizes in elements (odd, smaller than p, larger than p).
ELEMENT_COUNTS = (1, 3, 13, 260)


def run_with_algorithm(program, nranks: int, forced=None):
    """Run ``program(runtime, ctx)`` per rank with forced collective algorithms."""
    preset = graviton2()
    cluster = Cluster(preset, nranks, min(nranks, preset.cores_per_node))
    engine = SimEngine(nranks)
    world = MPIWorld.install(cluster, engine)
    if forced:
        world.collectives.force_many(forced)

    def make(rank):
        def rank_main(ctx):
            runtime = MPIRuntime(world, ctx)
            runtime.init()
            result = program(runtime, ctx)
            runtime.finalize()
            return result

        return rank_main

    engine.spawn_all(make)
    return engine.run(), world


def _payload(seed: int, nbytes: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8)


# ------------------------------------------------------------------- registry


def test_every_collective_has_at_least_two_algorithms():
    catalog = registry.catalog()
    assert set(catalog) == set(registry.COLLECTIVES)
    for collective, algorithms in catalog.items():
        assert len(algorithms) >= 2, f"{collective} has only {algorithms}"


def test_unknown_algorithm_raises():
    with pytest.raises(registry.UnknownAlgorithmError):
        registry.get("bcast", "definitely-not-an-algorithm")


# ------------------------------------------------- cross-algorithm equivalence


@pytest.mark.parametrize("nranks", RANK_COUNTS)
@pytest.mark.parametrize("count", ELEMENT_COUNTS)
def test_bcast_algorithms_equivalent(nranks, count):
    expected = _payload(count * 7 + nranks, count)
    root = nranks - 1
    per_algorithm = {}
    for algorithm in registry.algorithms_for("bcast"):
        def program(rt, ctx):
            buf = expected.copy() if ctx.rank == root else np.zeros(count, dtype=np.uint8)
            rt.bcast(buf, count, datatypes.BYTE, root=root)
            return buf.tobytes()

        results, _ = run_with_algorithm(program, nranks, {"bcast": algorithm})
        assert all(r == expected.tobytes() for r in results), algorithm
        per_algorithm[algorithm] = results
    assert len({tuple(r) for r in per_algorithm.values()}) == 1


@pytest.mark.parametrize("nranks", RANK_COUNTS)
@pytest.mark.parametrize("count", ELEMENT_COUNTS)
@pytest.mark.parametrize("op,dtype,npdtype", [
    (ops.SUM, datatypes.LONG, np.int64),
    (ops.BXOR, datatypes.INT, np.int32),
    (ops.MAX, datatypes.DOUBLE, np.float64),
])
def test_reduce_algorithms_equivalent(nranks, count, op, dtype, npdtype):
    # Root 0 is a folded-out rank in Rabenseifner's pre-phase whenever the
    # communicator size is not a power of two -- deliberately exercised here.
    root = 0
    rng = np.random.default_rng(count * 31 + nranks)
    inputs = [
        rng.integers(-1000, 1000, size=count).astype(npdtype) for _ in range(nranks)
    ]
    expected = inputs[0].copy()
    for contribution in inputs[1:]:
        expected = op.apply(expected, contribution).astype(npdtype)
    per_algorithm = {}
    for algorithm in registry.algorithms_for("reduce"):
        def program(rt, ctx):
            recv = np.zeros(count, dtype=npdtype) if ctx.rank == root else None
            rt.reduce(inputs[ctx.rank].copy(), recv, count, dtype, op, root=root)
            return recv.tobytes() if ctx.rank == root else None

        results, _ = run_with_algorithm(program, nranks, {"reduce": algorithm})
        assert results[root] == expected.tobytes(), algorithm
        per_algorithm[algorithm] = results[root]
    assert len(set(per_algorithm.values())) == 1


@pytest.mark.parametrize("nranks", RANK_COUNTS)
@pytest.mark.parametrize("count", ELEMENT_COUNTS)
@pytest.mark.parametrize("op,dtype,npdtype", [
    (ops.SUM, datatypes.LONG, np.int64),
    (ops.BOR, datatypes.INT, np.int32),
    (ops.MIN, datatypes.DOUBLE, np.float64),
])
def test_allreduce_algorithms_equivalent(nranks, count, op, dtype, npdtype):
    rng = np.random.default_rng(count * 13 + nranks)
    inputs = [
        rng.integers(-1000, 1000, size=count).astype(npdtype) for _ in range(nranks)
    ]
    expected = inputs[0].copy()
    for contribution in inputs[1:]:
        expected = op.apply(expected, contribution).astype(npdtype)
    per_algorithm = {}
    for algorithm in registry.algorithms_for("allreduce"):
        def program(rt, ctx):
            recv = np.zeros(count, dtype=npdtype)
            rt.allreduce(inputs[ctx.rank].copy(), recv, count, dtype, op)
            return recv.tobytes()

        results, _ = run_with_algorithm(program, nranks, {"allreduce": algorithm})
        assert all(r == expected.tobytes() for r in results), algorithm
        per_algorithm[algorithm] = tuple(results)
    assert len(set(per_algorithm.values())) == 1


@pytest.mark.parametrize("nranks", RANK_COUNTS)
@pytest.mark.parametrize("block", (1, 7, 65))
def test_allgather_algorithms_equivalent(nranks, block):
    blocks = [_payload(rank * 101 + block, block) for rank in range(nranks)]
    expected = b"".join(b.tobytes() for b in blocks)
    per_algorithm = {}
    for algorithm in registry.algorithms_for("allgather"):
        def program(rt, ctx):
            recv = np.zeros(block * nranks, dtype=np.uint8)
            rt.allgather(blocks[ctx.rank].copy(), block, datatypes.BYTE, recv, block, datatypes.BYTE)
            return recv.tobytes()

        results, _ = run_with_algorithm(program, nranks, {"allgather": algorithm})
        assert all(r == expected for r in results), algorithm
        per_algorithm[algorithm] = tuple(results)
    assert len(set(per_algorithm.values())) == 1


@pytest.mark.parametrize("nranks", RANK_COUNTS)
@pytest.mark.parametrize("block", (1, 9, 33))
def test_alltoall_algorithms_equivalent(nranks, block):
    matrix = [_payload(rank * 211 + block, block * nranks) for rank in range(nranks)]
    per_algorithm = {}
    for algorithm in registry.algorithms_for("alltoall"):
        def program(rt, ctx):
            recv = np.zeros(block * nranks, dtype=np.uint8)
            rt.alltoall(matrix[ctx.rank].copy(), block, datatypes.BYTE, recv, block, datatypes.BYTE)
            return recv.tobytes()

        results, _ = run_with_algorithm(program, nranks, {"alltoall": algorithm})
        for rank, received in enumerate(results):
            expected = b"".join(
                matrix[src][rank * block : (rank + 1) * block].tobytes()
                for src in range(nranks)
            )
            assert received == expected, algorithm
        per_algorithm[algorithm] = tuple(results)
    assert len(set(per_algorithm.values())) == 1


@pytest.mark.parametrize("nranks", RANK_COUNTS)
@pytest.mark.parametrize("block", (1, 17))
@pytest.mark.parametrize("root", (0, 1))
def test_gather_and_scatter_algorithms_equivalent(nranks, block, root):
    blocks = [_payload(rank * 19 + block, block) for rank in range(nranks)]
    gathered_expected = b"".join(b.tobytes() for b in blocks)
    for collective in ("gather", "scatter"):
        per_algorithm = {}
        for algorithm in registry.algorithms_for(collective):
            def program(rt, ctx):
                if collective == "gather":
                    recv = np.zeros(block * nranks, dtype=np.uint8) if ctx.rank == root else None
                    rt.gather(blocks[ctx.rank].copy(), block, datatypes.BYTE,
                              recv, block, datatypes.BYTE, root=root)
                    return recv.tobytes() if ctx.rank == root else None
                send = (
                    np.frombuffer(gathered_expected, dtype=np.uint8).copy()
                    if ctx.rank == root else None
                )
                recv = np.zeros(block, dtype=np.uint8)
                rt.scatter(send, block, datatypes.BYTE, recv, block, datatypes.BYTE, root=root)
                return recv.tobytes()

            results, _ = run_with_algorithm(program, nranks, {collective: algorithm})
            if collective == "gather":
                assert results[root] == gathered_expected, algorithm
            else:
                for rank, received in enumerate(results):
                    assert received == blocks[rank].tobytes(), algorithm
            per_algorithm[algorithm] = tuple(results)
        assert len(set(per_algorithm.values())) == 1, collective


@pytest.mark.parametrize("nranks", RANK_COUNTS)
def test_barrier_algorithms_synchronise(nranks):
    for algorithm in registry.algorithms_for("barrier"):
        def program(rt, ctx):
            ctx.advance(0.001 * (ctx.rank + 1))
            rt.barrier()
            return rt.wtime()

        times, _ = run_with_algorithm(program, nranks, {"barrier": algorithm})
        # After the barrier no rank may be earlier than the slowest entrant.
        assert min(times) >= 0.001 * nranks, algorithm


# ----------------------------------------------------------- decision layer


def test_decision_table_picks_by_message_size():
    table = DecisionTable()
    assert table.decide("allreduce", 64, 16) == "recursive_doubling"
    assert table.decide("allreduce", 1 << 20, 16) == "ring"
    assert table.decide("bcast", 1 << 20, 64) == "scatter_allgather"
    assert table.decide("reduce", 1 << 20, 64) == "rabenseifner"
    assert table.decide("alltoall", 64, 64) == "linear"
    assert table.decide("alltoall", 1 << 20, 64) == "pairwise"


def test_decision_table_picks_by_communicator_size():
    table = DecisionTable()
    assert table.decide("barrier", 0, 2) == "linear"
    assert table.decide("barrier", 0, 64) == "dissemination"
    # Large payload but tiny communicator: the rank rule wins for bcast.
    assert table.decide("bcast", 1 << 20, 2) == "binomial"


def test_custom_rules_override_defaults():
    table = DecisionTable({"allreduce": (Rule("ring"),)})
    assert table.decide("allreduce", 1, 2) == "ring"
    # Other collectives keep their defaults.
    assert table.decide("barrier", 0, 64) == "dissemination"


def test_selector_force_wins_over_table():
    selector = CollectiveSelector()
    assert selector.decide("allreduce", 64, 16) == "recursive_doubling"
    selector.force("allreduce", "ring")
    assert selector.decide("allreduce", 64, 16) == "ring"
    selector.force("allreduce", None)
    assert selector.decide("allreduce", 64, 16) == "recursive_doubling"


def test_selector_rejects_unknown_algorithm():
    selector = CollectiveSelector()
    with pytest.raises(registry.UnknownAlgorithmError):
        selector.force("allreduce", "nope")
    with pytest.raises(ValueError):
        selector.force("not-a-collective", "ring")


def test_parse_env_knob():
    assert parse_env_knob("") == {}
    assert parse_env_knob("allreduce:ring") == {"allreduce": "ring"}
    assert parse_env_knob("allreduce:ring, bcast:binomial") == {
        "allreduce": "ring",
        "bcast": "binomial",
    }
    with pytest.raises(ValueError):
        parse_env_knob("allreduce=ring")
    with pytest.raises(KeyError):
        parse_env_knob("allreduce:nope")


# --------------------------------------------------- end-to-end knob plumbing


def _bcast_guest():
    from repro.toolchain import mpi_header as abi
    from repro.toolchain.guest import GuestProgram

    def main(api, args):
        api.mpi_init()
        ptr, arr = api.alloc_array(256, abi.MPI_BYTE)
        if api.rank() == 0:
            arr[:] = np.arange(256, dtype=np.uint8)
        api.bcast(ptr, 256, abi.MPI_BYTE, 0)
        api.mpi_finalize()
        return bytes(arr)

    return GuestProgram(name="bcast-knob", main=main)


def test_env_knob_forces_algorithm_end_to_end(monkeypatch):
    """``REPRO_COLL_ALGO`` reaches the dispatcher through a real Wasm guest."""
    from repro.core.launcher import run_wasm

    monkeypatch.setenv(ENV_KNOB, "bcast:scatter_allgather,barrier:linear")
    job = run_wasm(_bcast_guest(), 3, machine="graviton2")
    expected = bytes(np.arange(256, dtype=np.uint8))
    assert all(v == expected for v in job.return_values())
    summary = job.metrics.collective_summary()
    # Every bcast call went through the forced algorithm, none elsewhere.
    assert summary["bcast"]["algorithms"] == {"scatter_allgather": 3}
    assert summary["bcast"]["calls"] == 3
    assert summary["bcast"]["bytes"] == 256 * 3


def test_malformed_env_knob_fails_loudly(monkeypatch):
    from repro.core.launcher import run_wasm
    from repro.sim.engine import RankFailedError

    monkeypatch.setenv(ENV_KNOB, "bcast:no-such-algorithm")
    with pytest.raises((KeyError, RankFailedError)):
        run_wasm(_bcast_guest(), 2, machine="graviton2")


def test_config_override_forces_algorithm(monkeypatch):
    from repro.core.config import EmbedderConfig
    from repro.core.launcher import run_wasm

    # The config override must beat the environment knob.
    monkeypatch.setenv(ENV_KNOB, "bcast:binomial")
    config = EmbedderConfig(collective_algorithms={"bcast": "scatter_allgather"})
    job = run_wasm(_bcast_guest(), 2, machine="graviton2", config=config)
    summary = job.metrics.collective_summary()
    assert summary["bcast"]["algorithms"] == {"scatter_allgather": 2}


def test_native_run_honours_forced_algorithms():
    from repro.core.launcher import run_native

    job = run_native(
        _bcast_guest(), 2, machine="graviton2",
        collective_algorithms={"bcast": "scatter_allgather"},
    )
    summary = job.metrics.collective_summary()
    assert summary["bcast"]["algorithms"] == {"scatter_allgather": 2}


def test_algosweep_restores_job_level_force():
    """The sweep guest must hand back any REPRO_COLL_ALGO/config force it
    temporarily overrode, not clear it."""
    from repro.baselines.native import NativeAPI
    from repro.benchmarks_suite.imb import make_imb_algorithm_sweep_program

    preset = graviton2()
    nranks = 3
    cluster = Cluster(preset, nranks, nranks)
    engine = SimEngine(nranks)
    world = MPIWorld.install(cluster, engine)
    world.collectives.force("allreduce", "ring")
    program = make_imb_algorithm_sweep_program("allreduce", message_sizes=(64,), iterations=1)

    def make(rank):
        def rank_main(ctx):
            return program.main(NativeAPI(MPIRuntime(world, ctx)), [])

        return rank_main

    engine.spawn_all(make)
    results = engine.run()
    assert set(results[0]["algorithms"]) == set(registry.algorithms_for("allreduce"))
    assert world.collectives.forced() == {"allreduce": "ring"}


def test_collective_report_renders(monkeypatch):
    from repro.core.launcher import run_wasm
    from repro.harness.report import format_collective_report

    job = run_wasm(_bcast_guest(), 2, machine="graviton2")
    text = format_collective_report(job.metrics)
    assert "bcast" in text
    assert "binomial:2" in text
