"""Tests for the guest benchmark suites and the baselines (native, Faasm)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.faasm import FaabricMessageBus, FaasmConfig, FaasmPlatform
from repro.benchmarks_suite import registry
from repro.benchmarks_suite.custom_pingpong import make_translation_pingpong_program
from repro.benchmarks_suite.hpcg import make_hpcg_program
from repro.benchmarks_suite.imb import ROUTINES, make_imb_program, make_imb_suite_program
from repro.benchmarks_suite.ior import make_ior_program
from repro.benchmarks_suite.npb import make_dt_program, make_is_program
from repro.core import EmbedderConfig, run_native, run_wasm

SIZES = (16, 1024)


# ------------------------------------------------------------------------ IMB


@pytest.mark.parametrize("routine", ["pingpong", "sendrecv", "bcast", "allreduce", "reduce"])
def test_imb_routines_run_under_wasm_and_report_rows(routine):
    nranks = 2 if routine == "pingpong" else 3
    job = run_wasm(make_imb_program(routine, message_sizes=SIZES, iterations=2), nranks,
                   machine="graviton2")
    rows = job.return_values()[0]["rows"]
    assert set(rows) == set(SIZES)
    for row in rows.values():
        assert row["t_avg_us"] > 0
        assert row["t_min_us"] <= row["t_avg_us"] <= row["t_max_us"]


@pytest.mark.parametrize("routine", ["allgather", "alltoall", "gather", "scatter"])
def test_imb_rooted_and_allto_routines_native(routine):
    job = run_native(make_imb_program(routine, message_sizes=SIZES, iterations=2), 4,
                     machine="graviton2")
    rows = job.return_values()[0]["rows"]
    assert all(row["t_avg_us"] > 0 for row in rows.values())


def test_imb_iteration_time_grows_with_message_size():
    job = run_native(make_imb_program("pingpong", message_sizes=(64, 65536), iterations=3), 2,
                     machine="graviton2")
    rows = job.return_values()[0]["rows"]
    assert rows[65536]["t_avg_us"] > rows[64]["t_avg_us"]


def test_imb_suite_program_runs_multiple_routines():
    job = run_wasm(make_imb_suite_program(routines=("pingpong", "bcast"), message_sizes=(64,),
                                          iterations=1), 2, machine="graviton2")
    assert set(job.return_values()[0]["routines"]) == {"pingpong", "bcast"}


def test_registry_contains_all_benchmarks():
    names = registry.names()
    for expected in [*ROUTINES, "hpcg", "ior", "is", "dt-bh", "translation-pingpong"]:
        assert expected in names
    assert registry.get_program("hpcg").name == "hpcg"
    with pytest.raises(KeyError):
        registry.get_program("linpack")


# ----------------------------------------------------------------------- HPCG


def test_hpcg_converges_and_reports_metrics_wasm_vs_native():
    program = make_hpcg_program(dims=(8, 4, 4), iterations=5)
    wasm = run_wasm(program, 2, machine="graviton2",
                    config=EmbedderConfig(compiler_backend="llvm"))
    native = run_native(program, 2, machine="graviton2")
    for job in (wasm, native):
        result = job.return_values()[0]
        assert result["converging"]
        assert result["gflops_total"] > 0
        assert result["bandwidth_gb_s"] > 0
        assert result["allreduce_calls"] == 2 * 5 + 1
    # Same algorithm, same data: the residuals must agree across modes.
    assert wasm.return_values()[0]["residual_final"] == pytest.approx(
        native.return_values()[0]["residual_final"], rel=1e-9
    )
    assert wasm.makespan >= native.makespan


def test_hpcg_wasm_kernels_execute_real_wasm_code():
    job = run_wasm(make_hpcg_program(dims=(4, 4, 2), iterations=2), 1, machine="graviton2")
    result = job.rank_results[0]
    # The ddot kernel never goes through MPI, but malloc does get exercised,
    # and the module must have been AoT compiled (compile time recorded).
    assert result.compile_seconds >= 0.0
    assert result.call_counts["MPI_Allreduce"] == 5


# ---------------------------------------------------------------------- NPB IS


def test_is_benchmark_sorts_and_reports_mops():
    job = run_wasm(make_is_program("S"), 4, machine="graviton2")
    results = job.return_values()
    assert all(r["sorted_ok"] for r in results)
    assert all(r["mops_total"] > 0 for r in results)
    # The verification checksum is an allreduce, so every rank agrees on it.
    assert len({r["checksum"] for r in results}) == 1


def test_is_native_and_wasm_agree_on_checksum():
    program = make_is_program("S")
    wasm = run_wasm(program, 2, machine="graviton2")
    native = run_native(program, 2, machine="graviton2")
    assert wasm.return_values()[0]["checksum"] == native.return_values()[0]["checksum"]


# ---------------------------------------------------------------------- NPB DT


@pytest.mark.parametrize("topology", ["bh", "wh"])
def test_dt_topologies_move_expected_volume(topology):
    job = run_wasm(make_dt_program(topology, "S"), 4, machine="graviton2")
    results = job.return_values()
    total_bytes = sum(r["bytes_moved"] for r in results)
    elems = 1 << 10
    # bh: 3 feeders send to rank 0 (each message counted at both endpoints).
    assert total_bytes == 2 * 3 * elems * 8
    assert all(r["throughput_mb_s"] > 0 for r in results)


def test_dt_simd_flag_is_carried_through():
    with_simd = make_dt_program("bh", "S", simd=True)
    without = with_simd.with_simd(False)
    assert with_simd.simd and not without.simd
    job = run_wasm(without, 2, machine="graviton2")
    assert job.return_values()[0]["simd"] is True or job.return_values()[0]["simd"] is False


# ------------------------------------------------------------------------- IOR


def test_ior_round_trips_data_through_wasi_and_reports_bandwidth():
    job = run_wasm(make_ior_program(block_size=1 << 20, functional_bytes=1 << 14), 2,
                   machine="supermuc-ng", ranks_per_node=1)
    result = job.return_values()[0]
    assert result["data_ok"]
    assert result["written_bytes"] == 1 << 14
    assert result["read_bandwidth_mib_s"] > 0
    assert result["write_bandwidth_mib_s"] > 0


def test_ior_native_path_also_round_trips():
    job = run_native(make_ior_program(block_size=1 << 20, functional_bytes=1 << 12), 2,
                     machine="supermuc-ng", ranks_per_node=1)
    assert all(r["data_ok"] for r in job.return_values())


# ------------------------------------------------------------ translation probe


def test_translation_pingpong_records_per_datatype_samples():
    job = run_wasm(make_translation_pingpong_program(message_sizes=(8, 1024), iterations=1), 2,
                   machine="graviton2")
    rows = job.return_values()[0]["rows"]
    assert set(rows) == {"MPI_BYTE", "MPI_CHAR", "MPI_INT", "MPI_FLOAT", "MPI_DOUBLE", "MPI_LONG"}
    for name in rows:
        assert job.metrics.series(f"embedder.translation.{name}").count > 0


def test_translation_pingpong_single_rank_skips():
    job = run_wasm(make_translation_pingpong_program(message_sizes=(8,), iterations=1), 1,
                   machine="graviton2")
    assert "skipped" in job.return_values()[0]


# ----------------------------------------------------------------------- Faasm


def test_faabric_bus_moves_messages_in_order():
    bus = FaabricMessageBus()
    bus.send(0, 1, 7, b"first")
    bus.send(0, 1, 7, b"second")
    assert bus.recv(1, 0, 7) == b"first"
    assert bus.recv(1, 0, 7) == b"second"
    with pytest.raises(LookupError):
        bus.recv(1, 0, 7)
    assert bus.messages == 2


def test_faasm_pingpong_is_slower_than_mpiwasm_model():
    from repro.harness.experiments import imb_model_series
    from repro.sim.machines import supermuc_ng

    faasm = FaasmPlatform()
    sizes = (1, 1024, 65536, 1 << 20)
    mpiwasm = imb_model_series(supermuc_ng(), "pingpong", 2, sizes)
    for nbytes in sizes:
        assert faasm.pingpong_iteration_time(nbytes) * 1e6 > mpiwasm[nbytes]["wasm_us"]


def test_faasm_functional_pingpong_preserves_payload():
    faasm = FaasmPlatform()
    total, payload = faasm.run_pingpong(nbytes=512, iterations=3)
    assert total > 0
    assert len(payload) == 512
    assert payload == bytes((i * 31) & 0xFF for i in range(512))


def test_faasm_cannot_run_imb_without_user_communicators():
    faasm = FaasmPlatform()
    assert not faasm.supports_benchmark("imb")
    assert faasm.supports_benchmark("pingpong")
    assert FaasmPlatform(FaasmConfig(supports_user_communicators=True)).supports_benchmark("imb")
