"""Tests for ``MPI_Waitany`` / ``MPI_Testall`` (and the underlying
``MPI_Test``) at the host-runtime level and through the guest ABI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import datatypes
from repro.mpi.status import Request
from repro.toolchain import mpi_header as abi
from repro.toolchain.guest import GuestProgram
from tests.conftest import run_mpi_program


# ------------------------------------------------------------- runtime level


def test_waitany_no_active_requests_returns_undefined():
    def program(rt, ctx):
        index, status = rt.waitany([Request.null(), Request.null()])
        return (index, status.count_bytes)

    for index, count in run_mpi_program(program, 2):
        assert index == -1
        assert count == 0


def test_waitany_returns_the_ready_request():
    """Rank 0 waits on receives from ranks 1 and 2; rank 2's message arrives
    first (rank 1 only sends after a token from rank 0), so waitany must pick
    index 1 first even though index 0 was posted first."""

    def program(rt, ctx):
        if ctx.rank == 0:
            buf1 = np.zeros(4, dtype=np.int32)
            buf2 = np.zeros(4, dtype=np.int32)
            requests = [
                rt.irecv(buf1, 4, datatypes.INT, 1, 11),
                rt.irecv(buf2, 4, datatypes.INT, 2, 22),
            ]
            first, status_first = rt.waitany(requests)
            requests[first] = Request.null()
            # Release rank 1, whose send is gated on this token.
            rt.send(np.zeros(1, dtype=np.int32), 1, datatypes.INT, 1, 99)
            second, _ = rt.waitany(requests)
            return (first, second, status_first.source, buf1.tolist(), buf2.tolist())
        if ctx.rank == 1:
            token = np.zeros(1, dtype=np.int32)
            rt.recv(token, 1, datatypes.INT, 0, 99)
            rt.send(np.full(4, 10, dtype=np.int32), 4, datatypes.INT, 0, 11)
        elif ctx.rank == 2:
            rt.send(np.full(4, 20, dtype=np.int32), 4, datatypes.INT, 0, 22)
        return None

    results = run_mpi_program(program, 3)
    first, second, source_first, buf1, buf2 = results[0]
    assert first == 1
    assert source_first == 2
    assert second == 0
    assert buf1 == [10] * 4
    assert buf2 == [20] * 4


def test_proc_null_irecv_completes_immediately_in_test_and_waitany():
    """MPI requires operations on PROC_NULL to complete at once with an
    empty status -- including through Test/Waitany/Testall."""

    def program(rt, ctx):
        buf = np.zeros(4, dtype=np.int32)
        req = rt.irecv(buf, 4, datatypes.INT, rt.PROC_NULL, 3)
        flag, status = rt.test(req)
        req2 = rt.irecv(buf, 4, datatypes.INT, rt.PROC_NULL, 4)
        index, _ = rt.waitany([req2])
        req3 = rt.irecv(buf, 4, datatypes.INT, rt.PROC_NULL, 5)
        all_flag, _ = rt.testall([req3])
        return (flag, status.count_bytes, index, all_flag)

    for flag, count, index, all_flag in run_mpi_program(program, 2):
        assert flag is True
        assert count == 0
        assert index == 0
        assert all_flag is True


def test_waitany_completed_isend_returns_immediately():
    def program(rt, ctx):
        if ctx.rank == 0:
            req = rt.isend(np.arange(4, dtype=np.int32), 4, datatypes.INT, 1, 5)
            index, status = rt.waitany([req])
            return (index, status.count_bytes)
        buf = np.zeros(4, dtype=np.int32)
        rt.recv(buf, 4, datatypes.INT, 0, 5)
        return buf.tolist()

    results = run_mpi_program(program, 2)
    assert results[0] == (0, 16)
    assert results[1] == [0, 1, 2, 3]


def test_testall_false_until_message_posted():
    """Rank 1's reply is gated on rank 0's send, so rank 0's first testall
    must report False without blocking; after the exchange the request
    completes normally."""

    def program(rt, ctx):
        if ctx.rank == 0:
            buf = np.zeros(4, dtype=np.int32)
            req = rt.irecv(buf, 4, datatypes.INT, 1, 7)
            flag_before, _ = rt.testall([req])
            rt.send(np.arange(4, dtype=np.int32), 4, datatypes.INT, 1, 5)
            status = rt.wait(req)
            return (flag_before, status.count_bytes, buf.tolist())
        buf = np.zeros(4, dtype=np.int32)
        rt.recv(buf, 4, datatypes.INT, 0, 5)
        rt.send(buf * 2, 4, datatypes.INT, 0, 7)
        return None

    results = run_mpi_program(program, 2)
    assert results[0] == (False, 16, [0, 2, 4, 6])


def test_testall_completes_all_when_ready():
    def program(rt, ctx):
        if ctx.rank == 0:
            # Let both senders run first so their messages are buffered.
            ctx.advance(0.01)
            buf1 = np.zeros(2, dtype=np.int32)
            buf2 = np.zeros(2, dtype=np.int32)
            requests = [
                rt.irecv(buf1, 2, datatypes.INT, 1, 1),
                rt.irecv(buf2, 2, datatypes.INT, 2, 2),
            ]
            flag, statuses = rt.testall(requests)
            return (flag, [s.source for s in statuses], buf1.tolist(), buf2.tolist())
        rt.send(np.full(2, ctx.rank, dtype=np.int32), 2, datatypes.INT, 0, ctx.rank)
        return None

    results = run_mpi_program(program, 3)
    flag, sources, buf1, buf2 = results[0]
    assert flag is True
    assert sources == [1, 2]
    assert buf1 == [1, 1]
    assert buf2 == [2, 2]


# ----------------------------------------------------------------- guest ABI


def test_guest_waitany_and_testall():
    """Drive MPI_Waitany/MPI_Testall through the full Wasm import path."""
    from repro.core.launcher import run_wasm

    def main(api, args):
        api.mpi_init()
        rank = api.rank()
        out = None
        if rank == 0:
            p1, a1 = api.alloc_array(4, abi.MPI_INT, fill=0)
            p2, a2 = api.alloc_array(4, abi.MPI_INT, fill=0)
            handles = [
                api.irecv(p1, 4, abi.MPI_INT, 1, 1),
                api.irecv(p2, 4, abi.MPI_INT, 1, 2),
            ]
            index, status = api.waitany(handles)
            handles[index] = abi.MPI_REQUEST_NULL
            flag, statuses = api.testall(handles)
            if not flag:
                other = 1 - index
                _, status2 = api.waitany(handles)
                statuses = [status2]
                flag = True
            out = (index, status["count_bytes"], flag, a1.tolist(), a2.tolist())
        else:
            ptr, arr = api.alloc_array(4, abi.MPI_INT)
            arr[:] = [1, 2, 3, 4]
            api.send(ptr, 4, abi.MPI_INT, 0, 1)
            arr[:] = [5, 6, 7, 8]
            api.send(ptr, 4, abi.MPI_INT, 0, 2)
        api.mpi_finalize()
        return out

    job = run_wasm(GuestProgram(name="waitany-testall", main=main), 2, machine="graviton2")
    index, count_bytes, flag, a1, a2 = job.return_values()[0]
    assert index in (0, 1)
    assert count_bytes == 16
    assert flag is True
    assert a1 == [1, 2, 3, 4]
    assert a2 == [5, 6, 7, 8]
    counts = job.rank_results[0].call_counts
    assert counts["MPI_Waitany"] >= 1
    assert counts["MPI_Testall"] == 1


def test_guest_waitany_undefined_when_no_live_handles():
    from repro.core.launcher import run_wasm

    def main(api, args):
        api.mpi_init()
        index, _status = api.waitany([abi.MPI_REQUEST_NULL, abi.MPI_REQUEST_NULL])
        api.mpi_finalize()
        return index

    job = run_wasm(GuestProgram(name="waitany-undef", main=main), 1, machine="graviton2")
    assert job.return_values()[0] == abi.MPI_UNDEFINED


def test_header_declares_new_functions():
    source = abi.header_source()
    assert "MPI_Waitany" in source
    assert "MPI_Testall" in source
    assert abi.MPI_SIGNATURES["MPI_Waitany"] == (["i32", "i32", "i32", "i32"], ["i32"])
    assert abi.MPI_SIGNATURES["MPI_Testall"] == (["i32", "i32", "i32", "i32"], ["i32"])
