"""Tests for the non-blocking collectives (``MPI_Ibarrier`` .. ``MPI_Ialltoall``)
at the host-runtime level and through the full guest ABI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import datatypes, ops
from repro.mpi.algorithms import schedule as schedules
from repro.toolchain import mpi_header as abi
from repro.toolchain.guest import GuestProgram
from tests.conftest import run_mpi_program


# ------------------------------------------------------------- runtime level


def test_iallreduce_matches_blocking_result_with_overlap():
    n = 32

    def program(rt, ctx):
        send = np.arange(n, dtype=np.int64) * (ctx.rank + 1)
        nb = np.zeros(n, dtype=np.int64)
        req = rt.iallreduce(send, nb, n, datatypes.LONG, ops.SUM)
        ctx.advance(0.001)  # overlapped compute between post and wait
        rt.wait(req)
        blocking = np.zeros(n, dtype=np.int64)
        rt.allreduce(send, blocking, n, datatypes.LONG, ops.SUM)
        return (nb.tolist(), blocking.tolist())

    for nonblocking, blocking in run_mpi_program(program, 5):
        assert nonblocking == blocking


def test_ibarrier_blocks_until_all_ranks_arrive():
    def program(rt, ctx):
        ctx.advance(0.001 * (ctx.rank + 1))
        rt.wait(rt.ibarrier())
        return rt.wtime()

    times = run_mpi_program(program, 4)
    assert min(times) >= 0.004


def test_ibcast_and_iallgather_deliver_payloads():
    def program(rt, ctx):
        p = 4
        bc = np.full(16, ctx.rank, dtype=np.uint8)
        r1 = rt.ibcast(bc, 16, datatypes.BYTE, root=2)
        block = np.full(8, ctx.rank + 1, dtype=np.uint8)
        gathered = np.zeros(8 * p, dtype=np.uint8)
        r2 = rt.iallgather(block, 8, datatypes.BYTE, gathered, 8, datatypes.BYTE)
        rt.waitall([r1, r2])
        return (bc.tolist(), gathered.tolist())

    for bc, gathered in run_mpi_program(program, 4):
        assert bc == [2] * 16
        assert gathered == [src + 1 for src in range(4) for _ in range(8)]


def test_ialltoall_completed_by_test_polling():
    def program(rt, ctx):
        p, b = 4, 8
        send = np.repeat(np.arange(p, dtype=np.uint8) * 10 + ctx.rank, b)
        recv = np.zeros(p * b, dtype=np.uint8)
        req = rt.ialltoall(send, b, datatypes.BYTE, recv, b, datatypes.BYTE)
        flag, _ = rt.test(req)
        while not flag:
            flag, _ = rt.test(req)
        return recv.tolist()

    for rank, received in enumerate(run_mpi_program(program, 4)):
        assert received == [rank * 10 + src for src in range(4) for _ in range(8)]


def test_nbc_zero_count_completes():
    def program(rt, ctx):
        send = np.zeros(0, dtype=np.float64)
        recv = np.zeros(0, dtype=np.float64)
        req = rt.iallreduce(send, recv, 0, datatypes.DOUBLE, ops.SUM)
        status = rt.wait(req)
        return status.count_bytes

    assert run_mpi_program(program, 3) == [0, 0, 0]


def test_nbc_routes_through_decision_table():
    """A large iallreduce must select the same decision-table algorithm as
    the blocking path (ring above the 16 KiB threshold) and record it in the
    per-collective counters."""
    count = 8192  # 64 KiB of doubles -> the table picks "ring"

    def program(rt, ctx):
        send = np.ones(count, dtype=np.float64)
        recv = np.zeros(count, dtype=np.float64)
        rt.wait(rt.iallreduce(send, recv, count, datatypes.DOUBLE, ops.SUM))
        return rt.world.metrics.counters().get("mpi.coll.allreduce.algo.ring", 0)

    nranks = 4
    results = run_mpi_program(program, nranks)
    assert results[-1] == nranks  # one rank-call per rank, all on "ring"


def test_nbc_forced_unscheduled_algorithm_falls_back():
    """Forcing an algorithm without a schedule builder (reduce_bcast) must
    degrade the non-blocking path to the ported fallback, not fail."""
    assert not schedules.has_builder("allreduce", "reduce_bcast")

    def program(rt, ctx):
        rt.world.collectives.force("allreduce", "reduce_bcast")
        send = np.full(8, ctx.rank + 1, dtype=np.int64)
        recv = np.zeros(8, dtype=np.int64)
        rt.wait(rt.iallreduce(send, recv, 8, datatypes.LONG, ops.SUM))
        algos = {
            k: v for k, v in rt.world.metrics.counters().items()
            if k.startswith("mpi.coll.allreduce.algo.")
        }
        return (recv.tolist(), algos)

    results = run_mpi_program(program, 3)
    expected = [sum(range(1, 4))] * 8
    for recv, algos in results:
        assert recv == expected
        assert set(algos) == {"mpi.coll.allreduce.algo.recursive_doubling"}


def test_every_nbc_collective_has_builders_for_table_defaults():
    """Every algorithm the default decision table can pick for an NBC-capable
    collective must have a schedule builder (no silent fallback in the
    default configuration)."""
    from repro.mpi.algorithms.decision import DEFAULT_RULES

    for collective in ("barrier", "bcast", "allreduce", "allgather", "alltoall"):
        for rule in DEFAULT_RULES[collective]:
            assert schedules.has_builder(collective, rule.algorithm), (
                f"decision table can pick {collective}/{rule.algorithm}, "
                "which has no schedule builder"
            )


# ----------------------------------------------------------------- guest ABI


def test_guest_nbc_end_to_end():
    """Drive all five non-blocking collectives through the full Wasm import
    path, overlapping compute, and verify payloads bit-for-bit."""
    from repro.core.launcher import run_wasm

    def main(api, args):
        api.mpi_init()
        rank = api.rank()
        p = api.size()
        sp, sa = api.alloc_array(8, abi.MPI_DOUBLE, fill=float(rank + 1))
        rp, ra = api.alloc_array(8, abi.MPI_DOUBLE, fill=0)
        r_all = api.iallreduce(sp, rp, 8, abi.MPI_DOUBLE, abi.MPI_SUM)
        bp, ba = api.alloc_array(16, abi.MPI_INT, fill=rank)
        r_bc = api.ibcast(bp, 16, abi.MPI_INT, 1)
        gp, ga = api.alloc_array(4, abi.MPI_INT, fill=rank + 1)
        agp, aga = api.alloc_array(4 * p, abi.MPI_INT, fill=0)
        r_ag = api.iallgather(gp, 4, abi.MPI_INT, agp, 4, abi.MPI_INT)
        a2p, a2a = api.alloc_array(p, abi.MPI_INT)
        a2a[:] = [rank * 100 + dst for dst in range(p)]
        a2rp, a2ra = api.alloc_array(p, abi.MPI_INT, fill=0)
        r_a2 = api.ialltoall(a2p, 1, abi.MPI_INT, a2rp, 1, abi.MPI_INT)
        api.compute(1e-4)  # overlapped work while all four progress
        for handle in (r_all, r_bc, r_ag, r_a2):
            api.wait(handle)
        r_bar = api.ibarrier()
        flag, _ = api.test(r_bar)
        while not flag:
            flag, _ = api.test(r_bar)
        api.mpi_finalize()
        return (ra.tolist(), ba.tolist(), aga.tolist(), a2ra.tolist())

    job = run_wasm(GuestProgram(name="nbc-guest", main=main), 4, machine="graviton2")
    for rank, (allred, bc, ag, a2) in enumerate(job.return_values()):
        assert allred == [float(sum(range(1, 5)))] * 8
        assert bc == [1] * 16
        assert ag == [src + 1 for src in range(4) for _ in range(4)]
        assert a2 == [src * 100 + rank for src in range(4)]
    counts = job.rank_results[0].call_counts
    for name in ("MPI_Ibarrier", "MPI_Ibcast", "MPI_Iallreduce", "MPI_Iallgather", "MPI_Ialltoall"):
        assert counts[name] == 1, (name, counts)


def test_guest_memory_can_grow_while_nbc_outstanding():
    """Guest buffers of outstanding non-blocking operations are translated
    lazily, so growing linear memory between the post and the wait (e.g. a
    malloc during the overlapped compute) must work -- a live view pinning
    the memory would raise BufferError in ``memory.grow``."""
    from repro.core.launcher import run_wasm

    def main(api, args):
        api.mpi_init()
        rank = api.rank()
        sp, sa = api.alloc_array(8, abi.MPI_DOUBLE, fill=float(rank + 1))
        rp, ra = api.alloc_array(8, abi.MPI_DOUBLE, fill=0)
        bp, ba = api.alloc_array(4, abi.MPI_INT, fill=rank)
        # Drop our own views before growing: any live view (the guest's or
        # an outstanding request's) pins linear memory.
        del sa, ra, ba
        req = api.iallreduce(sp, rp, 8, abi.MPI_DOUBLE, abi.MPI_SUM)
        ireq = api.irecv(bp, 4, abi.MPI_INT, (rank - 1) % api.size(), 5)
        grown_from = api.instance.exported_memory().grow(1)
        api.send(bp, 4, abi.MPI_INT, (rank + 1) % api.size(), 5)
        api.wait(req)
        api.wait(ireq)
        api.mpi_finalize()
        # Re-view after the grow: views taken before it would be stale.
        result = api.ndarray(rp, 8, abi.MPI_DOUBLE)
        return (grown_from, result.tolist())

    job = run_wasm(GuestProgram(name="nbc-grow", main=main), 3, machine="graviton2")
    for grown_from, allred in job.return_values():
        assert grown_from > 0  # grow succeeded and returned the old page count
        assert allred == [float(sum(range(1, 4)))] * 8


def test_header_declares_nbc_functions():
    source = abi.header_source()
    for name in ("MPI_Ibarrier", "MPI_Ibcast", "MPI_Iallreduce", "MPI_Iallgather", "MPI_Ialltoall"):
        assert name in source
    assert abi.MPI_SIGNATURES["MPI_Ibarrier"] == (["i32", "i32"], ["i32"])
    assert abi.MPI_SIGNATURES["MPI_Iallreduce"] == (["i32"] * 7, ["i32"])
    assert abi.MPI_SIGNATURES["MPI_Iallgather"] == (["i32"] * 8, ["i32"])


def test_nbc_campaign_spec_matches_example_and_expands():
    """``nbc_campaign_spec`` is the programmatic form of
    ``examples/campaign_nbc.json``: its benchmark matrix must stay in sync
    with the checked-in file and expand to a valid job list."""
    import json
    from pathlib import Path

    from repro.harness.campaign import CampaignSpec
    from repro.harness.experiments import nbc_campaign_spec

    spec = nbc_campaign_spec(seed=4)
    example = json.loads(
        (Path(__file__).resolve().parents[1] / "examples" / "campaign_nbc.json").read_text()
    )
    assert spec["benchmarks"] == example["benchmarks"]
    jobs = CampaignSpec.from_mapping(spec).expand()
    # 5 routines x (2 wasm backends + 1 native) x 2 rank counts.
    assert len(jobs) == 5 * 3 * 2
    assert {j.name for j in jobs} == {"ibarrier", "ibcast", "iallreduce", "iallgather", "ialltoall"}


def test_nbc_benchmark_reports_overlap_both_modes():
    """The IMB-NBC overlap benchmark runs under both the embedder and the
    native baseline, reporting bounded overlap percentages and recording
    per-collective samples in the job metrics."""
    from repro.benchmarks_suite.imb import make_imb_nbc_program
    from repro.core.launcher import run_native, run_wasm

    program = make_imb_nbc_program("iallgather", message_sizes=(256,), iterations=2)
    for job in (run_wasm(program, 3, machine="graviton2"),
                run_native(program, 3, machine="graviton2")):
        rows = job.return_values()[0]["rows"]
        row = rows[256]
        assert 0.0 <= row["overlap_pct"] <= 100.0
        assert row["t_ovrl_us"] <= row["t_pure_us"] + row["t_cpu_us"] + 1e-6
        summary = job.metrics.nbc_overlap_summary()
        assert summary["allgather"]["count"] == 2 * 3  # iterations x ranks
