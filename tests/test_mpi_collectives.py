"""Tests for the MPI collectives and communicator management."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import datatypes, ops
from repro.mpi.errors import InvalidRootError
from tests.conftest import run_mpi_program


@pytest.mark.parametrize("nranks", [2, 3, 4, 5])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_delivers_root_data(nranks, root):
    def program(rt, ctx):
        buf = np.full(16, ctx.rank, dtype=np.int32)
        rt.bcast(buf, 16, datatypes.INT, root=root)
        return buf.tolist()

    results = run_mpi_program(program, nranks)
    for r in results:
        assert r == [root] * 16


@pytest.mark.parametrize("op,expected_fn", [
    (ops.SUM, lambda ranks: sum(ranks)),
    (ops.MAX, lambda ranks: max(ranks)),
    (ops.MIN, lambda ranks: min(ranks)),
    (ops.PROD, lambda ranks: int(np.prod(ranks))),
])
def test_allreduce_operations(op, expected_fn):
    nranks = 4

    def program(rt, ctx):
        send = np.array([ctx.rank + 1, 2 * (ctx.rank + 1)], dtype=np.int64)
        recv = np.zeros(2, dtype=np.int64)
        rt.allreduce(send, recv, 2, datatypes.LONG, op)
        return recv.tolist()

    results = run_mpi_program(program, nranks)
    ranks = [r + 1 for r in range(nranks)]
    expected = [expected_fn(ranks), expected_fn([2 * r for r in ranks])]
    for r in results:
        assert r == expected


def test_allreduce_double_precision_sum():
    def program(rt, ctx):
        send = np.full(8, 0.5 * (ctx.rank + 1))
        recv = np.zeros(8)
        rt.allreduce(send, recv, 8, datatypes.DOUBLE, ops.SUM)
        return recv[0]

    results = run_mpi_program(program, 4)
    assert all(r == pytest.approx(0.5 * (1 + 2 + 3 + 4)) for r in results)


@pytest.mark.parametrize("nranks", [2, 3, 4])
def test_reduce_only_root_gets_result(nranks):
    def program(rt, ctx):
        send = np.array([ctx.rank], dtype=np.int32)
        recv = np.full(1, -1, dtype=np.int32)
        rt.reduce(send, recv, 1, datatypes.INT, ops.SUM, root=0)
        return int(recv[0])

    results = run_mpi_program(program, nranks)
    assert results[0] == sum(range(nranks))
    assert all(r == -1 for r in results[1:])


def test_gather_and_scatter_roundtrip():
    nranks = 4

    def program(rt, ctx):
        send = np.array([ctx.rank * 10, ctx.rank * 10 + 1], dtype=np.int32)
        recv = np.zeros(2 * nranks, dtype=np.int32) if ctx.rank == 1 else None
        rt.gather(send, 2, datatypes.INT, recv, 2, datatypes.INT, root=1)
        gathered = recv.tolist() if ctx.rank == 1 else None

        out = np.zeros(2, dtype=np.int32)
        rt.scatter(recv if ctx.rank == 1 else None, 2, datatypes.INT, out, 2, datatypes.INT, root=1)
        return (gathered, out.tolist())

    results = run_mpi_program(program, nranks)
    assert results[1][0] == [0, 1, 10, 11, 20, 21, 30, 31]
    for rank, (_g, scattered) in enumerate(results):
        assert scattered == [rank * 10, rank * 10 + 1]


@pytest.mark.parametrize("nranks", [2, 3, 4, 6])
def test_allgather_collects_every_rank_block(nranks):
    def program(rt, ctx):
        send = np.array([ctx.rank], dtype=np.float64)
        recv = np.zeros(nranks)
        rt.allgather(send, 1, datatypes.DOUBLE, recv, 1, datatypes.DOUBLE)
        return recv.tolist()

    for r in run_mpi_program(program, nranks):
        assert r == list(range(nranks))


@pytest.mark.parametrize("nranks", [2, 4, 5])
def test_alltoall_transposes_blocks(nranks):
    def program(rt, ctx):
        send = np.array([ctx.rank * 100 + j for j in range(nranks)], dtype=np.int32)
        recv = np.zeros(nranks, dtype=np.int32)
        rt.alltoall(send, 1, datatypes.INT, recv, 1, datatypes.INT)
        return recv.tolist()

    results = run_mpi_program(program, nranks)
    for rank, received in enumerate(results):
        assert received == [src * 100 + rank for src in range(nranks)]


def test_barrier_synchronises_virtual_clocks():
    def program(rt, ctx):
        ctx.advance(0.001 * (ctx.rank + 1))
        rt.barrier()
        return rt.wtime()

    times = run_mpi_program(program, 4)
    # After the barrier no rank may be earlier than the slowest pre-barrier rank.
    assert min(times) >= 0.004


def test_invalid_root_raises():
    def program(rt, ctx):
        with pytest.raises(InvalidRootError):
            rt.bcast(np.zeros(1, dtype=np.int32), 1, datatypes.INT, root=77)
        return True

    assert all(run_mpi_program(program, 2))


def test_comm_split_even_odd():
    def program(rt, ctx):
        color = ctx.rank % 2
        sub = rt.comm_split(None, color, key=ctx.rank)
        sub_rank = rt.comm_rank(sub)
        sub_size = rt.comm_size(sub)
        # Reduce inside the sub-communicator only.
        send = np.array([ctx.rank], dtype=np.int32)
        recv = np.zeros(1, dtype=np.int32)
        rt.allreduce(send, recv, 1, datatypes.INT, ops.SUM, comm=sub)
        return (color, sub_rank, sub_size, int(recv[0]))

    results = run_mpi_program(program, 4)
    # Even ranks {0, 2}: sum 2; odd ranks {1, 3}: sum 4.
    assert results[0] == (0, 0, 2, 2)
    assert results[2] == (0, 1, 2, 2)
    assert results[1] == (1, 0, 2, 4)
    assert results[3] == (1, 1, 2, 4)


def test_comm_split_undefined_color_returns_none():
    def program(rt, ctx):
        sub = rt.comm_split(None, -1 if ctx.rank == 0 else 0, key=0)
        return sub is None

    results = run_mpi_program(program, 3)
    assert results == [True, False, False]


def test_comm_dup_isolates_traffic():
    def program(rt, ctx):
        dup = rt.comm_dup()
        # Same group, different context: collectives on the dup still work.
        send = np.array([1], dtype=np.int32)
        recv = np.zeros(1, dtype=np.int32)
        rt.allreduce(send, recv, 1, datatypes.INT, ops.SUM, comm=dup)
        return (dup.context_id != rt.comm_world.context_id, int(recv[0]))

    results = run_mpi_program(program, 3)
    assert all(distinct and total == 3 for distinct, total in results)


@given(counts=st.integers(min_value=1, max_value=64), nranks=st.sampled_from([2, 3, 4]))
@settings(max_examples=10, deadline=None)
def test_allreduce_sum_matches_numpy_for_random_sizes(counts, nranks):
    def program(rt, ctx):
        send = np.arange(counts, dtype=np.float64) * (ctx.rank + 1)
        recv = np.zeros(counts)
        rt.allreduce(send, recv, counts, datatypes.DOUBLE, ops.SUM)
        return recv

    results = run_mpi_program(program, nranks)
    expected = np.arange(counts, dtype=np.float64) * sum(range(1, nranks + 1))
    for r in results:
        assert np.allclose(r, expected)


def test_bitwise_ops_on_integers():
    def program(rt, ctx):
        send = np.array([1 << ctx.rank], dtype=np.int32)
        recv = np.zeros(1, dtype=np.int32)
        rt.allreduce(send, recv, 1, datatypes.INT, ops.BOR)
        return int(recv[0])

    assert run_mpi_program(program, 4) == [0b1111] * 4
