"""Tests for the discrete-event engine: scheduling, clocks, failure modes."""

from __future__ import annotations

import pytest

from repro.sim.engine import (
    DeadlockError,
    RankFailedError,
    RankState,
    SimEngine,
    SimulationError,
)


def test_engine_requires_positive_ranks():
    with pytest.raises(ValueError):
        SimEngine(0)


def test_all_ranks_run_and_return_results():
    engine = SimEngine(4)
    engine.spawn_all(lambda r: (lambda ctx: ctx.rank * 10))
    assert engine.run() == [0, 10, 20, 30]


def test_spawn_count_must_match_nranks():
    engine = SimEngine(3)
    engine.spawn(lambda ctx: None)
    with pytest.raises(SimulationError):
        engine.run()


def test_cannot_spawn_out_of_order():
    engine = SimEngine(2)
    with pytest.raises(SimulationError):
        engine.spawn(lambda ctx: None, rank=1)


def test_clock_advance_and_advance_to():
    engine = SimEngine(1)

    def program(ctx):
        assert ctx.now == 0.0
        ctx.advance(1.5)
        ctx.advance(-3.0)  # negative advances are ignored
        assert ctx.now == pytest.approx(1.5)
        ctx.advance_to(1.0)  # cannot move backwards
        assert ctx.now == pytest.approx(1.5)
        ctx.advance_to(4.0)
        return ctx.now

    engine.spawn(program)
    assert engine.run() == [pytest.approx(4.0)]


def test_block_and_wake_transfers_time():
    engine = SimEngine(2)

    def waiter(ctx):
        if ctx.rank == 0:
            t = ctx.block("waiting for rank 1")
            return t
        ctx.advance(2.0)
        ctx.wake(0, not_before=5.0)
        return ctx.now

    engine.spawn(waiter)
    engine.spawn(waiter)
    results = engine.run()
    assert results[0] == pytest.approx(5.0)   # woken not before t=5
    assert results[1] == pytest.approx(2.0)


def test_wake_before_block_is_not_lost():
    engine = SimEngine(2)

    def program(ctx):
        if ctx.rank == 1:
            ctx.wake(0, not_before=1.0)
            return "sender"
        ctx.advance(0.1)
        # rank 0 runs first (smaller clock ordering is deterministic), so make
        # it yield once to let rank 1 issue the early wake.
        ctx.yield_turn()
        ctx.block("expected pending wake")
        return ctx.now

    engine.spawn(program)
    engine.spawn(program)
    results = engine.run()
    assert results[1] == "sender"
    assert results[0] >= 0.1


def test_deadlock_detection():
    engine = SimEngine(2)
    engine.spawn_all(lambda r: (lambda ctx: ctx.block("never woken")))
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    assert "never woken" in str(excinfo.value)


def test_rank_exception_is_reported_with_rank_number():
    engine = SimEngine(2)

    def program(ctx):
        if ctx.rank == 1:
            raise ValueError("guest crashed")
        return "ok"

    engine.spawn_all(lambda r: program)
    with pytest.raises(RankFailedError) as excinfo:
        engine.run()
    assert excinfo.value.rank == 1
    assert "guest crashed" in excinfo.value.rank_traceback


def test_scheduler_picks_smallest_clock_first():
    order = []
    engine = SimEngine(3)

    def program(ctx):
        # Each rank alternates between advancing and yielding; the engine must
        # always resume the rank with the smallest virtual clock.
        for _ in range(3):
            order.append((ctx.rank, round(ctx.now, 6)))
            ctx.advance(0.001 * (ctx.rank + 1))
            ctx.yield_turn()
        return ctx.now

    engine.spawn_all(lambda r: program)
    results = engine.run()
    # Rank 0 advances slowest per step, so it should finish with the smallest clock.
    assert results[0] < results[1] < results[2]
    # The very first three entries are the initial run of each rank at t=0.
    assert [entry[0] for entry in order[:3]] == [0, 1, 2]


def test_states_and_clocks_reporting():
    engine = SimEngine(2)
    engine.spawn_all(lambda r: (lambda ctx: ctx.advance(1.0)))
    engine.run()
    assert all(state == RankState.DONE for state in engine.states().values())
    assert engine.clocks() == [pytest.approx(1.0), pytest.approx(1.0)]
    assert engine.max_clock == pytest.approx(1.0)


def test_trace_log_collects_messages():
    engine = SimEngine(1, trace=True)

    def program(ctx):
        ctx.log("hello from rank")
        return None

    engine.spawn(program)
    engine.run()
    assert any("hello from rank" in line for line in engine.trace_log)
