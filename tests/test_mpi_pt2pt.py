"""Tests for the MPI point-to-point layer (matching, wildcards, timing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import datatypes, ops
from repro.mpi.errors import InvalidCountError, InvalidRankError, InvalidTagError, TruncationError
from repro.mpi.pt2pt import ANY_SOURCE, ANY_TAG, PROC_NULL
from tests.conftest import run_mpi_program


def test_basic_send_recv_moves_data():
    def program(rt, ctx):
        if ctx.rank == 0:
            rt.send(np.arange(10, dtype=np.int32), 10, datatypes.INT, dest=1, tag=5)
            return None
        if ctx.rank == 1:
            buf = np.zeros(10, dtype=np.int32)
            status = rt.recv(buf, 10, datatypes.INT, source=0, tag=5)
            assert np.array_equal(buf, np.arange(10))
            return (status.source, status.tag, status.count_bytes)
        return None

    results = run_mpi_program(program, 2)
    assert results[1] == (0, 5, 40)


def test_message_ordering_is_fifo_per_pair():
    def program(rt, ctx):
        if ctx.rank == 0:
            for i in range(5):
                rt.send(np.array([i], dtype=np.int32), 1, datatypes.INT, dest=1, tag=9)
            return None
        received = []
        buf = np.zeros(1, dtype=np.int32)
        for _ in range(5):
            rt.recv(buf, 1, datatypes.INT, source=0, tag=9)
            received.append(int(buf[0]))
        return received

    assert run_mpi_program(program, 2)[1] == [0, 1, 2, 3, 4]


def test_any_source_and_any_tag_wildcards():
    def program(rt, ctx):
        if ctx.rank == 0:
            buf = np.zeros(1, dtype=np.int32)
            sources = set()
            for _ in range(2):
                status = rt.recv(buf, 1, datatypes.INT, source=ANY_SOURCE, tag=ANY_TAG)
                sources.add(status.source)
            return sources
        rt.send(np.array([ctx.rank], dtype=np.int32), 1, datatypes.INT, dest=0, tag=ctx.rank)
        return None

    assert run_mpi_program(program, 3)[0] == {1, 2}


def test_tag_selectivity():
    def program(rt, ctx):
        if ctx.rank == 0:
            rt.send(np.array([111], dtype=np.int32), 1, datatypes.INT, dest=1, tag=1)
            rt.send(np.array([222], dtype=np.int32), 1, datatypes.INT, dest=1, tag=2)
            return None
        buf = np.zeros(1, dtype=np.int32)
        rt.recv(buf, 1, datatypes.INT, source=0, tag=2)
        first = int(buf[0])
        rt.recv(buf, 1, datatypes.INT, source=0, tag=1)
        return (first, int(buf[0]))

    assert run_mpi_program(program, 2)[1] == (222, 111)


def test_truncation_error_when_buffer_too_small():
    def program(rt, ctx):
        if ctx.rank == 0:
            rt.send(np.zeros(100, dtype=np.float64), 100, datatypes.DOUBLE, dest=1, tag=0)
            return None
        buf = np.zeros(10, dtype=np.float64)
        with pytest.raises(TruncationError):
            rt.recv(buf, 10, datatypes.DOUBLE, source=0, tag=0)
        return "checked"

    assert run_mpi_program(program, 2)[1] == "checked"


def test_proc_null_send_recv_are_noops():
    def program(rt, ctx):
        rt.send(np.zeros(1, dtype=np.int32), 1, datatypes.INT, dest=PROC_NULL, tag=0)
        status = rt.recv(np.zeros(1, dtype=np.int32), 1, datatypes.INT, source=PROC_NULL, tag=0)
        return status.source

    assert run_mpi_program(program, 2) == [PROC_NULL, PROC_NULL]


def test_invalid_arguments_raise():
    def program(rt, ctx):
        with pytest.raises(InvalidRankError):
            rt.send(b"", 0, datatypes.BYTE, dest=99, tag=0)
        with pytest.raises(InvalidTagError):
            rt.send(b"", 0, datatypes.BYTE, dest=0, tag=-5)
        with pytest.raises(InvalidCountError):
            rt.send(b"", -1, datatypes.BYTE, dest=0, tag=0)
        with pytest.raises(InvalidCountError):
            rt.send(b"\x00" * 4, 100, datatypes.INT, dest=0, tag=0)
        return True

    assert run_mpi_program(program, 2) == [True, True]


def test_rendezvous_large_message_round_trip():
    nbytes = 1 << 20  # above every transport's eager threshold

    def program(rt, ctx):
        if ctx.rank == 0:
            data = np.arange(nbytes, dtype=np.uint8)
            rt.send(data, nbytes, datatypes.BYTE, dest=1, tag=3)
            return rt.wtime()
        buf = np.zeros(nbytes, dtype=np.uint8)
        rt.recv(buf, nbytes, datatypes.BYTE, source=0, tag=3)
        assert buf[12345] == np.arange(nbytes, dtype=np.uint8)[12345]
        return rt.wtime()

    times = run_mpi_program(program, 2)
    # Rendezvous: the sender cannot complete much earlier than the receiver.
    assert times[0] == pytest.approx(times[1], rel=0.2)
    assert times[0] > 1e-6  # a megabyte takes real virtual time


def test_small_message_is_faster_than_large_message():
    def program(rt, ctx):
        if ctx.rank == 0:
            rt.send(np.zeros(8, dtype=np.uint8), 8, datatypes.BYTE, dest=1, tag=0)
            return None
        buf = np.zeros(8, dtype=np.uint8)
        rt.recv(buf, 8, datatypes.BYTE, source=0, tag=0)
        return rt.wtime()

    small_time = run_mpi_program(program, 2)[1]

    def program_large(rt, ctx):
        if ctx.rank == 0:
            rt.send(np.zeros(1 << 18, dtype=np.uint8), 1 << 18, datatypes.BYTE, dest=1, tag=0)
            return None
        buf = np.zeros(1 << 18, dtype=np.uint8)
        rt.recv(buf, 1 << 18, datatypes.BYTE, source=0, tag=0)
        return rt.wtime()

    large_time = run_mpi_program(program_large, 2)[1]
    assert large_time > small_time


def test_sendrecv_ring_does_not_deadlock():
    def program(rt, ctx):
        size = rt.comm_size()
        right = (ctx.rank + 1) % size
        left = (ctx.rank - 1) % size
        send = np.array([ctx.rank], dtype=np.int32)
        recv = np.zeros(1, dtype=np.int32)
        rt.sendrecv(send, 1, datatypes.INT, right, 7, recv, 1, datatypes.INT, left, 7)
        return int(recv[0])

    assert run_mpi_program(program, 4) == [3, 0, 1, 2]


def test_isend_irecv_wait():
    def program(rt, ctx):
        if ctx.rank == 0:
            req = rt.isend(np.array([42.5]), 1, datatypes.DOUBLE, dest=1, tag=8)
            rt.wait(req)
            return None
        buf = np.zeros(1)
        req = rt.irecv(buf, 1, datatypes.DOUBLE, source=0, tag=8)
        status = rt.wait(req)
        return (float(buf[0]), status.source)

    assert run_mpi_program(program, 2)[1] == (42.5, 0)


def test_waitall_completes_multiple_requests():
    def program(rt, ctx):
        if ctx.rank == 0:
            reqs = [
                rt.isend(np.array([i], dtype=np.int32), 1, datatypes.INT, dest=1, tag=i)
                for i in range(3)
            ]
            rt.waitall(reqs)
            return None
        bufs = [np.zeros(1, dtype=np.int32) for _ in range(3)]
        reqs = [rt.irecv(bufs[i], 1, datatypes.INT, source=0, tag=i) for i in range(3)]
        rt.waitall(reqs)
        return [int(b[0]) for b in bufs]

    assert run_mpi_program(program, 2)[1] == [0, 1, 2]


def test_iprobe_finds_buffered_message():
    def program(rt, ctx):
        if ctx.rank == 0:
            rt.send(np.array([9], dtype=np.int32), 1, datatypes.INT, dest=1, tag=4)
            rt.barrier()
            return None
        rt.barrier()
        found, status = rt.iprobe(source=0, tag=4)
        assert found and status.count_bytes == 4
        buf = np.zeros(1, dtype=np.int32)
        rt.recv(buf, 1, datatypes.INT, source=0, tag=4)
        found_after, _ = rt.iprobe(source=0, tag=4)
        return (found, found_after)

    assert run_mpi_program(program, 2)[1] == (True, False)


def test_wtime_is_monotone_and_processor_name_is_stable():
    def program(rt, ctx):
        t0 = rt.wtime()
        rt.barrier()
        t1 = rt.wtime()
        assert t1 >= t0
        name = rt.get_processor_name()
        assert "node" in name
        return name

    names = run_mpi_program(program, 4)
    assert len(set(names)) == 1  # 4 ranks on one Graviton2 node
