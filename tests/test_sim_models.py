"""Tests for interconnect models, machine presets, cluster placement, PFS model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cluster import Cluster
from repro.sim.filesystem import ParallelFileSystemModel
from repro.sim.machines import PRESETS, faasm_cloud, get_preset, graviton2, supermuc_ng
from repro.sim.metrics import MetricsRegistry, SampleSeries, geometric_mean
from repro.sim.network import (
    CollectiveCostModel,
    GrpcMessagingModel,
    OmniPathModel,
    SharedMemoryModel,
    TcpEthernetModel,
    make_interconnect,
)


# ------------------------------------------------------------------ transports


@pytest.mark.parametrize("model_cls", [OmniPathModel, SharedMemoryModel, TcpEthernetModel, GrpcMessagingModel])
def test_transfer_time_monotone_in_size(model_cls):
    model = model_cls()
    times = [model.transfer_time(n) for n in (0, 64, 4096, 1 << 20)]
    assert times == sorted(times)
    assert times[0] > 0


def test_pingpong_bandwidth_saturates_near_link_bandwidth():
    model = OmniPathModel()
    bw = model.uni_bandwidth(4 << 20)
    assert 0.5 * model.params.bandwidth < bw < model.params.bandwidth


def test_grpc_is_slower_than_omnipath_at_every_size():
    grpc = GrpcMessagingModel()
    opa = OmniPathModel()
    for nbytes in (1, 1024, 65536, 1 << 22):
        assert grpc.pingpong_roundtrip(nbytes) > opa.pingpong_roundtrip(nbytes)


def test_rendezvous_threshold():
    model = OmniPathModel()
    assert not model.is_rendezvous(model.params.eager_threshold)
    assert model.is_rendezvous(model.params.eager_threshold + 1)


def test_make_interconnect_registry():
    assert make_interconnect("omnipath").name == "omnipath"
    with pytest.raises(KeyError):
        make_interconnect("carrier-pigeon")


# ------------------------------------------------------------------ collectives


@pytest.fixture
def cost_model():
    return CollectiveCostModel(OmniPathModel())


@pytest.mark.parametrize("routine", ["bcast", "reduce", "allreduce", "gather", "scatter",
                                     "allgather", "alltoall", "sendrecv", "barrier", "pingpong"])
def test_collective_cost_positive_and_size_monotone(cost_model, routine):
    small = cost_model.cost(routine, 64, 64)
    large = cost_model.cost(routine, 1 << 20, 64)
    assert small > 0
    assert large >= small


@pytest.mark.parametrize("routine", ["bcast", "allreduce", "allgather", "alltoall"])
def test_collective_cost_grows_with_ranks(cost_model, routine):
    assert cost_model.cost(routine, 1024, 1024) > cost_model.cost(routine, 1024, 8)


def test_alltoall_more_expensive_than_bcast(cost_model):
    assert cost_model.alltoall(4096, 512) > cost_model.bcast(4096, 512)


def test_unknown_routine_raises(cost_model):
    with pytest.raises(KeyError):
        cost_model.cost("gatherv", 1, 2)


@given(nbytes=st.integers(min_value=0, max_value=1 << 22), ranks=st.integers(min_value=1, max_value=8192))
@settings(max_examples=50, deadline=None)
def test_allreduce_cost_never_negative(nbytes, ranks):
    model = CollectiveCostModel(OmniPathModel())
    assert model.allreduce(nbytes, ranks) >= 0


# --------------------------------------------------------------------- machines


def test_presets_registered():
    assert set(PRESETS) >= {"supermuc-ng", "graviton2", "faasm-cloud"}
    assert get_preset("supermuc-ng").architecture == "x86_64"
    assert get_preset("graviton2").architecture == "aarch64"
    with pytest.raises(KeyError):
        get_preset("summit")


def test_supermuc_matches_paper_description():
    m = supermuc_ng()
    assert m.cores_per_node == 48
    assert m.max_nodes == 128
    assert m.total_cores() == 6144
    assert m.native_simd_bits == 512
    assert m.wasm_simd_bits == 128
    assert m.interconnect_name == "omnipath"


def test_graviton2_matches_paper_description():
    m = graviton2()
    assert m.cores_per_node == 32
    assert m.max_nodes == 1
    assert m.native_simd_bits == 128


def test_wasm_simd_penalty_behaviour():
    m = supermuc_ng()
    # No vectorised code: only the scalar-efficiency factor remains.
    assert m.wasm_simd_penalty(0.0) == pytest.approx(1 / m.wasm_scalar_efficiency)
    # Fully vectorised code: bounded by the SIMD width ratio (512/128 = 4).
    assert m.wasm_simd_penalty(1.0) == pytest.approx(4 / m.wasm_scalar_efficiency)
    # Disabling SIMD generation makes things worse, never better.
    assert m.wasm_simd_penalty(0.5, wasm_simd_enabled=False) > m.wasm_simd_penalty(0.5, True)
    with pytest.raises(ValueError):
        m.wasm_simd_penalty(1.5)


def test_graviton_has_no_simd_gap():
    m = graviton2()
    assert m.wasm_simd_penalty(1.0) == pytest.approx(1 / m.wasm_scalar_efficiency)


def test_nodes_for():
    m = supermuc_ng()
    assert m.nodes_for(48) == 1
    assert m.nodes_for(49) == 2
    assert m.nodes_for(6144) == 128


# ---------------------------------------------------------------------- cluster


def test_cluster_placement_and_transport_selection(supermuc):
    cluster = Cluster(supermuc, nranks=96, ranks_per_node=48)
    assert cluster.nnodes == 2
    assert cluster.same_node(0, 47)
    assert not cluster.same_node(0, 48)
    assert cluster.transport(0, 1).name == "shm"
    assert cluster.transport(0, 95).name == "omnipath"
    assert cluster.ranks_on_node(1) == list(range(48, 96))
    assert cluster.describe()["nnodes"] == 2


def test_cluster_rejects_oversized_allocation(graviton):
    with pytest.raises(ValueError):
        Cluster(graviton, nranks=64, ranks_per_node=32)  # needs 2 nodes, has 1


def test_cluster_rejects_nonpositive_ranks(graviton):
    with pytest.raises(ValueError):
        Cluster(graviton, nranks=0)


# ------------------------------------------------------------------- filesystem


def test_pfs_bandwidth_bounded_by_backend_and_links():
    fs = ParallelFileSystemModel.dss_g()
    agg = fs.aggregate_bandwidth(16 << 20, nranks=192, nnodes=4, write=False)
    assert agg <= fs.aggregate_read_bandwidth
    assert agg <= 4 * fs.node_link_bandwidth
    assert agg > 0


def test_pfs_write_slower_than_read():
    fs = ParallelFileSystemModel.dss_g()
    assert fs.aggregate_bandwidth(8 << 20, 96, 2, write=True) <= fs.aggregate_bandwidth(
        8 << 20, 96, 2, write=False
    )


def test_pfs_extra_overhead_reduces_bandwidth_slightly():
    fs = ParallelFileSystemModel.dss_g()
    base = fs.aggregate_bandwidth(4 << 20, 192, 4, write=False)
    with_overhead = fs.aggregate_bandwidth(4 << 20, 192, 4, write=False,
                                           extra_overhead_per_byte=0.004e-9)
    assert with_overhead < base
    assert with_overhead > 0.9 * base  # the WASI indirection must stay negligible


def test_pfs_invalid_arguments():
    fs = ParallelFileSystemModel.local_scratch()
    with pytest.raises(ValueError):
        fs.transfer_time(1024, nranks=0, nnodes=1, write=False)


# ---------------------------------------------------------------------- metrics


def test_sample_series_statistics():
    series = SampleSeries()
    for v in (1.0, 2.0, 3.0):
        series.add(v)
    assert series.count == 3
    assert series.mean == pytest.approx(2.0)
    assert series.minimum == 1.0
    assert series.maximum == 3.0
    assert series.stddev == pytest.approx(0.8164965, rel=1e-5)
    assert series.geometric_mean() == pytest.approx(1.8171205, rel=1e-5)


def test_metrics_registry_counters_series_merge():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.increment("calls", 2)
    b.increment("calls", 3)
    a.record("lat", 1.0)
    b.record("lat", 3.0)
    a.merge(b)
    assert a.counter("calls") == 5
    assert a.series("lat").mean == pytest.approx(2.0)
    assert "lat" in a.series_names()
    report = a.report()
    assert report["lat"]["count"] == 2
    a.reset()
    assert a.counter("calls") == 0


def test_geometric_mean_helper():
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
