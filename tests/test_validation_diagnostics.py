"""ValidationError diagnostics: function index, instruction offset, opcode."""

from __future__ import annotations

import pytest

from repro.wasm import ModuleBuilder, validate_module
from repro.wasm.errors import ValidationError


def test_validation_error_carries_structured_location():
    mb = ModuleBuilder(name="diag")
    f = mb.function("oops", params=[], results=["i32"])
    f.emit("i32.add")  # stack underflow at instruction 0
    module = mb.build()
    with pytest.raises(ValidationError) as excinfo:
        validate_module(module)
    err = excinfo.value
    assert "function 0 (oops)" in str(err)
    assert "at instruction 0 (i32.add)" in str(err)
    assert err.func_index == 0
    assert err.func_name == "oops"
    assert err.instr_offset == 0
    assert err.opcode == "i32.add"


def test_offset_points_at_the_failing_instruction():
    mb = ModuleBuilder(name="diag2")
    f = mb.function("later", params=[("a", "i32")], results=["i32"])
    f.get("a")
    f.emit("i64.add")  # type mismatch at instruction 1
    module = mb.build()
    with pytest.raises(ValidationError) as excinfo:
        validate_module(module)
    err = excinfo.value
    assert err.instr_offset == 1
    assert err.opcode == "i64.add"
    assert err.func_name == "later"


def test_attributes_default_to_none():
    err = ValidationError("plain message")
    assert err.func_index is None
    assert err.func_name is None
    assert err.instr_offset is None
    assert err.opcode is None
