"""Tests for the MPIWasm embedder: translations, imports, cache, isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AddressTranslator,
    DatatypeTranslator,
    EmbedderConfig,
    Env,
    GuestResult,
    HandleTable,
    MPIWasm,
    TranslationOverheadModel,
    run_native,
    run_wasm,
)
from repro.core.cache import InMemoryCache, module_hash
from repro.core.datatype_translation import DatatypeTranslationError
from repro.mpi import datatypes as host_datatypes
from repro.toolchain import mpi_header as abi
from repro.toolchain.guest import GuestProgram
from repro.toolchain.wasicc import compile_guest
from repro.wasm.errors import MemoryOutOfBoundsTrap
from repro.wasm.memory import LinearMemory
from repro.wasm.types import Limits, MemoryType


# -------------------------------------------------------- address translation


def test_address_translation_is_zero_copy():
    memory = LinearMemory(MemoryType(Limits(1)))
    translator = AddressTranslator(memory)
    assert translator.is_zero_copy(128, 64)
    view = translator.to_host(256, 16)
    view[:4] = b"wasm"
    assert memory.read(256, 4) == b"wasm"
    assert translator.from_host(view) == 256


def test_address_translation_bounds_checked():
    memory = LinearMemory(MemoryType(Limits(1)))
    translator = AddressTranslator(memory)
    with pytest.raises(MemoryOutOfBoundsTrap):
        translator.to_host(65536 - 4, 8)
    with pytest.raises(MemoryOutOfBoundsTrap):
        translator.to_host(-4, 8)
    with pytest.raises(MemoryOutOfBoundsTrap):
        translator.to_host(5_000_000_000, 8)
    # Regression: a negative byte count must be rejected outright, not be
    # interpreted as a from-the-end Python slice of the linear memory.
    with pytest.raises(MemoryOutOfBoundsTrap):
        translator.to_host(256, -8)


# -------------------------------------------------------- datatype translation


def test_datatype_translation_guest_to_host_and_back():
    translator = DatatypeTranslator(TranslationOverheadModel())
    dt = translator.datatype(abi.MPI_DOUBLE)
    assert dt.name == "MPI_DOUBLE" and dt.size == 8
    assert translator.guest_handle_for(dt) == abi.MPI_DOUBLE
    assert translator.op(abi.MPI_SUM).name == "MPI_SUM"
    with pytest.raises(DatatypeTranslationError):
        translator.datatype(999)
    with pytest.raises(DatatypeTranslationError):
        translator.op(999)


def test_bulk_handle_array_translation_round_trips():
    from repro.core.memory_translation import read_handle_array, write_handle_array

    memory = LinearMemory(MemoryType(Limits(1)))
    handles = [7, 0, 2**32 - 1, 42]
    write_handle_array(memory, 512, handles)
    back = read_handle_array(memory, 512, len(handles))
    assert back.dtype == np.dtype("<u4") and back.tolist() == handles
    # The read is a defensive copy: mutating it must not touch guest memory.
    back[0] = 99
    assert read_handle_array(memory, 512, 1).tolist() == [7]
    assert read_handle_array(memory, 512, 0).size == 0


def test_datatype_translator_bulk_casts_are_vectorized():
    translator = DatatypeTranslator(TranslationOverheadModel())
    raw = np.arange(8, dtype="<i4").tobytes()
    viewed = translator.as_ndarray(raw, abi.MPI_INT, 8)
    assert viewed.tolist() == list(range(8))
    widened = translator.cast_array(raw, abi.MPI_INT, abi.MPI_DOUBLE, 8)
    assert widened.dtype == np.dtype("<f8") and widened.tolist() == list(range(8))


def test_translation_latency_matches_figure6_calibration():
    model = TranslationOverheadModel()
    # Small messages: the calibrated per-datatype base values (85-105 ns).
    assert model.datatype_cost("MPI_BYTE", 64) == pytest.approx(85.44e-9)
    assert model.datatype_cost("MPI_LONG", 64) == pytest.approx(104.79e-9)
    # The knee above 256 KiB (read-lock acquisition) adds measurable latency.
    small = model.datatype_cost("MPI_DOUBLE", 1024)
    large = model.datatype_cost("MPI_DOUBLE", 4 * 1024 * 1024)
    assert large > small + 40e-9
    # Ordering of the datatypes follows the paper (BYTE/CHAR cheapest, LONG priciest).
    assert model.datatype_cost("MPI_CHAR", 8) < model.datatype_cost("MPI_INT", 8)
    assert model.datatype_cost("MPI_INT", 8) < model.datatype_cost("MPI_LONG", 8)


def test_handle_table_register_lookup_release():
    table = HandleTable(first_handle=16)
    h1 = table.register("objA")
    h2 = table.register("objB")
    assert (h1, h2) == (16, 17)
    assert table.lookup(h1) == "objA"
    assert table.contains(h2)
    table.release(h1)
    assert not table.contains(h1)
    with pytest.raises(KeyError):
        table.lookup(h1)
    assert len(table) == 1


# ----------------------------------------------------------------------- cache


def test_compilation_cache_hits_on_identical_module():
    cache = InMemoryCache()
    config = EmbedderConfig(compiler_backend="cranelift")
    program = GuestProgram(name="cached", main=lambda api, args: 0)
    app = compile_guest(program)
    embedder = MPIWasm(config, cache=cache)
    first = embedder.compile_module(app.wasm_bytes, app.module)
    assert not embedder.last_cache_hit and first.compile_seconds > 0
    second = embedder.compile_module(app.wasm_bytes, app.module)
    assert embedder.last_cache_hit and second.compile_seconds == 0.0
    assert cache.hits == 1 and cache.misses == 1


def test_module_hash_changes_with_content_and_backend():
    a = module_hash(b"module-bytes", "llvm")
    assert a == module_hash(b"module-bytes", "llvm")
    assert a != module_hash(b"module-bytes!", "llvm")
    assert a != module_hash(b"module-bytes", "cranelift")


def test_filesystem_cache_round_trip(tmp_path):
    from repro.core.cache import FileSystemCache
    from repro.wasm.compilers import get_backend

    program = GuestProgram(name="fs-cached", main=lambda api, args: 0)
    app = compile_guest(program)
    compiled = get_backend("llvm").compile(app.module)
    cache = FileSystemCache(tmp_path)
    key = module_hash(app.wasm_bytes, "llvm")
    cache.store(key, compiled)
    assert cache.contains(key)
    loaded = cache.load(key, app.module)
    assert loaded is not None and loaded.backend_name == "llvm"
    assert loaded.artifact == compiled.artifact
    assert cache.entries()
    assert cache.clear() == 1


# ---------------------------------------------------------- guest MPI imports


def _two_rank_guest(body):
    """Run ``body(api, rank, size)`` under MPIWasm on two Graviton2 ranks."""
    program = GuestProgram(name="import-test", main=None)

    def main(api, args):
        api.mpi_init()
        result = body(api, api.rank(), api.size())
        api.mpi_finalize()
        return result

    program.main = main
    return run_wasm(program, 2, machine="graviton2",
                    config=EmbedderConfig(compiler_backend="cranelift"))


def test_guest_send_recv_with_status_and_get_count():
    def body(api, rank, size):
        ptr, arr = api.alloc_array(8, abi.MPI_INT)
        if rank == 0:
            arr[:] = np.arange(8)
            api.send(ptr, 8, abi.MPI_INT, 1, 42)
            return None
        status = api.recv(ptr, 8, abi.MPI_INT, 0, 42)
        return (arr.tolist(), status["source"], status["tag"], status["count_bytes"])

    job = _two_rank_guest(body)
    data, source, tag, count_bytes = job.return_values()[1]
    assert data == list(range(8))
    assert (source, tag, count_bytes) == (0, 42, 32)


def test_guest_collectives_and_wildcards():
    def body(api, rank, size):
        send_ptr, send = api.alloc_array(4, abi.MPI_DOUBLE, fill=float(rank + 1))
        recv_ptr, recv = api.alloc_array(4, abi.MPI_DOUBLE)
        api.allreduce(send_ptr, recv_ptr, 4, abi.MPI_DOUBLE, abi.MPI_SUM)
        allred = recv.tolist()

        bcast_ptr, bcast_arr = api.alloc_array(4, abi.MPI_INT, fill=rank * 7)
        api.bcast(bcast_ptr, 4, abi.MPI_INT, 1)

        gather_ptr, gather_arr = api.alloc_array(size, abi.MPI_INT)
        one_ptr, one = api.alloc_array(1, abi.MPI_INT, fill=rank + 10)
        api.gather(one_ptr, 1, abi.MPI_INT, gather_ptr, 1, abi.MPI_INT, 0)
        return (allred, bcast_arr.tolist(), gather_arr.tolist() if rank == 0 else None)

    job = _two_rank_guest(body)
    allred0, bcast0, gathered = job.return_values()[0]
    assert allred0 == [3.0, 3.0, 3.0, 3.0]
    assert bcast0 == [7, 7, 7, 7]
    assert gathered == [10, 11]


def test_guest_isend_wait_and_alloc_mem():
    def body(api, rank, size):
        # MPI_Alloc_mem must route through the module's exported malloc (§3.7)
        # and hand back a pointer inside the 32-bit linear memory.
        ptr = api.alloc_mem(64)
        assert 0 < ptr < 4 * 1024 * 1024 * 1024
        arr = api.ndarray(ptr, 8, abi.MPI_DOUBLE)
        if rank == 0:
            arr[:] = 2.5
            req = api.isend(ptr, 8, abi.MPI_DOUBLE, 1, 3)
            api.wait(req)
        else:
            req = api.irecv(ptr, 8, abi.MPI_DOUBLE, 0, 3)
            api.wait(req)
            assert arr.tolist() == [2.5] * 8
        api.free_mem(ptr)
        return True

    assert all(_two_rank_guest(body).return_values())


def test_guest_mpi_test_poll_until_complete():
    def body(api, rank, size):
        data_ptr, data = api.alloc_array(4, abi.MPI_INT)
        if rank == 0:
            # Block on a go-signal first, so rank 1 is guaranteed to observe
            # at least one incomplete MPI_Test before the payload is sent.
            go_ptr, _ = api.alloc_array(1, abi.MPI_INT)
            api.recv(go_ptr, 1, abi.MPI_INT, 1, 1)
            data[:] = [5, 6, 7, 8]
            api.send(data_ptr, 4, abi.MPI_INT, 1, 2)
            return None
        req = api.irecv(data_ptr, 4, abi.MPI_INT, 0, 2)
        first_flag, first_status = api.test(req)
        go_ptr, _ = api.alloc_array(1, abi.MPI_INT, fill=1)
        api.send(go_ptr, 1, abi.MPI_INT, 0, 1)
        polls = 0
        while True:
            polls += 1
            flag, status = api.test(req)
            if flag:
                break
            api.env.runtime.ctx.yield_turn()  # let rank 0 make progress
        # The completed handle was released host side: a further MPI_Test
        # behaves like MPI_REQUEST_NULL (immediately complete, empty status).
        stale_flag, _ = api.test(req)
        return (data.tolist(), status["source"], status["tag"],
                first_flag, first_status, polls, stale_flag)

    job = _two_rank_guest(body)
    data, source, tag, first_flag, first_status, polls, stale_flag = job.return_values()[1]
    assert data == [5, 6, 7, 8]
    assert (source, tag) == (0, 2)
    assert first_flag is False and first_status is None
    assert polls >= 1
    assert stale_flag is True
    assert job.rank_results[1].call_counts["MPI_Test"] == polls + 2


def test_guest_comm_split_and_dup():
    def body(api, rank, size):
        new_comm = api.comm_split(abi.MPI_COMM_WORLD, color=0, key=size - rank)
        assert new_comm >= abi.FIRST_USER_COMM
        # key reverses the order, so world rank 0 becomes local rank 1.
        local_rank = api.rank(new_comm)
        dup = api.comm_dup(abi.MPI_COMM_WORLD)
        return (local_rank, api.size(dup))

    job = _two_rank_guest(body)
    assert job.return_values()[0] == (1, 2)
    assert job.return_values()[1] == (0, 2)


def test_guest_wtime_and_processor_name_and_stdout():
    def body(api, rank, size):
        t0 = api.wtime()
        api.barrier()
        t1 = api.wtime()
        api.print(f"rank {rank} ready")
        return t1 >= t0

    job = _two_rank_guest(body)
    assert all(job.return_values())
    assert "rank 0 ready" in job.stdout


def test_embedder_records_call_counts_and_translation_metrics():
    def body(api, rank, size):
        ptr, _ = api.alloc_array(16, abi.MPI_DOUBLE, fill=1.0)
        out_ptr, _ = api.alloc_array(16, abi.MPI_DOUBLE)
        for _ in range(3):
            api.allreduce(ptr, out_ptr, 16, abi.MPI_DOUBLE, abi.MPI_SUM)
        return None

    job = _two_rank_guest(body)
    result: GuestResult = job.rank_results[0]
    assert result.call_counts["MPI_Allreduce"] == 3
    assert result.call_counts["MPI_Init"] == 1
    series = job.metrics.series("embedder.translation.MPI_DOUBLE")
    assert series.count >= 6          # two ranks x three calls
    assert 50e-9 < series.mean < 300e-9


def test_wasm_run_is_slower_than_native_but_close():
    from repro.benchmarks_suite import make_imb_program

    program = make_imb_program("pingpong", message_sizes=(64, 4096), iterations=3)
    wasm = run_wasm(program, 2, machine="graviton2")
    native = run_native(program, 2, machine="graviton2")
    assert wasm.makespan > native.makespan
    # The overhead must stay modest (the paper reports ~5% GM for PingPong).
    assert wasm.makespan < native.makespan * 2.0


def test_guest_exit_code_via_proc_exit():
    program = GuestProgram(name="exit-3", main=None)

    def main(api, args):
        api.mpi_init()
        api.env.wasi.vfs.fd_write(1, b"bye\n")
        from repro.wasm.errors import ExitTrap

        raise ExitTrap(3)

    program.main = main
    job = run_wasm(program, 1, machine="graviton2")
    assert job.exit_codes() == [3]
    assert "bye" in job.stdout
