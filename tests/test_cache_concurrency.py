"""Concurrency tests for the on-disk AoT compilation cache.

The campaign runner points N worker processes at one cache directory; these
tests pin down the contract that makes that safe:

* N processes racing to compile the same module produce **exactly one**
  compile (per-key lock file; losers wait for the winner's publish),
* artifact publishes are atomic -- a concurrent reader never observes a torn
  (partially written) file,
* hit/miss accounting is correct both per-process and aggregated across the
  pool via the append-only event log (``global_stats``).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time

import pytest

from repro.core.config import EmbedderConfig
from repro.core.embedder import MPIWasm
from repro.toolchain.guest import GuestProgram
from repro.toolchain.wasicc import compile_guest
from repro.wasm.compilers import FileSystemCache, get_backend
from repro.wasm.compilers.cache import module_hash


def _ctx():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _app():
    return compile_guest(GuestProgram(name="concurrency-test", main=lambda api, args: 0))


# These workers are module-level so they stay picklable under spawn.


def _compile_worker(cache_dir: str, barrier, queue) -> None:
    """One racing compiler: load_or_compute the same key as everyone else."""
    app = _app()
    cache = FileSystemCache(cache_dir)
    key = module_hash(app.wasm_bytes, "cranelift")
    barrier.wait()  # maximise the race: everyone starts together
    compiled, was_hit = cache.load_or_compute(
        key, app.module, lambda: get_backend("cranelift").compile(app.module)
    )
    queue.put({
        "pid": os.getpid(),
        "was_hit": was_hit,
        "hits": cache.hits,
        "misses": cache.misses,
        "compiles": cache.compiles,
        "function_count": compiled.function_count,
        "ir_version": compiled.ir_version,
    })


def _embedder_worker(cache_dir: str, barrier, queue) -> None:
    """Same race through the embedder's public compile path."""
    app = _app()
    embedder = MPIWasm(EmbedderConfig(compiler_backend="cranelift", cache_dir=cache_dir))
    barrier.wait()
    compiled = embedder.compile_application(app)
    queue.put({"cache_hit": embedder.last_cache_hit, "function_count": compiled.function_count})


def _store_worker(cache_dir: str, key: str, payload_id: int, rounds: int) -> None:
    """Republishes a large artifact repeatedly (torn-read pressure)."""
    app = _app()
    compiled = get_backend("cranelift").compile(app.module)
    # Large, distinctive artifact: a torn write would be detectable both by
    # pickle failing and by the marker fields disagreeing.
    compiled.artifact = dict(compiled.artifact)
    compiled.artifact["marker"] = payload_id
    compiled.artifact["blob"] = bytes([payload_id]) * (1 << 20)
    cache = FileSystemCache(cache_dir)
    for _ in range(rounds):
        cache.store(key, compiled)


def _run_processes(targets_args, timeout=120.0):
    procs = [_ctx().Process(target=t, args=a) for t, a in targets_args]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout)
    assert all(p.exitcode == 0 for p in procs), [p.exitcode for p in procs]


N_WORKERS = 4


def test_concurrent_compiles_produce_exactly_one_artifact(tmp_path):
    ctx = _ctx()
    barrier = ctx.Barrier(N_WORKERS)
    queue = ctx.Queue()
    _run_processes([(_compile_worker, (str(tmp_path), barrier, queue))] * N_WORKERS)
    results = [queue.get(timeout=10) for _ in range(N_WORKERS)]

    cache = FileSystemCache(tmp_path)
    stats = cache.global_stats()
    # Exactly one process compiled; everyone else hit (possibly after waiting
    # out the winner's lock). No reader saw a torn artifact.
    assert stats["compiles"] == 1
    assert stats["misses"] == 1
    assert stats["hits"] == N_WORKERS - 1
    assert len(cache.compiled_keys()) == 1
    assert sum(r["compiles"] for r in results) == 1
    assert sum(1 for r in results if r["was_hit"]) == N_WORKERS - 1
    # Everyone got an equivalent artifact.
    assert len({r["function_count"] for r in results}) == 1
    assert len({r["ir_version"] for r in results}) == 1
    # Exactly one .mpiwasm file, no leftover locks or temp files.
    assert len(list(tmp_path.glob("*.mpiwasm"))) == 1
    assert not list(tmp_path.glob("*.lock"))
    assert not list(tmp_path.glob("*.tmp"))


def test_concurrent_embedders_compile_once_through_public_path(tmp_path):
    ctx = _ctx()
    barrier = ctx.Barrier(N_WORKERS)
    queue = ctx.Queue()
    _run_processes([(_embedder_worker, (str(tmp_path), barrier, queue))] * N_WORKERS)
    results = [queue.get(timeout=10) for _ in range(N_WORKERS)]
    stats = FileSystemCache(tmp_path).global_stats()
    assert stats["compiles"] == 1
    assert sum(1 for r in results if not r["cache_hit"]) == 1
    assert len({r["function_count"] for r in results}) == 1


def test_no_torn_reads_under_concurrent_republish(tmp_path):
    """Readers racing concurrent writers always deserialise a complete
    artifact whose fields are self-consistent (one writer's payload)."""
    app = _app()
    key = module_hash(app.wasm_bytes, "cranelift")
    writers = [
        (_store_worker, (str(tmp_path), key, payload_id, 12)) for payload_id in (1, 2)
    ]
    procs = [_ctx().Process(target=t, args=a) for t, a in writers]
    for p in procs:
        p.start()
    path = tmp_path / f"{key}.mpiwasm"
    observed = set()
    deadline = time.time() + 60
    try:
        while any(p.is_alive() for p in procs) and time.time() < deadline:
            if not path.exists():
                continue
            # Raw pickle read on purpose: FileSystemCache.load tolerates
            # corruption, which would mask a torn publish in this test.
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            marker = payload["artifact"]["marker"]
            blob = payload["artifact"]["blob"]
            assert blob == bytes([marker]) * (1 << 20), "torn read: mixed payloads"
            observed.add(marker)
    finally:
        for p in procs:
            p.join(60)
    assert all(p.exitcode == 0 for p in procs)
    assert observed <= {1, 2} and observed, observed


def test_event_log_counts_match_local_counters(tmp_path):
    app = _app()
    cache = FileSystemCache(tmp_path)
    key = module_hash(app.wasm_bytes, "cranelift")
    compiled, hit = cache.load_or_compute(
        key, app.module, lambda: get_backend("cranelift").compile(app.module)
    )
    assert not hit and compiled is not None
    for _ in range(3):
        _, hit = cache.load_or_compute(key, app.module, lambda: pytest.fail("must not recompile"))
        assert hit
    assert cache.stats() == {"hits": 3, "misses": 1}
    assert cache.global_stats() == {"hits": 3, "misses": 1, "compiles": 1}
    assert cache.compiled_keys() == [key]
    # A second handle on the same directory sees the pool-wide stats.
    assert FileSystemCache(tmp_path).global_stats()["hits"] == 3


def test_stale_lock_break_aborts_when_lock_was_reacquired(tmp_path):
    """TOCTOU regression: a waiter that judged the lock stale must NOT break
    it if, between the judgment and the unlink, another process released the
    stale lock and a third process re-acquired with a fresh one.  The fresh
    lock has to survive, so _try_acquire reports the key as still locked."""
    app = _app()
    cache = FileSystemCache(tmp_path)
    cache.LOCK_TIMEOUT = 0.2
    key = module_hash(app.wasm_bytes, "cranelift")
    lock = tmp_path / f"{key}.lock"
    lock.touch()
    old = time.time() - 10
    os.utime(lock, (old, old))  # looks stale to any waiter

    real_stat = cache._stat_lock
    calls = {"n": 0}

    def racing_stat(path):
        # First call: the identity re-check inside _break_stale_lock.  Swap
        # the stale lock for a *fresh* one right before it, simulating the
        # stale holder's release plus a third process's re-acquire landing in
        # the window between the staleness judgment and the unlink... except
        # the very first call, which is the staleness judgment itself.
        calls["n"] += 1
        if calls["n"] == 2:
            os.unlink(path)           # stale holder finally releases
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            os.close(fd)              # third process re-acquires, fresh mtime
        return real_stat(path)

    cache._stat_lock = racing_stat
    assert cache._try_acquire(lock) is False, "fresh lock must be respected"
    assert lock.exists(), "the re-acquired lock must not be deleted"
    # The fresh lock's mtime is recent, so a plain retry still sees it held.
    cache._stat_lock = real_stat
    assert cache._try_acquire(lock) is False


def test_stale_lock_break_tolerates_concurrent_breaker(tmp_path):
    """Two waiters racing to break the same stale lock: the loser's unlink
    target is already gone, which must read as 'retry', not crash."""
    app = _app()
    cache = FileSystemCache(tmp_path)
    cache.LOCK_TIMEOUT = 0.2
    key = module_hash(app.wasm_bytes, "cranelift")
    lock = tmp_path / f"{key}.lock"
    lock.touch()
    old = time.time() - 10
    os.utime(lock, (old, old))

    real_stat = cache._stat_lock
    calls = {"n": 0}

    def racing_stat(path):
        calls["n"] += 1
        if calls["n"] == 2 and path.exists():
            os.unlink(path)  # the other breaker wins the unlink race
        return real_stat(path)

    cache._stat_lock = racing_stat
    # With the lock gone, the retry acquires cleanly.
    assert cache._try_acquire(lock) is True
    assert lock.exists()


def test_lock_wait_deadline_is_monotonic(tmp_path, monkeypatch):
    """A wall-clock step backwards while waiting must not extend the wait:
    the deadline is timed on the monotonic clock."""
    app = _app()
    cache = FileSystemCache(tmp_path)
    cache.LOCK_TIMEOUT = 0.05
    cache.LOCK_POLL = 0.005
    key = module_hash(app.wasm_bytes, "cranelift")
    lock = tmp_path / f"{key}.lock"
    lock.touch()  # a live-looking lock that is never released...

    # ...whose mtime is permanently refreshed to "now", so the staleness
    # branch never fires and only the monotonic deadline can end the wait.
    real_time = time.time

    def fresh_mtime():
        now = real_time()
        os.utime(lock, (now, now))
        return now - 3600.0  # wall clock stepped back one hour

    monkeypatch.setattr(time, "time", fresh_mtime)
    start = time.monotonic()
    compiled, hit = cache.load_or_compute(
        key, app.module, lambda: get_backend("cranelift").compile(app.module)
    )
    elapsed = time.monotonic() - start
    assert compiled is not None and not hit
    # 2 * LOCK_TIMEOUT = 0.1s deadline; a wall-clock-timed wait would have
    # spun for the full hour of the backwards step.
    assert elapsed < 30.0


def test_stale_lock_is_broken(tmp_path):
    app = _app()
    cache = FileSystemCache(tmp_path)
    cache.LOCK_TIMEOUT = 0.2
    cache.LOCK_POLL = 0.01
    key = module_hash(app.wasm_bytes, "cranelift")
    lock = tmp_path / f"{key}.lock"
    lock.touch()
    old = time.time() - 10
    os.utime(lock, (old, old))  # a compiler that died long ago
    compiled, hit = cache.load_or_compute(
        key, app.module, lambda: get_backend("cranelift").compile(app.module)
    )
    assert compiled is not None and not hit
    assert cache.global_stats()["compiles"] == 1
