"""Project-invariant linter: rule units, baseline round-trip, self-lint."""

from __future__ import annotations

import textwrap

from repro.analysis.codelint import (
    apply_baseline,
    baseline_key,
    lint_source,
    load_baseline,
    save_baseline,
    self_lint,
)
from repro.analysis.findings import Severity


def _rules(source: str, relpath: str = "src/repro/x.py"):
    report = lint_source(textwrap.dedent(source), relpath)
    return report, {f.rule for f in report.errors}


# ------------------------------------------------------------------ rule units


def test_wallclock_in_lock_code_is_flagged():
    _, rules = _rules("""
        import time

        def check_lock_deadline(deadline):
            return time.time() > deadline
    """)
    assert "no-wallclock-in-lock-code" in rules


def test_wallclock_in_if_condition_is_flagged():
    # Regression: calls inside the *test* expression of an `if` must be
    # visited too (the guard-depth tracking visitor used to skip them).
    _, rules = _rules("""
        import time

        class Cache:
            LOCK_TIMEOUT = 5.0

            def stale(self, observed):
                if time.time() - observed.st_mtime <= self.LOCK_TIMEOUT:
                    return False
                return True
    """)
    assert "no-wallclock-in-lock-code" in rules


def test_wallclock_outside_lock_code_is_fine():
    _, rules = _rules("""
        import time

        def timestamp_report(report):
            report["generated_at"] = time.time()
    """)
    assert "no-wallclock-in-lock-code" not in rules


def test_env_reads_flagged_outside_envvars_module():
    _, rules = _rules("""
        import os

        def configure():
            a = os.environ["REPRO_MODE"]
            b = os.getenv("REPRO_CACHE", "")
            return a, b
    """)
    assert "env-reads-via-envvars" in rules
    _, rules = _rules(
        """
        import os

        def read():
            return os.environ["REPRO_MODE"]
        """,
        relpath="src/repro/core/envvars.py",
    )
    assert "env-reads-via-envvars" not in rules


def test_mutable_default_args_flagged():
    _, rules = _rules("""
        def f(xs=[]):
            return xs

        def g(m=dict()):
            return m
    """)
    assert "no-mutable-default-args" in rules
    _, rules = _rules("""
        def f(xs=None, y=0, name=""):
            return xs
    """)
    assert "no-mutable-default-args" not in rules


def test_bare_except_flagged():
    _, rules = _rules("""
        def f():
            try:
                return 1
            except:
                return 0
    """)
    assert "no-bare-except" in rules
    _, rules = _rules("""
        def f():
            try:
                return 1
            except Exception:
                return 0
    """)
    assert "no-bare-except" not in rules


def test_recorder_fastpath_guard_rule():
    _, rules = _rules("""
        from repro.obs import trace

        def hot_loop(step):
            trace.RECORDER.record(step)
    """)
    assert "obs-fastpath-discipline" in rules
    _, rules = _rules("""
        from repro.obs import trace

        def hot_loop(step):
            if trace.ENABLED:
                trace.RECORDER.record(step)
    """)
    assert "obs-fastpath-discipline" not in rules


def test_findings_carry_location_and_baseline_key():
    report, _ = _rules("""
        def f(xs=[]):
            return xs
    """)
    [finding] = report.errors
    assert finding.severity is Severity.ERROR
    assert finding.location.startswith("src/repro/x.py:")
    assert finding.details["baseline_key"] == "no-mutable-default-args::src/repro/x.py::f"
    assert baseline_key(finding) == finding.details["baseline_key"]


def test_syntax_error_is_a_finding_not_a_crash():
    report = lint_source("def broken(:\n", "src/repro/x.py")
    assert not report.ok


# ------------------------------------------------------------------- baseline


def test_baseline_round_trip_demotes_to_notes(tmp_path):
    report, _ = _rules("""
        def f(xs=[]):
            return xs
    """)
    path = tmp_path / "baseline.json"
    keys = save_baseline(report, path)
    assert load_baseline(path) == keys == sorted(keys)
    applied = apply_baseline(report, load_baseline(path))
    assert applied.ok
    [note] = applied.notes
    assert note.severity is Severity.NOTE
    assert note.message.startswith("baselined: ")
    # A finding NOT in the baseline stays an error.
    fresh, _ = _rules("""
        def f(xs=[]):
            return xs

        def g(ys=[]):
            return ys
    """)
    applied = apply_baseline(fresh, keys)
    assert not applied.ok and len(applied.errors) == 1


def test_self_lint_is_clean_against_checked_in_baseline():
    report, baseline_path = self_lint()
    assert baseline_path.name == ".codelint-baseline.json"
    assert baseline_path.exists(), "checked-in baseline missing"
    assert report.ok, report.format_text()
