"""Overhead gate for the observability subsystem (repro.obs).

The tracing and profiling hooks are designed to be near-zero-cost when
disabled: call sites check a module-level flag *before* building event
arguments, and the interpreter's dispatch loop pays one ``_profile.ACTIVE``
load per function call, not per instruction.  This benchmark enforces that
claim against the recorded perf trajectory: with tracing disabled (the
default), the Cranelift executor must retire at least 97% of the
instructions/sec floor recorded in ``BENCH_interpreter.json``.

Raw instructions/sec depends on the host, so the floor is machine-
normalised: both runs also measure the pre-refactor baseline interpreter,
and the comparison is made on the cranelift/baseline *ratio* -- a pure
dispatch-efficiency number that cancels host speed (and smoke-mode
iteration counts) out.

Set ``REPRO_BENCH_SMOKE=1`` for the reduced CI iteration count.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import pytest

from benchmarks._baseline_interpreter import BaselineInterpreter
from benchmarks.conftest import report
from benchmarks.test_interpreter_throughput import (
    INSTRS_PER_ITERATION,
    build_hot_loop_module,
)
from repro.obs import profile as profile_mod
from repro.obs import trace as trace_mod
from repro.obs import profiling
from repro.wasm import ImportObject, Instance
from repro.wasm.compilers import get_backend

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
LOOP_ITERATIONS = 2_000 if SMOKE else 20_000
#: Paired measurement rounds; the gate takes the best round's ratio, so a
#: noisy host only ever *hides* a regression round, never fakes one.  A
#: single clean round settles the gate, so rounds stop early once the
#: target ratio is beaten and MAX_ROUNDS only bounds a loaded host.
ROUNDS = 5
MAX_ROUNDS = 25
#: Tracing-disabled throughput must stay within 3% of the recorded floor.
MAX_REGRESSION = 0.03

FLOORS_PATH = Path(__file__).resolve().parents[1] / "BENCH_interpreter.json"


def _time_once(instance) -> float:
    start = time.perf_counter()
    instance.invoke("hot", LOOP_ITERATIONS)
    return time.perf_counter() - start


def _paired_ratio(module, target=None):
    """Best cranelift/baseline throughput ratio over paired rounds.

    Each round times both executors back to back, so host frequency drift
    and scheduler interference hit both sides of the ratio roughly equally
    (timing them in separate phases was measured to swing the ratio by
    >20% on a loaded host).  When ``target`` is given, rounds stop as soon
    as one beats it -- a genuine regression fails every round, so extra
    rounds can only rescue a noisy host, never mask a slow build.
    """
    baseline = Instance(module, ImportObject(), executor=BaselineInterpreter())
    compiled = get_backend("cranelift").compile(module)
    cranelift = Instance(module, ImportObject(), executor=compiled.make_executor())
    baseline.invoke("hot", 64)                       # warm up both
    cranelift.invoke("hot", 64)
    best_ratio, best_ips = 0.0, 0.0
    rounds = ROUNDS if target is None else MAX_ROUNDS
    for i in range(rounds):
        gc.collect()                                 # keep GC pauses out of the window
        base_s = _time_once(baseline)
        cran_s = _time_once(cranelift)
        if base_s / cran_s > best_ratio:
            best_ratio = base_s / cran_s
            best_ips = LOOP_ITERATIONS * INSTRS_PER_ITERATION / cran_s
        if target is not None and best_ratio >= target and i + 1 >= ROUNDS:
            break
    return best_ratio, best_ips


def test_observability_hooks_are_disabled_by_default():
    assert trace_mod.ENABLED is False
    assert trace_mod.RECORDER is None
    assert profile_mod.ACTIVE is None


def test_tracing_disabled_throughput_within_3pct_of_floor():
    if not FLOORS_PATH.exists():
        pytest.skip("no BENCH_interpreter.json floors recorded yet")
    floors = json.loads(FLOORS_PATH.read_text())
    stored_baseline = floors["backends"]["baseline"]["instructions_per_second"]
    stored_cranelift = floors["backends"]["cranelift"]["instructions_per_second"]
    stored_ratio = stored_cranelift / stored_baseline

    assert trace_mod.ENABLED is False                # the gated configuration
    module = build_hot_loop_module()
    floor_ratio = stored_ratio * (1 - MAX_REGRESSION)
    ratio, cranelift_ips = _paired_ratio(module, target=floor_ratio)

    report(
        "Tracing-disabled dispatch overhead gate",
        [
            f"stored  cranelift/baseline ratio: {stored_ratio:.3f}",
            f"current cranelift/baseline ratio: {ratio:.3f}"
            f"  ({cranelift_ips:.0f} instr/s)",
            f"floor (97% of stored):            {stored_ratio * (1 - MAX_REGRESSION):.3f}",
        ],
    )
    assert ratio >= stored_ratio * (1 - MAX_REGRESSION), (
        f"tracing hooks regressed dispatch throughput: cranelift/baseline "
        f"ratio {ratio:.3f} fell below 97% of the recorded {stored_ratio:.3f}"
    )


def test_profiled_execution_stays_correct():
    """The instrumented twin of the dispatch loop computes the same result."""
    module = build_hot_loop_module()
    compiled = get_backend("cranelift").compile(module)
    instance = Instance(module, ImportObject(), executor=compiled.make_executor())
    [plain] = instance.invoke("hot", 500)
    with profiling() as profiler:
        [profiled] = instance.invoke("hot", 500)
    assert profiled == plain
    assert profiler.dispatches > 0
    assert sum(profiler.handler_hits.values()) == profiler.dispatches
