"""Non-blocking collective overlap smoke gate.

Runs the IMB-NBC style overlap benchmark for one collective under the Wasm
embedder and asserts the two properties that make the benchmark meaningful:

* the non-blocking path produces *some* communication/computation overlap
  (a broken progress engine degenerates to blocking behaviour: overlap 0), and
* the overlapped run is never slower than pure-communication plus the full
  compute phase (the request layer must not serialise the two).

Part of the CI ``bench-smoke`` job (``REPRO_BENCH_SMOKE=1`` shrinks the sweep).
"""

from __future__ import annotations

import os

from benchmarks.conftest import report
from repro.benchmarks_suite.imb import make_imb_nbc_program
from repro.core.launcher import run_wasm

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

MESSAGE_SIZES = (4096,) if SMOKE else (256, 4096, 65536)
ITERATIONS = 2 if SMOKE else 4


def test_nbc_overlap_smoke():
    program = make_imb_nbc_program(
        "iallreduce", message_sizes=MESSAGE_SIZES, iterations=ITERATIONS
    )
    job = run_wasm(program, 4, machine="graviton2")
    rows = job.return_values()[0]["rows"]

    lines = []
    for nbytes, row in rows.items():
        lines.append(
            f"{nbytes:>8} B: pure {row['t_pure_us']:.2f} us, overlapped "
            f"{row['t_ovrl_us']:.2f} us, overlap {row['overlap_pct']:.1f}%"
        )
        # Never slower than fully serialising communication and compute.
        assert row["t_ovrl_us"] <= row["t_pure_us"] + row["t_cpu_us"] + 1e-6, row

    summary = job.metrics.nbc_overlap_summary()
    assert "allreduce" in summary, summary
    mean_overlap = summary["allreduce"]["mean"]
    assert mean_overlap > 0.1, (
        f"progress engine produced no overlap (mean {mean_overlap:.3f}); "
        "non-blocking collectives are behaving like blocking ones"
    )
    report(
        "IMB-NBC iallreduce overlap (wasm, 4 ranks, graviton2)",
        [*lines, f"metrics mean overlap: {mean_overlap:.1%} "
                 f"({summary['allreduce']['count']} samples)"],
    )
