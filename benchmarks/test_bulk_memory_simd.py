"""Microbenchmark: bulk-memory and SIMD v128 vs their scalar-loop equivalents.

``memory.copy``/``memory.fill`` execute as single bytearray slice operations
in the interpreter, so one dispatch replaces an n-iteration per-byte guest
loop; this benchmark pits them against that exact loop and asserts the
acceptance bar of the vectorization work: **>= 10x** the scalar per-byte
path.  The SIMD half runs an ``i32x4.add`` kernel against the per-word
scalar loop -- one v128 dispatch does four lanes of work (but costs more
than a scalar dispatch), so the floor there is **>= 1.8x**.

Results land in ``BENCH_bulk_simd.json`` at the repository root.  Set
``REPRO_BENCH_SMOKE=1`` for the reduced CI sizes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import report
from repro.wasm import ImportObject, Instance, ModuleBuilder, validate_module
from repro.wasm.interpreter import Interpreter

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
COPY_BYTES = 4_096 if SMOKE else 65_536
SIMD_WORDS = 1_024 if SMOKE else 16_384      # i32 lanes; /4 = vector count
# Same noise posture as test_interpreter_throughput: best-of over interleaved
# rounds, stopping early once the asserted ratios hold (extra rounds can
# rescue a loaded host, never mask a genuinely slow implementation).
BEST_OF = 3
MAX_ROUNDS = 15
MIN_BULK_SPEEDUP = 10.0
MIN_SIMD_SPEEDUP = 1.8


def build_bulk_simd_module():
    mb = ModuleBuilder(name="bulk-simd-bench")
    mb.add_memory(4)

    f = mb.function("copy_bulk", params=[("dst", "i32"), ("src", "i32"), ("n", "i32")],
                    results=[], export=True)
    f.get("dst").get("src").get("n").emit("memory.copy")

    f = mb.function("fill_bulk", params=[("dst", "i32"), ("v", "i32"), ("n", "i32")],
                    results=[], export=True)
    f.get("dst").get("v").get("n").emit("memory.fill")

    f = mb.function("copy_scalar", params=[("dst", "i32"), ("src", "i32"), ("n", "i32")],
                    results=[], export=True)
    f.add_local("i", "i32")
    with f.for_range("i", end_local="n"):
        f.get("dst").get("i").emit("i32.add")
        f.get("src").get("i").emit("i32.add").load("i32.load8_u")
        f.store("i32.store8")

    f = mb.function("add_simd", params=[("a", "i32"), ("b", "i32"),
                                        ("out", "i32"), ("nvec", "i32")],
                    results=[], export=True)
    f.add_local("i", "i32")
    f.add_local("off", "i32")
    with f.for_range("i", end_local="nvec"):
        f.get("i").i32_const(4).emit("i32.shl").set("off")
        f.get("out").get("off").emit("i32.add")
        f.get("a").get("off").emit("i32.add").load("v128.load")
        f.get("b").get("off").emit("i32.add").load("v128.load")
        f.emit("i32x4.add")
        f.store("v128.store")

    f = mb.function("add_scalar", params=[("a", "i32"), ("b", "i32"),
                                          ("out", "i32"), ("n", "i32")],
                    results=[], export=True)
    f.add_local("i", "i32")
    f.add_local("off", "i32")
    with f.for_range("i", end_local="n"):
        f.get("i").i32_const(2).emit("i32.shl").set("off")
        f.get("out").get("off").emit("i32.add")
        f.get("a").get("off").emit("i32.add").load("i32.load")
        f.get("b").get("off").emit("i32.add").load("i32.load")
        f.emit("i32.add")
        f.store("i32.store")

    module = mb.build()
    validate_module(module)
    return module


#: (name, export, args) per timed kernel.  Region layout inside the 4-page
#: memory: src bytes at 0, dst at 80 KiB; SIMD operands a/b at 0/COPY_BYTES,
#: output at 160 KiB.  All regions are disjoint.
def _kernels():
    return {
        "copy_bulk": ("copy_bulk", (81_920, 0, COPY_BYTES)),
        "copy_scalar": ("copy_scalar", (81_920, 0, COPY_BYTES)),
        "fill_bulk": ("fill_bulk", (81_920, 0xA5, COPY_BYTES)),
        "add_simd": ("add_simd", (0, COPY_BYTES, 163_840, SIMD_WORDS // 4)),
        "add_scalar": ("add_scalar", (0, COPY_BYTES, 163_840, SIMD_WORDS)),
    }


def _ratios_met(best):
    return (
        best["copy_scalar"] >= MIN_BULK_SPEEDUP * best["copy_bulk"]
        and best["copy_scalar"] >= MIN_BULK_SPEEDUP * best["fill_bulk"]
        and best["add_scalar"] >= MIN_SIMD_SPEEDUP * best["add_simd"]
    )


@pytest.fixture(scope="module")
def bulk_simd_times():
    module = build_bulk_simd_module()
    instance = Instance(module, ImportObject(), executor=Interpreter())
    memory = instance.memory
    memory.write(0, bytes(i & 0xFF for i in range(COPY_BYTES)))
    kernels = _kernels()
    best = {name: float("inf") for name in kernels}
    for name, (export, args) in kernels.items():   # warm-up (lazy lowering)
        instance.invoke(export, *args)
    for round_no in range(MAX_ROUNDS):
        for name, (export, args) in kernels.items():
            start = time.perf_counter()
            instance.invoke(export, *args)
            elapsed = time.perf_counter() - start
            best[name] = min(best[name], elapsed)
        if round_no + 1 >= BEST_OF and _ratios_met(best):
            break
    # Correctness cross-check: the bulk copy really moved the source bytes.
    instance.invoke("copy_bulk", 81_920, 0, COPY_BYTES)
    assert memory.read(81_920, 64) == memory.read(0, 64)
    return best


def test_bulk_memory_beats_scalar_loop_10x(bulk_simd_times):
    t = bulk_simd_times
    copy_speedup = t["copy_scalar"] / t["copy_bulk"]
    fill_speedup = t["copy_scalar"] / t["fill_bulk"]
    simd_speedup = t["add_scalar"] / t["add_simd"]

    payload = {
        "copy_bytes": COPY_BYTES,
        "simd_words": SIMD_WORDS,
        "smoke": SMOKE,
        "seconds": dict(t),
        "memory_copy_speedup_over_scalar": copy_speedup,
        "memory_fill_speedup_over_scalar": fill_speedup,
        "simd_i32x4_speedup_over_scalar": simd_speedup,
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_bulk_simd.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    report(
        "Bulk memory + SIMD vs scalar loops (interpreter)",
        [f"{name:<12s} {seconds * 1e6:>10.1f} us" for name, seconds in t.items()]
        + [f"memory.copy speedup: {copy_speedup:.1f}x",
           f"memory.fill speedup: {fill_speedup:.1f}x",
           f"i32x4.add   speedup: {simd_speedup:.1f}x"],
    )

    assert copy_speedup >= MIN_BULK_SPEEDUP, (
        f"memory.copy only {copy_speedup:.1f}x over the per-byte loop "
        f"(need >= {MIN_BULK_SPEEDUP}x)"
    )
    assert fill_speedup >= MIN_BULK_SPEEDUP, (
        f"memory.fill only {fill_speedup:.1f}x over the per-byte loop "
        f"(need >= {MIN_BULK_SPEEDUP}x)"
    )
    assert simd_speedup >= MIN_SIMD_SPEEDUP, (
        f"i32x4.add only {simd_speedup:.1f}x over the per-word loop "
        f"(need >= {MIN_SIMD_SPEEDUP}x)"
    )
