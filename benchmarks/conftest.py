"""pytest-benchmark harness configuration.

Each file in this directory regenerates one table or figure of the paper and
is named after it.  ``pytest benchmarks/ --benchmark-only`` runs them all and
prints the regenerated headline numbers alongside the timing statistics.
"""

from __future__ import annotations

import pytest


def report(title: str, lines) -> None:
    """Print a compact reproduction summary under the benchmark output."""
    print(f"\n--- {title} ---")
    for line in lines:
        print(line)
