"""The pre-refactor string-dispatch interpreter, kept as a benchmark baseline.

This is the execution core as it existed before the lowering refactor: a
dispatch loop that branches on opcode *name strings* per step and resolves
``block``/``else``/``end`` matching through per-function control maps.  It is
*not* registered as a back-end; ``benchmarks/test_interpreter_throughput.py``
runs it to quantify the speedup of the threaded-dispatch loop over the
pre-resolved IR (the ``>= 2x`` acceptance bar of the refactor).

Numeric semantics delegate to the same shared tables in
:mod:`repro.wasm.lowering`, so the comparison measures dispatch cost only.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.wasm import values as V
from repro.wasm.errors import IndirectCallTrap, StackExhaustionTrap, Trap, UnreachableTrap
from repro.wasm.instructions import BlockType, MemArg
from repro.wasm.lowering import (
    _CONVERSIONS,
    _F_BIN,
    _I32_BIN,
    _I64_BIN,
    _LOADS,
    _STORES,
    _UNARY_INT,
    _f_unary,
    _simd_binary,
    _simd_lanes,
    build_control_map,
)
from repro.wasm.module import Module
from repro.wasm.runtime import Executor, HostFunction, Instance, WasmFunction

MAX_CALL_DEPTH = 256


@dataclass
class _Frame:
    """One entry of the control stack."""

    kind: str            # "func", "block", "loop", "if"
    arity: int           # values the construct leaves behind when branched to/out of
    height: int          # value-stack height at entry
    start: int           # pc of the first body instruction (for loops: branch target)
    end: int             # pc of the matching end (function: len(body))


class BaselineInterpreter(Executor):
    """The pre-lowering dispatch loop: per-step opcode-name string matching."""

    name = "baseline-interpreter"

    def __init__(self, max_call_depth: int = MAX_CALL_DEPTH):
        self.max_call_depth = max_call_depth
        self._control_maps: Dict[int, Dict[int, Tuple[Optional[int], int]]] = {}

    def prepare(self, module: Module) -> None:
        for i, func in enumerate(module.functions):
            self._control_maps[i] = build_control_map(func.body)

    def _matching(self, local_index: int, body, pc: int) -> Tuple[Optional[int], int]:
        cmap = self._control_maps.get(local_index)
        if cmap is None:
            cmap = build_control_map(body)
            self._control_maps[local_index] = cmap
        return cmap[pc]

    def call(self, instance: Instance, func_index: int, args) -> List:
        target = instance.functions[func_index]
        if isinstance(target, HostFunction):
            result = target(instance, *args)
            if result is None:
                return []
            return list(result) if isinstance(result, (list, tuple)) else [result]
        depth = instance.host_state.get("_call_depth", 0)
        if depth >= self.max_call_depth:
            raise StackExhaustionTrap(depth)
        instance.host_state["_call_depth"] = depth + 1
        try:
            return self._exec(instance, target, list(args))
        finally:
            instance.host_state["_call_depth"] = depth

    def _exec(self, instance: Instance, target: WasmFunction, args: List) -> List:
        module = instance.module
        func = target.definition
        func_type = target.func_type
        local_index = target.func_index - module.num_imported_functions()

        locals_: List = list(args)
        for vt in func.locals:
            locals_.append(V.default_value(vt.short_name))

        body = func.body
        stack: List = []
        frames: List[_Frame] = [
            _Frame(kind="func", arity=len(func_type.results), height=0, start=0, end=len(body))
        ]
        memory = instance.memory
        pc = 0

        def do_branch(depth: int) -> int:
            frame = frames[-1 - depth]
            if frame.kind == "loop":
                if depth:
                    del frames[len(frames) - depth:]
                del stack[frame.height:]
                return frame.start
            results = stack[len(stack) - frame.arity:] if frame.arity else []
            del frames[len(frames) - 1 - depth:]
            del stack[frame.height:]
            stack.extend(results)
            if frame.kind == "func":
                return len(body)
            return frame.end + 1

        # Hot-path hygiene (the baseline stays string-dispatched, but it
        # should be an honest baseline): bound methods hoisted out of the
        # loop, ``info.name`` read without the property descriptor, and the
        # dispatch chain ordered by dynamic frequency -- locals, ALU and
        # constants first, control flow after.
        push = stack.append
        pop = stack.pop
        n_body = len(body)

        while pc < n_body:
            instr = body[pc]
            name = instr.info.name

            if name == "local.get":
                push(locals_[instr.operands[0]])
                pc += 1
            elif name in _I32_BIN:
                b = pop()
                a = pop()
                push(_I32_BIN[name](a, b))
                pc += 1
            elif name == "i32.const":
                push(V.wrap32(instr.operands[0]))
                pc += 1
            elif name == "local.set":
                locals_[instr.operands[0]] = pop()
                pc += 1
            elif name == "br_if":
                if pop():
                    pc = do_branch(instr.operands[0])
                else:
                    pc += 1
            elif name == "br":
                pc = do_branch(instr.operands[0])
            elif name == "local.tee":
                locals_[instr.operands[0]] = stack[-1]
                pc += 1
            elif name == "nop":
                pc += 1
            elif name == "unreachable":
                raise UnreachableTrap()
            elif name in ("block", "loop"):
                else_idx, end_idx = self._matching(local_index, body, pc)
                bt: BlockType = instr.operands[0]
                frames.append(
                    _Frame(
                        kind=name,
                        arity=bt.arity() if name == "block" else 0,
                        height=len(stack),
                        start=pc + 1,
                        end=end_idx,
                    )
                )
                pc += 1
            elif name == "if":
                else_idx, end_idx = self._matching(local_index, body, pc)
                bt = instr.operands[0]
                cond = stack.pop()
                frames.append(
                    _Frame(kind="if", arity=bt.arity(), height=len(stack), start=pc + 1, end=end_idx)
                )
                if cond:
                    pc += 1
                else:
                    pc = (else_idx + 1) if else_idx is not None else end_idx
            elif name == "else":
                pc = frames[-1].end
            elif name == "end":
                frames.pop()
                pc += 1
            elif name == "br_table":
                targets, default = instr.operands
                idx = stack.pop()
                depth = targets[idx] if idx < len(targets) else default
                pc = do_branch(depth)
            elif name == "return":
                results = stack[len(stack) - len(func_type.results):] if func_type.results else []
                return list(results)
            elif name == "call":
                callee_index = instr.operands[0]
                callee_type = instance.function_type(callee_index)
                nargs = len(callee_type.params)
                call_args = stack[len(stack) - nargs:] if nargs else []
                del stack[len(stack) - nargs:]
                results = instance.call_function(callee_index, call_args)
                stack.extend(results)
                pc += 1
            elif name == "call_indirect":
                type_index, table_index = instr.operands
                expected = module.types[type_index]
                elem_index = stack.pop()
                if table_index >= len(instance.tables):
                    raise IndirectCallTrap(f"no table at index {table_index}")
                callee_index = instance.tables[table_index].get(elem_index)
                if callee_index is None:
                    raise IndirectCallTrap(f"null funcref at table slot {elem_index}")
                if instance.function_type(callee_index) != expected:
                    raise IndirectCallTrap("indirect call signature mismatch")
                nargs = len(expected.params)
                call_args = stack[len(stack) - nargs:] if nargs else []
                del stack[len(stack) - nargs:]
                stack.extend(instance.call_function(callee_index, call_args))
                pc += 1
            elif name == "drop":
                stack.pop()
                pc += 1
            elif name == "select":
                cond = stack.pop()
                b = stack.pop()
                a = stack.pop()
                stack.append(a if cond else b)
                pc += 1
            elif name == "global.get":
                stack.append(instance.globals[instr.operands[0]].value)
                pc += 1
            elif name == "global.set":
                instance.globals[instr.operands[0]].set(stack.pop())
                pc += 1
            elif name == "i64.const":
                stack.append(V.wrap64(instr.operands[0]))
                pc += 1
            elif name in ("f32.const", "f64.const"):
                stack.append(float(instr.operands[0]))
                pc += 1
            elif name == "v128.const":
                stack.append(bytes(instr.operands[0]))
                pc += 1
            elif name in _LOADS:
                memarg: MemArg = instr.operands[0]
                addr = stack.pop() + memarg.offset
                nbytes, kind = _LOADS[name]
                if kind == "f32":
                    stack.append(memory.load_f32(addr))
                elif kind == "f64":
                    stack.append(memory.load_f64(addr))
                elif kind == "v128":
                    stack.append(memory.read(addr, 16))
                elif kind == "s32":
                    stack.append(memory.load_int(addr, nbytes, signed=True) & V.MASK32)
                elif kind == "s64":
                    stack.append(memory.load_int(addr, nbytes, signed=True) & V.MASK64)
                else:
                    stack.append(memory.load_int(addr, nbytes, signed=False))
                pc += 1
            elif name in _STORES:
                memarg = instr.operands[0]
                value = stack.pop()
                addr = stack.pop() + memarg.offset
                spec = _STORES[name]
                if name == "f32.store":
                    memory.store_f32(addr, value)
                elif name == "f64.store":
                    memory.store_f64(addr, value)
                elif name == "v128.store":
                    memory.write(addr, bytes(value))
                else:
                    memory.store_int(addr, value, abs(spec))
                pc += 1
            elif name == "memory.size":
                stack.append(memory.pages)
                pc += 1
            elif name == "memory.grow":
                delta = stack.pop()
                stack.append(memory.grow(delta) & V.MASK32)
                pc += 1
            elif name in _I64_BIN:
                b = stack.pop()
                a = stack.pop()
                stack.append(_I64_BIN[name](a, b))
                pc += 1
            elif name in _F_BIN:
                b = stack.pop()
                a = stack.pop()
                stack.append(_F_BIN[name](a, b))
                pc += 1
            elif name in _UNARY_INT:
                stack.append(_UNARY_INT[name](stack.pop()))
                pc += 1
            elif name in _CONVERSIONS:
                stack.append(_CONVERSIONS[name](stack.pop()))
                pc += 1
            elif name.startswith(("f32.", "f64.")) and name.split(".")[1] in (
                "abs", "neg", "sqrt", "ceil", "floor", "trunc", "nearest",
            ):
                stack.append(_f_unary(name, stack.pop()))
                pc += 1
            elif name.endswith(".splat"):
                fmt, count, size = _simd_lanes(name)
                value = stack.pop()
                if fmt in ("f", "d"):
                    lane = struct.pack(f"<{fmt}", value)
                else:
                    lane = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
                stack.append(lane * count)
                pc += 1
            elif instr.info.is_simd:
                b = stack.pop()
                a = stack.pop()
                stack.append(_simd_binary(name, a, b))
                pc += 1
            else:
                raise Trap(f"instruction {name!r} not implemented by the baseline interpreter")

        if func_type.results:
            return list(stack[len(stack) - len(func_type.results):])
        return []
