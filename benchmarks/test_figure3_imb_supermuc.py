"""Figure 3: Intel MPI Benchmarks, native vs Wasm, on the SuperMUC-NG preset."""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.benchmarks_suite.imb import make_imb_program
from repro.core import run_wasm
from repro.harness import figure3_imb_supermuc

PAPER_GM_SLOWDOWNS = {
    "pingpong": 0.05, "sendrecv": 0.06, "bcast": 0.13, "allreduce": 0.06,
    "allgather": 0.06, "alltoall": 0.10, "reduce": 0.05, "gather": 0.10, "scatter": 0.08,
}


def test_figure3_model_sweep(benchmark):
    """All nine IMB routines at 768/6144 ranks across 1 B - 4 MiB (model mode)."""
    result = benchmark(figure3_imb_supermuc)
    lines = [
        f"{routine:<10s} GM slowdown measured={slowdown:+.3f}   paper={PAPER_GM_SLOWDOWNS[routine]:+.2f}"
        for routine, slowdown in result["gm_slowdowns"].items()
    ]
    lines.append(
        f"max PingPong bandwidth: native={result['max_bandwidth_native_gib_s']:.1f} GiB/s, "
        f"wasm={result['max_bandwidth_wasm_gib_s']:.1f} GiB/s (paper: 12.80 / 13.44)"
    )
    report("Figure 3 (SuperMUC-NG, GM Wasm slowdown per routine)", lines)
    for routine, slowdown in result["gm_slowdowns"].items():
        assert -0.01 <= slowdown <= 0.20


@pytest.mark.parametrize("routine", ["pingpong", "allreduce"])
def test_figure3_functional_point(benchmark, routine):
    """A functional (fully executed) small-scale point of the same sweep."""
    nranks = 2 if routine == "pingpong" else 4
    program = make_imb_program(routine, message_sizes=(1024,), iterations=2)
    job = benchmark.pedantic(
        lambda: run_wasm(program, nranks, machine="supermuc-ng", ranks_per_node=nranks),
        rounds=1, iterations=1,
    )
    assert job.return_values()[0]["rows"][1024]["t_avg_us"] > 0
