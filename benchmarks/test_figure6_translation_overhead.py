"""Figure 6: datatype translation overhead in MPIWasm."""

from __future__ import annotations

from benchmarks.conftest import report
from repro.harness import figure6_translation_overhead

PAPER_AVERAGES_NS = {
    "MPI_BYTE": 85.44, "MPI_CHAR": 84.72, "MPI_INT": 99.78,
    "MPI_FLOAT": 96.32, "MPI_DOUBLE": 103.35, "MPI_LONG": 104.79,
}


def test_figure6_translation_overhead(benchmark):
    result = benchmark(lambda: figure6_translation_overhead(functional=True))
    lines = []
    for name, paper_value in PAPER_AVERAGES_NS.items():
        measured = result.get("measured_mean_ns", {}).get(name)
        model = result["average_ns"][name]
        measured_text = f"{measured:.1f}" if measured is not None else "n/a"
        lines.append(
            f"{name:<11s} model(sweep avg)={model:6.1f} ns  measured(functional)={measured_text:>6s} ns  "
            f"paper={paper_value:.2f} ns"
        )
    report("Figure 6 (datatype translation overhead)", lines)
    assert result["average_ns"]["MPI_BYTE"] < result["average_ns"]["MPI_LONG"]
