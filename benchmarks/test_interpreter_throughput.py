"""Dispatch microbenchmark: interpreter instructions/sec per back-end.

Runs a hot arithmetic loop with a statically known dynamic instruction count
under every back-end *and* under the pre-refactor string-dispatch interpreter
(:mod:`benchmarks._baseline_interpreter`), then writes the achieved
instructions/sec to ``BENCH_interpreter.json`` at the repository root --
the perf-trajectory record for the execution core.

The acceptance bar of the lowering refactor is asserted here: the Cranelift
back-end (threaded dispatch over eagerly lowered IR) must retire at least 2x
the instructions/sec of the pre-refactor interpreter.

Set ``REPRO_BENCH_SMOKE=1`` to run a reduced iteration count (the CI smoke
mode).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks._baseline_interpreter import BaselineInterpreter
from benchmarks.conftest import report
from repro.wasm import ImportObject, Instance, ModuleBuilder, validate_module
from repro.wasm.compilers import get_backend

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
LOOP_ITERATIONS = 2_000 if SMOKE else 20_000
# Best-of-N is robust to scheduler noise (contention only ever slows a run).
# Rounds stop early once every asserted floor is met, so MAX_ROUNDS only
# bounds a loaded host -- extra rounds can rescue a noisy run, never mask a
# genuinely slow build.
BEST_OF = 3
MAX_ROUNDS = 20

#: Absolute instructions/sec floors for the perf trajectory.  The baseline
#: floor rose with the PR-7 dispatch-hygiene pass on the string-dispatch
#: interpreter; the LLVM floor with the stack-to-expression peephole, inline
#: signed comparisons and loop back-edge fusion.
BASELINE_FLOOR = 2_500_000
LLVM_FLOOR = 30_000_000
MIN_CRANELIFT_SPEEDUP = 2.0

#: Dynamic instructions per loop iteration of the ``hot`` function below:
#: 4 for the exit check (get i, get n, ge_s, br_if), 8 for the body
#: (get acc, get i, add, get i, const, shl, xor, set acc) and 5 for the
#: increment-and-repeat (get i, const, add, set i, br).
INSTRS_PER_ITERATION = 17


def build_hot_loop_module():
    """A module whose ``hot(n)`` runs n iterations of a pure-ALU loop body."""
    mb = ModuleBuilder(name="dispatch-throughput")
    f = mb.function("hot", params=[("n", "i32")], results=["i32"], export=True)
    f.add_local("i", "i32")
    f.add_local("acc", "i32")
    with f.for_range("i", end_local="n"):
        # acc = (acc + i) ^ (i << 1)
        f.get("acc").get("i").emit("i32.add")
        f.get("i").i32_const(1).emit("i32.shl")
        f.emit("i32.xor").set("acc")
    f.get("acc")
    module = mb.build()
    validate_module(module)
    return module


def _floors_met(rows) -> bool:
    baseline = rows["baseline"]["instructions_per_second"]
    return (
        baseline >= BASELINE_FLOOR
        and rows["llvm"]["instructions_per_second"] >= LLVM_FLOOR
        and rows["cranelift"]["instructions_per_second"]
        >= MIN_CRANELIFT_SPEEDUP * baseline
    )


@pytest.fixture(scope="module")
def throughput_rows():
    module = build_hot_loop_module()
    instances = {"baseline": Instance(module, ImportObject(),
                                      executor=BaselineInterpreter())}
    for name in ("singlepass", "cranelift", "llvm"):
        compiled = get_backend(name).compile(module)
        instances[name] = Instance(module, ImportObject(),
                                   executor=compiled.make_executor())
    rows = {}
    for name, instance in instances.items():
        [expected] = instance.invoke("hot", 64)  # warm up (lazy lowering, caches)
        rows[name] = {"seconds": float("inf"), "warmup_result": expected}
    dynamic_instructions = LOOP_ITERATIONS * INSTRS_PER_ITERATION
    # Interleave the executors round by round so scheduler interference hits
    # all of them roughly equally, and keep the best round per executor.
    for round_no in range(MAX_ROUNDS):
        for name, instance in instances.items():
            row = rows[name]
            start = time.perf_counter()
            [result] = instance.invoke("hot", LOOP_ITERATIONS)
            elapsed = time.perf_counter() - start
            if elapsed < row["seconds"]:
                row["seconds"] = elapsed
                row["instructions_per_second"] = dynamic_instructions / elapsed
            row["result"] = result
        if round_no + 1 >= BEST_OF and _floors_met(rows):
            break
    return rows


def test_all_backends_agree_on_hot_loop(throughput_rows):
    results = {name: row["result"] for name, row in throughput_rows.items()}
    assert len(set(results.values())) == 1, f"hot-loop results diverge: {results}"


def test_dispatch_throughput_and_write_trajectory(throughput_rows):
    """Cranelift must retire >= 2x the baseline's instructions/sec."""
    payload = {
        "loop_iterations": LOOP_ITERATIONS,
        "instructions_per_iteration": INSTRS_PER_ITERATION,
        "dynamic_instructions": LOOP_ITERATIONS * INSTRS_PER_ITERATION,
        "smoke": SMOKE,
        "backends": {
            name: {
                "seconds": row["seconds"],
                "instructions_per_second": row["instructions_per_second"],
            }
            for name, row in throughput_rows.items()
        },
    }
    baseline_ips = throughput_rows["baseline"]["instructions_per_second"]
    cranelift_ips = throughput_rows["cranelift"]["instructions_per_second"]
    payload["cranelift_speedup_over_baseline"] = cranelift_ips / baseline_ips

    out_path = Path(__file__).resolve().parents[1] / "BENCH_interpreter.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    report(
        "Interpreter dispatch throughput (instructions/sec)",
        [
            f"{name:<11s} {row['instructions_per_second']:>12.0f} instr/s"
            f"   ({row['seconds'] * 1e3:.2f} ms)"
            for name, row in throughput_rows.items()
        ]
        + [f"cranelift speedup over pre-refactor baseline: "
           f"{payload['cranelift_speedup_over_baseline']:.2f}x"],
    )

    assert cranelift_ips >= MIN_CRANELIFT_SPEEDUP * baseline_ips, (
        f"threaded dispatch must be >= {MIN_CRANELIFT_SPEEDUP}x the "
        f"pre-refactor interpreter (got {cranelift_ips / baseline_ips:.2f}x)"
    )
    # Absolute perf-trajectory floors (PR 7): the optimised baseline and the
    # peephole-folded LLVM backend must not regress below these marks.
    assert baseline_ips >= BASELINE_FLOOR, (
        f"baseline interpreter fell below its floor: "
        f"{baseline_ips:.0f} < {BASELINE_FLOOR} instr/s"
    )
    assert throughput_rows["llvm"]["instructions_per_second"] >= LLVM_FLOOR, (
        f"llvm backend fell below its floor: "
        f"{throughput_rows['llvm']['instructions_per_second']:.0f} "
        f"< {LLVM_FLOOR} instr/s"
    )
    # Table 1 ordering within the refactored core: LLVM-generated code beats
    # the interpreting back-ends on the same hot loop.
    assert (
        throughput_rows["llvm"]["instructions_per_second"]
        > throughput_rows["singlepass"]["instructions_per_second"]
    )
