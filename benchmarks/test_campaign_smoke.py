"""Campaign-runner scaling smoke: serial vs worker-pool wall clock.

Runs a figure-5-class sweep (HPCG at several rank counts, repeated) once
serially and once on a 4-worker pool and reports both wall-clock times plus
the shared-cache counters.  The acceptance gates:

* the parallel run produces *identical* per-job results (fingerprints), and
* each distinct guest module compiles exactly once across the pool.

The wall-clock speedup itself is only asserted on multi-core hosts -- on a
single core a process pool cannot beat the serial path, it can only match
it plus scheduling overhead.
"""

from __future__ import annotations

import os

from benchmarks.conftest import report
from repro.harness.campaign import CampaignSpec, run_campaign

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SPEC = {
    "name": "figure5-class-sweep",
    "seed": 5,
    "benchmarks": [
        {"benchmark": "hpcg", "mode": "wasm", "backend": "cranelift",
         "nranks": [2, 3] if SMOKE else [2, 3, 4], "machine": "graviton2",
         "repeats": 1 if SMOKE else 2},
    ],
}


def test_parallel_campaign_scales_and_compiles_once():
    spec = CampaignSpec.from_mapping(SPEC)
    serial = run_campaign(spec, workers=1)
    parallel = run_campaign(spec, workers=4)

    assert serial.ok and parallel.ok
    assert parallel.fingerprints() == serial.fingerprints(), (
        "parallel campaign diverged from the serial path"
    )
    assert parallel.cache_stats["compiles"] == 1, parallel.cache_stats
    assert len(set(parallel.compiled_modules)) == 1

    speedup = serial.wall_seconds / parallel.wall_seconds if parallel.wall_seconds else 0.0
    cores = os.cpu_count() or 1
    report(
        "campaign scaling smoke",
        [
            f"jobs: {len(serial.outcomes)}, host cores: {cores}",
            f"serial wall: {serial.wall_seconds:.3f}s, 4-worker wall: "
            f"{parallel.wall_seconds:.3f}s ({speedup:.2f}x)",
            f"shared cache: {parallel.cache_stats} "
            f"({len(set(parallel.compiled_modules))} distinct modules)",
        ],
    )
    if cores >= 4 and not SMOKE:
        assert parallel.wall_seconds < serial.wall_seconds, (
            f"4 workers on {cores} cores took {parallel.wall_seconds:.3f}s vs "
            f"{serial.wall_seconds:.3f}s serial"
        )
