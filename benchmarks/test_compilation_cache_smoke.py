"""CI gate: the second identical compile must be a cache hit, per back-end.

Part of the benchmark suite's smoke mode: compiles the HPCG guest module
twice against a fresh on-disk cache and fails if the second compile produces
a miss (or performs any compilation work) for any back-end.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.benchmarks_suite.hpcg import make_hpcg_program
from repro.core import EmbedderConfig, MPIWasm
from repro.toolchain.wasicc import compile_guest

BACKENDS = ("singlepass", "cranelift", "llvm")


@pytest.mark.parametrize("backend", BACKENDS)
def test_second_identical_compile_hits_cache(tmp_path, backend):
    app = compile_guest(make_hpcg_program(dims=(8, 4, 4), iterations=1))
    embedder = MPIWasm(EmbedderConfig(compiler_backend=backend, cache_dir=str(tmp_path)))

    first = embedder.compile_module(app.wasm_bytes, app.module)
    assert not embedder.last_cache_hit, f"{backend}: first compile must miss"

    second = embedder.compile_module(app.wasm_bytes, app.module)
    assert embedder.last_cache_hit, f"{backend}: second identical compile missed the cache"
    assert second.compile_seconds == 0.0, f"{backend}: cache hit still did compile work"
    assert embedder.cache.stats() == {"hits": 1, "misses": 1}

    report(
        f"AoT cache smoke ({backend})",
        [f"first compile: {first.compile_seconds * 1e3:.3f} ms, second: cache hit (0 ms)"],
    )
