"""Table 2: native dynamic / native static / Wasm binary sizes."""

from __future__ import annotations

from benchmarks.conftest import report
from repro.harness import table2_binary_sizes


def test_table2_binary_sizes(benchmark):
    result = benchmark(table2_binary_sizes)
    rows = result["rows"]
    report(
        "Table 2 (paper: Wasm 139.5x smaller than static on average)",
        [
            f"{r['application']:<5s} dynamic={r['native_dynamic_kib']:7.1f} KiB  "
            f"static={r['native_static_mib']:5.1f} MiB  wasm={r['wasm_kib']:7.1f} KiB  "
            f"static/wasm={r['static_to_wasm_ratio']:6.1f}x"
            for r in rows
        ]
        + [f"average static/wasm ratio: {result['average_static_to_wasm_ratio']:.1f}x"],
    )
    assert 110 <= result["average_static_to_wasm_ratio"] <= 175
