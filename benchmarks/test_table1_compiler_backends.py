"""Table 1: compile duration and single-core performance per compiler back-end."""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.benchmarks_suite.hpcg import make_hpcg_program
from repro.toolchain.wasicc import compile_guest
from repro.wasm.compilers import get_backend
from repro.harness import table1_compiler_backends


@pytest.mark.parametrize("backend", ["singlepass", "cranelift", "llvm"])
def test_table1_compile_duration(benchmark, backend):
    """Wall-clock AoT compilation time of the HPCG guest module per back-end."""
    app = compile_guest(make_hpcg_program(dims=(12, 6, 6), iterations=2))
    compiled = benchmark(lambda: get_backend(backend).compile(app.module))
    assert compiled.function_count == len(app.module.functions)


def test_table1_rows(benchmark):
    """The full Table 1 (compile ms + kernel MFLOP/s) as produced by the harness."""
    result = benchmark.pedantic(
        lambda: table1_compiler_backends(dims=(10, 6, 6), kernel_iterations=20),
        rounds=1, iterations=1,
    )
    report(
        "Table 1 (paper: Singlepass 52 ms / 0.38 GF, Cranelift 150 ms / 1.32 GF, LLVM 2811 ms / 1.54 GF)",
        [
            f"{name:<11s} compile={row['compile_ms']:.3f} ms   kernel={row['kernel_mflops']:.3f} MFLOP/s"
            for name, row in result.items()
        ],
    )
    assert result["llvm"]["kernel_mflops"] > result["singlepass"]["kernel_mflops"]
