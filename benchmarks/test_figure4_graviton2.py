"""Figure 4: selected IMB routines and HPCG on the AWS Graviton2 preset."""

from __future__ import annotations

from benchmarks.conftest import report
from repro.harness import figure4_graviton2


def test_figure4_graviton2(benchmark):
    result = benchmark(figure4_graviton2)
    lines = [
        f"{routine:<10s} GM Wasm slowdown = {slowdown:+.3f}"
        for routine, slowdown in result["gm_slowdowns"].items()
    ]
    hpcg = result["hpcg"]
    lines.append(
        f"HPCG @32 ranks: native={hpcg[32]['native_gflops']:.1f} GF, "
        f"wasm={hpcg[32]['wasm_gflops']:.1f} GF (paper Figure 4f: ~20 GF, near-native)"
    )
    report("Figure 4 (Graviton2)", lines)
    assert hpcg[32]["wasm_reduction"] < 0.08
