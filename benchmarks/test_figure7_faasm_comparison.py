"""Figure 7: PingPong comparison between MPIWasm and Faasm."""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.harness import figure7_faasm_comparison


def test_figure7_faasm_comparison(benchmark):
    result = benchmark(figure7_faasm_comparison)
    sample_sizes = (1, 1024, 65536, 1 << 20, 1 << 22)
    lines = [
        f"{nbytes:>8d} B   MPIWasm={result['series'][nbytes]['mpiwasm_us']:9.2f} us   "
        f"Faasm={result['series'][nbytes]['faasm_us']:9.2f} us"
        for nbytes in sample_sizes
        if nbytes in result["series"]
    ]
    lines.append(f"GM speedup of MPIWasm over Faasm: {result['gm_speedup']:.2f}x (paper: 4.28x)")
    report("Figure 7 (MPIWasm vs Faasm PingPong)", lines)
    assert result["gm_speedup"] == pytest.approx(4.28, rel=0.45)
