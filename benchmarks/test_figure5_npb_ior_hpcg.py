"""Figure 5: NPB IS/DT, IOR bandwidth, and HPCG scaling on SuperMUC-NG."""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.benchmarks_suite.hpcg import make_hpcg_program
from repro.benchmarks_suite.npb import make_is_program
from repro.core import run_wasm
from repro.harness import figure5_npb_ior_hpcg


def test_figure5_model_sweep(benchmark):
    result = benchmark(figure5_npb_ior_hpcg)
    hpcg = result["hpcg"]
    lines = [
        f"IS   @1024 ranks: native={result['is'][1024]['native_mops']:.0f} Mop/s, "
        f"wasm={result['is'][1024]['wasm_mops']:.0f} Mop/s (paper: ~8546 vs ~8260)",
        f"DT   SIMD speedup (Wasm w/ vs w/o): {result['dt_simd_speedup']:.2f}x (paper: 1.36x)",
        f"IOR  @16 MiB blocks: read={result['ior'][16]['wasm_read_mib_s']:.0f} MiB/s, "
        f"write={result['ior'][16]['wasm_write_mib_s']:.0f} MiB/s (ceiling 47684 MiB/s)",
        f"HPCG @6144 ranks: native={hpcg[6144]['native_gflops']:.0f} GF, "
        f"wasm={hpcg[6144]['wasm_gflops']:.0f} GF, reduction="
        f"{hpcg[6144]['wasm_reduction']:.1%} (paper: 14%)",
    ]
    report("Figure 5 (NPB / IOR / HPCG)", lines)
    assert hpcg[6144]["wasm_reduction"] == pytest.approx(0.14, abs=0.05)


def test_figure5_functional_is_point(benchmark):
    """Functional NPB IS run (class S, 4 ranks) under MPIWasm."""
    job = benchmark.pedantic(
        lambda: run_wasm(make_is_program("S"), 4, machine="supermuc-ng", ranks_per_node=4),
        rounds=1, iterations=1,
    )
    assert all(r["sorted_ok"] for r in job.return_values())


def test_figure5_functional_hpcg_point(benchmark):
    """Functional HPCG run (small grid, 2 ranks) under MPIWasm."""
    program = make_hpcg_program(dims=(8, 4, 4), iterations=4)
    job = benchmark.pedantic(
        lambda: run_wasm(program, 2, machine="supermuc-ng", ranks_per_node=2),
        rounds=1, iterations=1,
    )
    assert job.return_values()[0]["converging"]
