#!/usr/bin/env python3
"""Quickstart: build an MPI guest, compile it to Wasm, run it under MPIWasm.

This mirrors the paper's workflow (Figure 1 and Listing 4):

1. write an MPI application (here: a ring exchange plus an allreduce),
2. compile it once with the ``wasicc`` toolchain -- producing a genuine
   ``.wasm`` binary whose MPI functions are unresolved ``env`` imports,
3. execute it on a simulated HPC machine through the public session API
   (:class:`repro.api.Session` -- the embedder front door HPC launchers use),
4. compare against the native execution of the same program.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Session
from repro.toolchain import mpi_header as abi
from repro.toolchain.guest import GuestProgram
from repro.toolchain.wasicc import compile_guest
from repro.wasm import module_to_wat


def ring_allreduce_main(api, args):
    """The guest program: ring exchange + allreduce, written against the MPI ABI."""
    api.mpi_init()
    rank = api.rank()
    size = api.size()

    # A ring exchange: send our rank to the right neighbour, receive from the left.
    send_ptr, send = api.alloc_array(1, abi.MPI_INT, fill=rank)
    recv_ptr, recv = api.alloc_array(1, abi.MPI_INT)
    api.sendrecv(send_ptr, 1, abi.MPI_INT, (rank + 1) % size, 0,
                 recv_ptr, 1, abi.MPI_INT, (rank - 1) % size, 0)

    # A global sum of rank ids.
    sum_ptr, sum_in = api.alloc_array(1, abi.MPI_DOUBLE, fill=float(rank))
    out_ptr, sum_out = api.alloc_array(1, abi.MPI_DOUBLE)
    api.allreduce(sum_ptr, out_ptr, 1, abi.MPI_DOUBLE, abi.MPI_SUM)

    if rank == 0:
        api.print(f"ring neighbour of rank 0 is {int(recv[0])}; sum of ranks = {sum_out[0]:.0f}")
    api.mpi_finalize()
    return {"left_neighbour": int(recv[0]), "rank_sum": float(sum_out[0])}


def main() -> int:
    program = GuestProgram(name="quickstart", main=ring_allreduce_main,
                           description="ring exchange + allreduce")

    # Step 1: compile once, distribute anywhere (the binary is portable bytes).
    app = compile_guest(program)
    print(f"compiled {program.name!r} to {app.size} bytes of Wasm")
    print("first lines of the module in WAT form:")
    print("\n".join(module_to_wat(app.module).splitlines()[:12]))

    # Step 2: run under MPIWasm on two different simulated machines.  One warm
    # session serves every job: the module compiles once and every later run
    # (any machine, any rank count) reuses the artifact.
    with Session(backend="llvm") as session:
        for machine in ("supermuc-ng", "graviton2"):
            job = session.run(app, 8, machine=machine)
            native = session.run(app, 8, mode="native", machine=machine)
            result = job.return_values()[0]
            print(f"[{machine}] wasm makespan = {job.makespan * 1e6:8.2f} us | "
                  f"native makespan = {native.makespan * 1e6:8.2f} us | "
                  f"sum of ranks = {result['rank_sum']:.0f}")
            assert result["rank_sum"] == sum(range(8))
        summary = session.metrics.cache_summary()
        print(f"AoT cache across both machines: {summary['misses']:.0f} compile(s), "
              f"{summary['hits']:.0f} warm hit(s)")
    print("stdout captured from rank 0:")
    print(job.stdout, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
