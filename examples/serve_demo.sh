#!/usr/bin/env bash
# Demo of the multi-tenant job service (`repro-harness serve`).
#
# Starts the daemon with the two example tenants (examples/serve_tenants.json:
# unmetered "alice", quota-of-one "bob"), submits a run job and a campaign as
# alice, shows bob tripping his quota (429 + Retry-After), pulls a compiled
# artifact out of the shared AoT cache, scrapes /healthz + /metrics, and
# shuts the daemon down gracefully with SIGTERM.
#
# Requires only curl + python3 (for JSON pretty-printing / field extraction).
set -euo pipefail

HERE="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
PORT="${PORT:-8123}"
BASE="http://127.0.0.1:${PORT}"
ALICE="alice-secret-key-0001"
BOB="bob-secret-key-00002"

say() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

if command -v repro-harness >/dev/null 2>&1; then
    HARNESS=(repro-harness)
else
    HARNESS=(python3 -m repro.harness.cli)    # running from a checkout
fi

say "starting repro-harness serve on :${PORT} (2 warm workers)"
"${HARNESS[@]}" serve --port "${PORT}" --workers 2 \
    --tenants "${HERE}/serve_tenants.json" --backend cranelift &
DAEMON=$!
trap 'kill -TERM ${DAEMON} 2>/dev/null || true; wait ${DAEMON} 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
    curl -fsS "${BASE}/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done

say "alice submits a run job"
JOB=$(curl -fsS -X POST "${BASE}/v1/jobs" \
    -H "Authorization: Bearer ${ALICE}" -H 'Content-Type: application/json' \
    -d '{"kind": "run", "benchmark": "pingpong", "nranks": 2, "backend": "cranelift"}')
echo "${JOB}" | python3 -m json.tool
JOB_ID=$(echo "${JOB}" | python3 -c 'import json,sys; print(json.load(sys.stdin)["job_id"])')

say "polling ${JOB_ID} to completion"
while :; do
    STATE=$(curl -fsS "${BASE}/v1/jobs/${JOB_ID}" -H "Authorization: Bearer ${ALICE}" \
        | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
    echo "  state: ${STATE}"
    [ "${STATE}" = done ] || [ "${STATE}" = error ] && break
    sleep 0.3
done

say "the result names the compiled artifact in the shared AoT cache"
RESULT=$(curl -fsS "${BASE}/v1/jobs/${JOB_ID}/result" -H "Authorization: Bearer ${ALICE}")
echo "${RESULT}" | python3 -m json.tool
KEY=$(echo "${RESULT}" | python3 -c 'import json,sys; print(json.load(sys.stdin)["result"]["artifact"]["key"])')

say "fetching artifact ${KEY:0:12}... as raw bytes"
curl -fsS "${BASE}/v1/artifacts/${KEY}" -H "Authorization: Bearer ${ALICE}" -o /tmp/demo.mpiwasm
ls -l /tmp/demo.mpiwasm

say "bob (max_jobs: 1) submits twice: second is throttled 429 + Retry-After"
curl -fsS -X POST "${BASE}/v1/jobs" -H "Authorization: Bearer ${BOB}" \
    -H 'Content-Type: application/json' \
    -d '{"benchmark": "pingpong", "nranks": 2}' | python3 -m json.tool
curl -sS -i -X POST "${BASE}/v1/jobs" -H "Authorization: Bearer ${BOB}" \
    -H 'Content-Type: application/json' \
    -d '{"benchmark": "pingpong", "nranks": 2}' | sed -n '1p;/Retry-After/p;$p'

say "/healthz"
curl -fsS "${BASE}/healthz" | python3 -m json.tool

say "/metrics (serve counters + per-worker cache proof)"
curl -fsS "${BASE}/metrics" | grep -E 'repro_serve_(jobs_accepted_total|queue_|worker_cache_(hits|misses))' || true

say "graceful shutdown (SIGTERM drains queued jobs first)"
kill -TERM "${DAEMON}"
wait "${DAEMON}"
trap - EXIT
echo "daemon exited cleanly"
