#!/usr/bin/env python3
"""Filesystem isolation with MPIWasm (§3.4) and the IOR experiment (Figure 5b).

Shows the embedder's capability-based virtual directory tree: a guest can only
reach pre-opened directories (exposed with the ``-d`` flag in the paper), sees
them as root-level names that hide the host path, and cannot escape them with
``..`` traversal.  Then runs the IOR guest to show that the WASI indirection
does not cost measurable filesystem bandwidth.

Run:  python examples/filesystem_isolation.py
"""

from __future__ import annotations

from repro.benchmarks_suite.ior import make_ior_program
from repro.core import EmbedderConfig, run_wasm
from repro.toolchain.guest import GuestProgram
from repro.wasi.errno import WasiError


def isolation_demo_main(api, args):
    """Guest that probes what it can and cannot reach."""
    api.mpi_init()
    vfs = api.env.wasi.vfs
    report = []

    writable = vfs.preopen_fd(0)     # /results  (read-write)
    readonly = vfs.preopen_fd(1)     # /reference (read-only)

    fd = vfs.path_open(writable, "output.txt", create=True, write=True)
    vfs.fd_write(fd, b"simulation output\n")
    vfs.fd_close(fd)
    report.append("write to /results: ok")

    try:
        vfs.path_open(readonly, "new.txt", create=True, write=True)
        report.append("write to /reference: UNEXPECTEDLY ALLOWED")
    except WasiError as exc:
        report.append(f"write to /reference: denied ({exc})")

    try:
        vfs.path_open(writable, "../../etc/passwd")
        report.append("path escape: UNEXPECTEDLY ALLOWED")
    except WasiError as exc:
        report.append(f"path escape: denied ({exc})")

    report.append(f"preopens visible to the guest: {[p.guest_path for p in vfs.preopens()]}")
    api.mpi_finalize()
    return report


def main() -> int:
    program = GuestProgram(name="isolation-demo", main=isolation_demo_main)
    config = EmbedderConfig(preopen_dirs=(("/results", True), ("/reference", False)))
    job = run_wasm(program, 1, machine="graviton2", config=config)
    print("Filesystem isolation (-d semantics):")
    for line in job.return_values()[0]:
        print("  " + line)

    print("\nIOR through the WASI virtual filesystem (4 SuperMUC-NG nodes, 8 MiB blocks):")
    ior = run_wasm(make_ior_program(block_size=8 << 20, functional_bytes=1 << 15), 4,
                   machine="supermuc-ng", ranks_per_node=1)
    result = ior.return_values()[0]
    print(f"  data round-trip verified: {result['data_ok']}")
    print(f"  aggregate read  bandwidth: {result['read_bandwidth_mib_s']:.0f} MiB/s")
    print(f"  aggregate write bandwidth: {result['write_bandwidth_mib_s']:.0f} MiB/s")
    print("  (paper: ~29411 MiB/s read, ~40206 MiB/s write, upper bound 47684 MiB/s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
