#!/usr/bin/env python3
"""HPCG scaling study: native vs Wasm from 1 rank to 6144 ranks (Figure 5c / 4f).

Small configurations are executed functionally (the CG solver really runs and
converges on every rank, dot products go through ``MPI_Allreduce`` in the
embedder); the paper-scale configurations use the calibrated performance model
so the full curve regenerates in seconds.

Run:  python examples/hpcg_scaling.py
"""

from __future__ import annotations

from repro.benchmarks_suite.hpcg import make_hpcg_program
from repro.core import EmbedderConfig, run_native, run_wasm
from repro.harness import hpcg_scaling_model
from repro.sim.machines import graviton2, supermuc_ng


def main() -> int:
    print("Functional runs (small grids, every rank executes the CG solver):")
    program = make_hpcg_program(dims=(8, 6, 4), iterations=6)
    for nranks in (1, 2, 4):
        wasm = run_wasm(program, nranks, machine="graviton2",
                        config=EmbedderConfig(compiler_backend="llvm"))
        native = run_native(program, nranks, machine="graviton2")
        w = wasm.return_values()[0]
        print(f"  {nranks} ranks: residual {w['residual_initial']:.2e} -> {w['residual_final']:.2e} | "
              f"wasm {wasm.makespan*1e3:.2f} ms vs native {native.makespan*1e3:.2f} ms (virtual)")

    print("\nFigure 5c (SuperMUC-NG, model mode):")
    print(f"{'ranks':>6s} {'native GF':>12s} {'wasm GF':>12s} {'gap':>7s}")
    for nranks, row in hpcg_scaling_model(supermuc_ng(),
                                          rank_counts=(48, 96, 144, 192, 768, 1536, 3072, 6144)).items():
        print(f"{nranks:>6d} {row['native_gflops']:>12.1f} {row['wasm_gflops']:>12.1f} "
              f"{row['wasm_reduction']:>6.1%}")
    print("(paper: the Wasm execution falls ~14% behind native at 6144 ranks)")

    print("\nFigure 4f (Graviton2, model mode):")
    for nranks, row in hpcg_scaling_model(graviton2(), rank_counts=(1, 2, 4, 8, 16, 32)).items():
        print(f"  {nranks:>3d} ranks: native {row['native_gflops']:6.2f} GF, wasm {row['wasm_gflops']:6.2f} GF")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
