#!/usr/bin/env python3
"""End-to-end smoke of ``repro-harness serve`` (the CI ``serve-smoke`` job).

Starts the daemon as a subprocess with the two example tenants, then:

1. submits a campaign as ``alice`` (unmetered) and polls it to completion,
   fetching a compiled artifact back out of the shared AoT cache,
2. proves the over-quota tenant ``bob`` (``max_jobs: 1``) gets 429 with a
   ``Retry-After`` header on his second submission,
3. checks ``/healthz`` and the per-worker cache counters in ``/metrics``
   (compile-once-per-worker: exactly one miss service-wide),
4. sends SIGTERM and verifies a clean graceful-drain exit (code 0).

Exits non-zero on the first failed expectation.
"""

import json
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

HERE = pathlib.Path(__file__).resolve().parent
PORT = 8123
BASE = f"http://127.0.0.1:{PORT}"
ALICE = "alice-secret-key-0001"
BOB = "bob-secret-key-00002"


def call(method, path, body=None, key=None):
    req = urllib.request.Request(BASE + path, method=method)
    if key:
        req.add_header("Authorization", f"Bearer {key}")
    data = None
    if body is not None:
        data = json.dumps(body).encode()
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, data=data, timeout=30) as resp:
            raw, headers, status = resp.read(), dict(resp.headers), resp.status
    except urllib.error.HTTPError as err:
        raw, headers, status = err.read(), dict(err.headers), err.code
    if headers.get("Content-Type", "").startswith("application/json"):
        raw = json.loads(raw or b"{}")
    return status, headers, raw


def expect(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def wait_for_server(deadline=30.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            status, _, _ = call("GET", "/healthz")
            if status == 200:
                return
        except OSError:
            pass
        time.sleep(0.2)
    print("FAIL: server did not come up")
    sys.exit(1)


def main():
    cache_dir = tempfile.mkdtemp(prefix="serve-smoke-cache-")
    daemon = subprocess.Popen([
        sys.executable, "-m", "repro.harness.cli", "serve",
        "--port", str(PORT), "--workers", "2", "--queue-size", "16",
        "--tenants", str(HERE / "serve_tenants.json"),
        "--backend", "cranelift", "--cache-dir", cache_dir,
        "--drain-timeout", "60",
    ])
    try:
        wait_for_server()

        # --- alice: a campaign, polled to completion -------------------------
        status, _, body = call("POST", "/v1/jobs", {
            "kind": "campaign",
            "spec": {"name": "serve-smoke", "benchmarks": [
                {"benchmark": "pingpong", "nranks": [2], "backend": "cranelift",
                 "repeats": 2},
            ]},
        }, key=ALICE)
        expect(status == 202, f"alice campaign accepted (202), got {status}")
        job_id = body["job_id"]
        end = time.monotonic() + 120
        state = None
        while time.monotonic() < end:
            _, _, record = call("GET", f"/v1/jobs/{job_id}", key=ALICE)
            state = record["state"]
            if state in ("done", "error", "cancelled"):
                break
            time.sleep(0.25)
        expect(state == "done", f"alice campaign finished 'done', got {state!r}")

        _, _, record = call("GET", f"/v1/jobs/{job_id}/result", key=ALICE)
        result = record["result"]
        expect(result["jobs_total"] == 2 and result["jobs_failed"] == 0,
               "campaign ran 2 jobs, 0 failed")
        expect(len(result["artifacts"]) == 1, "campaign names one compiled artifact")
        artifact_key = result["artifacts"][0]
        status, _, blob = call("GET", f"/v1/artifacts/{artifact_key}", key=ALICE)
        expect(status == 200 and isinstance(blob, bytes) and blob,
               f"artifact {artifact_key[:12]}... fetched from the AoT cache "
               f"({len(blob)} bytes)")

        # --- bob: one job in quota, then 429 + Retry-After -------------------
        status, _, body = call("POST", "/v1/jobs", {
            "benchmark": "pingpong", "nranks": 2, "backend": "cranelift",
        }, key=BOB)
        expect(status == 202, f"bob's first job accepted (202), got {status}")
        status, headers, body = call("POST", "/v1/jobs", {
            "benchmark": "pingpong", "nranks": 2,
        }, key=BOB)
        expect(status == 429, f"bob over quota gets 429, got {status}")
        expect(int(headers.get("Retry-After", 0)) >= 1,
               f"429 carries Retry-After ({headers.get('Retry-After')})")

        # --- health + metrics -------------------------------------------------
        status, _, health = call("GET", "/healthz")
        expect(status == 200 and health["status"] == "ok", "healthz is ok")
        expect(health["admission"]["quota_refused_total"] == 1,
               "healthz counts the quota refusal")
        _, _, metrics = call("GET", "/metrics")
        text = metrics.decode()
        misses = [float(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("repro_serve_worker_cache_misses{")]
        expect(sum(misses) == 1.0,
               f"compile-once-per-worker: one miss service-wide, got {misses}")

        # --- graceful SIGTERM drain ------------------------------------------
        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=90)
        expect(code == 0, f"daemon exited 0 on SIGTERM, got {code}")
        print("serve smoke passed")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
