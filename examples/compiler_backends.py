#!/usr/bin/env python3
"""Compare the Singlepass, Cranelift and LLVM back-ends (Table 1 of the paper).

Compiles the HPCG guest module with each back-end, reports the compile
duration and the achieved throughput of the Wasm ``hpcg_ddot`` kernel, and
demonstrates the AoT compilation cache (§3.3): the second compilation of the
same module is a cache hit and skips the compile step entirely.

Run:  python examples/compiler_backends.py
"""

from __future__ import annotations

from repro.core import EmbedderConfig, MPIWasm
from repro.core.cache import InMemoryCache
from repro.benchmarks_suite.hpcg import make_hpcg_program
from repro.harness import table1_compiler_backends
from repro.toolchain.wasicc import compile_guest


def main() -> int:
    print("Table 1 reproduction (compile duration and single-core kernel performance)")
    print(f"{'backend':<12s} {'compile (ms)':>14s} {'kernel MFLOP/s':>16s}")
    rows = table1_compiler_backends(dims=(12, 6, 6), kernel_iterations=30)
    for backend, row in rows.items():
        print(f"{backend:<12s} {row['compile_ms']:>14.3f} {row['kernel_mflops']:>16.3f}")
    print("(paper, native scale: Singlepass 52 ms / 0.38 GFLOP/s, Cranelift 150 ms / 1.32, LLVM 2811 ms / 1.54)")

    print("\nAoT cache behaviour (same module, compiled twice with LLVM):")
    app = compile_guest(make_hpcg_program(dims=(12, 6, 6), iterations=2))
    embedder = MPIWasm(EmbedderConfig(compiler_backend="llvm"), cache=InMemoryCache())
    first = embedder.compile_module(app.wasm_bytes, app.module)
    print(f"  first compile : {first.compile_seconds * 1e3:8.3f} ms (cache hit: {embedder.last_cache_hit})")
    second = embedder.compile_module(app.wasm_bytes, app.module)
    print(f"  second compile: {second.compile_seconds * 1e3:8.3f} ms (cache hit: {embedder.last_cache_hit})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
