#!/usr/bin/env python3
"""Resumable-campaign smoke: crash a journaled campaign, resume it (the CI
``chaos-smoke`` job).

1. runs a small journaled campaign to completion against an on-disk AoT
   cache (every job transition lands in ``journal.jsonl`` as it happens),
2. forges a crash by scrubbing one job's terminal record -- exactly the
   on-disk state a SIGKILL after ``started`` leaves behind, since the
   ``O_APPEND`` journal never rewrites earlier records,
3. resumes with ``run_campaign(None, journal_dir=..., resume=True)`` (the
   CLI's ``repro-harness campaign --resume``) and proves the contract:
   finished jobs are restored without re-running, the lost job -- and only
   the lost job -- re-runs, fingerprints match the uninterrupted run
   bit-for-bit, and the warm cache means zero re-compiles.

Exits non-zero on the first failed expectation.
"""

import json
import pathlib
import sys
import tempfile

from repro.fault.journal import Journal
from repro.harness.campaign import run_campaign

SPEC = {
    "name": "chaos-resume-smoke",
    "seed": 11,
    "benchmarks": [
        {"benchmark": "allreduce", "nranks": 2, "backend": "cranelift",
         "machine": "graviton2", "repeats": 2},
    ],
}


def expect(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def main():
    with tempfile.TemporaryDirectory(prefix="chaos-resume-") as tmp:
        tmp = pathlib.Path(tmp)
        jdir, cache = tmp / "journal", str(tmp / "aot-cache")

        first = run_campaign(dict(SPEC), journal_dir=jdir, cache_dir=cache)
        expect(first.ok, "journaled campaign completes")
        expect(first.cache_stats["compiles"] == 1,
               "the guest module compiled exactly once")
        job_ids = [o.job_id for o in first.outcomes]
        journal = Journal(jdir)
        expect(journal.unfinished() == {},
               "a clean run leaves no unfinished jobs")

        # Forge the crash: drop job 1's terminal record, as if the process
        # died right after journaling "started".
        keep = [r for r in journal.events()
                if not (r["job_id"] == job_ids[1] and r["event"] == "done")]
        journal.path.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in keep))
        expect(set(journal.unfinished()) == {job_ids[1]},
               "exactly the crashed job is unfinished")

        # Resume: no spec argument -- it is restored from journal/spec.json.
        resumed = run_campaign(None, journal_dir=jdir, resume=True,
                               cache_dir=cache)
        expect(resumed.ok, "resumed campaign completes")
        expect(resumed.outcome(job_ids[0]).resumed is True,
               "the finished job is restored, not re-run")
        expect(resumed.outcome(job_ids[1]).resumed is False,
               "the crashed job is re-run")
        started_before = sum(1 for r in keep if r["event"] == "started")
        expect(Journal(jdir).event_count("started") == started_before + 1,
               "no duplicate executions (exactly one new start)")
        expect(resumed.fingerprints() == first.fingerprints(),
               "restored + re-run results are bit-for-bit the original")
        expect(resumed.cache_stats["compiles"] == 0,
               "zero re-compiles against the warm cache")
    print("chaos_resume_smoke: all expectations held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
