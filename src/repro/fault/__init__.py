"""``repro.fault`` -- checkpoint/restart, fault injection, recovery, journal.

The fault-tolerance subsystem (ROADMAP item 4).  Four coordinated pieces:

* :mod:`repro.fault.checkpoint` -- versioned, content-addressed snapshots of
  per-rank execution state (guest linear memory, globals, tables, schedule
  position, sim clocks) with digest-validated deterministic replay as the
  restore path, plus true write-back restore for quiescent instance state.
* :mod:`repro.fault.inject` -- seeded, serializable :class:`FaultPlan`\\ s
  (kill a rank at an MPI call or schedule round, drop/corrupt a message,
  delay a link) behind a ``RECORDER``-style module guard so the uninjected
  hot path pays one attribute read.
* :mod:`repro.fault.recover` -- restart-from-fault recovery at the launcher
  level (:func:`run_with_recovery`) and cooperative ULFM-style primitives
  (``revoke``/``shrink``/``agree``) for in-run recovery.
* :mod:`repro.fault.journal` -- the append-only on-disk job journal shared
  by resumable campaigns (``repro-harness campaign --resume``) and the serve
  daemon's crash-safe job store.
"""

from repro.fault.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointStateMismatch,
    capture_checkpoint,
    capture_instance_state,
    job_descriptor,
    load_checkpoint,
    restore_instance_state,
    resume_from_checkpoint,
    write_checkpoint,
)
from repro.fault.inject import (
    Fault,
    FaultPlan,
    InjectedFault,
    inject_faults,
)
from repro.fault.journal import Journal
from repro.fault.recover import (
    RecoveryResult,
    agree,
    revoke,
    run_with_recovery,
    shrink,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointStateMismatch",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "Journal",
    "RecoveryResult",
    "agree",
    "capture_checkpoint",
    "capture_instance_state",
    "inject_faults",
    "job_descriptor",
    "load_checkpoint",
    "restore_instance_state",
    "resume_from_checkpoint",
    "revoke",
    "run_with_recovery",
    "shrink",
    "write_checkpoint",
]
