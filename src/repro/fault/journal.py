"""Append-only on-disk job journal.

One JSON record per line, appended with a single ``os.write`` on an
``O_APPEND`` descriptor (the same atomic-publish idiom as the compile
cache's event log): a SIGKILL between jobs can at worst truncate the final
line, never corrupt earlier records, and :meth:`Journal.replay` skips a torn
tail.  Both the campaign runner (``repro-harness campaign --journal/--resume``)
and the serve daemon's job store write through this class, so a killed
worker's jobs are re-run instead of lost.

Event model: every job progresses ``accepted`` -> ``started`` -> one of the
terminal events (``done`` / ``error`` / ``cancelled``).  A job whose last
record is non-terminal is *unfinished* -- a resume re-runs exactly those.
Metadata documents (the campaign spec, serve submissions) are published
atomically next to the journal with tmp-file + ``os.replace``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional

#: Events after which a job never runs again.
TERMINAL_EVENTS = ("done", "error", "cancelled")

#: Every event the journal accepts (anything else raises ``ValueError``).
KNOWN_EVENTS = ("accepted", "started", "broken", *TERMINAL_EVENTS)


class Journal:
    """An append-only, crash-safe journal of job state transitions."""

    FILENAME = "journal.jsonl"

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / self.FILENAME

    # ------------------------------------------------------------------ append

    def record(self, event: str, job_id: str, **fields) -> None:
        """Append one event record (a single atomic ``O_APPEND`` write)."""
        if event not in KNOWN_EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        payload = {"event": event, "job_id": job_id, **fields}
        data = (json.dumps(payload, sort_keys=True, default=str) + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_RDWR, 0o644)
        try:
            # A crash mid-write can leave a torn final line with no newline;
            # appending straight after it would corrupt THIS record too.  Seal
            # the torn tail first (the worst concurrent-append race is an
            # extra blank line, which replay skips).
            size = os.fstat(fd).st_size
            if size and os.pread(fd, 1, size - 1) != b"\n":
                data = b"\n" + data
            os.write(fd, data)
        finally:
            os.close(fd)

    # -------------------------------------------------------------------- read

    def _iter_records(self) -> Iterator[dict]:
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            for raw in fh:
                try:
                    record = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue  # torn tail from a crash mid-write
                if isinstance(record, dict) and "job_id" in record and "event" in record:
                    yield record

    def events(self) -> List[dict]:
        """Every well-formed record, in append order."""
        return list(self._iter_records())

    def replay(self) -> Dict[str, dict]:
        """Latest record per job id, in first-seen order."""
        state: Dict[str, dict] = {}
        for record in self._iter_records():
            state[record["job_id"]] = record
        return state

    def unfinished(self) -> Dict[str, dict]:
        """Jobs whose latest record is not terminal (these must re-run)."""
        return {
            job_id: record
            for job_id, record in self.replay().items()
            if record["event"] not in TERMINAL_EVENTS
        }

    def finished(self) -> Dict[str, dict]:
        """Jobs whose latest record is terminal."""
        return {
            job_id: record
            for job_id, record in self.replay().items()
            if record["event"] in TERMINAL_EVENTS
        }

    def event_count(self, event: Optional[str] = None) -> int:
        """Number of records (optionally of one event kind)."""
        return sum(
            1 for record in self._iter_records()
            if event is None or record["event"] == event
        )

    # --------------------------------------------------------------- metadata

    def write_meta(self, name: str, payload) -> Path:
        """Atomically publish a JSON metadata document next to the journal."""
        target = self.directory / name
        tmp = target.with_name(f".{target.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
        os.replace(tmp, target)
        return target

    def read_meta(self, name: str):
        """Load a metadata document (``None`` if absent)."""
        target = self.directory / name
        if not target.exists():
            return None
        return json.loads(target.read_text())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Journal({str(self.directory)!r})"
