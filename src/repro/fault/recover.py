"""Recovery semantics: launcher-level restart and ULFM-style primitives.

Two complementary recovery paths:

* :func:`run_with_recovery` -- restart-level recovery.  Runs a job under an
  armed :class:`~repro.fault.inject.FaultPlan`; when a rank dies from an
  *injected* fault, the fired faults are disarmed and the job is re-run
  deterministically (bounded by ``max_restarts``).  Because injection is
  one-shot and execution is deterministic, the retry replays the exact
  pre-fault execution and then continues past the fault point -- the same
  replay guarantee :func:`repro.fault.checkpoint.resume_from_checkpoint`
  validates against a snapshot.  Recovery events are traced as ``repro.obs``
  instants and counted in the job's :class:`MetricsRegistry`.

* ULFM-style communicator repair (:func:`revoke` / :func:`shrink` /
  :func:`agree`) -- in-run recovery for programs that handle failures
  cooperatively (MPI_Comm_revoke / MPI_Comm_shrink / MPI_Comm_agree of the
  fault-tolerance working group's ULFM proposal): survivors revoke the
  broken communicator, shrink it to a deterministic survivor communicator,
  and agree on a recovery decision with a fault-tolerant logical AND.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.fault import inject as _inject
from repro.fault.inject import FaultPlan, InjectedFault
from repro.mpi.communicator import Communicator, Group
from repro.mpi.errors import MPIError
from repro.obs import trace as _trace
from repro.sim.engine import RankFailedError

#: Engine-blackboard key holding the set of revoked context ids.
REVOKED_KEY = "fault.revoked"

#: Engine-blackboard key prefix for agreement rounds.
AGREE_KEY = "fault.agree"

#: Bound on the cooperative agreement spin (defensive; survivors that all
#: call :func:`agree` converge in a handful of turns).
AGREE_SPIN_LIMIT = 100_000


# ------------------------------------------------------------ ULFM primitives


def revoke(runtime, comm: Optional[Communicator] = None) -> None:
    """ULFM ``MPI_Comm_revoke``: mark the communicator unusable, world-wide."""
    comm = comm or runtime.comm_world
    revoked = runtime.world.engine.shared.setdefault(REVOKED_KEY, set())
    revoked.add(comm.context_id)


def is_revoked(runtime, comm: Optional[Communicator] = None) -> bool:
    """Whether the communicator has been revoked by any rank."""
    comm = comm or runtime.comm_world
    revoked = runtime.world.engine.shared.get(REVOKED_KEY, set())
    return comm.context_id in revoked


def shrink(comm: Communicator, failed: Iterable[int]) -> Communicator:
    """ULFM ``MPI_Comm_shrink``: the survivor communicator.

    Every survivor computes the same group and the same context id as a pure
    function of ``(comm, failed)``, so no negotiation round is needed --
    exactly how this simulation derives ``comm_dup`` ids.
    """
    failed_set = set(failed)
    survivors = tuple(r for r in comm.group.world_ranks if r not in failed_set)
    if not survivors:
        raise MPIError(f"shrink of {comm.name} leaves no survivors")
    context_id = (comm.context_id + 2) * 100_000 + sum(
        (r + 1) * 13 for r in sorted(failed_set)
    ) % 99_991
    return Communicator(
        Group(world_ranks=survivors),
        name=f"{comm.name}.shrink",
        context_id=context_id,
    )


def agree(
    runtime,
    comm: Communicator,
    flag: bool,
    failed: Iterable[int] = (),
) -> bool:
    """ULFM ``MPI_Comm_agree``: fault-tolerant logical AND over survivors.

    Every surviving member of ``comm`` must call this the same number of
    times; ranks listed in ``failed`` are excluded from the agreement.  The
    survivors rendezvous on the engine's shared blackboard and yield
    cooperatively until all contributions arrive.
    """
    failed_set = set(failed)
    participants = [r for r in comm.group.world_ranks if r not in failed_set]
    shared = runtime.world.engine.shared
    seq = runtime._next_seq(comm)  # same per-comm ordinal on every caller
    key = (AGREE_KEY, comm.context_id, seq)
    entry = shared.setdefault(key, {})
    entry[runtime.rank_world] = bool(flag)
    for _ in range(AGREE_SPIN_LIMIT):
        if all(r in entry for r in participants):
            break
        runtime.ctx.advance(runtime.wtick())
        runtime.ctx.yield_turn()
    else:
        raise MPIError(
            f"agreement on {comm.name} never completed: have {sorted(entry)}, "
            f"need {participants}"
        )
    return all(entry[r] for r in participants)


def mark_failed(runtime, rank: Optional[int] = None) -> None:
    """Cooperatively publish a rank failure on the blackboard (soft failure)."""
    failed = runtime.world.engine.shared.setdefault("fault.failed_ranks", set())
    failed.add(runtime.rank_world if rank is None else rank)


def failed_ranks(runtime) -> set:
    """The set of ranks that have published a (soft) failure."""
    return set(runtime.world.engine.shared.get("fault.failed_ranks", set()))


# ------------------------------------------------------- restart-level recovery


@dataclass
class RecoveryResult:
    """Outcome of :func:`run_with_recovery`."""

    job: object  # repro.api.JobResult of the successful attempt
    attempts: int
    fired: List[dict] = field(default_factory=list)
    failures: List[dict] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        return self.attempts > 1


def _injected_cause(err: BaseException) -> Optional[InjectedFault]:
    """The InjectedFault at the root of a failure, if injection caused it."""
    seen = set()
    queue: List[BaseException] = [err]
    while queue:
        exc = queue.pop()
        if id(exc) in seen or exc is None:
            continue
        seen.add(id(exc))
        if isinstance(exc, InjectedFault):
            return exc
        for nxt in (getattr(exc, "original", None), exc.__cause__, exc.__context__):
            if nxt is not None:
                queue.append(nxt)
    return None


def run_with_recovery(
    app,
    nranks: int,
    plan: Optional[FaultPlan] = None,
    max_restarts: int = 2,
    session=None,
    **run_kwargs,
) -> RecoveryResult:
    """Run a job under a fault plan, restarting past injected failures.

    On a :class:`RankFailedError` caused by an injected fault the fired
    faults stay disarmed and the job re-runs from the start (deterministic
    replay).  Genuine (non-injected) failures and exhausted restart budgets
    re-raise.  The returned result carries the successful job plus the full
    fired-fault and failure history; the job's metrics gain
    ``fault.injected`` / ``fault.restarts`` / ``fault.recovered`` counters.
    """
    from repro.api.session import current_session  # late: api imports this stack

    sess = session if session is not None else current_session()
    disarmed: List[int] = []
    fired: List[dict] = []
    failures: List[dict] = []
    attempts = 0
    while True:
        attempts += 1
        active = None
        try:
            if plan is not None:
                with _inject.inject_faults(plan, disarmed) as active:
                    job = sess.run(app, nranks, **run_kwargs)
            else:
                job = sess.run(app, nranks, **run_kwargs)
            break
        except RankFailedError as err:
            if active is not None:
                fired.extend(active.fired)
                disarmed = sorted({*disarmed, *active.fired_indices()})
            injected = _injected_cause(err)
            failures.append({
                "attempt": attempts,
                "rank": err.rank,
                "type": type(err.original).__name__,
                "injected": injected is not None,
                "message": str(err.original),
            })
            if injected is None or attempts > max_restarts:
                raise
            if _trace.ENABLED:
                _trace.RECORDER.instant(
                    "fault.recovery.restart", injected.rank, injected.at,
                    args={"attempt": attempts, "fault": injected.index},
                )
            continue
    if active is not None:
        fired.extend(active.fired)
    job.metrics.increment("fault.injected", len(fired))
    job.metrics.increment("fault.restarts", attempts - 1)
    if attempts > 1:
        job.metrics.increment("fault.recovered")
        if _trace.ENABLED:
            _trace.RECORDER.instant(
                "fault.recovered", 0, 0.0,
                args={"attempts": attempts, "fired": len(fired)},
            )
    return RecoveryResult(job=job, attempts=attempts, fired=fired, failures=failures)
