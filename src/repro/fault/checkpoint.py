"""Checkpoint/restart: versioned, content-addressed execution snapshots.

A checkpoint captures, per rank, what real MPI cannot: the guest module
instance's state (linear-memory bytes, global values, funcref tables), the
request layer (active :class:`~repro.mpi.status.Request` summaries), the
schedule executor's position at a round boundary, and the rank's virtual
clock -- plus a snapshot of the matching engine's pending-message queues.
The file is a single JSON document whose ``digest`` field is a blake2b over
the canonical payload, published atomically (tmp + ``os.replace``).

Restore model
-------------

Rank programs run on live Python threads, whose stacks cannot be serialised
mid-Wasm-call.  Restore is therefore *digest-validated deterministic replay*
(the classic message-logging recovery idiom): :func:`resume_from_checkpoint`
re-executes the checkpoint's job descriptor deterministically from the start
and, as each rank crosses the checkpointed round boundary, compares its live
state (memory digest, globals, tables, clock, executor position) against the
snapshot -- any divergence raises :class:`CheckpointStateMismatch`; agreement
proves the resumed run passes through the exact checkpointed state before
continuing, which is what makes restore-then-resume bit-for-bit identical to
the uninterrupted run.  For *quiescent* state (an instance between calls),
:func:`restore_instance_state` performs a true write-back restore into a
fresh instance.

Capture is armed through the module-level :data:`CAPTURE` slot -- the same
fast-path idiom as the trace recorder -- and fed by three registration
hooks: the embedder registers each rank's instance, ``MPIRuntime`` registers
itself, and ``execute_job`` registers the world.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional

FORMAT = "repro.fault.checkpoint"
VERSION = 1

#: Armed capture (or replay-validation) state; hooks check ``is not None``
#: first, so an unarmed run pays one module attribute read per site.
CAPTURE: Optional["CheckpointCapture"] = None


class CheckpointError(Exception):
    """A checkpoint could not be written, loaded, or verified."""


class CheckpointStateMismatch(CheckpointError):
    """Replayed execution diverged from the checkpointed state."""


# ------------------------------------------------------------- instance state


def _digest_bytes(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def capture_instance_state(instance, include_memory: bool = True) -> dict:
    """Snapshot one module instance: memory, globals, tables.

    ``include_memory=False`` keeps only the memory digest (enough for
    replay validation) -- an order of magnitude smaller on big guests.
    """
    memory = instance.memory
    raw = memory.read(0, memory.size) if memory is not None else b""
    state = {
        "memory_pages": memory.pages if memory is not None else 0,
        "memory_digest": _digest_bytes(raw) if memory is not None else None,
        "memory_b64": (
            base64.b64encode(zlib.compress(raw, 6)).decode("ascii")
            if include_memory and memory is not None
            else None
        ),
        "globals": [g.value for g in instance.globals],
        "tables": [list(t.elements) for t in instance.tables],
    }
    return state


def restore_instance_state(instance, state: dict) -> None:
    """Write-back restore of quiescent instance state captured above."""
    if state.get("memory_b64") is not None:
        if instance.memory is None:
            raise CheckpointError("snapshot has memory but the instance has none")
        data = zlib.decompress(base64.b64decode(state["memory_b64"]))
        pages = int(state["memory_pages"])
        if pages > instance.memory.pages:
            if instance.memory.grow(pages - instance.memory.pages) < 0:
                raise CheckpointError(
                    f"cannot grow instance memory to {pages} snapshot pages"
                )
        elif pages < instance.memory.pages:
            raise CheckpointError(
                f"instance memory ({instance.memory.pages} pages) is larger than "
                f"the snapshot ({pages} pages); write-back would truncate"
            )
        instance.memory.write(0, data)
        restored = _digest_bytes(instance.memory.read(0, instance.memory.size))
        if state.get("memory_digest") and restored != state["memory_digest"]:
            raise CheckpointError("restored memory does not match the snapshot digest")
    if len(state.get("globals", [])) != len(instance.globals):
        raise CheckpointError(
            f"snapshot has {len(state.get('globals', []))} globals, "
            f"instance has {len(instance.globals)}"
        )
    for glob, value in zip(instance.globals, state.get("globals", [])):
        glob.value = value  # bypass set(): restore may write immutable globals
    for table, elements in zip(instance.tables, state.get("tables", [])):
        table.elements[:] = list(elements)


# ----------------------------------------------------------------- file format


def content_digest(payload: dict) -> str:
    """blake2b over the canonical JSON payload, ``digest`` field excluded."""
    scrubbed = {k: v for k, v in payload.items() if k != "digest"}
    canonical = json.dumps(scrubbed, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def write_checkpoint(payload: dict, path) -> Path:
    """Stamp the content digest and publish atomically."""
    path = Path(path)
    payload = dict(payload)
    payload["digest"] = content_digest(payload)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)
    return path


class Checkpoint:
    """A loaded, verified checkpoint document."""

    def __init__(self, payload: dict, path: Optional[Path] = None):
        self.payload = payload
        self.path = path

    @property
    def version(self) -> int:
        return int(self.payload.get("version", 0))

    @property
    def at_round(self) -> int:
        return int(self.payload.get("at_round", -1))

    @property
    def nranks(self) -> int:
        return int(self.payload.get("nranks", 0))

    @property
    def job(self) -> Optional[dict]:
        return self.payload.get("job")

    @property
    def ranks(self) -> List[dict]:
        return list(self.payload.get("ranks", []))

    def rank_state(self, rank: int) -> Optional[dict]:
        for state in self.payload.get("ranks", []):
            if state.get("rank") == rank:
                return state
        return None


def load_checkpoint(path) -> Checkpoint:
    """Load and verify (format, version, content digest) a checkpoint file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except ValueError as exc:
        raise CheckpointError(f"checkpoint {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise CheckpointError(f"{path} is not a {FORMAT} document")
    if payload.get("version") != VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {payload.get('version')!r} "
            f"(this build reads version {VERSION})"
        )
    expected = payload.get("digest")
    actual = content_digest(payload)
    if expected != actual:
        raise CheckpointError(
            f"checkpoint {path} digest mismatch: stored {expected}, computed {actual}"
        )
    return Checkpoint(payload, path)


# --------------------------------------------------------------------- capture


class CheckpointCapture:
    """Armed during a run: captures (or validates) state at a round boundary.

    ``at_round`` counts each rank's schedule-round crossings across all
    collectives of the run; when a rank crosses its ``at_round``-th boundary
    its state is recorded.  With ``validate_against`` set, the recorded state
    is instead compared field-by-field to the reference checkpoint and
    divergences accumulate in :attr:`mismatches`.
    """

    def __init__(
        self,
        at_round: int,
        job: Optional[dict] = None,
        include_memory: bool = True,
        validate_against: Optional[Checkpoint] = None,
    ):
        self.at_round = at_round
        self.job = job
        self.include_memory = include_memory
        self.reference = validate_against
        self.captured: Dict[int, dict] = {}
        self.mismatches: List[str] = []
        self._instances: Dict[int, object] = {}
        self._runtimes: Dict[int, object] = {}
        self._world = None
        self._round_counts: Dict[int, int] = {}

    # ------------------------------------------------------------ registration

    def register_instance(self, rank: int, instance) -> None:
        self._instances[rank] = instance

    def register_runtime(self, rank: int, runtime) -> None:
        self._runtimes[rank] = runtime

    def register_world(self, world) -> None:
        self._world = world

    # ------------------------------------------------------------------- hooks

    def on_schedule_round(self, rank: int, now: float, executor) -> None:
        """Called by the schedule executor at every round boundary."""
        crossing = self._round_counts.get(rank, 0)
        self._round_counts[rank] = crossing + 1
        if crossing != self.at_round or rank in self.captured:
            return
        state = self._capture_rank(rank, now, executor)
        self.captured[rank] = state
        if self.reference is not None:
            self._validate_rank(rank, state)

    def _capture_rank(self, rank: int, now: float, executor) -> dict:
        state: dict = {
            "rank": rank,
            "clock": now,
            "round_crossing": self.at_round,
            "executor": executor.checkpoint_state(),
        }
        runtime = self._runtimes.get(rank)
        if runtime is not None:
            state["requests"] = [
                {"kind": req.kind, "complete": bool(req.complete)}
                for req in getattr(runtime, "_active_requests", [])
            ]
        instance = self._instances.get(rank)
        state["guest"] = (
            capture_instance_state(instance, include_memory=self.include_memory)
            if instance is not None
            else None
        )
        return state

    def _validate_rank(self, rank: int, live: dict) -> None:
        stored = self.reference.rank_state(rank)
        if stored is None:
            self.mismatches.append(f"rank {rank}: no state in the checkpoint")
            return
        for field in ("clock", "round_crossing", "executor", "requests"):
            if stored.get(field) != live.get(field):
                self.mismatches.append(
                    f"rank {rank}: {field} diverged "
                    f"(checkpoint {stored.get(field)!r}, replay {live.get(field)!r})"
                )
        stored_guest, live_guest = stored.get("guest"), live.get("guest")
        if (stored_guest is None) != (live_guest is None):
            self.mismatches.append(f"rank {rank}: guest-state presence diverged")
        elif stored_guest is not None:
            for field in ("memory_pages", "memory_digest", "globals", "tables"):
                if stored_guest.get(field) != live_guest.get(field):
                    self.mismatches.append(f"rank {rank}: guest {field} diverged")

    # ------------------------------------------------------------------ results

    def final_memory_digests(self) -> Dict[int, str]:
        """Digest of each registered instance's memory *now* (post-run)."""
        out: Dict[int, str] = {}
        for rank, instance in sorted(self._instances.items()):
            memory = instance.memory
            out[rank] = (
                _digest_bytes(memory.read(0, memory.size)) if memory is not None else ""
            )
        return out

    def build(self, job: Optional[dict] = None) -> dict:
        """Assemble the checkpoint payload from the captured rank states."""
        world = self._world
        payload: dict = {
            "format": FORMAT,
            "version": VERSION,
            "job": job or self.job,
            "at_round": self.at_round,
            "nranks": world.nranks if world is not None else len(self.captured),
            "ranks": [self.captured[r] for r in sorted(self.captured)],
            "matching": (
                {
                    "pending_count": world.matching.pending_count(),
                    "pending": world.matching.describe_pending(),
                }
                if world is not None
                else None
            ),
        }
        return payload

    def write(self, path) -> Path:
        if not self.captured:
            raise CheckpointError(
                f"no rank reached round crossing {self.at_round}; nothing to checkpoint"
            )
        return write_checkpoint(self.build(), path)


# ------------------------------------------------------------------ arm/disarm


def arm(capture: CheckpointCapture) -> CheckpointCapture:
    global CAPTURE
    if CAPTURE is not None:
        raise RuntimeError("a checkpoint capture is already armed")
    CAPTURE = capture
    return capture


def disarm() -> Optional[CheckpointCapture]:
    global CAPTURE
    capture, CAPTURE = CAPTURE, None
    return capture


@contextmanager
def capture_checkpoint(
    at_round: int,
    job: Optional[dict] = None,
    include_memory: bool = True,
    validate_against: Optional[Checkpoint] = None,
):
    """Arm a capture (or replay validation) for the duration of one run."""
    capture = CheckpointCapture(
        at_round, job=job, include_memory=include_memory,
        validate_against=validate_against,
    )
    arm(capture)
    try:
        yield capture
    finally:
        disarm()


# ---------------------------------------------------------------------- resume


def job_descriptor(
    benchmark: str,
    nranks: int,
    mode: str = "wasm",
    backend: Optional[str] = None,
    machine: Optional[str] = None,
    params: Optional[dict] = None,
    guest_args: Optional[list] = None,
    algorithms: Optional[dict] = None,
    seed: Optional[int] = None,
) -> dict:
    """The job block a checkpoint stores so a fresh process can resume it."""
    return {
        "benchmark": benchmark,
        "nranks": int(nranks),
        "mode": mode,
        "backend": backend,
        "machine": machine,
        "params": dict(params or {}),
        "guest_args": list(guest_args or []),
        "algorithms": dict(algorithms or {}),
        "seed": seed,
    }


def resume_from_checkpoint(source, session=None, validate: bool = True):
    """Resume a checkpointed job: deterministic replay with state validation.

    Re-runs the checkpoint's job descriptor from the start; as each rank
    crosses the checkpointed round boundary its live state is checked against
    the snapshot (``validate=True``), proving the resumed execution passes
    through the exact captured state before continuing to completion.
    Returns the finished :class:`repro.api.JobResult`.
    """
    import random

    import numpy as np

    ckpt = source if isinstance(source, Checkpoint) else load_checkpoint(source)
    job = ckpt.job
    if not job:
        raise CheckpointError("checkpoint carries no job descriptor; cannot resume")

    # Late imports: repro.api pulls in the runtime stack, which imports this
    # module for its capture hooks.
    from repro.api.registry import BENCHMARKS
    from repro.api.session import current_session

    seed = job.get("seed")
    if seed is not None:
        random.seed(seed)
        np.random.seed(int(seed) % 2**32)
    program = BENCHMARKS.get(job["benchmark"])(**job.get("params") or {})
    sess = session if session is not None else current_session()
    run_kwargs: dict = {"mode": job.get("mode", "wasm")}
    if job.get("backend"):
        run_kwargs["backend"] = job["backend"]
    if job.get("machine"):
        run_kwargs["machine"] = job["machine"]
    if job.get("guest_args"):
        run_kwargs["guest_args"] = job["guest_args"]
    if job.get("algorithms"):
        run_kwargs["algorithms"] = job["algorithms"]
    with capture_checkpoint(
        ckpt.at_round, include_memory=False,
        validate_against=ckpt if validate else None,
    ) as replay:
        result = sess.run(program, job["nranks"], **run_kwargs)
    if validate:
        if not replay.captured:
            raise CheckpointStateMismatch(
                f"replay never reached round crossing {ckpt.at_round}"
            )
        if replay.mismatches:
            raise CheckpointStateMismatch(
                "replayed execution diverged from the checkpoint:\n  "
                + "\n  ".join(replay.mismatches)
            )
    return result
