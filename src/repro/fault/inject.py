"""Deterministic fault injection.

A :class:`FaultPlan` is a seeded, serializable list of :class:`Fault`\\ s --
kill a rank at its N-th call of a named MPI function or at a schedule-round
crossing, drop or corrupt a matching message payload, or delay a link.  Plans
round-trip through JSON, so a campaign matrix can sweep them like any other
axis.

The hot path stays free when nothing is injected: like the trace recorder's
``ENABLED``/``RECORDER`` pair, the hooks in ``mpi/runtime.py``, ``pt2pt.py``
and ``algorithms/schedule.py`` check the module-level :data:`ARMED` flag
before touching anything else, so a disabled plan costs one module attribute
read per call site.

Faults are *one-shot*: once fired they record themselves and disarm, so a
recovery layer can re-run the job with the already-fired faults excluded
(:func:`repro.fault.recover.run_with_recovery` does exactly that) and the
second attempt runs clean.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs import trace as _trace

#: Fast-path guard: every hook checks this first (mirrors ``_trace.ENABLED``).
ARMED: bool = False

#: The armed plan, when :data:`ARMED` is True.
ACTIVE: Optional["ActivePlan"] = None

#: Recognised fault kinds.
KINDS = ("kill_rank", "drop_message", "corrupt_message", "delay_link")

#: Wildcard rank (matches any rank / endpoint).
ANY = -1


class InjectedFault(Exception):
    """Raised on the victim rank when a ``kill_rank`` fault fires.

    Propagates out of the rank's program, so the engine reports the rank as
    FAILED exactly as a genuine crash would -- recovery layers recognise the
    failure as injected by inspecting the error chain.
    """

    def __init__(self, rank: int, fault: "Fault", index: int, at: float):
        self.rank = rank
        self.fault = fault
        self.index = index
        self.at = at
        super().__init__(
            f"injected fault #{index} ({fault.describe()}) killed rank {rank} at t={at:.9f}"
        )


@dataclass(frozen=True)
class Fault:
    """One injectable fault.

    ``kill_rank`` fires on the victim's ``call_index``-th call of the MPI
    entry point named ``call`` (e.g. ``"MPI_Allreduce"``), or -- when ``call``
    is empty -- on its ``round``-th schedule-round crossing.  The message
    kinds fire on the ``match_index``-th message from ``src`` to ``dst``
    (world ranks; :data:`ANY` is a wildcard): ``drop_message`` swallows the
    payload (the sender completes, the receiver never matches it),
    ``corrupt_message`` deterministically flips payload bytes (seeded), and
    ``delay_link`` adds ``delay`` seconds to the transfer.
    """

    kind: str
    rank: int = ANY
    call: str = ""
    call_index: int = 0
    round: int = -1
    src: int = ANY
    dst: int = ANY
    match_index: int = 0
    delay: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (expected one of {KINDS})")
        if self.kind == "kill_rank" and not self.call and self.round < 0:
            raise ValueError("kill_rank needs a 'call' name or a 'round' number")
        if self.kind == "delay_link" and self.delay <= 0.0:
            raise ValueError("delay_link needs a positive 'delay'")

    def describe(self) -> str:
        if self.kind == "kill_rank":
            where = f"call {self.call}[{self.call_index}]" if self.call else f"round {self.round}"
            return f"kill_rank rank={self.rank} at {where}"
        return f"{self.kind} src={self.src} dst={self.dst} match={self.match_index}"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, mapping: dict) -> "Fault":
        return cls(**mapping)


@dataclass(frozen=True)
class FaultPlan:
    """A serializable, seeded collection of faults."""

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, mapping: dict) -> "FaultPlan":
        return cls(
            faults=tuple(Fault.from_dict(f) for f in mapping.get("faults", ())),
            seed=int(mapping.get("seed", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def _corrupt(data: bytes, plan_seed: int, fault: Fault) -> bytes:
    """Deterministically flip payload bytes (keyed stream from blake2b)."""
    if not data:
        return data
    key = f"{plan_seed}:{fault.seed}:{len(data)}".encode()
    pad = hashlib.blake2b(key, digest_size=32).digest()
    out = bytearray(data)
    span = min(len(out), len(pad))
    for i in range(span):
        out[i] ^= pad[i] or 0x5A  # never a zero mask: every touched byte flips
    return bytes(out)


class ActivePlan:
    """An armed plan: per-site match counters plus the fired-fault record."""

    def __init__(self, plan: FaultPlan, disarmed: Iterable[int] = ()):
        self.plan = plan
        self.disarmed = set(disarmed)
        self.fired: List[dict] = []
        self._call_counts: Dict[Tuple[int, str], int] = {}
        self._round_counts: Dict[int, int] = {}
        self._msg_counts: Dict[int, int] = {}

    # ------------------------------------------------------------- bookkeeping

    def _armed(self, kinds: Tuple[str, ...]) -> List[Tuple[int, Fault]]:
        return [
            (i, f) for i, f in enumerate(self.plan.faults)
            if f.kind in kinds and i not in self.disarmed
        ]

    def _fire(self, index: int, fault: Fault, rank: int, now: float, **extra) -> dict:
        self.disarmed.add(index)  # one-shot
        event = {
            "fault": index,
            "kind": fault.kind,
            "rank": rank,
            "at": now,
            "detail": fault.describe(),
            **extra,
        }
        self.fired.append(event)
        if _trace.ENABLED:
            _trace.RECORDER.instant(
                "fault.injected", max(rank, 0), now,
                args={k: v for k, v in event.items() if k != "at"},
            )
        return event

    def fired_indices(self) -> List[int]:
        return [event["fault"] for event in self.fired]

    # ------------------------------------------------------------------- hooks

    def on_mpi_call(self, rank: int, name: str, now: float) -> None:
        """Hook from ``_traced``: fires ``kill_rank`` at-call faults."""
        key = (rank, name)
        count = self._call_counts.get(key, 0)
        self._call_counts[key] = count + 1
        for index, fault in self._armed(("kill_rank",)):
            if not fault.call or fault.call != name:
                continue
            if fault.rank not in (ANY, rank) or fault.call_index != count:
                continue
            self._fire(index, fault, rank, now, call=name, call_index=count)
            raise InjectedFault(rank, fault, index, now)

    def on_schedule_round(self, rank: int, now: float) -> None:
        """Hook from the schedule executor: fires ``kill_rank`` at-round faults.

        Rounds are counted per rank across *all* collectives of the run (the
        N-th round boundary this rank crosses), which is deterministic under
        the cooperative engine.
        """
        crossing = self._round_counts.get(rank, 0)
        self._round_counts[rank] = crossing + 1
        for index, fault in self._armed(("kill_rank",)):
            if fault.call or fault.round < 0:
                continue
            if fault.rank not in (ANY, rank) or fault.round != crossing:
                continue
            self._fire(index, fault, rank, now, round=crossing)
            raise InjectedFault(rank, fault, index, now)

    def on_message(
        self, src_world: int, dst_world: int, data: bytes, now: float
    ) -> Tuple[str, bytes, float]:
        """Hook from ``post_send``: returns ``(verdict, payload, extra_delay)``.

        ``verdict`` is ``"deliver"`` or ``"drop"``.  Counters are per fault,
        over the messages matching that fault's ``(src, dst)`` pattern.
        """
        verdict = "deliver"
        extra_delay = 0.0
        for index, fault in self._armed(("drop_message", "corrupt_message", "delay_link")):
            if fault.src not in (ANY, src_world) or fault.dst not in (ANY, dst_world):
                continue
            seen = self._msg_counts.get(index, 0)
            self._msg_counts[index] = seen + 1
            if seen != fault.match_index:
                continue
            self._fire(index, fault, src_world, now, src=src_world, dst=dst_world,
                       nbytes=len(data))
            if fault.kind == "drop_message":
                verdict = "drop"
            elif fault.kind == "corrupt_message":
                data = _corrupt(data, self.plan.seed, fault)
            elif fault.kind == "delay_link":
                extra_delay += fault.delay
        return verdict, data, extra_delay


# ----------------------------------------------------------------- arm/disarm


def arm(plan: FaultPlan, disarmed: Iterable[int] = ()) -> ActivePlan:
    """Arm ``plan`` process-wide (returns the active record)."""
    global ARMED, ACTIVE
    if ARMED:
        raise RuntimeError("a fault plan is already armed")
    ACTIVE = ActivePlan(plan, disarmed)
    ARMED = True
    return ACTIVE


def disarm() -> Optional[ActivePlan]:
    """Disarm the active plan (returns it, for inspection)."""
    global ARMED, ACTIVE
    active, ACTIVE, ARMED = ACTIVE, None, False
    return active


@contextmanager
def inject_faults(plan: FaultPlan, disarmed: Iterable[int] = ()):
    """Context manager arming ``plan`` for the duration of a run."""
    active = arm(plan, disarmed)
    try:
        yield active
    finally:
        disarm()
