"""Interconnect and collective-operation cost models.

The paper's measurements are dominated by the behaviour of the machine's
interconnect (Intel Omni-Path at 100 Gbit/s on SuperMUC-NG, in-node shared
memory on the Graviton2 node, and a gRPC message broker for the Faasm
baseline).  This module models those transports with LogGP-style parameters:

``latency``
    end-to-end zero-byte latency (the ``L + 2o`` aggregate), in seconds,
``bandwidth``
    asymptotic per-link bandwidth in bytes/second,
``per_call_overhead``
    CPU time charged to each endpoint per MPI call (the ``o`` term),
``eager_threshold``
    message size above which the rendezvous protocol is used (the sender
    blocks until the receiver arrives),
``segment_size``
    pipelining granularity used by the collective cost models.

Closed-form collective cost functions mirror the algorithms implemented
functionally in :mod:`repro.mpi.collectives` (binomial trees, recursive
doubling, ring and pairwise exchange), so that the analytic "model mode" used
for the paper's 768/6144-rank sweeps and the functional small-scale runs share
one parameterisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional


def _ceil_log2(n: int) -> int:
    """Smallest integer ``k`` with ``2**k >= n`` (0 for n <= 1)."""
    if n <= 1:
        return 0
    return int(math.ceil(math.log2(n)))


@dataclass(frozen=True)
class LogGPParameters:
    """LogGP-style parameter bundle for one transport.

    All times are seconds; bandwidth is bytes per second.
    """

    latency: float
    bandwidth: float
    per_call_overhead: float
    eager_threshold: int = 65536
    segment_size: int = 65536
    # Fixed per-message software overhead added on top of the latency term
    # (protocol processing, matching); kept separate so the Wasm embedder can
    # add its own translation overhead independently.
    per_message_overhead: float = 0.0

    def transfer_time(self, nbytes: int) -> float:
        """Time for a single message of ``nbytes`` to traverse the transport."""
        return self.latency + self.per_message_overhead + nbytes / self.bandwidth


class InterconnectModel:
    """Point-to-point timing model built from :class:`LogGPParameters`.

    Subclasses only provide parameters; the arithmetic lives here so every
    transport (Omni-Path, shared memory, TCP, gRPC) behaves consistently.
    """

    name = "generic"

    def __init__(self, params: LogGPParameters):
        self.params = params

    # ------------------------------------------------------------- point-to-point

    def send_overhead(self, nbytes: int) -> float:
        """CPU time the sender spends injecting a message."""
        return self.params.per_call_overhead

    def recv_overhead(self, nbytes: int) -> float:
        """CPU time the receiver spends extracting a message."""
        return self.params.per_call_overhead

    def transfer_time(self, nbytes: int) -> float:
        """Wire time for ``nbytes`` (latency + serialization)."""
        return self.params.transfer_time(nbytes)

    def is_rendezvous(self, nbytes: int) -> bool:
        """Whether a message of this size uses the rendezvous protocol."""
        return nbytes > self.params.eager_threshold

    def pingpong_roundtrip(self, nbytes: int) -> float:
        """Round-trip time of the IMB PingPong pattern for one message size."""
        one_way = self.send_overhead(nbytes) + self.transfer_time(nbytes) + self.recv_overhead(nbytes)
        return 2.0 * one_way

    def uni_bandwidth(self, nbytes: int) -> float:
        """Effective uni-directional bandwidth observed by PingPong (bytes/s)."""
        half = self.pingpong_roundtrip(nbytes) / 2.0
        return nbytes / half if half > 0 else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}({self.params})"


class OmniPathModel(InterconnectModel):
    """Intel Omni-Path fabric (100 Gbit/s) as deployed on SuperMUC-NG.

    Calibrated so that the PingPong curve saturates near the ~12.8 GiB/s
    bidirectional figure reported in §4.5 of the paper and the small-message
    iteration time sits in the low single-digit microseconds.
    """

    name = "omnipath"

    def __init__(self) -> None:
        super().__init__(
            LogGPParameters(
                latency=1.05e-6,
                bandwidth=12.3e9,
                per_call_overhead=0.25e-6,
                eager_threshold=16384,
                segment_size=65536,
                per_message_overhead=0.05e-6,
            )
        )


class SharedMemoryModel(InterconnectModel):
    """Intra-node shared-memory transport (used for ranks on the same node).

    Calibrated for the Graviton2 single-node runs (~10.9 GiB/s PingPong
    bandwidth, sub-microsecond small-message latency).
    """

    name = "shm"

    def __init__(self, bandwidth: float = 11.5e9, latency: float = 0.35e-6) -> None:
        super().__init__(
            LogGPParameters(
                latency=latency,
                bandwidth=bandwidth,
                per_call_overhead=0.08e-6,
                eager_threshold=65536,
                segment_size=131072,
                per_message_overhead=0.02e-6,
            )
        )


class TcpEthernetModel(InterconnectModel):
    """Commodity 10 GbE TCP transport (cloud-datacenter baseline)."""

    name = "tcp"

    def __init__(self) -> None:
        super().__init__(
            LogGPParameters(
                latency=25e-6,
                bandwidth=1.1e9,
                per_call_overhead=2.0e-6,
                eager_threshold=16384,
                segment_size=65536,
                per_message_overhead=1.0e-6,
            )
        )


class GrpcMessagingModel(InterconnectModel):
    """gRPC-based distributed messaging transport (the Faasm/Faabric substitute).

    Each MPI message is carried by an RPC through a message broker, which adds
    serialization, scheduling, and protocol overhead on top of the TCP wire
    time.  Calibrated so the MPIWasm-vs-Faasm PingPong comparison lands near
    the paper's geometric-mean speedup of ~4.28x (Figure 7).
    """

    name = "grpc"

    def __init__(self) -> None:
        super().__init__(
            LogGPParameters(
                latency=2.6e-6,
                bandwidth=3.4e9,
                per_call_overhead=0.55e-6,
                eager_threshold=8192,
                segment_size=32768,
                per_message_overhead=0.9e-6,
            )
        )

    def transfer_time(self, nbytes: int) -> float:
        # Protobuf serialization/deserialization cost grows with payload size.
        serialization = 2.0 * nbytes * 0.05e-9
        return super().transfer_time(nbytes) + serialization


@dataclass
class CollectiveCostModel:
    """Closed-form costs of the MPI collectives over a given interconnect.

    The formulas follow the textbook algorithms that
    :mod:`repro.mpi.collectives` implements functionally:

    * broadcast / reduce: binomial tree (``ceil(log2 p)`` rounds),
    * allreduce: recursive doubling for small messages, reduce-scatter +
      allgather (Rabenseifner) for large messages,
    * gather / scatter: binomial tree with growing segment sizes,
    * allgather: ring (``p - 1`` steps of the per-rank block),
    * alltoall: pairwise exchange (``p - 1`` steps of the per-pair block).

    ``nbytes`` always refers to the per-rank payload of the IMB benchmark for
    that routine (the x-axis of Figures 3 and 4).
    """

    interconnect: InterconnectModel
    # Per-element reduction cost (seconds per byte) for reduce-style collectives.
    reduce_compute_per_byte: float = 0.04e-9
    # Additional per-call overhead charged to every rank entering a collective.
    collective_entry_overhead: float = 0.3e-6

    def _msg(self, nbytes: int) -> float:
        p = self.interconnect.params
        return p.latency + p.per_message_overhead + 2 * p.per_call_overhead + nbytes / p.bandwidth

    def barrier(self, nranks: int) -> float:
        """Dissemination barrier: ``ceil(log2 p)`` zero-byte rounds."""
        return self.collective_entry_overhead + _ceil_log2(nranks) * self._msg(0)

    def bcast(self, nbytes: int, nranks: int) -> float:
        """Binomial-tree broadcast."""
        rounds = _ceil_log2(nranks)
        return self.collective_entry_overhead + rounds * self._msg(nbytes)

    def reduce(self, nbytes: int, nranks: int) -> float:
        """Binomial-tree reduction (communication + local combine per round)."""
        rounds = _ceil_log2(nranks)
        combine = nbytes * self.reduce_compute_per_byte
        return self.collective_entry_overhead + rounds * (self._msg(nbytes) + combine)

    def allreduce(self, nbytes: int, nranks: int) -> float:
        """Recursive doubling (small) or Rabenseifner (large) allreduce."""
        rounds = _ceil_log2(nranks)
        combine = nbytes * self.reduce_compute_per_byte
        small = self.collective_entry_overhead + rounds * (self._msg(nbytes) + combine)
        if nbytes <= self.interconnect.params.eager_threshold:
            return small
        # Reduce-scatter + allgather: 2 * (p-1)/p of the buffer moves in total,
        # spread over 2*ceil(log2 p) rounds.
        frac = (nranks - 1) / max(nranks, 1)
        large = (
            self.collective_entry_overhead
            + 2 * rounds * self._msg(int(nbytes * frac / max(rounds, 1)))
            + nbytes * frac * self.reduce_compute_per_byte
        )
        return min(small, large) if nranks > 1 else self.collective_entry_overhead

    def gather(self, nbytes: int, nranks: int) -> float:
        """Binomial-tree gather; the root receives ``(p-1) * nbytes`` in total."""
        rounds = _ceil_log2(nranks)
        total = 0.0
        for k in range(rounds):
            total += self._msg(nbytes * (2 ** k))
        return self.collective_entry_overhead + total

    def scatter(self, nbytes: int, nranks: int) -> float:
        """Binomial-tree scatter (mirror image of gather)."""
        return self.gather(nbytes, nranks)

    def allgather(self, nbytes: int, nranks: int) -> float:
        """Ring allgather: ``p - 1`` steps, each moving one rank's block."""
        if nranks <= 1:
            return self.collective_entry_overhead
        return self.collective_entry_overhead + (nranks - 1) * self._msg(nbytes)

    def alltoall(self, nbytes: int, nranks: int) -> float:
        """Pairwise-exchange alltoall: ``p - 1`` steps of the per-pair block."""
        if nranks <= 1:
            return self.collective_entry_overhead
        return self.collective_entry_overhead + (nranks - 1) * self._msg(nbytes)

    def sendrecv(self, nbytes: int, nranks: int) -> float:
        """IMB Sendrecv pattern: simultaneous send+recv around a ring."""
        return 2 * self.interconnect.params.per_call_overhead + self._msg(nbytes)

    def cost(self, routine: str, nbytes: int, nranks: int) -> float:
        """Dispatch by IMB routine name (case-insensitive)."""
        table = {
            "pingpong": lambda: self.interconnect.pingpong_roundtrip(nbytes) / 2.0,
            "sendrecv": lambda: self.sendrecv(nbytes, nranks),
            "bcast": lambda: self.bcast(nbytes, nranks),
            "broadcast": lambda: self.bcast(nbytes, nranks),
            "reduce": lambda: self.reduce(nbytes, nranks),
            "allreduce": lambda: self.allreduce(nbytes, nranks),
            "gather": lambda: self.gather(nbytes, nranks),
            "scatter": lambda: self.scatter(nbytes, nranks),
            "allgather": lambda: self.allgather(nbytes, nranks),
            "alltoall": lambda: self.alltoall(nbytes, nranks),
            "barrier": lambda: self.barrier(nranks),
        }
        key = routine.lower()
        if key not in table:
            raise KeyError(f"unknown collective routine {routine!r}")
        return table[key]()


# Registry of transports by name, used by machine presets and the launcher.
TRANSPORTS: Dict[str, type] = {
    "omnipath": OmniPathModel,
    "shm": SharedMemoryModel,
    "tcp": TcpEthernetModel,
    "grpc": GrpcMessagingModel,
}


def make_interconnect(name: str) -> InterconnectModel:
    """Instantiate a transport model by registry name."""
    try:
        return TRANSPORTS[name]()
    except KeyError as exc:
        raise KeyError(f"unknown interconnect {name!r}; known: {sorted(TRANSPORTS)}") from exc
