"""Cooperative discrete-event engine for simulated MPI ranks.

Every simulated MPI rank executes real Python code (a native guest program or
a WebAssembly module driven through the MPIWasm embedder) on its own thread.
Exactly one rank thread runs at a time; the engine hands the execution token
to the runnable rank with the smallest virtual clock, which keeps execution
deterministic and makes the per-rank virtual clocks well defined.

Rank code never touches the engine directly -- it goes through a
:class:`RankContext`, which exposes the rank id, the virtual clock, explicit
time advancement (used by the network and compute models) and a
block/wake protocol used by the MPI matching engine.

The engine detects deadlock: if every unfinished rank is blocked and no wake
is pending, a :class:`DeadlockError` is raised describing the blocked ranks.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class DeadlockError(SimulationError):
    """Raised when every unfinished rank is blocked and nothing can wake them."""


class RankFailedError(SimulationError):
    """Raised when a rank's program raised an exception.

    The original traceback text is preserved in :attr:`rank_traceback` so test
    failures point at the guest code, not at the engine.  By the time this
    error propagates out of :meth:`SimEngine.run`, every surviving rank has
    been deterministically torn down (no parked threads are left behind);
    :attr:`rank_clocks` and :attr:`rank_states` record the final per-rank
    clocks and lifecycle states at failure time.
    """

    def __init__(self, rank: int, original: BaseException, tb: str):
        super().__init__(f"rank {rank} failed: {original!r}")
        self.rank = rank
        self.original = original
        self.rank_traceback = tb
        #: Final virtual clocks by rank (filled in by the engine on teardown).
        self.rank_clocks: List[float] = []
        #: Final lifecycle states by rank (filled in by the engine on teardown).
        self.rank_states: Dict[int, "RankState"] = {}


class _RankTeardown(BaseException):
    """Internal unwind signal for surviving rank threads after a failure.

    Derives from ``BaseException`` so guest-level ``except Exception``
    handlers cannot swallow it; it never escapes :meth:`SimEngine._thread_main`.
    """


class RankState(Enum):
    """Lifecycle state of a simulated rank."""

    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"
    #: Unwound by the engine after another rank failed (not a failure itself).
    TORN_DOWN = "torn_down"


@dataclass
class _RankRecord:
    """Internal book-keeping for one rank thread."""

    rank: int
    target: Callable[["RankContext"], Any]
    state: RankState = RankState.CREATED
    clock: float = 0.0
    thread: Optional[threading.Thread] = None
    resume_event: threading.Event = field(default_factory=threading.Event)
    result: Any = None
    error: Optional[BaseException] = None
    error_tb: str = ""
    block_reason: str = ""
    # Earliest virtual time at which the rank may resume after being woken.
    wake_not_before: float = 0.0
    wake_pending: bool = False
    # Set by the engine after another rank failed: the next time this rank
    # holds the token it unwinds via _RankTeardown instead of resuming.
    teardown: bool = False


class RankContext:
    """Handle given to rank code for interacting with the simulation.

    The context is the only sanctioned way for guest-side code (the MPI
    library, the embedder, benchmark drivers) to read or advance virtual time
    and to block waiting for communication partners.
    """

    def __init__(self, engine: "SimEngine", rank: int):
        self._engine = engine
        self._rank = rank

    @property
    def rank(self) -> int:
        """Identifier of this rank within the simulation (0-based)."""
        return self._rank

    @property
    def nranks(self) -> int:
        """Total number of ranks in the simulation."""
        return self._engine.nranks

    @property
    def now(self) -> float:
        """Current virtual time of this rank, in seconds."""
        return self._engine.clock_of(self._rank)

    def advance(self, dt: float) -> float:
        """Advance this rank's virtual clock by ``dt`` seconds.

        Negative advances are clamped to zero; returns the new clock value.
        """
        return self._engine.advance(self._rank, dt)

    def advance_to(self, t: float) -> float:
        """Advance this rank's virtual clock to at least ``t`` seconds."""
        return self._engine.advance_to(self._rank, t)

    def block(self, reason: str = "") -> float:
        """Block this rank until another rank wakes it.

        Returns the virtual time at which execution resumed.  Callers are
        expected to re-check their wait condition after returning (the wake
        protocol is a condition-variable style "notify", not a guarantee).
        """
        return self._engine.block(self._rank, reason)

    def wake(self, other: int, not_before: float = 0.0) -> None:
        """Wake another rank, optionally constraining its resume time."""
        self._engine.wake(other, not_before)

    def yield_turn(self) -> None:
        """Voluntarily yield the execution token without blocking.

        The rank stays runnable but hands the token back to the scheduler, so
        any rank with an earlier virtual clock runs first; used by busy-wait
        style loops (e.g. ``MPI_Iprobe`` polling).
        """
        self._engine.yield_rank(self._rank)

    def log(self, message: str) -> None:
        """Record a trace message tagged with the rank and virtual time."""
        self._engine.trace(self._rank, message)


class SimEngine:
    """Deterministic cooperative scheduler for a fixed set of ranks.

    Parameters
    ----------
    nranks:
        Number of ranks to simulate.
    trace:
        When true, :meth:`RankContext.log` messages are retained in
        :attr:`trace_log` (useful in tests); otherwise they are dropped.
    """

    def __init__(self, nranks: int, trace: bool = False):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self._records: List[_RankRecord] = []
        self._lock = threading.Lock()
        self._scheduler_event = threading.Event()
        self._trace_enabled = trace
        self.trace_log: List[str] = []
        self._started = False
        # Shared blackboard for cross-rank state (used by the MPI matching
        # engine); the engine itself never interprets it.
        self.shared: Dict[str, Any] = {}

    # ------------------------------------------------------------------ setup

    def spawn(self, target: Callable[[RankContext], Any], rank: Optional[int] = None) -> int:
        """Register the program for one rank.

        If ``rank`` is omitted, ranks are assigned in registration order.
        Returns the rank id assigned.
        """
        if self._started:
            raise SimulationError("cannot spawn ranks after the simulation started")
        if rank is None:
            rank = len(self._records)
        if rank != len(self._records):
            raise SimulationError(
                f"ranks must be spawned in order; expected {len(self._records)}, got {rank}"
            )
        if rank >= self.nranks:
            raise SimulationError(f"rank {rank} out of range for nranks={self.nranks}")
        self._records.append(_RankRecord(rank=rank, target=target))
        return rank

    def spawn_all(self, factory: Callable[[int], Callable[[RankContext], Any]]) -> None:
        """Spawn every rank using ``factory(rank)`` to build each program."""
        for r in range(self.nranks):
            self.spawn(factory(r))

    # ------------------------------------------------------------ clock access

    def clock_of(self, rank: int) -> float:
        """Return the current virtual clock of ``rank``."""
        return self._records[rank].clock

    def advance(self, rank: int, dt: float) -> float:
        """Advance ``rank``'s clock by ``dt`` (clamped at zero) seconds."""
        rec = self._records[rank]
        if dt > 0:
            rec.clock += dt
        return rec.clock

    def advance_to(self, rank: int, t: float) -> float:
        """Advance ``rank``'s clock to at least ``t`` seconds."""
        rec = self._records[rank]
        if t > rec.clock:
            rec.clock = t
        return rec.clock

    @property
    def max_clock(self) -> float:
        """Largest virtual clock across all ranks (the makespan so far)."""
        return max((r.clock for r in self._records), default=0.0)

    # ------------------------------------------------------------ block / wake

    def block(self, rank: int, reason: str = "") -> float:
        """Block the calling rank thread until another rank wakes it."""
        rec = self._records[rank]
        if rec.teardown:
            raise _RankTeardown()
        with self._lock:
            if rec.wake_pending:
                # A wake arrived before we blocked: consume it and continue.
                rec.wake_pending = False
                if rec.wake_not_before > rec.clock:
                    rec.clock = rec.wake_not_before
                return rec.clock
            rec.state = RankState.BLOCKED
            rec.block_reason = reason
            rec.resume_event.clear()
        # Hand the token back to the scheduler.
        self._scheduler_event.set()
        rec.resume_event.wait()
        if rec.teardown:
            raise _RankTeardown()
        with self._lock:
            rec.state = RankState.RUNNING
            if rec.wake_not_before > rec.clock:
                rec.clock = rec.wake_not_before
            rec.wake_not_before = 0.0
        return rec.clock

    def yield_rank(self, rank: int) -> float:
        """Hand the token back to the scheduler while staying runnable."""
        rec = self._records[rank]
        if rec.teardown:
            raise _RankTeardown()
        with self._lock:
            if rec.wake_pending:
                # Someone already re-scheduled us; keep running.
                rec.wake_pending = False
                return rec.clock
            rec.state = RankState.READY
            rec.resume_event.clear()
        self._scheduler_event.set()
        rec.resume_event.wait()
        if rec.teardown:
            raise _RankTeardown()
        with self._lock:
            rec.state = RankState.RUNNING
            if rec.wake_not_before > rec.clock:
                rec.clock = rec.wake_not_before
            rec.wake_not_before = 0.0
        return rec.clock

    def wake(self, rank: int, not_before: float = 0.0) -> None:
        """Mark ``rank`` as runnable, not resuming before ``not_before``."""
        rec = self._records[rank]
        with self._lock:
            rec.wake_not_before = max(rec.wake_not_before, not_before)
            if rec.state == RankState.BLOCKED:
                rec.state = RankState.READY
                rec.block_reason = ""
            else:
                # Rank has not blocked yet (or is running); remember the wake.
                rec.wake_pending = True

    def trace(self, rank: int, message: str) -> None:
        """Append a trace line (no-op unless tracing is enabled)."""
        if self._trace_enabled:
            self.trace_log.append(f"[t={self._records[rank].clock:.9f}][rank {rank}] {message}")

    # ------------------------------------------------------------------- run

    def _thread_main(self, rec: _RankRecord) -> None:
        ctx = RankContext(self, rec.rank)
        # Wait for the scheduler to give us the first turn.
        rec.resume_event.wait()
        rec.state = RankState.RUNNING
        try:
            rec.result = rec.target(ctx)
            rec.state = RankState.DONE
        except _RankTeardown:
            rec.state = RankState.TORN_DOWN
        except BaseException as exc:  # noqa: BLE001 - report guest failures
            rec.error = exc
            rec.error_tb = traceback.format_exc()
            rec.state = RankState.FAILED
        finally:
            self._scheduler_event.set()

    def run(self) -> List[Any]:
        """Run all ranks to completion and return their results by rank.

        Raises :class:`RankFailedError` if any rank raised, and
        :class:`DeadlockError` if the simulation cannot make progress.
        """
        if len(self._records) != self.nranks:
            raise SimulationError(
                f"{len(self._records)} ranks spawned but nranks={self.nranks}"
            )
        self._started = True
        for rec in self._records:
            rec.state = RankState.READY
            rec.thread = threading.Thread(
                target=self._thread_main, args=(rec,), name=f"sim-rank-{rec.rank}", daemon=True
            )
            rec.thread.start()

        terminal = (RankState.DONE, RankState.FAILED, RankState.TORN_DOWN)
        while True:
            failed_rec: Optional[_RankRecord] = None
            with self._lock:
                unfinished = [r for r in self._records if r.state not in terminal]
                failed = [r for r in self._records if r.state == RankState.FAILED]
                if failed:
                    failed_rec = failed[0]
                elif not unfinished:
                    break
                else:
                    runnable = [r for r in unfinished if r.state == RankState.READY]
                    if not runnable:
                        blocked = ", ".join(
                            f"rank {r.rank} ({r.block_reason or 'unknown'})"
                            for r in unfinished
                            if r.state == RankState.BLOCKED
                        )
                        raise DeadlockError(f"simulation deadlocked; blocked: {blocked}")
                    nxt = min(runnable, key=lambda r: (r.clock, r.rank))
                    nxt.state = RankState.RUNNING
                    self._scheduler_event.clear()
            if failed_rec is not None:
                # Teardown happens outside the lock: survivor threads need it
                # to unwind through block()/yield_rank().
                self._raise_rank_failure(failed_rec)
            nxt.resume_event.set()
            # Wait until the running rank blocks, finishes or fails.
            self._scheduler_event.wait()

        failed = [r for r in self._records if r.state == RankState.FAILED]
        if failed:
            self._raise_rank_failure(failed[0])
        return [r.result for r in self._records]

    def _teardown_survivors(self) -> None:
        """Deterministically unwind every rank still parked after a failure.

        Survivors are woken in rank order with their ``teardown`` flag set, so
        each unwinds via :class:`_RankTeardown` (running ``finally`` blocks on
        the way out) and reaches :attr:`RankState.TORN_DOWN`; each thread is
        joined before the next is woken, keeping the unwind order -- and any
        side effects it has on shared state -- reproducible.
        """
        with self._lock:
            survivors = [
                r for r in self._records
                if r.state in (RankState.READY, RankState.BLOCKED)
            ]
            for rec in survivors:
                rec.teardown = True
        for rec in sorted(survivors, key=lambda r: r.rank):
            rec.resume_event.set()
            if rec.thread is not None:
                rec.thread.join(timeout=10.0)

    def _raise_rank_failure(self, rec: _RankRecord) -> None:
        """Tear down survivors, then raise the enriched RankFailedError."""
        self._teardown_survivors()
        err = RankFailedError(rec.rank, rec.error, rec.error_tb)
        err.rank_clocks = self.clocks()
        err.rank_states = self.states()
        raise err from rec.error

    # ------------------------------------------------------------- inspection

    def states(self) -> Dict[int, RankState]:
        """Return a snapshot of every rank's lifecycle state."""
        return {r.rank: r.state for r in self._records}

    def clocks(self) -> List[float]:
        """Return the virtual clocks of all ranks, indexed by rank."""
        return [r.clock for r in self._records]
