"""Lightweight counters and timers shared across the simulation stack.

The embedder instruments its translation layers (Figure 6 measures the MPI
datatype translation latency by instrumenting the Send path); the metrics
registry is where those instrumented samples are collected without the
callers having to know who consumes them.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class SampleSeries:
    """Accumulates scalar samples and exposes summary statistics."""

    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Record one sample."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return sum(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 if empty)."""
        return self.total / self.count if self.values else 0.0

    @property
    def minimum(self) -> float:
        """Smallest sample (0.0 if empty)."""
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        """Largest sample (0.0 if empty)."""
        return max(self.values) if self.values else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation (0.0 with fewer than two samples)."""
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / len(self.values))

    def geometric_mean(self) -> float:
        """Geometric mean of strictly positive samples (0.0 if none)."""
        positive = [v for v in self.values if v > 0]
        if not positive:
            return 0.0
        return math.exp(sum(math.log(v) for v in positive) / len(positive))

    def summary(self) -> Dict[str, float]:
        """Dictionary summary used in harness reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stddev": self.stddev,
        }


class MetricsRegistry:
    """Named counters and sample series.

    Counters are plain integers; series are :class:`SampleSeries`.  Keys are
    free-form dotted strings, e.g. ``"embedder.translation.MPI_INT"``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._series: Dict[str, SampleSeries] = defaultdict(SampleSeries)

    # --------------------------------------------------------------- counters

    def increment(self, name: str, amount: int = 1) -> int:
        """Increase counter ``name`` by ``amount`` and return the new value."""
        self._counters[name] += amount
        return self._counters[name]

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counters)

    # ------------------------------------------------------------- collectives

    COLLECTIVE_PREFIX = "mpi.coll."

    def record_collective(self, collective: str, algorithm: str, nbytes: int) -> None:
        """Count one rank's collective invocation: calls, bytes, algorithm.

        The host MPI runtime calls this once *per rank* per collective with
        the algorithm the decision layer picked, so counts aggregated across
        a job are rank-calls (a p-rank bcast records p calls), matching how
        per-rank MPI profiling interfaces count.
        """
        prefix = f"{self.COLLECTIVE_PREFIX}{collective}"
        self.increment(f"{prefix}.calls")
        self.increment(f"{prefix}.bytes", max(int(nbytes), 0))
        self.increment(f"{prefix}.algo.{algorithm}")

    def collective_summary(self) -> Dict[str, Dict[str, object]]:
        """Aggregate the per-collective counters back into structured rows.

        Returns ``{collective: {"calls": int, "bytes": int,
        "algorithms": {name: calls}}}`` sorted by collective name.
        """
        out: Dict[str, Dict[str, object]] = {}
        for name, value in self._counters.items():
            if not name.startswith(self.COLLECTIVE_PREFIX):
                continue
            collective, _, metric = name[len(self.COLLECTIVE_PREFIX):].partition(".")
            entry = out.setdefault(collective, {"calls": 0, "bytes": 0, "algorithms": {}})
            if metric == "calls":
                entry["calls"] = value
            elif metric == "bytes":
                entry["bytes"] = value
            elif metric.startswith("algo."):
                entry["algorithms"][metric[len("algo."):]] = value  # type: ignore[index]
        return {name: out[name] for name in sorted(out)}

    # ------------------------------------------- non-blocking collective overlap

    NBC_PREFIX = "mpi.nbc."

    def record_nbc_overlap(self, collective: str, overlap: float) -> None:
        """Record one communication/computation overlap sample for one
        non-blocking collective (IMB-NBC's headline metric).

        ``overlap`` is the fraction (0..1) of the collective's pure
        communication time hidden behind the compute phase between the
        ``I<collective>`` post and its wait.
        """
        self.record(f"{self.NBC_PREFIX}{collective}.overlap", min(max(overlap, 0.0), 1.0))

    def nbc_overlap_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-collective overlap statistics, keyed by collective name."""
        suffix = ".overlap"
        out: Dict[str, Dict[str, float]] = {}
        for name in self.series_names(self.NBC_PREFIX):
            if not name.endswith(suffix):
                continue
            collective = name[len(self.NBC_PREFIX):-len(suffix)]
            out[collective] = self._series[name].summary()
        return out

    # ------------------------------------------------------ compilation cache

    CACHE_PREFIX = "wasm.cache."

    def record_cache_event(self, hit: bool) -> None:
        """Count one AoT-cache lookup (the embedder calls this per compile)."""
        self.increment(f"{self.CACHE_PREFIX}{'hit' if hit else 'miss'}")

    def cache_summary(self) -> Dict[str, float]:
        """Aggregate the AoT compilation-cache counters.

        Returns ``{"hits": int, "misses": int, "hit_rate": float}``; the rate
        is 0.0 when no lookups were recorded.
        """
        hits = self.counter(f"{self.CACHE_PREFIX}hit")
        misses = self.counter(f"{self.CACHE_PREFIX}miss")
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    # ----------------------------------------------------------------- series

    def record(self, name: str, value: float) -> None:
        """Append ``value`` to series ``name``."""
        self._series[name].add(value)

    def series(self, name: str) -> SampleSeries:
        """Series ``name`` (created empty on first access)."""
        return self._series[name]

    def series_names(self, prefix: str = "") -> List[str]:
        """Names of all series, optionally filtered by prefix."""
        return sorted(k for k in self._series if k.startswith(prefix))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counters and series into this one."""
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, series in other._series.items():
            self._series[name].values.extend(series.values)

    # -------------------------------------------------------------- snapshots

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-data snapshot that survives pickling across process boundaries.

        The campaign runner ships each job's metrics back from its worker
        process as this structure and folds them into the aggregate registry
        with :meth:`merge_snapshot`.
        """
        return {
            "counters": dict(self._counters),
            "series": {name: list(s.values) for name, s in self._series.items()},
        }

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` produced (possibly elsewhere) into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] += int(value)
        for name, values in snapshot.get("series", {}).items():
            self._series[name].values.extend(float(v) for v in values)

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot`."""
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    def reset(self) -> None:
        """Drop all counters and series."""
        self._counters.clear()
        self._series.clear()

    def report(self, prefix: str = "") -> Dict[str, Dict[str, float]]:
        """Summaries of every series matching ``prefix``."""
        return {name: self._series[name].summary() for name in self.series_names(prefix)}


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of an iterable of strictly positive values."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
