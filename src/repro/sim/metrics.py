"""Lightweight counters, timers, and histograms shared across the stack.

The embedder instruments its translation layers (Figure 6 measures the MPI
datatype translation latency by instrumenting the Send path); the metrics
registry is where those instrumented samples are collected without the
callers having to know who consumes them.

Sample series keep *exact* count/sum/min/max/mean/stddev/geometric-mean
via running accumulators (Welford's M2 for variance, running log-sums for
the geometric mean) while storing only a bounded reservoir of raw samples
(Vitter's Algorithm R with a per-series fixed-seed RNG, so campaign
fingerprints stay deterministic).  Percentiles (p50/p95/p99) come from the
reservoir: exact until ``reservoir_size`` samples, a uniform-sample
estimate beyond.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence

RESERVOIR_SIZE = 1024


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence (0.0 if empty)."""
    if not ordered:
        return 0.0
    rank = max(int(math.ceil(q / 100.0 * len(ordered))), 1)
    return ordered[rank - 1]


class SampleSeries:
    """Accumulates scalar samples and exposes summary statistics.

    Memory is bounded: exact moments are maintained incrementally and only
    ``reservoir_size`` raw samples are retained for percentile estimation,
    so arbitrarily long campaigns cannot grow a series without bound.
    """

    __slots__ = ("reservoir_size", "_count", "_total", "_min", "_max",
                 "_mean", "_m2", "_log_sum", "_log_count", "_reservoir", "_rng")

    def __init__(self, reservoir_size: int = RESERVOIR_SIZE):
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size}")
        self.reservoir_size = reservoir_size
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0
        self._log_sum = 0.0
        self._log_count = 0
        self._reservoir: List[float] = []
        # Fixed seed: reservoir contents (and hence percentile estimates and
        # campaign fingerprints) are a pure function of the sample stream.
        self._rng = random.Random(0x5EED)

    def add(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value > 0:
            self._log_sum += math.log(value)
            self._log_count += 1
        self._reservoir_insert(value)

    def _reservoir_insert(self, value: float) -> None:
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    # ------------------------------------------------------------- statistics

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return self._total

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 if empty)."""
        return self._mean if self._count else 0.0

    @property
    def minimum(self) -> float:
        """Smallest sample (0.0 if empty)."""
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        """Largest sample (0.0 if empty)."""
        return self._max if self._count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation (0.0 with fewer than two samples)."""
        if self._count < 2:
            return 0.0
        return math.sqrt(max(self._m2, 0.0) / self._count)

    @property
    def values(self) -> List[float]:
        """The retained reservoir samples (all samples while under the cap)."""
        return list(self._reservoir)

    def geometric_mean(self) -> float:
        """Geometric mean of strictly positive samples (0.0 if none)."""
        if not self._log_count:
            return 0.0
        return math.exp(self._log_sum / self._log_count)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile from the reservoir (0.0 if empty)."""
        return _percentile(sorted(self._reservoir), q)

    def summary(self) -> Dict[str, float]:
        """Dictionary summary used in harness reports."""
        ordered = sorted(self._reservoir)
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stddev": self.stddev,
            "p50": _percentile(ordered, 50.0),
            "p95": _percentile(ordered, 95.0),
            "p99": _percentile(ordered, 99.0),
        }

    # ---------------------------------------------------------------- merging

    def merge(self, other: "SampleSeries") -> None:
        """Fold another series into this one; exact stats stay exact."""
        self.merge_state(other._count, other._total, other._min, other._max,
                         other._mean, other._m2, other._log_sum,
                         other._log_count, other._reservoir)

    def merge_state(self, count: int, total: float, minimum: float,
                    maximum: float, mean: float, m2: float, log_sum: float,
                    log_count: int, reservoir: Iterable[float]) -> None:
        """Combine running accumulators (Chan et al. parallel variance) and
        fold the other side's reservoir through this series' sampler."""
        if count <= 0:
            return
        if self._count == 0:
            self._count = int(count)
            self._total = float(total)
            self._min = float(minimum)
            self._max = float(maximum)
            self._mean = float(mean)
            self._m2 = float(m2)
            self._log_sum = float(log_sum)
            self._log_count = int(log_count)
            for value in reservoir:
                self._reservoir_insert(float(value))
            return
        delta = float(mean) - self._mean
        combined = self._count + int(count)
        self._m2 = self._m2 + float(m2) + delta * delta * self._count * int(count) / combined
        self._mean = (self._total + float(total)) / combined
        self._count = combined
        self._total += float(total)
        self._min = min(self._min, float(minimum))
        self._max = max(self._max, float(maximum))
        self._log_sum += float(log_sum)
        self._log_count += int(log_count)
        for value in reservoir:
            self._reservoir_insert(float(value))

    # -------------------------------------------------------------- snapshots

    def state(self) -> Dict[str, object]:
        """Plain-data accumulator state (the per-series snapshot payload)."""
        return {
            "count": self._count,
            "total": self._total,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
            "mean": self._mean,
            "m2": self._m2,
            "log_sum": self._log_sum,
            "log_count": self._log_count,
            "reservoir": list(self._reservoir),
        }

    def merge_snapshot_state(self, state) -> None:
        """Fold a snapshot payload: the bounded dict form from :meth:`state`,
        or the pre-reservoir list-of-values form (still accepted so snapshots
        written by older runs keep loading)."""
        if isinstance(state, dict):
            self.merge_state(
                int(state.get("count", 0)),
                float(state.get("total", 0.0)),
                float(state.get("min", math.inf)),
                float(state.get("max", -math.inf)),
                float(state.get("mean", 0.0)),
                float(state.get("m2", 0.0)),
                float(state.get("log_sum", 0.0)),
                int(state.get("log_count", 0)),
                state.get("reservoir", ()),
            )
        else:
            for value in state:
                self.add(float(value))


class Histogram:
    """Counts of discrete labels (interpreter handler hits, event kinds).

    Unlike :class:`SampleSeries` there is no numeric aggregation -- a
    histogram is a named multiset, merged by adding counts.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def observe(self, label: str, count: int = 1) -> None:
        """Add ``count`` observations of ``label``."""
        self._counts[str(label)] += int(count)

    def count(self, label: str) -> int:
        return self._counts.get(str(label), 0)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def counts(self) -> Dict[str, int]:
        """Labels with counts, most frequent first (ties alphabetical)."""
        return {label: self._counts[label]
                for label in sorted(self._counts, key=lambda k: (-self._counts[k], k))}

    def merge(self, other: "Histogram") -> None:
        for label, count in other._counts.items():
            self._counts[label] += count

    def state(self) -> Dict[str, int]:
        return dict(self._counts)

    def merge_snapshot_state(self, state: Dict[str, int]) -> None:
        for label, count in state.items():
            self._counts[str(label)] += int(count)


class MetricsRegistry:
    """Named counters, sample series, and histograms.

    Counters are plain integers; series are :class:`SampleSeries`;
    histograms are :class:`Histogram`.  Keys are free-form dotted strings,
    e.g. ``"embedder.translation.MPI_INT"``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._series: Dict[str, SampleSeries] = defaultdict(SampleSeries)
        self._histograms: Dict[str, Histogram] = defaultdict(Histogram)

    # --------------------------------------------------------------- counters

    def increment(self, name: str, amount: int = 1) -> int:
        """Increase counter ``name`` by ``amount`` and return the new value."""
        self._counters[name] += amount
        return self._counters[name]

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counters)

    # ------------------------------------------------------------- collectives

    COLLECTIVE_PREFIX = "mpi.coll."

    def record_collective(self, collective: str, algorithm: str, nbytes: int) -> None:
        """Count one rank's collective invocation: calls, bytes, algorithm.

        The host MPI runtime calls this once *per rank* per collective with
        the algorithm the decision layer picked, so counts aggregated across
        a job are rank-calls (a p-rank bcast records p calls), matching how
        per-rank MPI profiling interfaces count.
        """
        prefix = f"{self.COLLECTIVE_PREFIX}{collective}"
        self.increment(f"{prefix}.calls")
        self.increment(f"{prefix}.bytes", max(int(nbytes), 0))
        self.increment(f"{prefix}.algo.{algorithm}")

    def collective_summary(self) -> Dict[str, Dict[str, object]]:
        """Aggregate the per-collective counters back into structured rows.

        Returns ``{collective: {"calls": int, "bytes": int,
        "algorithms": {name: calls}}}`` sorted by collective name.
        """
        out: Dict[str, Dict[str, object]] = {}
        for name, value in self._counters.items():
            if not name.startswith(self.COLLECTIVE_PREFIX):
                continue
            collective, _, metric = name[len(self.COLLECTIVE_PREFIX):].partition(".")
            entry = out.setdefault(collective, {"calls": 0, "bytes": 0, "algorithms": {}})
            if metric == "calls":
                entry["calls"] = value
            elif metric == "bytes":
                entry["bytes"] = value
            elif metric.startswith("algo."):
                entry["algorithms"][metric[len("algo."):]] = value  # type: ignore[index]
        return {name: out[name] for name in sorted(out)}

    # ------------------------------------------- non-blocking collective overlap

    NBC_PREFIX = "mpi.nbc."

    def record_nbc_overlap(self, collective: str, overlap: float) -> None:
        """Record one communication/computation overlap sample for one
        non-blocking collective (IMB-NBC's headline metric).

        ``overlap`` is the fraction (0..1) of the collective's pure
        communication time hidden behind the compute phase between the
        ``I<collective>`` post and its wait.
        """
        self.record(f"{self.NBC_PREFIX}{collective}.overlap", min(max(overlap, 0.0), 1.0))

    def nbc_overlap_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-collective overlap statistics, keyed by collective name."""
        suffix = ".overlap"
        out: Dict[str, Dict[str, float]] = {}
        for name in self.series_names(self.NBC_PREFIX):
            if not name.endswith(suffix):
                continue
            collective = name[len(self.NBC_PREFIX):-len(suffix)]
            out[collective] = self._series[name].summary()
        return out

    # ------------------------------------------------------ compilation cache

    CACHE_PREFIX = "wasm.cache."

    def record_cache_event(self, hit: bool, tier: Optional[str] = None) -> None:
        """Count one AoT-cache lookup (the embedder calls this per compile).

        ``tier`` attributes a hit to the cache layer that served it
        (``"memory"`` or ``"fs"``), reconciling the registry's counters with
        the FileSystemCache's own append-only events.log: a TieredCache
        memory hit never reaches the FS log, so without the tier split the
        two reports disagree.
        """
        self.increment(f"{self.CACHE_PREFIX}{'hit' if hit else 'miss'}")
        if hit and tier in ("memory", "fs"):
            self.increment(f"{self.CACHE_PREFIX}hit.{tier}")

    def cache_summary(self) -> Dict[str, float]:
        """Aggregate the AoT compilation-cache counters.

        Returns ``{"hits", "misses", "hit_rate", "hits_memory", "hits_fs"}``;
        the rate is 0.0 when no lookups were recorded.  Hits recorded
        without tier attribution count toward ``hits`` only.
        """
        hits = self.counter(f"{self.CACHE_PREFIX}hit")
        misses = self.counter(f"{self.CACHE_PREFIX}miss")
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "hits_memory": self.counter(f"{self.CACHE_PREFIX}hit.memory"),
            "hits_fs": self.counter(f"{self.CACHE_PREFIX}hit.fs"),
        }

    # ----------------------------------------------------------------- series

    def record(self, name: str, value: float) -> None:
        """Append ``value`` to series ``name``."""
        self._series[name].add(value)

    def series(self, name: str) -> SampleSeries:
        """Series ``name`` (created empty on first access)."""
        return self._series[name]

    def series_names(self, prefix: str = "") -> List[str]:
        """Names of all series, optionally filtered by prefix."""
        return sorted(k for k in self._series if k.startswith(prefix))

    # ------------------------------------------------------------- histograms

    def observe(self, name: str, label: str, count: int = 1) -> None:
        """Add ``count`` observations of ``label`` to histogram ``name``."""
        self._histograms[name].observe(label, count)

    def histogram(self, name: str) -> Histogram:
        """Histogram ``name`` (created empty on first access)."""
        return self._histograms[name]

    def histogram_names(self, prefix: str = "") -> List[str]:
        """Names of all histograms, optionally filtered by prefix."""
        return sorted(k for k in self._histograms if k.startswith(prefix))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counters, series, and histograms into
        this one."""
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, series in other._series.items():
            self._series[name].merge(series)
        for name, histogram in other._histograms.items():
            self._histograms[name].merge(histogram)

    # -------------------------------------------------------------- snapshots

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-data snapshot that survives pickling across process boundaries.

        The campaign runner ships each job's metrics back from its worker
        process as this structure and folds them into the aggregate registry
        with :meth:`merge_snapshot`.  Series ship their bounded accumulator
        state, not the raw sample list, so the snapshot size is capped.
        """
        snap: Dict[str, Dict[str, object]] = {
            "counters": dict(self._counters),
            "series": {name: s.state() for name, s in self._series.items()},
        }
        if self._histograms:
            snap["histograms"] = {name: h.state() for name, h in self._histograms.items()}
        return snap

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` produced (possibly elsewhere) into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] += int(value)
        for name, state in snapshot.get("series", {}).items():
            self._series[name].merge_snapshot_state(state)
        for name, counts in snapshot.get("histograms", {}).items():
            self._histograms[name].merge_snapshot_state(counts)

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot`."""
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    def reset(self) -> None:
        """Drop all counters, series, and histograms."""
        self._counters.clear()
        self._series.clear()
        self._histograms.clear()

    def report(self, prefix: str = "") -> Dict[str, Dict[str, float]]:
        """Summaries of every series matching ``prefix``."""
        return {name: self._series[name].summary() for name in self.series_names(prefix)}


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of an iterable of strictly positive values."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
