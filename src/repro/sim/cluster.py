"""Cluster topology and rank placement.

A :class:`Cluster` binds a machine preset to a concrete allocation (number of
nodes, ranks per node) and answers the one question the MPI layer needs per
message: *which transport connects rank i to rank j* -- the intra-node
shared-memory model when both ranks live on the same node, the machine's
interconnect otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.machines import MachinePreset
from repro.sim.network import InterconnectModel


@dataclass(frozen=True)
class Node:
    """One compute node of the simulated allocation."""

    index: int
    cores: int
    memory_bytes: int


@dataclass(frozen=True)
class RankPlacement:
    """Placement of one MPI rank onto a node and core."""

    rank: int
    node: int
    core: int


class Cluster:
    """A concrete allocation of nodes on a machine preset.

    Parameters
    ----------
    machine:
        The machine preset (SuperMUC-NG, Graviton2, ...).
    nranks:
        Number of MPI ranks to place.
    ranks_per_node:
        Ranks placed per node (defaults to the machine's cores per node,
        matching the paper's pure-MPI configuration without oversubscription).
    """

    def __init__(
        self,
        machine: MachinePreset,
        nranks: int,
        ranks_per_node: Optional[int] = None,
    ):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.machine = machine
        self.nranks = nranks
        self.ranks_per_node = ranks_per_node or machine.cores_per_node
        if self.ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")
        self.nnodes = machine.nodes_for(nranks, self.ranks_per_node)
        if self.nnodes > machine.max_nodes:
            raise ValueError(
                f"{nranks} ranks at {self.ranks_per_node} per node need "
                f"{self.nnodes} nodes but {machine.name} provides at most {machine.max_nodes}"
            )
        self.nodes: List[Node] = [
            Node(index=i, cores=machine.cores_per_node, memory_bytes=machine.memory_per_node_bytes)
            for i in range(self.nnodes)
        ]
        self._placements: List[RankPlacement] = [
            RankPlacement(rank=r, node=r // self.ranks_per_node, core=r % self.ranks_per_node)
            for r in range(nranks)
        ]
        self._internode: InterconnectModel = machine.interconnect()
        self._intranode: InterconnectModel = machine.intranode()

    # ------------------------------------------------------------------ queries

    def placement(self, rank: int) -> RankPlacement:
        """Placement record for ``rank``."""
        return self._placements[rank]

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        return self._placements[rank].node

    def same_node(self, a: int, b: int) -> bool:
        """Whether ranks ``a`` and ``b`` share a node."""
        return self.node_of(a) == self.node_of(b)

    def transport(self, src: int, dst: int) -> InterconnectModel:
        """Transport model connecting ``src`` to ``dst``."""
        if src == dst or self.same_node(src, dst):
            return self._intranode
        return self._internode

    @property
    def interconnect(self) -> InterconnectModel:
        """The inter-node transport model (Omni-Path on SuperMUC-NG)."""
        return self._internode

    @property
    def intranode(self) -> InterconnectModel:
        """The intra-node shared-memory transport model."""
        return self._intranode

    def ranks_on_node(self, node: int) -> List[int]:
        """All ranks placed on ``node``."""
        return [p.rank for p in self._placements if p.node == node]

    def describe(self) -> Dict[str, object]:
        """Human-readable summary used by the harness output."""
        return {
            "machine": self.machine.name,
            "architecture": self.machine.architecture,
            "nranks": self.nranks,
            "nnodes": self.nnodes,
            "ranks_per_node": self.ranks_per_node,
            "interconnect": self._internode.name,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(machine={self.machine.name!r}, nranks={self.nranks}, "
            f"nnodes={self.nnodes}, rpn={self.ranks_per_node})"
        )
