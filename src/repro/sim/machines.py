"""Machine presets mirroring the paper's two test systems.

The evaluation in the paper runs on

* **SuperMUC-NG** -- dual-socket Intel Xeon Platinum 8174 (Skylake-SP) nodes,
  48 cores per node at 3.10 GHz with AVX-512, 96 GiB of memory, an Intel
  Omni-Path 100 Gbit/s interconnect and a GPFS (Lenovo DSS-G) filesystem with
  ~200 GiB/s aggregate bandwidth, and
* an **AWS Graviton2** node -- 32 Neoverse-N1 cores at 2.50 GHz with 128-bit
  NEON SIMD and 64 GiB of memory.

Each preset captures the structural quantities the experiments depend on:
core counts and frequencies, SIMD width for native code and for Wasm
(fixed at 128 bits by the Wasm specification), sustained floating-point and
memory-bandwidth rates per core, the interconnect model, and the parallel
filesystem model.  A third preset models the cloud deployment used by the
Faasm baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.api.registry import MACHINES, register_machine
from repro.sim.filesystem import ParallelFileSystemModel
from repro.sim.network import (
    GrpcMessagingModel,
    InterconnectModel,
    OmniPathModel,
    SharedMemoryModel,
    TcpEthernetModel,
    make_interconnect,
)


@dataclass(frozen=True)
class MachinePreset:
    """Structural description of one simulated machine.

    The floating-point rates are *sustained* HPCG-style rates (memory-bound
    sparse kernels), not peak dense rates; this is what the HPCG GFLOP/s
    figures in the paper report.
    """

    name: str
    architecture: str                      # "x86_64" or "aarch64"
    cores_per_node: int
    sockets_per_node: int
    core_frequency_hz: float
    memory_per_node_bytes: int
    native_simd_bits: int                  # 512 for Skylake-SP AVX-512, 128 for NEON
    wasm_simd_bits: int                    # the Wasm spec fixes this at 128
    # Sustained per-core rates for memory-bound sparse kernels (HPCG-like).
    sustained_gflops_per_core: float
    sustained_membw_per_core: float        # bytes/s of streaming bandwidth per core
    node_memory_bandwidth: float           # bytes/s aggregate per node
    interconnect_name: str                 # key into repro.sim.network.TRANSPORTS
    intranode_name: str = "shm"
    max_nodes: int = 1
    filesystem: ParallelFileSystemModel = field(
        default_factory=lambda: ParallelFileSystemModel.local_scratch()
    )
    # Relative single-core efficiency of AoT-compiled Wasm vs native -O3 code
    # for scalar/128-bit-vectorisable code (Table 1 / §4.5: close to native).
    wasm_scalar_efficiency: float = 0.97
    # Additional penalty applied only to code whose native version benefits
    # from SIMD wider than 128 bits (the DT benchmark discussion in §4.5).
    description: str = ""

    # -------------------------------------------------------------- factories

    def interconnect(self) -> InterconnectModel:
        """Instantiate the inter-node transport model for this machine."""
        return make_interconnect(self.interconnect_name)

    def intranode(self) -> InterconnectModel:
        """Instantiate the intra-node (shared-memory) transport model."""
        return make_interconnect(self.intranode_name)

    def total_cores(self) -> int:
        """Total core count across the machine's maximum node allocation."""
        return self.cores_per_node * self.max_nodes

    def nodes_for(self, nranks: int, ranks_per_node: Optional[int] = None) -> int:
        """Number of nodes needed to place ``nranks`` ranks."""
        rpn = ranks_per_node or self.cores_per_node
        return max(1, -(-nranks // rpn))

    def wasm_simd_penalty(self, simd_fraction: float, wasm_simd_enabled: bool = True) -> float:
        """Slowdown factor for Wasm code relative to native vectorised code.

        ``simd_fraction`` is the fraction of runtime the native binary spends
        in vectorised loops.  Native code uses ``native_simd_bits`` lanes;
        Wasm is limited to 128-bit lanes (or scalar if SIMD generation is
        disabled, reproducing the "WASM w/o SIMD" bar of Figure 5a).
        """
        if not 0.0 <= simd_fraction <= 1.0:
            raise ValueError(f"simd_fraction must be in [0, 1], got {simd_fraction}")
        wasm_bits = self.wasm_simd_bits if wasm_simd_enabled else 64
        width_ratio = self.native_simd_bits / wasm_bits
        # Amdahl-style: only the vectorised fraction slows down by the width ratio.
        slowdown = (1.0 - simd_fraction) + simd_fraction * width_ratio
        return slowdown / self.wasm_scalar_efficiency

    def with_overrides(self, **kwargs) -> "MachinePreset":
        """Return a copy of this preset with selected fields replaced."""
        return replace(self, **kwargs)


def supermuc_ng() -> MachinePreset:
    """The production HPC system used in the paper (§4.1)."""
    return MachinePreset(
        name="supermuc-ng",
        architecture="x86_64",
        cores_per_node=48,
        sockets_per_node=2,
        core_frequency_hz=3.10e9,
        memory_per_node_bytes=96 * 2**30,
        native_simd_bits=512,
        wasm_simd_bits=128,
        sustained_gflops_per_core=0.95,
        sustained_membw_per_core=4.6e9,
        node_memory_bandwidth=220e9,
        interconnect_name="omnipath",
        intranode_name="shm",
        max_nodes=128,
        filesystem=ParallelFileSystemModel.dss_g(),
        wasm_scalar_efficiency=0.97,
        description="SuperMUC-NG: Intel Xeon Platinum 8174 (Skylake-SP), Omni-Path 100 Gbit/s, GPFS/DSS-G",
    )


def graviton2() -> MachinePreset:
    """The AWS Graviton2 (Neoverse-N1) single-node system used in the paper."""
    return MachinePreset(
        name="graviton2",
        architecture="aarch64",
        cores_per_node=32,
        sockets_per_node=1,
        core_frequency_hz=2.50e9,
        memory_per_node_bytes=64 * 2**30,
        native_simd_bits=128,
        wasm_simd_bits=128,
        sustained_gflops_per_core=0.80,
        sustained_membw_per_core=5.5e9,
        node_memory_bandwidth=175e9,
        interconnect_name="shm",
        intranode_name="shm",
        max_nodes=1,
        filesystem=ParallelFileSystemModel.local_scratch(),
        wasm_scalar_efficiency=0.98,
        description="AWS EC2 Graviton2: 32x Neoverse-N1 @ 2.5 GHz, single node",
    )


def faasm_cloud() -> MachinePreset:
    """Cloud deployment assumed for the Faasm baseline (Figure 7).

    Faasm carries MPI messages over its gRPC-based Faabric messaging layer, so
    the interconnect is the :class:`GrpcMessagingModel` even when both ranks
    are co-located.
    """
    return MachinePreset(
        name="faasm-cloud",
        architecture="x86_64",
        cores_per_node=16,
        sockets_per_node=1,
        core_frequency_hz=2.60e9,
        memory_per_node_bytes=64 * 2**30,
        native_simd_bits=256,
        wasm_simd_bits=128,
        sustained_gflops_per_core=0.70,
        sustained_membw_per_core=4.0e9,
        node_memory_bandwidth=80e9,
        interconnect_name="grpc",
        intranode_name="grpc",
        max_nodes=8,
        filesystem=ParallelFileSystemModel.local_scratch(),
        wasm_scalar_efficiency=0.95,
        description="Cloud nodes running the Faasm/Faabric gRPC messaging stack",
    )


#: Live view of the unified machine registry (kept for back-compat; new
#: presets should register through ``repro.api.register_machine``).
PRESETS: Dict[str, MachinePreset] = MACHINES.entries


def _register_defaults() -> None:
    for factory in (supermuc_ng, graviton2, faasm_cloud):
        register_machine(factory(), override=True)


_register_defaults()


def get_preset(name: str) -> MachinePreset:
    """Look up a machine preset by name (``supermuc-ng``, ``graviton2``, ...).

    Unknown names raise :class:`repro.api.registry.UnknownEntryError` (a
    ``KeyError`` subclass) listing every registered preset.
    """
    return MACHINES.get(name)
