"""Discrete-event HPC cluster simulation substrate.

This package provides the simulated hardware that replaces the paper's
testbeds (SuperMUC-NG and an AWS Graviton2 node):

* :mod:`repro.sim.engine` -- a cooperative discrete-event engine in which every
  MPI rank runs as a real Python thread with its own virtual clock,
* :mod:`repro.sim.cluster` -- node/socket/core topology and rank placement,
* :mod:`repro.sim.network` -- LogGP-style interconnect models (Intel Omni-Path,
  intra-node shared memory, TCP and gRPC transports for the Faasm baseline)
  together with closed-form collective cost models,
* :mod:`repro.sim.machines` -- calibrated machine presets used by the
  experiment harness,
* :mod:`repro.sim.filesystem` -- a parallel filesystem bandwidth model (the
  GPFS/DSS-G substitute used by the IOR experiment),
* :mod:`repro.sim.metrics` -- lightweight counters and timers.
"""

from repro.sim.engine import (
    DeadlockError,
    RankContext,
    RankState,
    SimEngine,
    SimulationError,
)
from repro.sim.cluster import Cluster, Node, RankPlacement
from repro.sim.machines import (
    MachinePreset,
    graviton2,
    supermuc_ng,
    faasm_cloud,
    PRESETS,
    get_preset,
)
from repro.sim.network import (
    CollectiveCostModel,
    GrpcMessagingModel,
    InterconnectModel,
    LogGPParameters,
    OmniPathModel,
    SharedMemoryModel,
    TcpEthernetModel,
)
from repro.sim.filesystem import ParallelFileSystemModel
from repro.sim.metrics import MetricsRegistry

__all__ = [
    "DeadlockError",
    "RankContext",
    "RankState",
    "SimEngine",
    "SimulationError",
    "Cluster",
    "Node",
    "RankPlacement",
    "MachinePreset",
    "supermuc_ng",
    "graviton2",
    "faasm_cloud",
    "PRESETS",
    "get_preset",
    "LogGPParameters",
    "InterconnectModel",
    "OmniPathModel",
    "SharedMemoryModel",
    "TcpEthernetModel",
    "GrpcMessagingModel",
    "CollectiveCostModel",
    "ParallelFileSystemModel",
    "MetricsRegistry",
]
