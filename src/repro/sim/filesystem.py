"""Parallel filesystem bandwidth model.

The IOR experiment in the paper (Figure 5b) measures the aggregate POSIX
read/write bandwidth available to MPI processes on SuperMUC-NG's GPFS
filesystem (Lenovo DSS-G, ~200 GiB/s aggregate, 100 Gbit/s per-node links).
The key observation the experiment makes is that MPIWasm's userspace
filesystem indirection (the WASI virtual directory tree) does not limit the
achievable bandwidth -- the bottleneck is the storage system and the node
links either way.

This module models exactly that bottleneck structure: per-node link bandwidth,
aggregate backend bandwidth, per-operation latency, and a small client-side
software overhead that can be inflated by the embedder to represent the WASI
indirection cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ParallelFileSystemModel:
    """Bandwidth/latency model of a parallel (or local) filesystem.

    Attributes
    ----------
    aggregate_read_bandwidth, aggregate_write_bandwidth:
        Backend limits across all clients, bytes/second.
    node_link_bandwidth:
        Per-node network link to the filesystem servers, bytes/second.
    per_op_latency:
        Fixed latency of a single read/write call, seconds.
    client_overhead_per_byte:
        Client-side software cost (buffer management, page cache interaction),
        seconds per byte; the WASI layer adds its own small term on top.
    """

    name: str
    aggregate_read_bandwidth: float
    aggregate_write_bandwidth: float
    node_link_bandwidth: float
    per_op_latency: float = 35e-6
    client_overhead_per_byte: float = 0.008e-9

    @classmethod
    def dss_g(cls) -> "ParallelFileSystemModel":
        """SuperMUC-NG's Lenovo DSS-G / IBM Spectrum Scale (GPFS) system."""
        return cls(
            name="dss-g-gpfs",
            aggregate_read_bandwidth=200 * 2**30,
            aggregate_write_bandwidth=160 * 2**30,
            node_link_bandwidth=100e9 / 8,  # 100 Gbit/s Omni-Path link
            per_op_latency=35e-6,
            client_overhead_per_byte=0.008e-9,
        )

    @classmethod
    def local_scratch(cls) -> "ParallelFileSystemModel":
        """A single-node NVMe scratch filesystem (Graviton2 / cloud nodes)."""
        return cls(
            name="local-nvme",
            aggregate_read_bandwidth=6.0e9,
            aggregate_write_bandwidth=3.5e9,
            node_link_bandwidth=6.0e9,
            per_op_latency=12e-6,
            client_overhead_per_byte=0.02e-9,
        )

    # ------------------------------------------------------------------ model

    def _effective_bandwidth(self, backend_bw: float, nnodes: int, nranks: int) -> float:
        """Aggregate bandwidth visible to ``nranks`` clients on ``nnodes`` nodes."""
        if nnodes <= 0 or nranks <= 0:
            raise ValueError("nnodes and nranks must be positive")
        link_limit = nnodes * self.node_link_bandwidth
        return min(backend_bw, link_limit)

    def transfer_time(
        self,
        nbytes: int,
        nranks: int,
        nnodes: int,
        write: bool,
        extra_overhead_per_byte: float = 0.0,
    ) -> float:
        """Time for one rank to read/write ``nbytes`` while all ranks do I/O.

        The aggregate backend bandwidth is shared fairly across ranks; the
        per-rank share cannot exceed the per-node link share either.  Client
        software overhead (plus any ``extra_overhead_per_byte`` added by the
        WASI layer) is charged on top but typically does not dominate -- that
        is the point of the paper's IOR experiment.
        """
        backend = self.aggregate_write_bandwidth if write else self.aggregate_read_bandwidth
        agg = self._effective_bandwidth(backend, nnodes, nranks)
        per_rank = agg / nranks
        ranks_per_node = max(1, -(-nranks // nnodes))
        per_rank = min(per_rank, self.node_link_bandwidth / ranks_per_node)
        sw = (self.client_overhead_per_byte + extra_overhead_per_byte) * nbytes
        return self.per_op_latency + nbytes / per_rank + sw

    def aggregate_bandwidth(
        self,
        block_size: int,
        nranks: int,
        nnodes: int,
        write: bool,
        extra_overhead_per_byte: float = 0.0,
    ) -> float:
        """Aggregate bandwidth (bytes/s) the IOR benchmark would report."""
        t = self.transfer_time(block_size, nranks, nnodes, write, extra_overhead_per_byte)
        return nranks * block_size / t

    def with_overrides(self, **kwargs) -> "ParallelFileSystemModel":
        """Copy of the model with selected fields replaced."""
        return replace(self, **kwargs)
