"""Linker size model: dynamic, static and Wasm binary sizes per application.

Regenerates Table 2 of the paper.  Every benchmark application is described by
an :class:`ApplicationProfile` (its own object-code size, whether it is C++,
how much of the C library it references); the three linking strategies then
assemble the totals:

* ``dynamic``  = application code + ELF/PLT overhead,
* ``static``   = dynamic + every statically linked archive's contribution,
* ``wasm``     = application code x Wasm code density + included wasi-libc
  (and C++ runtime) + module overhead.  MPI contributes nothing -- it is
  imported from the embedder.

The profiles are calibrated against the applications the paper measures
(Intel MPI Benchmarks, HPCG, IOR, NPB IS and DT); the point the model
preserves is the *structure* of the comparison: Wasm binaries land within a
factor of a few of the dynamically linked binaries (sometimes larger, because
they must include libc), while statically linked binaries are two orders of
magnitude larger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.toolchain import libraries as libs
from repro.toolchain.libraries import KIB, MIB

#: Ratio of Wasm code bytes to native x86_64 code bytes for the same source
#: (Wasm's compact encoding roughly offsets its stack-machine redundancy).
WASM_CODE_DENSITY = 0.92


@dataclass(frozen=True)
class ApplicationProfile:
    """Link-relevant description of one benchmark application."""

    name: str
    object_code_size: int               # the application's own compiled code (native)
    is_cpp: bool = False
    uses_stdio_heavily: bool = False    # pulls the full stdio/printf machinery into wasi-libc
    extra_static_libraries: Tuple[str, ...] = ()
    wasm_data_segments: int = 8 * KIB   # embedded tables/strings in the Wasm binary
    #: Wasm object-code size when it differs from ``object_code_size * density``
    #: (C++ templates inflate it, dead-code elimination of unused backends
    #: shrinks it); ``None`` means "use the density model".
    wasm_object_code_size: Optional[int] = None
    #: Additional statically included Wasm runtime pieces (e.g. libm objects).
    wasm_extra_runtime: int = 0

    def static_library_names(self) -> Tuple[str, ...]:
        """Archives a static native link of this application pulls in."""
        names = list(libs.BASE_MPI_STACK)
        if self.is_cpp:
            names.extend(libs.CPP_EXTRA)
        names.extend(self.extra_static_libraries)
        return tuple(names)


@dataclass(frozen=True)
class LinkSizes:
    """The three artefact sizes for one application (bytes)."""

    application: str
    dynamic: int
    static: int
    wasm: int

    @property
    def static_to_wasm_ratio(self) -> float:
        """How many times smaller the Wasm binary is than the static binary."""
        return self.static / self.wasm if self.wasm else float("inf")

    @property
    def wasm_larger_than_dynamic(self) -> bool:
        """Whether the Wasm binary is larger than the dynamic native binary."""
        return self.wasm > self.dynamic

    def row(self) -> Dict[str, float]:
        """Table-2 style row (KiB / MiB / KiB)."""
        return {
            "application": self.application,
            "native_dynamic_kib": self.dynamic / KIB,
            "native_static_mib": self.static / MIB,
            "wasm_kib": self.wasm / KIB,
            "static_to_wasm_ratio": self.static_to_wasm_ratio,
        }


class LinkerModel:
    """Computes the three link strategies for application profiles."""

    def __init__(self, libraries: Optional[Dict[str, libs.StaticLibrary]] = None):
        self.libraries = dict(libraries or libs.NATIVE_LIBRARIES)

    # ------------------------------------------------------------------ pieces

    def dynamic_size(self, app: ApplicationProfile) -> int:
        """Dynamically linked native executable size."""
        return app.object_code_size + libs.dynamic_link_overhead()

    def static_size(self, app: ApplicationProfile) -> int:
        """Statically linked native executable size."""
        total = self.dynamic_size(app) + libs.static_link_overhead()
        for name in app.static_library_names():
            lib = self.libraries.get(name)
            if lib is None:
                raise KeyError(f"unknown static library {name!r}")
            total += lib.contribution()
        return total

    def wasm_size(self, app: ApplicationProfile) -> int:
        """Wasm module size produced by the customised WASI-SDK toolchain."""
        if app.wasm_object_code_size is not None:
            total = app.wasm_object_code_size
        else:
            total = int(app.object_code_size * WASM_CODE_DENSITY)
        total += libs.wasm_module_overhead()
        total += app.wasm_data_segments
        total += (libs.WASI_LIBC_FULL_STDIO if app.uses_stdio_heavily else libs.WASI_LIBC).included_size
        total += app.wasm_extra_runtime
        if app.is_cpp:
            total += libs.WASM_CXX_RUNTIME.included_size
        return total

    def link(self, app: ApplicationProfile) -> LinkSizes:
        """All three sizes for one application."""
        return LinkSizes(
            application=app.name,
            dynamic=self.dynamic_size(app),
            static=self.static_size(app),
            wasm=self.wasm_size(app),
        )

    def link_all(self, apps: Iterable[ApplicationProfile]) -> List[LinkSizes]:
        """Sizes for a set of applications (one Table-2 row each)."""
        return [self.link(app) for app in apps]

    @staticmethod
    def average_static_to_wasm_ratio(rows: Iterable[LinkSizes]) -> float:
        """The headline "139.5x smaller on average" statistic of §4.4."""
        rows = list(rows)
        if not rows:
            return 0.0
        return sum(r.static_to_wasm_ratio for r in rows) / len(rows)


# ------------------------------------------------------------------- profiles

#: The five applications of Table 2, calibrated to the sizes the paper reports.
PAPER_APPLICATIONS: Dict[str, ApplicationProfile] = {
    app.name: app
    for app in (
        ApplicationProfile(
            name="IMB",
            object_code_size=1060 * KIB,
            is_cpp=True,
            uses_stdio_heavily=True,
            wasm_data_segments=24 * KIB,
            # Dead-code elimination drops the unused IMB-IO/RMA parts; the
            # remaining benchmark drivers compile to ~345 KiB of Wasm code.
            wasm_object_code_size=345 * KIB,
        ),
        ApplicationProfile(
            name="HPCG",
            object_code_size=146 * KIB,
            is_cpp=True,
            uses_stdio_heavily=True,
            wasm_data_segments=12 * KIB,
            # Template-heavy C++ inflates the Wasm code relative to native.
            wasm_object_code_size=190 * KIB,
        ),
        ApplicationProfile(
            name="IOR",
            object_code_size=340 * KIB,
            is_cpp=False,
            uses_stdio_heavily=True,
            wasm_data_segments=10 * KIB,
            # Only the POSIX backend is compiled for Wasm (no HDF5/MPIIO code).
            wasm_object_code_size=210 * KIB,
        ),
        ApplicationProfile(
            name="IS",
            object_code_size=18 * KIB,
            is_cpp=False,
            uses_stdio_heavily=False,
            wasm_data_segments=4 * KIB,
            wasm_extra_runtime=10 * KIB,
        ),
        ApplicationProfile(
            name="DT",
            object_code_size=22 * KIB,
            is_cpp=False,
            uses_stdio_heavily=False,
            wasm_data_segments=2 * KIB,
        ),
    )
}


def table2_rows() -> List[LinkSizes]:
    """The five rows of Table 2 from the calibrated application profiles."""
    model = LinkerModel()
    return model.link_all(PAPER_APPLICATIONS.values())
