"""Guest-side MPI ABI -- the custom ``mpi.h`` of §3.2.

The paper adds a custom ``mpi.h`` to the WASI-SDK in which every opaque MPI
type (``MPI_Comm``, ``MPI_Datatype``, ``MPI_Op``, ``MPI_Request``) is a plain
32-bit integer, and the MPI functions are declared so that the clang Wasm
backend turns them into imports in the ``env`` namespace (Listing 2/3).

This module is the single source of truth for that ABI on both sides:

* the toolchain (:mod:`repro.toolchain.wasicc`) uses :data:`MPI_SIGNATURES`
  to declare the imports of a guest module,
* the embedder (:mod:`repro.core.mpi_imports`) uses the same table to register
  its host implementations, and the handle constants below to translate guest
  integers into host objects (§3.6).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# ----------------------------------------------------------------- constants

MPI_SUCCESS = 0
MPI_ERR_OTHER = 15

# Communicator handles as seen by the guest.
MPI_COMM_NULL = -1
MPI_COMM_WORLD = 0
MPI_COMM_SELF = 1
# Handles >= FIRST_USER_COMM are created by Comm_split/Comm_dup at run time.
FIRST_USER_COMM = 16

# Wildcards / sentinels (guest-side values; translated by the embedder).
MPI_ANY_SOURCE = -1
MPI_ANY_TAG = -1
MPI_PROC_NULL = -2
MPI_STATUS_IGNORE = 0
MPI_REQUEST_NULL = 0
MPI_UNDEFINED = -32766
MPI_IN_PLACE = -3
MPI_INFO_NULL = 0

# Datatype handles (guest integers) -> host datatype names.
MPI_DATATYPE_NULL = 0
MPI_BYTE = 1
MPI_CHAR = 2
MPI_SIGNED_CHAR = 3
MPI_UNSIGNED_CHAR = 4
MPI_SHORT = 5
MPI_UNSIGNED_SHORT = 6
MPI_INT = 7
MPI_UNSIGNED = 8
MPI_LONG = 9
MPI_UNSIGNED_LONG = 10
MPI_LONG_LONG = 11
MPI_UNSIGNED_LONG_LONG = 12
MPI_FLOAT = 13
MPI_DOUBLE = 14
MPI_LONG_DOUBLE = 15
MPI_C_BOOL = 16
MPI_INT8_T = 17
MPI_INT16_T = 18
MPI_INT32_T = 19
MPI_INT64_T = 20
MPI_UINT8_T = 21
MPI_UINT16_T = 22
MPI_UINT32_T = 23
MPI_UINT64_T = 24
MPI_PACKED = 25

GUEST_DATATYPE_NAMES: Dict[int, str] = {
    MPI_BYTE: "MPI_BYTE",
    MPI_CHAR: "MPI_CHAR",
    MPI_SIGNED_CHAR: "MPI_SIGNED_CHAR",
    MPI_UNSIGNED_CHAR: "MPI_UNSIGNED_CHAR",
    MPI_SHORT: "MPI_SHORT",
    MPI_UNSIGNED_SHORT: "MPI_UNSIGNED_SHORT",
    MPI_INT: "MPI_INT",
    MPI_UNSIGNED: "MPI_UNSIGNED",
    MPI_LONG: "MPI_LONG",
    MPI_UNSIGNED_LONG: "MPI_UNSIGNED_LONG",
    MPI_LONG_LONG: "MPI_LONG_LONG",
    MPI_UNSIGNED_LONG_LONG: "MPI_UNSIGNED_LONG_LONG",
    MPI_FLOAT: "MPI_FLOAT",
    MPI_DOUBLE: "MPI_DOUBLE",
    MPI_LONG_DOUBLE: "MPI_LONG_DOUBLE",
    MPI_C_BOOL: "MPI_C_BOOL",
    MPI_INT8_T: "MPI_INT8_T",
    MPI_INT16_T: "MPI_INT16_T",
    MPI_INT32_T: "MPI_INT32_T",
    MPI_INT64_T: "MPI_INT64_T",
    MPI_UINT8_T: "MPI_UINT8_T",
    MPI_UINT16_T: "MPI_UINT16_T",
    MPI_UINT32_T: "MPI_UINT32_T",
    MPI_UINT64_T: "MPI_UINT64_T",
    MPI_PACKED: "MPI_PACKED",
}

# Reduction-op handles (guest integers) -> host op names.
MPI_OP_NULL = 0
MPI_SUM = 1
MPI_PROD = 2
MPI_MAX = 3
MPI_MIN = 4
MPI_LAND = 5
MPI_LOR = 6
MPI_LXOR = 7
MPI_BAND = 8
MPI_BOR = 9
MPI_BXOR = 10

GUEST_OP_NAMES: Dict[int, str] = {
    MPI_SUM: "MPI_SUM",
    MPI_PROD: "MPI_PROD",
    MPI_MAX: "MPI_MAX",
    MPI_MIN: "MPI_MIN",
    MPI_LAND: "MPI_LAND",
    MPI_LOR: "MPI_LOR",
    MPI_LXOR: "MPI_LXOR",
    MPI_BAND: "MPI_BAND",
    MPI_BOR: "MPI_BOR",
    MPI_BXOR: "MPI_BXOR",
}

# Guest MPI_Status layout: four i32 fields (source, tag, error, count_bytes).
STATUS_SIZE_BYTES = 16
STATUS_SOURCE_OFFSET = 0
STATUS_TAG_OFFSET = 4
STATUS_ERROR_OFFSET = 8
STATUS_COUNT_OFFSET = 12

MPI_MAX_PROCESSOR_NAME = 128


# ----------------------------------------------------------------- signatures

#: Wasm-level signatures of the ``env.MPI_*`` imports: name -> (params, results).
#: All handles and pointers are ``i32``; ``MPI_Wtime``/``MPI_Wtick`` return ``f64``.
MPI_SIGNATURES: Dict[str, Tuple[List[str], List[str]]] = {
    "MPI_Init": (["i32", "i32"], ["i32"]),
    "MPI_Initialized": (["i32"], ["i32"]),
    "MPI_Finalize": ([], ["i32"]),
    "MPI_Abort": (["i32", "i32"], ["i32"]),
    "MPI_Comm_rank": (["i32", "i32"], ["i32"]),
    "MPI_Comm_size": (["i32", "i32"], ["i32"]),
    "MPI_Get_processor_name": (["i32", "i32"], ["i32"]),
    "MPI_Wtime": ([], ["f64"]),
    "MPI_Wtick": ([], ["f64"]),
    "MPI_Type_size": (["i32", "i32"], ["i32"]),
    "MPI_Get_count": (["i32", "i32", "i32"], ["i32"]),
    "MPI_Send": (["i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Recv": (["i32", "i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Sendrecv": (
        ["i32", "i32", "i32", "i32", "i32", "i32", "i32", "i32", "i32", "i32", "i32", "i32"],
        ["i32"],
    ),
    "MPI_Isend": (["i32", "i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Irecv": (["i32", "i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Test": (["i32", "i32", "i32"], ["i32"]),
    "MPI_Wait": (["i32", "i32"], ["i32"]),
    "MPI_Waitall": (["i32", "i32", "i32"], ["i32"]),
    "MPI_Waitany": (["i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Testall": (["i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Iprobe": (["i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Ibarrier": (["i32", "i32"], ["i32"]),
    "MPI_Ibcast": (["i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Iallreduce": (["i32", "i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Iallgather": (["i32", "i32", "i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Ialltoall": (["i32", "i32", "i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Barrier": (["i32"], ["i32"]),
    "MPI_Bcast": (["i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Reduce": (["i32", "i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Allreduce": (["i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Gather": (["i32", "i32", "i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Scatter": (["i32", "i32", "i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Allgather": (["i32", "i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Alltoall": (["i32", "i32", "i32", "i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Comm_split": (["i32", "i32", "i32", "i32"], ["i32"]),
    "MPI_Comm_dup": (["i32", "i32"], ["i32"]),
    "MPI_Comm_free": (["i32"], ["i32"]),
    "MPI_Alloc_mem": (["i32", "i32", "i32"], ["i32"]),
    "MPI_Free_mem": (["i32"], ["i32"]),
}


def datatype_size(guest_handle: int) -> int:
    """Size in bytes of a guest datatype handle (``MPI_Type_size`` semantics)."""
    from repro.mpi import datatypes as host_datatypes

    name = GUEST_DATATYPE_NAMES.get(guest_handle)
    if name is None:
        raise KeyError(f"unknown guest datatype handle {guest_handle}")
    return host_datatypes.by_name(name).size


def header_source() -> str:
    """Render the custom ``mpi.h`` as C source text (Listing 2 of the paper).

    Used for documentation and by the linker size model (the header itself
    contributes no object code, but its rendering is a convenient artefact for
    examples and tests to assert against).
    """
    lines = [
        "/* Custom mpi.h for compiling MPI applications to WebAssembly (MPI-2.2). */",
        "typedef int MPI_Comm;",
        "typedef int MPI_Datatype;",
        "typedef int MPI_Op;",
        "typedef int MPI_Request;",
        "typedef struct { int MPI_SOURCE; int MPI_TAG; int MPI_ERROR; int _count; } MPI_Status;",
        "",
        f"#define MPI_COMM_WORLD {MPI_COMM_WORLD}",
        f"#define MPI_COMM_SELF {MPI_COMM_SELF}",
        f"#define MPI_ANY_SOURCE {MPI_ANY_SOURCE}",
        f"#define MPI_ANY_TAG {MPI_ANY_TAG}",
        f"#define MPI_PROC_NULL {MPI_PROC_NULL}",
        f"#define MPI_SUCCESS {MPI_SUCCESS}",
        "",
    ]
    for handle, name in GUEST_DATATYPE_NAMES.items():
        lines.append(f"#define {name} {handle}")
    lines.append("")
    for handle, name in GUEST_OP_NAMES.items():
        lines.append(f"#define {name} {handle}")
    lines.append("")
    ctype = {"i32": "int", "i64": "long long", "f64": "double"}
    for name, (params, results) in MPI_SIGNATURES.items():
        ret = ctype[results[0]] if results else "void"
        args = ", ".join(ctype[p] for p in params) or "void"
        lines.append(f"{ret} {name}({args});")
    return "\n".join(lines) + "\n"
