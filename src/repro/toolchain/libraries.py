"""Library inventory used by the linker size model.

Table 2 of the paper compares three artefact sizes per application: the
dynamically-linked native binary, the statically-linked native binary and the
Wasm binary.  The decisive structural facts are

* a dynamically-linked binary contains only the application's own object code
  (plus ELF/PLT overhead) because ``glibc``, ``libmpi`` and friends are
  resolved at load time,
* a statically-linked binary copies every needed archive member of
  ``libmpi.a``, ``libopen-rte.a``, ``libopen-pal.a``, ``libc.a`` ... into the
  binary (the paper attributes the 139.5x average gap to exactly this),
* a Wasm binary must statically include the referenced parts of ``wasi-libc``
  (and the C++ runtime for C++ applications) because there is no dynamic
  linking, but it never includes the MPI library -- MPI functions are imports
  provided by the embedder.

This module records the archives and their sizes (calibrated to common
OpenMPI 4.0 / glibc builds) so :mod:`repro.toolchain.linker` can assemble the
three totals per application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class StaticLibrary:
    """One native static archive.

    ``linked_fraction`` is the fraction of the archive the linker typically
    copies for an MPI application (archives are pulled in member-by-member,
    but MPI libraries have heavily interconnected members, so the fraction is
    high).
    """

    name: str
    archive_size: int
    linked_fraction: float = 1.0

    def contribution(self) -> int:
        """Bytes this archive adds to a statically-linked binary."""
        return int(self.archive_size * self.linked_fraction)


# Native static archives present on the HPC system (sizes of typical builds).
NATIVE_LIBRARIES: Dict[str, StaticLibrary] = {
    lib.name: lib
    for lib in (
        StaticLibrary("libmpi", int(9.5 * MIB), 0.55),
        StaticLibrary("libopen-rte", int(5.5 * MIB), 0.50),
        StaticLibrary("libopen-pal", int(4.8 * MIB), 0.50),
        StaticLibrary("libpsm2", int(2.2 * MIB), 0.50),
        StaticLibrary("libc", int(4.5 * MIB), 0.45),
        StaticLibrary("libm", int(1.4 * MIB), 0.30),
        StaticLibrary("libpthread", int(0.6 * MIB), 0.60),
        StaticLibrary("libz", int(0.4 * MIB), 0.90),
        StaticLibrary("libstdc++", int(11.5 * MIB), 0.95),
        StaticLibrary("libgcc", int(0.9 * MIB), 0.50),
        StaticLibrary("librt", int(0.2 * MIB), 0.40),
    )
}

#: Archives every MPI C application links statically (the OpenMPI stack + libc).
BASE_MPI_STACK = ("libmpi", "libopen-rte", "libopen-pal", "libpsm2", "libc", "libm",
                  "libpthread", "libz", "libgcc", "librt")

#: Additional archives pulled in by C++ applications.
CPP_EXTRA = ("libstdc++",)


@dataclass(frozen=True)
class WasmRuntimeLibrary:
    """A library statically included in a Wasm binary (there is no dynamic linking)."""

    name: str
    included_size: int


# wasi-libc and the C++ runtime as shipped by the WASI-SDK; only the referenced
# objects end up in the binary, so these are included sizes, not archive sizes.
WASI_LIBC = WasmRuntimeLibrary("wasi-libc", 22 * KIB)
WASI_LIBC_FULL_STDIO = WasmRuntimeLibrary("wasi-libc-stdio", 86 * KIB)
WASM_CXX_RUNTIME = WasmRuntimeLibrary("libc++/libc++abi", 430 * KIB)
WASM_MATH = WasmRuntimeLibrary("libm-wasm", 48 * KIB)


def dynamic_link_overhead() -> int:
    """ELF headers, program headers, PLT/GOT stubs of a dynamic executable."""
    return 18 * KIB


def static_link_overhead() -> int:
    """Extra ELF bookkeeping of a static executable (symbol/section tables)."""
    return 350 * KIB


def wasm_module_overhead() -> int:
    """Type/import/export section overhead of a WASI module."""
    return 6 * KIB
