"""``wasicc`` -- the compile driver of the customised WASI-SDK toolchain.

The paper combines clang, wasi-libc and a custom ``mpi.h`` (plus a small
Python wrapper tool) so that ``wasicc app.c -o app.wasm`` produces a module
whose MPI functions are unresolved imports in the ``env`` namespace and whose
POSIX needs are WASI imports (Listings 1-3).  This module reproduces that
step: :func:`compile_guest` turns a :class:`GuestProgram` into a real,
validated, binary-encodable Wasm module that

* imports every ``env.MPI_*`` function of the MPI-2.2 ABI the guest may call,
* imports the WASI functions of ``wasi_snapshot_preview1``,
* defines and exports a working ``malloc``/``free`` pair (a bump allocator
  written in Wasm -- required by MPIWasm's ``MPI_Alloc_mem`` handling, §3.7),
* exports ``_start`` and its linear ``memory``,
* optionally contains additional Wasm-defined kernel functions contributed by
  the guest program (real numeric code executed by the compiler back-ends).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.toolchain import mpi_header
from repro.toolchain.guest import GuestProgram
from repro.wasm.builder import ModuleBuilder
from repro.wasm.encoder import encode_module
from repro.wasm.module import Module
from repro.wasm.validation import validate_module

#: WASI imports a wasi-libc based application references.
WASI_IMPORTS: Dict[str, tuple] = {
    "fd_write": (["i32", "i32", "i32", "i32"], ["i32"]),
    "fd_read": (["i32", "i32", "i32", "i32"], ["i32"]),
    "fd_seek": (["i32", "i64", "i32", "i32"], ["i32"]),
    "fd_close": (["i32"], ["i32"]),
    "path_open": (
        ["i32", "i32", "i32", "i32", "i32", "i64", "i64", "i32", "i32"],
        ["i32"],
    ),
    "proc_exit": (["i32"], []),
    "clock_time_get": (["i32", "i64", "i32"], ["i32"]),
    "args_sizes_get": (["i32", "i32"], ["i32"]),
    "args_get": (["i32", "i32"], ["i32"]),
}

#: Address where the guest heap starts (below it: data segments / scratch).
HEAP_BASE = 4096


@dataclass
class CompiledApplication:
    """Result of compiling one guest program to Wasm."""

    program: GuestProgram
    module: Module
    wasm_bytes: bytes
    simd: bool

    @property
    def size(self) -> int:
        """Encoded ``.wasm`` size in bytes."""
        return len(self.wasm_bytes)


def _emit_allocator(mb: ModuleBuilder) -> None:
    """Emit the bump-allocating ``malloc``/``free`` pair in Wasm."""
    mb.add_global("__heap_ptr", "i32", HEAP_BASE, mutable=True)

    malloc = mb.function("malloc", params=[("size", "i32")], results=["i32"], export=True)
    malloc.add_local("ptr", "i32")
    malloc.add_local("new_top", "i32")
    # ptr = (heap_ptr + 7) & ~7   (8-byte alignment)
    malloc.emit("global.get", "__heap_ptr").i32_const(7).emit("i32.add")
    malloc.i32_const(-8).emit("i32.and").set("ptr")
    # new_top = ptr + size
    malloc.get("ptr").get("size").emit("i32.add").set("new_top")
    # if new_top > memory.size * 64KiB: memory.grow(ceil((new_top - bytes)/64KiB))
    malloc.get("new_top").emit("memory.size").i32_const(16).emit("i32.shl").emit("i32.gt_u")
    with malloc.if_():
        malloc.get("new_top").emit("memory.size").i32_const(16).emit("i32.shl").emit("i32.sub")
        malloc.i32_const(65535).emit("i32.add").i32_const(16).emit("i32.shr_u")
        malloc.emit("memory.grow").drop()
    # heap_ptr = new_top; return ptr
    malloc.get("new_top").emit("global.set", "__heap_ptr")
    malloc.get("ptr")

    free = mb.function("free", params=[("ptr", "i32")], results=[], export=True)
    free.emit("nop")

    # wasi-libc also exposes the current heap top for sbrk-style probes.
    heap_top = mb.function("__heap_top", params=[], results=["i32"], export=True)
    heap_top.emit("global.get", "__heap_ptr")


def compile_guest(
    program: GuestProgram,
    simd: Optional[bool] = None,
    import_wasi: bool = True,
    extra_data: Optional[bytes] = None,
) -> CompiledApplication:
    """Compile a guest program into a validated Wasm module.

    ``simd`` overrides the program's own SIMD setting (``-msimd128`` on/off);
    kernels contributed by ``program.build_kernels`` are expected to consult
    the builder's ``simd_enabled`` attribute to decide whether to emit ``v128``
    instructions (mirroring what clang's auto-vectoriser would do).
    """
    use_simd = program.simd if simd is None else simd
    mb = ModuleBuilder(name=program.name)
    mb.simd_enabled = use_simd  # consumed by kernel builders
    mb.add_memory(program.memory_pages, program.max_memory_pages, export=True)

    # Imports: the full guest MPI ABI plus the WASI surface.
    for name, (params, results) in mpi_header.MPI_SIGNATURES.items():
        mb.import_function("env", name, params, results)
    if import_wasi:
        for name, (params, results) in WASI_IMPORTS.items():
            mb.import_function("wasi_snapshot_preview1", name, params, results)

    _emit_allocator(mb)

    # The _start stub: real C applications run crt1 + main here; for
    # Python-main guests the embedder drives execution, so _start only has to
    # exist (and be callable) for WASI compliance.
    start = mb.function("_start", params=[], results=[], export=True)
    start.emit("nop")

    if extra_data:
        mb.add_data(1024, extra_data)

    if program.build_kernels is not None:
        program.build_kernels(mb)

    module = mb.build()
    validate_module(module)
    wasm_bytes = encode_module(module)
    return CompiledApplication(program=program, module=module, wasm_bytes=wasm_bytes, simd=use_simd)
