"""Toolchain substrate: the customised WASI-SDK of §3.2.

Contains the guest-side MPI ABI (``mpi.h``), the ``wasicc`` compile driver
that produces Wasm modules for guest programs, and the linker size model that
regenerates Table 2.
"""

from repro.toolchain import mpi_header
from repro.toolchain.guest import GuestProgram
from repro.toolchain.libraries import KIB, MIB
from repro.toolchain.linker import (
    ApplicationProfile,
    LinkerModel,
    LinkSizes,
    PAPER_APPLICATIONS,
    table2_rows,
)
from repro.toolchain.wasicc import CompiledApplication, compile_guest

__all__ = [
    "mpi_header",
    "GuestProgram",
    "compile_guest",
    "CompiledApplication",
    "ApplicationProfile",
    "LinkerModel",
    "LinkSizes",
    "PAPER_APPLICATIONS",
    "table2_rows",
    "KIB",
    "MIB",
]
