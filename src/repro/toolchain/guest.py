"""Guest program abstraction.

A :class:`GuestProgram` is the unit the toolchain compiles and the embedder
runs -- the analogue of one MPI application's source tree.  It carries:

* ``main`` -- the application's entry point.  In the paper this is C/C++
  compiled to Wasm by clang; here it is a Python callable that receives a
  :class:`repro.core.guest_api.GuestAPI` handle and may *only* interact with
  the world through it (linear-memory allocations, the guest MPI ABI, WASI
  I/O).  This substitution is documented in DESIGN.md: every MPI/WASI call
  still flows through the embedder's import implementations, address
  translation and datatype translation, exactly as a Wasm ``call`` to the
  import would.
* ``build_kernels`` -- optionally, genuinely Wasm-encoded compute kernels
  (built with :class:`repro.wasm.builder.ModuleBuilder`) that ``main`` can
  invoke through the module's exports; the HPCG and Table-1 experiments use
  this path so that numeric inner loops really execute as Wasm code under the
  selected compiler back-end.
* ``profile`` -- the linker-model profile used for Table 2 sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.toolchain.linker import ApplicationProfile
from repro.wasm.builder import ModuleBuilder


@dataclass
class GuestProgram:
    """One MPI application as seen by the toolchain and the embedder."""

    name: str
    main: Callable  # main(api: GuestAPI, args: list[str]) -> int
    memory_pages: int = 64
    max_memory_pages: Optional[int] = 4096
    #: Optional hook adding Wasm-defined kernel functions to the module.
    build_kernels: Optional[Callable[[ModuleBuilder], None]] = None
    #: Linker profile for the binary-size experiments (Table 2).
    profile: Optional[ApplicationProfile] = None
    #: Whether the guest was "compiled" with -msimd128 (DT / Figure 5a ablation).
    simd: bool = True
    description: str = ""

    def with_simd(self, enabled: bool) -> "GuestProgram":
        """Copy of the program compiled with or without SIMD generation."""
        return GuestProgram(
            name=self.name,
            main=self.main,
            memory_pages=self.memory_pages,
            max_memory_pages=self.max_memory_pages,
            build_kernels=self.build_kernels,
            profile=self.profile,
            simd=enabled,
            description=self.description,
        )
