"""Wire-level concerns of the job service: errors, validation, rendering.

Everything that crosses the HTTP boundary is funnelled through this module:

* :class:`WireError` -- the one exception family the request handler turns
  into an HTTP response (status, JSON body, optional ``Retry-After``),
* :func:`validate_submission` -- normalises an untrusted JSON submission
  into a typed job payload, rejecting anything malformed with a 400 *before*
  it reaches a worker (including hostile ``.wasm`` bytes, which surface as
  :class:`~repro.wasm.decoder.DecodeError` / ``ValidationError`` -- typed
  :class:`~repro.wasm.errors.WasmError` subclasses mapped to 400 here),
* :func:`render_prometheus` -- flat counter/gauge mappings as Prometheus
  text exposition format for ``/metrics``.
"""

from __future__ import annotations

import base64
import binascii
import re
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.wasm.errors import WasmError

#: Submission kinds the service understands.
KINDS = ("run", "campaign", "compile")

#: Hex content-hash keys as produced by ``module_hash`` (blake2b-256).
ARTIFACT_KEY_RE = re.compile(r"^[0-9a-f]{64}$")

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


class WireError(Exception):
    """A request failure with a definite HTTP status.

    The handler catches exactly this family and renders ``to_payload()`` as
    the JSON response body; ``retry_after`` (seconds) becomes a
    ``Retry-After`` header so throttled (429) and shed (503) clients know
    when to come back.
    """

    def __init__(self, status: int, message: str, *,
                 retry_after: Optional[float] = None,
                 code: Optional[str] = None):
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.retry_after = retry_after
        self.code = code

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"error": self.message, "status": self.status}
        if self.code:
            payload["code"] = self.code
        if self.retry_after is not None:
            payload["retry_after"] = round(float(self.retry_after), 3)
        return payload


def _require(payload: Mapping[str, Any], key: str, types: Tuple[type, ...],
             kind_name: str) -> Any:
    value = payload.get(key)
    if value is None:
        raise WireError(400, f"{kind_name} submission requires {key!r}", code="missing_field")
    if not isinstance(value, types):
        names = "/".join(t.__name__ for t in types)
        raise WireError(
            400, f"{key!r} must be {names}, got {type(value).__name__}", code="bad_field")
    return value


def _optional_str(payload: Mapping[str, Any], key: str) -> Optional[str]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, str):
        raise WireError(400, f"{key!r} must be a string", code="bad_field")
    return value


def _check_registered(registry_name: str, name: str) -> None:
    """400 for names the registries do not know, with the known list."""
    from repro.api import registry as registries

    registry = getattr(registries, registry_name)
    try:
        registry.get(name)
    except Exception as exc:  # UnknownEntryError lists the alternatives
        raise WireError(400, str(exc), code="unknown_name") from exc


def validate_submission(
    payload: Any,
    *,
    max_nranks: int = 4096,
    max_campaign_jobs: int = 256,
) -> Dict[str, Any]:
    """Validate one untrusted submission body into a normalised job payload.

    Returns a dict with at least ``kind`` and ``cost`` (the number of
    underlying jobs, used for quota accounting).  Raises :class:`WireError`
    (status 400) for anything the service should refuse synchronously --
    including module bytes that fail decode/validation, so hostile binaries
    never occupy a worker.
    """
    if not isinstance(payload, Mapping):
        raise WireError(400, "submission body must be a JSON object", code="bad_body")
    kind = payload.get("kind", "run")
    if kind not in KINDS:
        raise WireError(400, f"unknown submission kind {kind!r}; known: {list(KINDS)}",
                        code="unknown_kind")

    if kind == "run":
        benchmark = _require(payload, "benchmark", (str,), "run")
        _check_registered("BENCHMARKS", benchmark)
        nranks = payload.get("nranks", 2)
        if not isinstance(nranks, int) or isinstance(nranks, bool) or nranks < 1:
            raise WireError(400, "'nranks' must be a positive integer", code="bad_field")
        if nranks > max_nranks:
            raise WireError(400, f"'nranks' exceeds the service limit of {max_nranks}",
                            code="limit_exceeded")
        mode = payload.get("mode", "wasm")
        if not isinstance(mode, str):
            raise WireError(400, "'mode' must be a string", code="bad_field")
        _check_registered("MODES", mode)
        backend = _optional_str(payload, "backend")
        if backend is not None:
            _check_registered("BACKENDS", backend)
        machine = _optional_str(payload, "machine")
        if machine is not None:
            _check_registered("MACHINES", machine)
        algorithms = payload.get("algorithms")
        if algorithms is not None and not (
            isinstance(algorithms, Mapping)
            and all(isinstance(k, str) and isinstance(v, str) for k, v in algorithms.items())
        ):
            raise WireError(400, "'algorithms' must map collective names to algorithm names",
                            code="bad_field")
        guest_args = payload.get("guest_args", [])
        if not (isinstance(guest_args, (list, tuple))
                and all(isinstance(a, str) for a in guest_args)):
            raise WireError(400, "'guest_args' must be a list of strings", code="bad_field")
        return {
            "kind": "run",
            "benchmark": benchmark,
            "nranks": nranks,
            "mode": mode,
            "backend": backend,
            "machine": machine,
            "algorithms": dict(algorithms) if algorithms else None,
            "guest_args": list(guest_args),
            "cost": 1,
        }

    if kind == "campaign":
        from repro.harness.campaign import CampaignSpec

        spec = _require(payload, "spec", (Mapping,), "campaign")
        try:
            jobs = CampaignSpec.from_mapping(spec).expand()
        except (ValueError, TypeError, KeyError) as exc:
            raise WireError(400, f"invalid campaign spec: {exc}", code="bad_spec") from exc
        if not jobs:
            raise WireError(400, "campaign spec expands to zero jobs", code="bad_spec")
        if len(jobs) > max_campaign_jobs:
            raise WireError(
                400,
                f"campaign expands to {len(jobs)} jobs; the service limit is "
                f"{max_campaign_jobs}",
                code="limit_exceeded",
            )
        return {"kind": "campaign", "spec": dict(spec), "cost": len(jobs)}

    # kind == "compile": raw module bytes, the fully untrusted path.
    from repro.wasm.decoder import decode_module
    from repro.wasm.validation import validate_module

    encoded = _require(payload, "wasm_base64", (str,), "compile")
    try:
        wasm_bytes = base64.b64decode(encoded, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise WireError(400, f"'wasm_base64' is not valid base64: {exc}",
                        code="bad_field") from exc
    backend = _optional_str(payload, "backend")
    if backend is not None:
        _check_registered("BACKENDS", backend)
    try:
        module = decode_module(wasm_bytes)
        validate_module(module)
    except WasmError as exc:
        raise WireError(400, f"rejected module: {type(exc).__name__}: {exc}",
                        code="bad_module") from exc
    return {
        "kind": "compile",
        "wasm_bytes": wasm_bytes,
        "backend": backend,
        "cost": 1,
    }


def metric_name(name: str) -> str:
    """A dotted internal counter name as a legal Prometheus metric name."""
    return _METRIC_NAME_RE.sub("_", name)


def render_prometheus(
    counters: Mapping[str, float],
    gauges: Mapping[str, float],
    labelled: Iterable[Tuple[str, Mapping[str, str], float]] = (),
) -> str:
    """Flat metrics as Prometheus text exposition format (version 0.0.4)."""
    lines = []
    for name in sorted(counters):
        safe = metric_name(name)
        lines.append(f"# TYPE {safe} counter")
        lines.append(f"{safe} {counters[name]}")
    for name in sorted(gauges):
        safe = metric_name(name)
        lines.append(f"# TYPE {safe} gauge")
        lines.append(f"{safe} {gauges[name]}")
    typed = set()
    for name, labels, value in labelled:
        safe = metric_name(name)
        if safe not in typed:
            typed.add(safe)
            lines.append(f"# TYPE {safe} gauge")
        rendered = ",".join(
            f'{metric_name(k)}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
            for k, v in sorted(labels.items())
        )
        lines.append(f"{safe}{{{rendered}}} {value}")
    return "\n".join(lines) + "\n"
