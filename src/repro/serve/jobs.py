"""Job records, the job store, and the bounded submission queue.

Memory never grows without bound: the queue has a hard capacity (overflow
is *shed* with 503 at the HTTP layer, counted, never buffered), and the
store retains at most ``max_records`` jobs, evicting the oldest *finished*
records once full (in-flight jobs are never evicted).
"""

from __future__ import annotations

import base64
import collections
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

# Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, ERROR, CANCELLED)
_FINISHED = (DONE, ERROR, CANCELLED)


def new_job_id() -> str:
    return uuid.uuid4().hex[:16]


def jsonable_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Journal-safe form of a submission payload (bytes become base64)."""
    out: Dict[str, Any] = {}
    for key, value in payload.items():
        if isinstance(value, (bytes, bytearray)):
            out[key] = {"__bytes_b64__": base64.b64encode(bytes(value)).decode("ascii")}
        else:
            out[key] = value
    return out


def payload_from_jsonable(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`jsonable_payload` (journal replay path)."""
    out: Dict[str, Any] = {}
    for key, value in payload.items():
        if isinstance(value, dict) and set(value) == {"__bytes_b64__"}:
            out[key] = base64.b64decode(value["__bytes_b64__"])
        else:
            out[key] = value
    return out


@dataclass
class JobRecord:
    """One submitted job as tracked by the service.

    ``payload`` is the *normalised* submission (see
    :func:`repro.serve.wire.validate_submission`); it may hold raw bytes
    (compile jobs), so :meth:`to_wire` exposes only JSON-safe fields.
    """

    job_id: str
    tenant: str
    kind: str
    payload: Dict[str, Any]
    cost: int = 1
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    worker: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None

    @property
    def finished(self) -> bool:
        return self.state in _FINISHED

    def wall_seconds(self) -> Optional[float]:
        if self.started_mono is None or self.finished_mono is None:
            return None
        return self.finished_mono - self.started_mono

    def to_wire(self, include_result: bool = False) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "state": self.state,
            "cost": self.cost,
            "submitted_at": self.submitted_at,
            "worker": self.worker,
        }
        wall = self.wall_seconds()
        if wall is not None:
            body["wall_seconds"] = round(wall, 6)
        if self.error is not None:
            body["error"] = self.error
        if include_result:
            body["result"] = self.result
        return body


class JobStore:
    """Thread-safe bounded store of job records, insertion-ordered.

    With a :class:`repro.fault.journal.Journal` attached (:attr:`journal`),
    every lifecycle transition is additionally appended to the crash-safe
    on-disk journal, so a killed service can restore finished records and
    *re-queue* unfinished ones on restart (see ``JobService``).  Journal
    writes happen outside the store lock -- a slow disk never serialises
    status reads.
    """

    def __init__(self, max_records: int = 1024, journal=None):
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.max_records = max_records
        #: Optional repro.fault.journal.Journal receiving lifecycle events.
        self.journal = journal
        self._records: "collections.OrderedDict[str, JobRecord]" = collections.OrderedDict()
        self._lock = threading.Lock()

    def _journal_event(self, event: str, record: JobRecord, **fields) -> None:
        if self.journal is not None:
            self.journal.record(event, record.job_id, **fields)

    def add(self, record: JobRecord) -> None:
        with self._lock:
            self._records[record.job_id] = record
            self._evict_locked()
        self._journal_event(
            "accepted", record,
            tenant=record.tenant, kind=record.kind, cost=record.cost,
            payload=jsonable_payload(record.payload),
        )

    def _evict_locked(self) -> None:
        if len(self._records) <= self.max_records:
            return
        # Oldest finished records go first; live jobs are never dropped.
        for job_id in list(self._records):
            if len(self._records) <= self.max_records:
                break
            if self._records[job_id].finished:
                del self._records[job_id]

    def get(self, job_id: str, tenant: Optional[str] = None) -> Optional[JobRecord]:
        """Fetch a record, scoped to ``tenant`` when given: a job belonging
        to another tenant reads as absent, not forbidden."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            return None
        if tenant is not None and record.tenant != tenant:
            return None
        return record

    def discard(self, job_id: str) -> None:
        with self._lock:
            self._records.pop(job_id, None)

    def list_for(self, tenant: str, limit: int = 100) -> List[JobRecord]:
        with self._lock:
            records = [r for r in self._records.values() if r.tenant == tenant]
        return records[-limit:]

    def mark_running(self, record: JobRecord, worker: str) -> bool:
        """Transition QUEUED -> RUNNING; ``False`` if the job was cancelled
        between enqueue and dequeue (the worker then skips it)."""
        with self._lock:
            if record.state == CANCELLED:
                return False
            record.state = RUNNING
            record.worker = worker
            record.started_mono = time.monotonic()
        self._journal_event("started", record, worker=worker)
        return True

    def mark_done(self, record: JobRecord, result: Dict[str, Any]) -> None:
        with self._lock:
            record.state = DONE
            record.result = result
            record.finished_mono = time.monotonic()
        self._journal_event("done", record, result=result)

    def mark_error(self, record: JobRecord, error: Dict[str, Any]) -> None:
        with self._lock:
            record.state = ERROR
            record.error = error
            record.finished_mono = time.monotonic()
        self._journal_event("error", record, error=error)

    def mark_cancelled(self, record: JobRecord, reason: str) -> None:
        with self._lock:
            record.state = CANCELLED
            record.error = {"type": "Cancelled", "message": reason}
            record.finished_mono = time.monotonic()
        self._journal_event("cancelled", record, error=record.error)

    def cancel_if_queued(self, record: JobRecord, reason: str) -> bool:
        """Atomically cancel a still-QUEUED job.

        ``False`` when a worker won the race (or the job already finished);
        the caller re-reads the state to pick the right conflict response.
        """
        with self._lock:
            if record.state != QUEUED:
                return False
            record.state = CANCELLED
            record.error = {"type": "Cancelled", "message": reason}
            record.finished_mono = time.monotonic()
        self._journal_event("cancelled", record, error=record.error)
        return True

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in STATES}
        with self._lock:
            for record in self._records.values():
                out[record.state] += 1
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class BoundedJobQueue:
    """A hard-capacity FIFO between the HTTP layer and the worker pool.

    ``try_put`` never blocks: a full queue returns ``False`` immediately
    (the caller sheds with 503), so a flood translates to refused requests,
    not resident memory.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._q: "queue.Queue[JobRecord]" = queue.Queue(maxsize=capacity)

    def try_put(self, record: JobRecord) -> bool:
        try:
            self._q.put_nowait(record)
            return True
        except queue.Full:
            return False

    def get(self, timeout: float) -> Optional[JobRecord]:
        try:
            return self._q.get(timeout=timeout)
        except queue.Empty:
            return None

    def drain_now(self) -> List[JobRecord]:
        """Empty the queue immediately (shutdown path)."""
        out = []
        while True:
            try:
                out.append(self._q.get_nowait())
            except queue.Empty:
                return out

    def depth(self) -> int:
        return self._q.qsize()

    def empty(self) -> bool:
        return self._q.empty()
