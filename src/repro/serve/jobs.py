"""Job records, the job store, and the bounded submission queue.

Memory never grows without bound: the queue has a hard capacity (overflow
is *shed* with 503 at the HTTP layer, counted, never buffered), and the
store retains at most ``max_records`` jobs, evicting the oldest *finished*
records once full (in-flight jobs are never evicted).
"""

from __future__ import annotations

import collections
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

# Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, ERROR, CANCELLED)
_FINISHED = (DONE, ERROR, CANCELLED)


def new_job_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass
class JobRecord:
    """One submitted job as tracked by the service.

    ``payload`` is the *normalised* submission (see
    :func:`repro.serve.wire.validate_submission`); it may hold raw bytes
    (compile jobs), so :meth:`to_wire` exposes only JSON-safe fields.
    """

    job_id: str
    tenant: str
    kind: str
    payload: Dict[str, Any]
    cost: int = 1
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    worker: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None

    @property
    def finished(self) -> bool:
        return self.state in _FINISHED

    def wall_seconds(self) -> Optional[float]:
        if self.started_mono is None or self.finished_mono is None:
            return None
        return self.finished_mono - self.started_mono

    def to_wire(self, include_result: bool = False) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "state": self.state,
            "cost": self.cost,
            "submitted_at": self.submitted_at,
            "worker": self.worker,
        }
        wall = self.wall_seconds()
        if wall is not None:
            body["wall_seconds"] = round(wall, 6)
        if self.error is not None:
            body["error"] = self.error
        if include_result:
            body["result"] = self.result
        return body


class JobStore:
    """Thread-safe bounded store of job records, insertion-ordered."""

    def __init__(self, max_records: int = 1024):
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.max_records = max_records
        self._records: "collections.OrderedDict[str, JobRecord]" = collections.OrderedDict()
        self._lock = threading.Lock()

    def add(self, record: JobRecord) -> None:
        with self._lock:
            self._records[record.job_id] = record
            self._evict_locked()

    def _evict_locked(self) -> None:
        if len(self._records) <= self.max_records:
            return
        # Oldest finished records go first; live jobs are never dropped.
        for job_id in list(self._records):
            if len(self._records) <= self.max_records:
                break
            if self._records[job_id].finished:
                del self._records[job_id]

    def get(self, job_id: str, tenant: Optional[str] = None) -> Optional[JobRecord]:
        """Fetch a record, scoped to ``tenant`` when given: a job belonging
        to another tenant reads as absent, not forbidden."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            return None
        if tenant is not None and record.tenant != tenant:
            return None
        return record

    def discard(self, job_id: str) -> None:
        with self._lock:
            self._records.pop(job_id, None)

    def list_for(self, tenant: str, limit: int = 100) -> List[JobRecord]:
        with self._lock:
            records = [r for r in self._records.values() if r.tenant == tenant]
        return records[-limit:]

    def mark_running(self, record: JobRecord, worker: str) -> None:
        with self._lock:
            record.state = RUNNING
            record.worker = worker
            record.started_mono = time.monotonic()

    def mark_done(self, record: JobRecord, result: Dict[str, Any]) -> None:
        with self._lock:
            record.state = DONE
            record.result = result
            record.finished_mono = time.monotonic()

    def mark_error(self, record: JobRecord, error: Dict[str, Any]) -> None:
        with self._lock:
            record.state = ERROR
            record.error = error
            record.finished_mono = time.monotonic()

    def mark_cancelled(self, record: JobRecord, reason: str) -> None:
        with self._lock:
            record.state = CANCELLED
            record.error = {"type": "Cancelled", "message": reason}
            record.finished_mono = time.monotonic()

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in STATES}
        with self._lock:
            for record in self._records.values():
                out[record.state] += 1
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class BoundedJobQueue:
    """A hard-capacity FIFO between the HTTP layer and the worker pool.

    ``try_put`` never blocks: a full queue returns ``False`` immediately
    (the caller sheds with 503), so a flood translates to refused requests,
    not resident memory.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._q: "queue.Queue[JobRecord]" = queue.Queue(maxsize=capacity)

    def try_put(self, record: JobRecord) -> bool:
        try:
            self._q.put_nowait(record)
            return True
        except queue.Full:
            return False

    def get(self, timeout: float) -> Optional[JobRecord]:
        try:
            return self._q.get(timeout=timeout)
        except queue.Empty:
            return None

    def drain_now(self) -> List[JobRecord]:
        """Empty the queue immediately (shutdown path)."""
        out = []
        while True:
            try:
                out.append(self._q.get_nowait())
            except queue.Empty:
                return out

    def depth(self) -> int:
        return self._q.qsize()

    def empty(self) -> bool:
        return self._q.empty()
