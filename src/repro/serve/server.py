"""``repro-harness serve``: the multi-tenant job service itself.

A stdlib-only long-running daemon (``http.server.ThreadingHTTPServer``; no
dependencies beyond the Python the repo already requires) that accepts
run/campaign/compile submissions as JSON, validates and enqueues them onto
a bounded queue drained by a pool of warm per-worker
:class:`~repro.api.Session` objects, and serves job status, results, and
compiled artifacts straight out of the shared on-disk cache.

Endpoints (see ``docs/SERVING.md`` for the full contract)::

    GET  /healthz                 liveness + queue depth (no auth)
    GET  /metrics                 Prometheus text exposition (no auth)
    POST /v1/jobs                 submit {kind: run|campaign|compile, ...}
    GET  /v1/jobs                 list the calling tenant's jobs
    GET  /v1/jobs/<id>            job status
    GET  /v1/jobs/<id>/result     status + result body
    GET  /v1/artifacts            compiled artifact keys + sizes
    GET  /v1/artifacts/<key>      raw .mpiwasm bytes from the AoT cache

Production semantics: per-tenant API keys (401), token-bucket throttling
and job quotas (429 + ``Retry-After``), backpressure with load-shedding
(503 + ``Retry-After`` when the bounded queue is full -- a flood is refused,
never buffered), graceful drain on SIGTERM, and ``/healthz`` + ``/metrics``
fed from the per-worker session metrics.
"""

from __future__ import annotations

import json
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.serve.auth import TenantStore
from repro.serve.jobs import RUNNING, BoundedJobQueue, JobRecord, JobStore, new_job_id
from repro.serve.pool import WorkerPool
from repro.serve.quota import AdmissionController
from repro.serve.wire import (
    ARTIFACT_KEY_RE,
    WireError,
    render_prometheus,
    validate_submission,
)
from repro.sim.metrics import MetricsRegistry

#: Retry-After advertised on a load-shed (queue-full) 503.
SHED_RETRY_AFTER = 1.0


@dataclass
class ServeConfig:
    """Configuration of one service instance.

    ``tenants`` may be a :class:`TenantStore`, a mapping in the
    ``tenants.json`` schema, a path to such a file, or ``None`` -- in which
    case a single unmetered ``dev`` tenant with a random key is generated
    (printed at startup by the CLI).  ``cache_dir=None`` creates a private
    temp directory that is removed on shutdown.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    queue_size: int = 16
    tenants: Union[TenantStore, Mapping[str, Any], str, Path, None] = None
    backend: Optional[str] = None
    machine: Optional[str] = None
    cache_dir: Optional[str] = None
    #: Directory for the crash-safe job journal.  When set, every job's
    #: lifecycle is appended to ``journal.jsonl`` there, and a restarted
    #: service restores finished records and re-queues unfinished jobs (a
    #: SIGKILLed worker loses no accepted work).  ``None`` disables.
    journal_dir: Optional[str] = None
    drain_timeout: float = 30.0
    max_body_bytes: int = 8 * 1024 * 1024
    max_campaign_jobs: int = 256
    max_nranks: int = 4096
    retention: int = 1024
    quiet: bool = True

    def tenant_store(self) -> TenantStore:
        if isinstance(self.tenants, TenantStore):
            return self.tenants
        if isinstance(self.tenants, Mapping):
            return TenantStore.from_mapping(self.tenants)
        if isinstance(self.tenants, (str, Path)):
            return TenantStore.from_file(self.tenants)
        return TenantStore.dev_store()


class JobService:
    """Everything behind the HTTP handler: auth, admission, queue, pool."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.tenants = config.tenant_store()
        if config.cache_dir:
            self.cache_dir = str(config.cache_dir)
            self._owns_cache_dir = False
        else:
            self.cache_dir = tempfile.mkdtemp(prefix="repro-serve-")
            self._owns_cache_dir = True
        self.store = JobStore(max_records=config.retention)
        self.queue = BoundedJobQueue(config.queue_size)
        self.admission = AdmissionController()
        self.metrics = MetricsRegistry()
        self.journal = None
        if config.journal_dir:
            from repro.fault.journal import Journal

            self.journal = Journal(config.journal_dir)
            # Replay BEFORE attaching the journal to the store: restored
            # records must not re-append events (a finished job re-journaled
            # as "accepted" would wrongly re-run on the *next* restart).
            self._replay_journal()
            self.store.journal = self.journal
        self.pool = WorkerPool(
            config.workers,
            self._make_worker_session,
            self.store,
            self.queue,
            cache_dir=self.cache_dir,
        )
        self._draining = threading.Event()
        self._started_mono = time.monotonic()
        self._closed = False

    def _replay_journal(self) -> None:
        """Restore job state from a previous life of this service.

        Events are merged per job (``accepted`` carries tenant/kind/payload,
        the terminal event carries the result), so the last event decides the
        state and earlier events supply the submission.  Finished jobs come
        back as readable records; unfinished ones -- accepted or started when
        the process died -- are re-queued and run again.
        """
        from repro.fault.journal import TERMINAL_EVENTS
        from repro.serve.jobs import DONE, ERROR, CANCELLED, payload_from_jsonable

        merged: Dict[str, Dict[str, Any]] = {}
        for event in self.journal.events():
            merged.setdefault(event["job_id"], {}).update(event)
        for job_id, rec in merged.items():
            record = JobRecord(
                job_id=job_id,
                tenant=str(rec.get("tenant", "unknown")),
                kind=str(rec.get("kind", "run")),
                payload=payload_from_jsonable(dict(rec.get("payload") or {})),
                cost=int(rec.get("cost", 1)),
            )
            last = rec.get("event")
            if last in TERMINAL_EVENTS:
                record.state = {"done": DONE, "error": ERROR, "cancelled": CANCELLED}[last]
                record.result = rec.get("result")
                record.error = rec.get("error")
                self.store.add(record)
                continue
            self.store.add(record)
            if self.queue.try_put(record):
                self.metrics.increment("serve.jobs.requeued")
            else:
                self.store.mark_error(record, {
                    "type": "RequeueFailed",
                    "message": "journal replay found more unfinished jobs than queue capacity",
                    "http_status": 503,
                })

    def _make_worker_session(self, worker_name: str):
        from repro.api.session import Session

        overrides: Dict[str, Any] = {"cache_dir": self.cache_dir}
        if self.config.backend:
            overrides["backend"] = self.config.backend
        if self.config.machine:
            overrides["machine"] = self.config.machine
        return Session(**overrides)

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self.pool.start()

    def begin_drain(self) -> None:
        """Stop admitting; already-queued jobs keep running."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def shutdown(self, drain: bool = True) -> int:
        """Drain (optionally) and stop the pool; returns cancelled-job count."""
        if self._closed:
            return 0
        self._closed = True
        self._draining.set()
        cancelled = self.pool.stop(drain=drain, timeout=self.config.drain_timeout)
        if self._owns_cache_dir:
            shutil.rmtree(self.cache_dir, ignore_errors=True)
        return cancelled

    # -------------------------------------------------------------- operations

    def submit(self, api_key: Optional[str], body: Any) -> Dict[str, Any]:
        """Admit one submission; returns the 202 response body.

        Order matters: authenticate (401) -> drain check (503) -> validate
        (400) -> throttle/quota (429) -> enqueue-or-shed (503).  A shed
        refunds the quota charge -- the job never existed.
        """
        tenant = self.tenants.authenticate(api_key)
        if self.draining:
            raise WireError(503, "service is draining; not accepting submissions",
                            retry_after=self.config.drain_timeout, code="draining")
        normalized = validate_submission(
            body,
            max_nranks=self.config.max_nranks,
            max_campaign_jobs=self.config.max_campaign_jobs,
        )
        cost = normalized.pop("cost")
        self.admission.admit(tenant, cost)
        record = JobRecord(
            job_id=new_job_id(),
            tenant=tenant.name,
            kind=normalized["kind"],
            payload=normalized,
            cost=cost,
        )
        self.store.add(record)
        if not self.queue.try_put(record):
            # Backpressure: the bounded queue is full.  Shed the submission
            # (503 + Retry-After), refund its quota charge, keep no state.
            self.store.discard(record.job_id)
            self.admission.refund(tenant, cost)
            self.metrics.increment("serve.queue.shed")
            raise WireError(
                503,
                f"job queue is full ({self.queue.capacity} deep); retry later",
                retry_after=SHED_RETRY_AFTER,
                code="queue_full",
            )
        self.metrics.increment("serve.jobs.accepted")
        self.metrics.increment(f"serve.jobs.accepted.{tenant.name}")
        return {
            "job_id": record.job_id,
            "state": record.state,
            "kind": record.kind,
            "cost": cost,
            "status_url": f"/v1/jobs/{record.job_id}",
            "result_url": f"/v1/jobs/{record.job_id}/result",
        }

    def _job(self, api_key: Optional[str], job_id: str) -> JobRecord:
        tenant = self.tenants.authenticate(api_key)
        record = self.store.get(job_id, tenant=tenant.name)
        if record is None:
            raise WireError(404, f"no job {job_id!r} for this tenant", code="not_found")
        return record

    def cancel_job(self, api_key: Optional[str], job_id: str) -> Dict[str, Any]:
        """Cancel a tenant's QUEUED job (``DELETE /v1/jobs/<id>``).

        Tenant-scoped like every job read: another tenant's job is a 404.
        Finished jobs conflict with 409/``finished``; running jobs with
        409/``running`` (in-flight simulations are not interruptible).  A
        successful cancel refunds the submission's quota charge -- the job
        never ran -- and ticks ``serve.jobs.cancelled``.
        """
        tenant = self.tenants.authenticate(api_key)
        record = self.store.get(job_id, tenant=tenant.name)
        if record is None:
            raise WireError(404, f"no job {job_id!r} for this tenant", code="not_found")
        if self.store.cancel_if_queued(record, "cancelled by tenant"):
            self.admission.refund(tenant, record.cost)
            self.metrics.increment("serve.jobs.cancelled")
            self.metrics.increment(f"serve.jobs.cancelled.{tenant.name}")
            return record.to_wire()
        if record.state == RUNNING:
            raise WireError(409, f"job {job_id!r} is running; in-flight jobs "
                            "cannot be cancelled", code="running")
        raise WireError(409, f"job {job_id!r} already finished ({record.state})",
                        code="finished")

    def job_status(self, api_key: Optional[str], job_id: str) -> Dict[str, Any]:
        return self._job(api_key, job_id).to_wire()

    def job_result(self, api_key: Optional[str], job_id: str) -> Dict[str, Any]:
        return self._job(api_key, job_id).to_wire(include_result=True)

    def list_jobs(self, api_key: Optional[str]) -> Dict[str, Any]:
        tenant = self.tenants.authenticate(api_key)
        return {"jobs": [r.to_wire() for r in self.store.list_for(tenant.name)]}

    def artifact_index(self, api_key: Optional[str]) -> Dict[str, Any]:
        self.tenants.authenticate(api_key)
        directory = Path(self.cache_dir)
        artifacts = [
            {"key": p.stem, "bytes": p.stat().st_size}
            for p in directory.glob("*.mpiwasm")
        ] if directory.is_dir() else []
        return {"artifacts": sorted(artifacts, key=lambda a: a["key"])}

    def artifact_bytes(self, api_key: Optional[str], key: str) -> bytes:
        self.tenants.authenticate(api_key)
        if not ARTIFACT_KEY_RE.match(key):
            # Also forecloses path traversal: keys are pure lowercase hex.
            raise WireError(400, "artifact keys are 64 lowercase hex characters",
                            code="bad_key")
        path = Path(self.cache_dir) / f"{key}.mpiwasm"
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            raise WireError(404, f"no compiled artifact {key!r}", code="not_found") from None
        self._verify_artifact(key, raw)
        return raw

    def _verify_artifact(self, key: str, raw: bytes) -> None:
        """Statically verify a cached lowered-IR artifact before streaming it.

        The cache directory is shared with other processes; a corrupt or
        tampered artifact is a 500 with ``artifact_corrupt`` (and a
        ``repro_serve_artifact_verify_failures`` metric tick), never a
        download a tenant would go on to execute.
        """
        import pickle

        from repro.analysis.ir_verify import verify_artifact

        try:
            payload = pickle.loads(raw)
        except Exception:
            self.metrics.increment("serve.artifact_verify_failures")
            raise WireError(500, f"artifact {key!r} does not deserialize",
                            code="artifact_corrupt") from None
        artifact = payload.get("artifact") if isinstance(payload, dict) else None
        report = verify_artifact(artifact, loc=key)
        if not report.ok:
            self.metrics.increment("serve.artifact_verify_failures")
            first = report.errors[0]
            raise WireError(
                500,
                f"artifact {key!r} failed static verification: {first.format()}",
                code="artifact_corrupt",
            )

    # -------------------------------------------------------------- telemetry

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": round(time.monotonic() - self._started_mono, 3),
            "workers": self.pool.size,
            "workers_busy": self.pool.busy_count(),
            "queue": {
                "depth": self.queue.depth(),
                "capacity": self.queue.capacity,
                "shed_total": self.metrics.counter("serve.queue.shed"),
            },
            "jobs": self.store.counts(),
            "admission": self.admission.counters(),
            "tenants": len(self.tenants),
        }

    def metrics_text(self) -> str:
        counters = {
            f"repro_serve_{name.replace('serve.', '').replace('.', '_')}_total": value
            for name, value in self.metrics.counters().items()
            if name.startswith("serve.")
        }
        # Exact-name metric (no _total suffix): artifact GETs that failed
        # static verification (repro.analysis.ir_verify) before streaming.
        counters["repro_serve_artifact_verify_failures"] = self.metrics.counter(
            "serve.artifact_verify_failures")
        counters.pop("repro_serve_artifact_verify_failures_total", None)
        counters["repro_serve_throttled_total"] = self.admission.throttled_total
        counters["repro_serve_quota_refused_total"] = self.admission.quota_refused_total
        counters["repro_serve_jobs_done_total"] = self.pool.jobs_done
        counters["repro_serve_jobs_failed_total"] = self.pool.jobs_failed
        state_counts = self.store.counts()
        gauges = {
            "repro_serve_queue_depth": self.queue.depth(),
            "repro_serve_queue_capacity": self.queue.capacity,
            "repro_serve_workers": self.pool.size,
            "repro_serve_workers_busy": self.pool.busy_count(),
            "repro_serve_uptime_seconds": round(time.monotonic() - self._started_mono, 3),
        }
        labelled = []
        for state, count in sorted(state_counts.items()):
            labelled.append(("repro_serve_jobs_state", {"state": state}, count))
        # Per-worker AoT cache counters: the compile-once-per-worker proof.
        for worker, summary in sorted(self.pool.worker_cache_summaries().items()):
            for counter, value in sorted(summary.items()):
                labelled.append((
                    f"repro_serve_worker_cache_{counter}", {"worker": worker}, value))
        for worker, count in sorted(self.pool.worker_jobs().items()):
            labelled.append(("repro_serve_worker_jobs", {"worker": worker}, count))
        return render_prometheus(counters, gauges, labelled)


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's :class:`JobService`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> JobService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ plumbing

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
        if not self.service.config.quiet:
            super().log_message(fmt, *args)

    def _api_key(self) -> Optional[str]:
        auth = self.headers.get("Authorization", "")
        if auth.startswith("Bearer "):
            return auth[len("Bearer "):].strip()
        return self.headers.get("X-API-Key")

    def _read_body(self) -> Any:
        length = self.headers.get("Content-Length")
        if length is None:
            raise WireError(411, "Content-Length required", code="length_required")
        try:
            n = int(length)
        except ValueError:
            raise WireError(400, "bad Content-Length", code="bad_header") from None
        if n > self.service.config.max_body_bytes:
            raise WireError(413, f"body exceeds {self.service.config.max_body_bytes} bytes",
                            code="too_large")
        raw = self.rfile.read(n)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(400, f"body is not valid JSON: {exc}", code="bad_json") from exc

    def _send(self, status: int, body: bytes, content_type: str,
              retry_after: Optional[float] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, int(retry_after + 0.999))))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Mapping[str, Any],
                   retry_after: Optional[float] = None) -> None:
        body = json.dumps(payload, default=repr).encode("utf-8")
        self._send(status, body, "application/json", retry_after)

    def _dispatch(self, method: str) -> None:
        self.service.metrics.increment("serve.http.requests")
        try:
            self._route(method)
        except WireError as exc:
            self.service.metrics.increment(f"serve.http.status.{exc.status}")
            self._send_json(exc.status, exc.to_payload(), retry_after=exc.retry_after)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass
        except Exception as exc:  # noqa: BLE001 - never kill the connection thread
            self.service.metrics.increment("serve.http.status.500")
            self._send_json(500, {"error": f"internal error: {type(exc).__name__}",
                                  "status": 500})

    # -------------------------------------------------------------------- routes

    def _route(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]
        service = self.service

        if path == "/healthz" and method == "GET":
            health = service.health()
            status = 503 if service.draining else 200
            self._send_json(status, health)
            return
        if path == "/metrics" and method == "GET":
            self._send(200, service.metrics_text().encode("utf-8"),
                       "text/plain; version=0.0.4")
            return
        if parts[:2] == ["v1", "jobs"]:
            key = self._api_key()
            if len(parts) == 2:
                if method == "POST":
                    self._send_json(202, service.submit(key, self._read_body()))
                    return
                if method == "GET":
                    self._send_json(200, service.list_jobs(key))
                    return
                raise WireError(405, "method not allowed", code="bad_method")
            if len(parts) == 3 and method == "GET":
                self._send_json(200, service.job_status(key, parts[2]))
                return
            if len(parts) == 3 and method == "DELETE":
                self._send_json(200, service.cancel_job(key, parts[2]))
                return
            if len(parts) == 4 and parts[3] == "result" and method == "GET":
                self._send_json(200, service.job_result(key, parts[2]))
                return
            raise WireError(405 if method != "GET" else 404,
                            "no such endpoint", code="not_found")
        if parts[:2] == ["v1", "artifacts"] and method == "GET":
            key = self._api_key()
            if len(parts) == 2:
                self._send_json(200, service.artifact_index(key))
                return
            if len(parts) == 3:
                blob = service.artifact_bytes(key, parts[2])
                self._send(200, blob, "application/octet-stream")
                return
        raise WireError(404, f"no such endpoint: {method} {path}", code="not_found")

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class ServeHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` owning a started :class:`JobService`."""

    daemon_threads = True
    service: JobService
    _serving = False

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def close(self, drain: bool = True) -> int:
        """Stop accepting connections and shut the service down.

        ``shutdown()`` blocks on an event only ``serve_forever`` sets, so it
        is skipped when the HTTP loop never ran (service used in-process).
        """
        if self._serving:
            self.shutdown()
        self.server_close()
        return self.service.shutdown(drain=drain)


def create_server(config: Optional[ServeConfig] = None, **overrides: Any) -> ServeHTTPServer:
    """Build and start the service; the HTTP loop is the caller's to run.

    ``port=0`` binds an ephemeral port (see ``server.server_address``) --
    the pattern the tests and the smoke script use.
    """
    if config is None:
        config = ServeConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a ServeConfig or keyword overrides, not both")
    service = JobService(config)
    server = ServeHTTPServer((config.host, config.port), _Handler)
    server.service = service
    service.start()
    return server


def run_server(config: Optional[ServeConfig] = None, **overrides: Any) -> int:
    """Run the daemon until SIGTERM/SIGINT, then drain gracefully.

    On the first signal the service stops admitting (503 + Retry-After),
    lets queued jobs finish (up to ``drain_timeout``), then exits 0.
    """
    server = create_server(config, **overrides)
    service = server.service
    host, port = server.server_address[:2]
    for tenant in service.tenants:
        if tenant.name == "dev" and service.config.tenants is None:
            print(f"generated dev API key: {tenant.key}")
    print(f"repro-serve listening on http://{host}:{port} "
          f"({service.pool.size} warm workers, queue depth {service.queue.capacity}, "
          f"cache {service.cache_dir})")

    stop = threading.Event()

    def _signal(signum: int, _frame: Any) -> None:
        if not stop.is_set():
            print(f"received signal {signum}: draining "
                  f"({service.queue.depth()} queued, "
                  f"{service.pool.busy_count()} running)")
            service.begin_drain()
            stop.set()
            # shutdown() must come from another thread than serve_forever's.
            threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _signal)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        cancelled = service.shutdown(drain=True)
        server.server_close()
        if cancelled:
            print(f"cancelled {cancelled} queued job(s) at shutdown")
        print("repro-serve stopped")
    return 0
