"""Tenant identity for the job service: API keys and their limits.

The service is multi-tenant: every ``/v1/*`` request presents an API key
(``Authorization: Bearer <key>`` or ``X-API-Key``), which maps to a
:class:`Tenant` carrying that tenant's throttle rate, burst size, and job
quota.  Key comparison is constant-time (:func:`hmac.compare_digest`) and
the store always scans *every* tenant, so response timing leaks neither key
contents nor which tenants exist.
"""

from __future__ import annotations

import hmac
import json
import secrets
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.serve.wire import WireError


class AuthError(WireError):
    """Missing or unrecognised API key (HTTP 401)."""

    def __init__(self, message: str = "missing or invalid API key"):
        super().__init__(401, message, code="unauthorized")


@dataclass(frozen=True)
class Tenant:
    """One tenant: an API key plus the limits the service enforces for it.

    ``rate`` is the sustained submission rate (requests refilled per
    second) and ``burst`` the token-bucket depth; ``max_jobs`` is a hard
    cumulative quota on admitted jobs (``None`` = unmetered).  A campaign
    counts as its expanded job count, not 1.
    """

    name: str
    key: str
    rate: float = 10.0
    burst: int = 20
    max_jobs: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.key or len(self.key) < 8:
            raise ValueError(f"tenant {self.name!r}: API key must be at least 8 characters")
        if self.rate <= 0 or self.burst < 1:
            raise ValueError(f"tenant {self.name!r}: rate must be > 0 and burst >= 1")


class TenantStore:
    """Immutable collection of tenants keyed by API key."""

    def __init__(self, tenants: Iterable[Tenant]):
        self._tenants: List[Tenant] = list(tenants)
        names = [t.name for t in self._tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {sorted(names)}")
        if len({t.key for t in self._tenants}) != len(self._tenants):
            raise ValueError("two tenants share one API key")

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        return iter(self._tenants)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "TenantStore":
        """Build a store from the ``tenants.json`` schema::

            {"tenants": [{"name": "alice", "key": "...", "rate": 5,
                          "burst": 10, "max_jobs": 100}, ...]}
        """
        entries = mapping.get("tenants")
        if not isinstance(entries, list) or not entries:
            raise ValueError("tenants file must contain a non-empty 'tenants' list")
        tenants = []
        for entry in entries:
            if not isinstance(entry, Mapping):
                raise ValueError(f"tenant entry must be an object, got {entry!r}")
            unknown = set(entry) - {"name", "key", "rate", "burst", "max_jobs"}
            if unknown:
                raise ValueError(f"unknown tenant keys {sorted(unknown)}")
            tenants.append(Tenant(
                name=str(entry["name"]),
                key=str(entry["key"]),
                rate=float(entry.get("rate", 10.0)),
                burst=int(entry.get("burst", 20)),
                max_jobs=(None if entry.get("max_jobs") is None
                          else int(entry["max_jobs"])),
            ))
        return cls(tenants)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "TenantStore":
        return cls.from_mapping(json.loads(Path(path).read_text(encoding="utf-8")))

    @classmethod
    def dev_store(cls, key: Optional[str] = None) -> "TenantStore":
        """A single unmetered ``dev`` tenant (random key unless given)."""
        return cls([Tenant(name="dev", key=key or secrets.token_hex(16),
                           rate=1000.0, burst=1000)])

    def authenticate(self, presented: Optional[str]) -> Tenant:
        """The tenant owning ``presented``, or :class:`AuthError` (401).

        Compares against every stored key with ``hmac.compare_digest`` --
        no early exit, so timing does not reveal whether a prefix matched.
        """
        if not presented:
            raise AuthError("missing API key (use 'Authorization: Bearer <key>')")
        matched: Optional[Tenant] = None
        for tenant in self._tenants:
            if hmac.compare_digest(tenant.key.encode(), presented.encode()):
                matched = tenant
        if matched is None:
            raise AuthError()
        return matched

    def to_mapping(self) -> Dict[str, Any]:
        """The ``tenants.json`` form (for generated dev configurations)."""
        return {"tenants": [
            {"name": t.name, "key": t.key, "rate": t.rate, "burst": t.burst,
             "max_jobs": t.max_jobs}
            for t in self._tenants
        ]}
