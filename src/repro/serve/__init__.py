"""``repro.serve`` -- a multi-tenant job service over warm Sessions.

The serving tier of the reproduction: a stdlib-only HTTP daemon
(``repro-harness serve``) that keeps a pool of warm per-worker
:class:`~repro.api.Session` objects (compile-once-per-worker, shared
on-disk AoT cache) and exposes run/campaign/compile submissions, job
status and results, compiled-artifact downloads, and operational
``/healthz`` + ``/metrics`` endpoints.  See ``docs/SERVING.md``.
"""

from repro.serve.auth import AuthError, Tenant, TenantStore
from repro.serve.jobs import BoundedJobQueue, JobRecord, JobStore
from repro.serve.pool import WorkerPool
from repro.serve.quota import AdmissionController, QuotaLedger, ThrottledError, TokenBucket
from repro.serve.server import (
    JobService,
    ServeConfig,
    ServeHTTPServer,
    create_server,
    run_server,
)
from repro.serve.wire import WireError, validate_submission

__all__ = [
    "AdmissionController",
    "AuthError",
    "BoundedJobQueue",
    "JobRecord",
    "JobService",
    "JobStore",
    "QuotaLedger",
    "ServeConfig",
    "ServeHTTPServer",
    "Tenant",
    "TenantStore",
    "ThrottledError",
    "TokenBucket",
    "WireError",
    "WorkerPool",
    "create_server",
    "run_server",
    "validate_submission",
]
