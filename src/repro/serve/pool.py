"""The warm worker pool: one thread + one warm :class:`Session` per worker.

This is the serving-side incarnation of the campaign runner's
pool-initializer pattern: each worker owns a long-lived
:class:`repro.api.Session` whose in-memory artifact tier persists across
jobs (compile-once-per-worker), all fronting one shared on-disk
:class:`~repro.wasm.compilers.cache.FileSystemCache` so workers also reuse
each other's artifacts -- and so ``/v1/artifacts`` can serve the compiled
``.mpiwasm`` blobs.

Worker threads call ``session.run(...)`` / ``session.compile(...)``
directly and never :func:`repro.api.use_session`: the ambient-session stack
is a process-global list, not thread-local state, so binding it from
concurrent threads would interleave pushes and pops across workers.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional

from repro.api.session import Session
from repro.serve.jobs import BoundedJobQueue, JobRecord, JobStore
from repro.wasm.compilers.cache import module_hash
from repro.wasm.errors import WasmError

#: Bytes of rank-0 stdout kept on a run result.
STDOUT_TAIL = 4096


def _artifact_ref(session: Session, benchmark, backend: Optional[str]) -> Dict[str, str]:
    """The on-disk cache key of a run's compiled module (for ``/v1/artifacts``)."""
    app = session._compiled_application(benchmark)
    resolved = backend or session.config.backend
    return {"key": module_hash(app.wasm_bytes, resolved), "backend": resolved}


class WorkerPool:
    """``n`` daemon worker threads draining one bounded queue.

    ``session_factory(worker_name)`` builds each worker's warm session; the
    pool closes them on :meth:`stop`.  Drain semantics: ``stop(drain=True)``
    lets workers finish everything already queued (up to ``timeout``), then
    cancels whatever remains; ``drain=False`` cancels the queue immediately
    and only waits for in-flight jobs.
    """

    #: Poll interval for queue gets and drain waits.
    POLL = 0.05

    def __init__(
        self,
        n_workers: int,
        session_factory: Callable[[str], Session],
        store: JobStore,
        job_queue: BoundedJobQueue,
        cache_dir: Optional[str] = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.store = store
        self.queue = job_queue
        self.cache_dir = cache_dir
        self._factory = session_factory
        self._names = [f"worker-{i}" for i in range(n_workers)]
        self._sessions: Dict[str, Session] = {}
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._drain = threading.Event()
        self._busy: Dict[str, Optional[str]] = {}   # worker -> in-flight job_id
        self._lock = threading.Lock()
        self.jobs_done = 0
        self.jobs_failed = 0
        self._started = False

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self._started:
            raise RuntimeError("pool already started")
        self._started = True
        # Serve workers execute artifacts from the shared on-disk cache --
        # possibly written by another process -- so cache loads are statically
        # verified (repro.analysis.ir_verify) for the pool's lifetime.  The
        # prior flag value is restored in stop() so in-process embedders (and
        # tests) are not left with the serve policy.
        from repro.wasm import lowering as _lowering

        self._verify_on_load_prior = _lowering.VERIFY_ON_LOAD
        _lowering.VERIFY_ON_LOAD = True
        for name in self._names:
            self._sessions[name] = self._factory(name)
            self._busy[name] = None
            thread = threading.Thread(
                target=self._worker_loop, args=(name,), name=name, daemon=True)
            self._threads.append(thread)
            thread.start()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> int:
        """Stop the pool; returns the number of jobs cancelled unrun."""
        deadline = time.monotonic() + timeout
        cancelled = 0
        if drain:
            self._drain.set()
            while time.monotonic() < deadline:
                if self.queue.empty() and not self.busy_count():
                    break
                time.sleep(self.POLL)
        self._stop.set()
        for record in self.queue.drain_now():
            self.store.mark_cancelled(record, "service shut down before this job ran")
            cancelled += 1
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()) + 1.0)
        for session in self._sessions.values():
            session.close()
        if self._started:
            from repro.wasm import lowering as _lowering

            _lowering.VERIFY_ON_LOAD = self._verify_on_load_prior
        return cancelled

    def busy_count(self) -> int:
        with self._lock:
            return sum(1 for job in self._busy.values() if job is not None)

    @property
    def size(self) -> int:
        return len(self._names)

    # ----------------------------------------------------------------- metrics

    def worker_cache_summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-worker AoT-cache counters: the compile-once-per-worker proof
        (first job per worker misses, every subsequent same-module job hits)."""
        return {name: dict(session.cache_summary())
                for name, session in self._sessions.items()}

    def worker_jobs(self) -> Dict[str, int]:
        return {name: session.jobs_run for name, session in self._sessions.items()}

    # ------------------------------------------------------------------ worker

    def _worker_loop(self, name: str) -> None:
        session = self._sessions[name]
        while not self._stop.is_set():
            record = self.queue.get(timeout=self.POLL)
            if record is None:
                if self._drain.is_set():
                    break
                continue
            with self._lock:
                self._busy[name] = record.job_id
            try:
                self._execute(name, session, record)
            finally:
                with self._lock:
                    self._busy[name] = None

    def _execute(self, name: str, session: Session, record: JobRecord) -> None:
        if not self.store.mark_running(record, name):
            # Cancelled between enqueue and dequeue: skip without running.
            return
        try:
            result = self._dispatch(session, record)
        except WasmError as exc:
            # Hostile/invalid module input that slipped past submission-time
            # validation: the client's fault, surfaced as a 400-class error.
            self._fail(record, exc, http_status=400)
        except Exception as exc:  # noqa: BLE001 - a worker thread must survive any job
            self._fail(record, exc, http_status=500)
        else:
            self.store.mark_done(record, result)
            with self._lock:
                self.jobs_done += 1

    def _fail(self, record: JobRecord, exc: BaseException, http_status: int) -> None:
        self.store.mark_error(record, {
            "type": type(exc).__name__,
            "message": str(exc),
            "http_status": http_status,
            "traceback": traceback.format_exc(limit=10),
        })
        with self._lock:
            self.jobs_failed += 1

    # ---------------------------------------------------------------- dispatch

    def _dispatch(self, session: Session, record: JobRecord) -> Dict[str, Any]:
        payload = record.payload
        if record.kind == "run":
            return self._run_job(session, payload)
        if record.kind == "campaign":
            return self._campaign_job(session, payload)
        if record.kind == "compile":
            return self._compile_job(session, payload)
        raise ValueError(f"unknown job kind {record.kind!r}")

    def _run_job(self, session: Session, payload: Dict[str, Any]) -> Dict[str, Any]:
        job = session.run(
            payload["benchmark"],
            payload["nranks"],
            mode=payload.get("mode", "wasm"),
            backend=payload.get("backend"),
            machine=payload.get("machine"),
            algorithms=payload.get("algorithms"),
            guest_args=tuple(payload.get("guest_args") or ()),
        )
        result: Dict[str, Any] = {
            "benchmark": payload["benchmark"],
            "mode": job.mode,
            "machine": job.machine,
            "nranks": job.nranks,
            "makespan": job.makespan,
            "exit_codes": job.exit_codes(),
            "stdout_tail": job.stdout[-STDOUT_TAIL:],
        }
        if job.mode == "wasm":
            result["artifact"] = _artifact_ref(
                session, payload["benchmark"], payload.get("backend"))
        return result

    def _campaign_job(self, session: Session, payload: Dict[str, Any]) -> Dict[str, Any]:
        spec = payload["spec"]
        campaign = session.campaign(spec, workers=1, cache_dir=self.cache_dir)
        summary = campaign.to_dict()
        # Attach the on-disk artifact keys of every wasm job so clients can
        # fetch the compiled modules from /v1/artifacts/<key>.
        artifacts: Dict[str, Dict[str, str]] = {}
        for outcome in campaign.outcomes:
            job_spec = outcome.spec
            if (job_spec.kind != "benchmark" or job_spec.mode != "wasm"
                    or outcome.status != "ok"):
                continue
            ref = _artifact_ref(session, job_spec.name, job_spec.backend)
            artifacts[ref["key"]] = ref
        summary["artifacts"] = sorted(artifacts)
        return summary

    def _compile_job(self, session: Session, payload: Dict[str, Any]) -> Dict[str, Any]:
        wasm_bytes = payload["wasm_bytes"]
        compiled = session.compile(wasm_bytes, backend=payload.get("backend"))
        return {
            "key": module_hash(wasm_bytes, compiled.backend_name),
            "backend": compiled.backend_name,
            "function_count": compiled.function_count,
            "compile_seconds": compiled.compile_seconds,
        }
