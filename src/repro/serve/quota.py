"""Admission control: per-tenant token buckets and job quotas.

Two independent mechanisms gate every submission:

* a **token bucket** per tenant smooths the request *rate* (``tenant.rate``
  tokens/second refill, ``tenant.burst`` depth).  An empty bucket means
  HTTP 429 with ``Retry-After`` computed from the exact refill deficit,
* a **quota ledger** caps the *cumulative* number of jobs a tenant may
  admit (``tenant.max_jobs``).  Campaigns charge their expanded job count.
  Exhausted quota is also 429, with a long advisory ``Retry-After``.

All clocks here are monotonic -- admission decisions must not wobble when
the wall clock steps (see the same policy in
:meth:`repro.wasm.compilers.cache.FileSystemCache.load_or_compute`).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.serve.auth import Tenant
from repro.serve.wire import WireError

#: Advisory Retry-After for a hard quota refusal (nothing refills it).
QUOTA_RETRY_AFTER = 3600.0


class ThrottledError(WireError):
    """Rate or quota limit hit (HTTP 429 + Retry-After)."""

    def __init__(self, message: str, retry_after: float, code: str):
        super().__init__(429, message, retry_after=retry_after, code=code)


class TokenBucket:
    """Thread-safe monotonic token bucket.

    ``acquire(n)`` returns ``0.0`` when ``n`` tokens were taken, else the
    seconds until the deficit refills (and takes nothing).
    """

    def __init__(self, rate: float, burst: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def acquire(self, tokens: float = 1.0) -> float:
        with self._lock:
            now = time.monotonic()
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    def available(self) -> float:
        with self._lock:
            self._refill(time.monotonic())
            return self._tokens


class QuotaLedger:
    """Cumulative per-tenant job accounting against ``max_jobs``."""

    def __init__(self) -> None:
        self._admitted: Dict[str, int] = {}
        self._lock = threading.Lock()

    def charge(self, tenant: Tenant, cost: int) -> Optional[int]:
        """Admit ``cost`` jobs; returns the new total, or ``None`` when the
        charge would exceed the tenant's quota (nothing is charged)."""
        with self._lock:
            used = self._admitted.get(tenant.name, 0)
            if tenant.max_jobs is not None and used + cost > tenant.max_jobs:
                return None
            self._admitted[tenant.name] = used + cost
            return used + cost

    def refund(self, tenant: Tenant, cost: int) -> None:
        """Undo a charge whose submission was shed before it was queued."""
        with self._lock:
            self._admitted[tenant.name] = max(0, self._admitted.get(tenant.name, 0) - cost)

    def used(self, tenant_name: str) -> int:
        with self._lock:
            return self._admitted.get(tenant_name, 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._admitted)


class AdmissionController:
    """The gate every submission passes: bucket first, then quota.

    Keeps its own refusal counters (throttled / quota-refused, total and
    per-tenant) for ``/metrics``.
    """

    def __init__(self) -> None:
        self._buckets: Dict[str, TokenBucket] = {}
        self.ledger = QuotaLedger()
        self._lock = threading.Lock()
        self.throttled_total = 0
        self.quota_refused_total = 0
        self._refused_by_tenant: Dict[str, int] = {}

    def _bucket(self, tenant: Tenant) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant.name)
            if bucket is None:
                bucket = self._buckets[tenant.name] = TokenBucket(tenant.rate, tenant.burst)
            return bucket

    def _count_refusal(self, tenant: Tenant, kind: str) -> None:
        with self._lock:
            if kind == "throttle":
                self.throttled_total += 1
            else:
                self.quota_refused_total += 1
            name = tenant.name
            self._refused_by_tenant[name] = self._refused_by_tenant.get(name, 0) + 1

    def admit(self, tenant: Tenant, cost: int) -> None:
        """Raise :class:`ThrottledError` (429) unless ``cost`` jobs may pass.

        One submission costs one bucket token regardless of ``cost`` (the
        bucket limits request *rate*); the ledger charges the full ``cost``.
        """
        retry_after = self._bucket(tenant).acquire(1.0)
        if retry_after > 0:
            self._count_refusal(tenant, "throttle")
            raise ThrottledError(
                f"tenant {tenant.name!r} is over its submission rate "
                f"({tenant.rate:g}/s, burst {tenant.burst:g})",
                retry_after=max(retry_after, 0.001),
                code="rate_limited",
            )
        if self.ledger.charge(tenant, cost) is None:
            self._count_refusal(tenant, "quota")
            raise ThrottledError(
                f"tenant {tenant.name!r} has exhausted its job quota "
                f"({self.ledger.used(tenant.name)}/{tenant.max_jobs} jobs used; "
                f"this submission needs {cost})",
                retry_after=QUOTA_RETRY_AFTER,
                code="quota_exhausted",
            )

    def refund(self, tenant: Tenant, cost: int) -> None:
        """Roll back the ledger charge of a submission shed at the queue."""
        self.ledger.refund(tenant, cost)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "throttled_total": self.throttled_total,
                "quota_refused_total": self.quota_refused_total,
            }
