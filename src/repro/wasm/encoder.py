"""Binary encoder: :class:`repro.wasm.module.Module` -> ``.wasm`` bytes.

Implements the WebAssembly binary format (magic + version header, LEB128
integer encodings, and the numbered sections) for the instruction subset in
:mod:`repro.wasm.opcodes`.  The encoded bytes are what Table 2 of the paper
measures ("Wasm Size"), and the decoder round-trips them back into modules
(property-tested in ``tests/test_wasm_roundtrip.py``).
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Optional

from repro.wasm.instructions import BlockType, Instruction, MemArg
from repro.wasm.module import (
    CustomSection,
    DataSegment,
    ElementSegment,
    Export,
    ExternKind,
    Function,
    Global,
    Import,
    Module,
)
from repro.wasm.opcodes import Imm
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType

# Pre-compiled float-immediate codecs (same spirit as wasm.values: parse the
# format string once, not per encoded constant).
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

# Section ids.
SEC_CUSTOM = 0
SEC_TYPE = 1
SEC_IMPORT = 2
SEC_FUNCTION = 3
SEC_TABLE = 4
SEC_MEMORY = 5
SEC_GLOBAL = 6
SEC_EXPORT = 7
SEC_START = 8
SEC_ELEMENT = 9
SEC_CODE = 10
SEC_DATA = 11


class EncodeError(ValueError):
    """Raised when a module cannot be encoded."""


# ------------------------------------------------------------------ primitives


def encode_u32(value: int) -> bytes:
    """Unsigned LEB128 encoding of a 32-bit (or smaller) integer."""
    if value < 0:
        raise EncodeError(f"u32 value must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_s32(value: int) -> bytes:
    """Signed LEB128 encoding (32-bit range)."""
    return _encode_sleb(value, 32)


def encode_s64(value: int) -> bytes:
    """Signed LEB128 encoding (64-bit range)."""
    return _encode_sleb(value, 64)


def _encode_sleb(value: int, bits: int) -> bytes:
    # Interpret out-of-range unsigned values as their two's-complement form.
    lo = -(1 << (bits - 1))
    hi = (1 << bits) - 1
    if not lo <= value <= hi:
        raise EncodeError(f"value {value} out of range for s{bits}")
    if value >= (1 << (bits - 1)):
        value -= 1 << bits
    out = bytearray()
    more = True
    while more:
        byte = value & 0x7F
        value >>= 7
        if (value == 0 and not byte & 0x40) or (value == -1 and byte & 0x40):
            more = False
        else:
            byte |= 0x80
        out.append(byte)
    return bytes(out)


def encode_f32(value: float) -> bytes:
    """IEEE-754 single precision, little endian."""
    return _F32.pack(value)


def encode_f64(value: float) -> bytes:
    """IEEE-754 double precision, little endian."""
    return _F64.pack(value)


def encode_name(name: str) -> bytes:
    """Length-prefixed UTF-8 name."""
    raw = name.encode("utf-8")
    return encode_u32(len(raw)) + raw


def encode_vec(items: Iterable[bytes]) -> bytes:
    """Length-prefixed concatenation of already-encoded items."""
    items = list(items)
    return encode_u32(len(items)) + b"".join(items)


# ----------------------------------------------------------------- type pieces


def encode_valtype(vt: ValType) -> bytes:
    """Single-byte value type."""
    return bytes([vt.value])


def encode_functype(ft: FuncType) -> bytes:
    """``0x60`` + param vector + result vector."""
    return (
        b"\x60"
        + encode_vec(encode_valtype(p) for p in ft.params)
        + encode_vec(encode_valtype(r) for r in ft.results)
    )


def encode_limits(limits: Limits) -> bytes:
    """Limits with/without maximum flag."""
    if limits.maximum is None:
        return b"\x00" + encode_u32(limits.minimum)
    return b"\x01" + encode_u32(limits.minimum) + encode_u32(limits.maximum)


def encode_globaltype(gt: GlobalType) -> bytes:
    """Value type + mutability flag."""
    return encode_valtype(gt.value_type) + (b"\x01" if gt.mutable else b"\x00")


# ---------------------------------------------------------------- instructions


def encode_instruction(instr: Instruction) -> bytes:
    """Encode one instruction (opcode byte(s) + immediates)."""
    info = instr.info
    out = bytearray()
    if info.is_simd:
        out.append(0xFD)
        out += encode_u32(info.opcode & 0xFF)
    elif (info.opcode >> 8) == 0xFC:
        out.append(0xFC)
        out += encode_u32(info.opcode & 0xFF)
    else:
        out.append(info.opcode)

    imm = info.imm
    ops = instr.operands
    if imm == Imm.NONE:
        pass
    elif imm == Imm.BLOCKTYPE:
        bt: BlockType = ops[0]
        out.append(0x40 if bt.result is None else bt.result.value)
    elif imm in (Imm.LABEL, Imm.FUNC, Imm.LOCAL, Imm.GLOBAL, Imm.MEMORY, Imm.LANE):
        out += encode_u32(int(ops[0]))
    elif imm == Imm.MEMORY_PAIR:
        out += encode_u32(int(ops[0])) + encode_u32(int(ops[1]))
    elif imm == Imm.LABEL_TABLE:
        targets, default = ops
        out += encode_vec(encode_u32(t) for t in targets)
        out += encode_u32(default)
    elif imm == Imm.CALL_INDIRECT:
        out += encode_u32(ops[0]) + encode_u32(ops[1])
    elif imm == Imm.MEMARG:
        memarg: MemArg = ops[0]
        out += encode_u32(memarg.align) + encode_u32(memarg.offset)
    elif imm == Imm.I32_CONST:
        out += encode_s32(int(ops[0]))
    elif imm == Imm.I64_CONST:
        out += encode_s64(int(ops[0]))
    elif imm == Imm.F32_CONST:
        out += encode_f32(float(ops[0]))
    elif imm == Imm.F64_CONST:
        out += encode_f64(float(ops[0]))
    elif imm == Imm.V128_CONST:
        out += bytes(ops[0])
    else:  # pragma: no cover - table integrity guard
        raise EncodeError(f"unhandled immediate kind {imm}")
    return bytes(out)


def encode_expression(body: Iterable[Instruction]) -> bytes:
    """Encode an instruction sequence followed by the terminating ``end``."""
    return b"".join(encode_instruction(i) for i in body) + b"\x0b"


# -------------------------------------------------------------------- sections


def _section(section_id: int, payload: bytes) -> bytes:
    return bytes([section_id]) + encode_u32(len(payload)) + payload


def _encode_import(imp: Import) -> bytes:
    head = encode_name(imp.module) + encode_name(imp.name) + bytes([imp.kind.value])
    if imp.kind == ExternKind.FUNC:
        return head + encode_u32(imp.desc)
    if imp.kind == ExternKind.MEMORY:
        return head + encode_limits(imp.desc.limits)
    if imp.kind == ExternKind.GLOBAL:
        return head + encode_globaltype(imp.desc)
    if imp.kind == ExternKind.TABLE:
        return head + encode_valtype(imp.desc.element) + encode_limits(imp.desc.limits)
    raise EncodeError(f"unhandled import kind {imp.kind}")


def _encode_export(exp: Export) -> bytes:
    return encode_name(exp.name) + bytes([exp.kind.value]) + encode_u32(exp.index)


def _encode_code(func: Function) -> bytes:
    # Locals are run-length grouped by type, per the spec.
    groups: List[bytes] = []
    i = 0
    locals_list = func.locals
    while i < len(locals_list):
        j = i
        while j < len(locals_list) and locals_list[j] == locals_list[i]:
            j += 1
        groups.append(encode_u32(j - i) + encode_valtype(locals_list[i]))
        i = j
    body = encode_vec(groups) + encode_expression(func.body)
    return encode_u32(len(body)) + body


def _encode_global(glob: Global) -> bytes:
    return encode_globaltype(glob.type) + encode_expression(glob.init)


def _encode_data(seg: DataSegment) -> bytes:
    return (
        encode_u32(seg.memory_index)
        + encode_expression(seg.offset)
        + encode_u32(len(seg.data))
        + seg.data
    )


def _encode_element(seg: ElementSegment) -> bytes:
    return (
        encode_u32(seg.table_index)
        + encode_expression(seg.offset)
        + encode_vec(encode_u32(f) for f in seg.func_indices)
    )


def encode_module(module: Module) -> bytes:
    """Encode a complete module into ``.wasm`` binary bytes."""
    out = bytearray(MAGIC + VERSION)

    if module.types:
        out += _section(SEC_TYPE, encode_vec(encode_functype(t) for t in module.types))
    if module.imports:
        out += _section(SEC_IMPORT, encode_vec(_encode_import(i) for i in module.imports))
    if module.functions:
        out += _section(
            SEC_FUNCTION, encode_vec(encode_u32(f.type_index) for f in module.functions)
        )
    if module.tables:
        out += _section(
            SEC_TABLE,
            encode_vec(encode_valtype(t.element) + encode_limits(t.limits) for t in module.tables),
        )
    if module.memories:
        out += _section(SEC_MEMORY, encode_vec(encode_limits(m.limits) for m in module.memories))
    if module.globals:
        out += _section(SEC_GLOBAL, encode_vec(_encode_global(g) for g in module.globals))
    if module.exports:
        out += _section(SEC_EXPORT, encode_vec(_encode_export(e) for e in module.exports))
    if module.start is not None:
        out += _section(SEC_START, encode_u32(module.start))
    if module.elements:
        out += _section(SEC_ELEMENT, encode_vec(_encode_element(e) for e in module.elements))
    if module.functions:
        out += _section(SEC_CODE, encode_vec(_encode_code(f) for f in module.functions))
    if module.data:
        out += _section(SEC_DATA, encode_vec(_encode_data(d) for d in module.data))
    for custom in module.customs:
        out += _section(SEC_CUSTOM, encode_name(custom.name) + custom.data)
    return bytes(out)


def module_size(module: Module) -> int:
    """Size in bytes of the encoded module (the "Wasm Size" of Table 2)."""
    return len(encode_module(module))
