"""WebAssembly text format (WAT) printer.

Produces a human-readable rendering of a module in the style of Listing 1 of
the paper -- useful for debugging guest modules and exercised by the examples.
This is a printer only; modules are built programmatically (builder) or loaded
from binaries (decoder), so a WAT parser is not needed.
"""

from __future__ import annotations

from typing import List

from repro.wasm.instructions import BlockType, Instruction, MemArg
from repro.wasm.module import ExternKind, Module
from repro.wasm.opcodes import Imm
from repro.wasm.types import FuncType


def _format_operand(instr: Instruction) -> str:
    imm = instr.info.imm
    if imm == Imm.NONE or not instr.operands:
        return ""
    if imm == Imm.BLOCKTYPE:
        bt: BlockType = instr.operands[0]
        return f" {bt.wat()}" if bt.result is not None else ""
    if imm == Imm.MEMARG:
        memarg: MemArg = instr.operands[0]
        parts = []
        if memarg.offset:
            parts.append(f"offset={memarg.offset}")
        if memarg.align:
            parts.append(f"align={1 << memarg.align}")
        return (" " + " ".join(parts)) if parts else ""
    if imm == Imm.LABEL_TABLE:
        targets, default = instr.operands
        return " " + " ".join(str(t) for t in targets) + f" {default}"
    if imm == Imm.CALL_INDIRECT:
        return f" (type {instr.operands[0]})"
    if imm == Imm.V128_CONST:
        return " i8x16 " + " ".join(str(b) for b in instr.operands[0])
    if imm in (Imm.F32_CONST, Imm.F64_CONST):
        return f" {float(instr.operands[0])!r}"
    return " " + " ".join(str(o) for o in instr.operands)


def _print_body(body: List[Instruction], indent: int) -> List[str]:
    lines: List[str] = []
    level = indent
    for instr in body:
        name = instr.name
        if name in ("end", "else"):
            level = max(indent, level - 1)
        lines.append("  " * level + name + _format_operand(instr))
        if name in ("block", "loop", "if", "else"):
            level += 1
    return lines


def _functype_wat(ft: FuncType) -> str:
    return (" " + ft.wat()) if (ft.params or ft.results) else ""


def module_to_wat(module: Module) -> str:
    """Render ``module`` in the WebAssembly text format."""
    lines: List[str] = ["(module" + (f" ;; {module.name}" if module.name else "")]

    for i, ft in enumerate(module.types):
        lines.append(f"  (type (;{i};) (func{_functype_wat(ft)}))")

    for imp in module.imports:
        if imp.kind == ExternKind.FUNC:
            ft = module.types[imp.desc]
            lines.append(
                f'  (import "{imp.module}" "{imp.name}" (func ${imp.name}{_functype_wat(ft)}))'
            )
        elif imp.kind == ExternKind.MEMORY:
            lines.append(
                f'  (import "{imp.module}" "{imp.name}" (memory {imp.desc.limits.minimum}))'
            )
        else:
            lines.append(f'  (import "{imp.module}" "{imp.name}" ({imp.kind.name.lower()}))')

    for i, mem in enumerate(module.memories):
        maximum = f" {mem.limits.maximum}" if mem.limits.maximum is not None else ""
        lines.append(f"  (memory (;{i};) {mem.limits.minimum}{maximum})")

    for i, glob in enumerate(module.globals):
        mut = "mut " if glob.type.mutable else ""
        init = glob.init[0] if glob.init else None
        init_text = f"{init.name} {init.operands[0]}" if init is not None else "i32.const 0"
        lines.append(
            f"  (global (;{i};) ({mut}{glob.type.value_type.short_name}) ({init_text}))"
        )

    n_imported = module.num_imported_functions()
    for i, func in enumerate(module.functions):
        ft = module.types[func.type_index]
        name = f" ${func.name}" if func.name else f" (;{n_imported + i};)"
        lines.append(f"  (func{name}{_functype_wat(ft)}")
        if func.locals:
            lines.append("    (local " + " ".join(l.short_name for l in func.locals) + ")")
        lines.extend(_print_body(func.body, 2))
        lines.append("  )")

    for seg in module.data:
        offset = seg.offset[0].operands[0] if seg.offset else 0
        preview = seg.data[:16].hex()
        suffix = "..." if len(seg.data) > 16 else ""
        lines.append(f'  (data (i32.const {offset}) "{preview}{suffix}" (;{len(seg.data)} bytes;))')

    for export in module.exports:
        kind = export.kind.name.lower()
        lines.append(f'  (export "{export.name}" ({kind} {export.index}))')

    if module.start is not None:
        lines.append(f"  (start {module.start})")

    lines.append(")")
    return "\n".join(lines)
