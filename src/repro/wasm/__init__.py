"""WebAssembly substrate: module format, toolchain-facing builder, runtime.

This package is the stand-in for Wasmer + the Wasm specification in the
paper's stack.  It provides:

* the module model (:mod:`repro.wasm.module`) and type system
  (:mod:`repro.wasm.types`),
* a builder API used by the guest toolchain (:mod:`repro.wasm.builder`),
* the binary encoder/decoder (:mod:`repro.wasm.encoder`,
  :mod:`repro.wasm.decoder`) and a WAT printer (:mod:`repro.wasm.wat`),
* a validator (:mod:`repro.wasm.validation`),
* bounds-checked linear memory (:mod:`repro.wasm.memory`), instance/runtime
  objects (:mod:`repro.wasm.runtime`),
* an interpreter and three compiler back-ends
  (:mod:`repro.wasm.compilers`) mirroring Wasmer's Singlepass / Cranelift /
  LLVM choices.
"""

from repro.wasm.builder import FunctionBuilder, ModuleBuilder
from repro.wasm.decoder import DecodeError, decode_module
from repro.wasm.encoder import EncodeError, encode_module, module_size
from repro.wasm.errors import (
    ExitTrap,
    LinkError,
    MemoryOutOfBoundsTrap,
    Trap,
    UnreachableTrap,
    ValidationError,
    WasmError,
)
from repro.wasm.instructions import BlockType, Instruction, MemArg, make
from repro.wasm.memory import PAGE_SIZE, LinearMemory
from repro.wasm.module import (
    DataSegment,
    Export,
    ExternKind,
    Function,
    Global,
    Import,
    Module,
)
from repro.wasm.runtime import HostFunction, ImportObject, Instance
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType
from repro.wasm.validation import validate_module
from repro.wasm.wat import module_to_wat

__all__ = [
    "ModuleBuilder",
    "FunctionBuilder",
    "Module",
    "Function",
    "Import",
    "Export",
    "Global",
    "DataSegment",
    "ExternKind",
    "FuncType",
    "GlobalType",
    "MemoryType",
    "TableType",
    "Limits",
    "ValType",
    "Instruction",
    "BlockType",
    "MemArg",
    "make",
    "encode_module",
    "decode_module",
    "module_size",
    "module_to_wat",
    "validate_module",
    "EncodeError",
    "DecodeError",
    "ValidationError",
    "WasmError",
    "Trap",
    "UnreachableTrap",
    "MemoryOutOfBoundsTrap",
    "ExitTrap",
    "LinkError",
    "LinearMemory",
    "PAGE_SIZE",
    "Instance",
    "ImportObject",
    "HostFunction",
]
