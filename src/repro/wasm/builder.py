"""Module and function builders -- the backend of the "wasicc" toolchain.

The paper's toolchain combines clang + a custom ``mpi.h`` to compile C/C++ MPI
applications into Wasm modules.  Here the guest benchmarks are written against
this builder API instead: :class:`ModuleBuilder` assembles a complete module
(types, imports, functions, memory, data, exports) and
:class:`FunctionBuilder` assembles function bodies with convenience emitters
and structured-control-flow context managers.

Function and global references are symbolic (by name) while building and are
resolved to indices when :meth:`ModuleBuilder.build` runs, so imports and
definitions can be declared in any order.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.wasm import instructions as ins
from repro.wasm import opcodes
from repro.wasm.instructions import BlockType, Instruction, MemArg, make
from repro.wasm.module import (
    DataSegment,
    Export,
    ExternKind,
    Function,
    Global,
    Import,
    Module,
)
from repro.wasm.opcodes import Imm
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, ValType, valtype


class BuildError(ValueError):
    """Raised when a module under construction is inconsistent."""


@dataclass
class _FuncRef:
    """Placeholder for a symbolic function reference, resolved at build time."""

    name: str


@dataclass
class _GlobalRef:
    """Placeholder for a symbolic global reference, resolved at build time."""

    name: str


class FunctionBuilder:
    """Builds the body of a single function.

    Parameters and named locals are addressed by name; anonymous locals can be
    created with :meth:`add_local`.  Instructions are emitted with
    :meth:`emit` or the typed convenience helpers, and structured control flow
    is expressed with the :meth:`block`, :meth:`loop` and :meth:`if_` context
    managers (which emit the matching ``end`` automatically).
    """

    def __init__(
        self,
        module: "ModuleBuilder",
        name: str,
        params: Sequence = (),
        results: Sequence = (),
        export: bool = False,
    ):
        self.module = module
        self.name = name
        self.params: List[Tuple[str, ValType]] = []
        for i, p in enumerate(params):
            if isinstance(p, tuple):
                pname, ptype = p
            else:
                pname, ptype = f"arg{i}", p
            self.params.append((pname, valtype(ptype)))
        self.results: List[ValType] = [valtype(r) for r in results]
        self.export = export
        self.locals: List[Tuple[str, ValType]] = []
        self.body: List[Instruction] = []
        self._local_index: Dict[str, int] = {
            pname: i for i, (pname, _t) in enumerate(self.params)
        }
        self._depth = 0

    # ----------------------------------------------------------------- locals

    def add_local(self, name: str, type_spec) -> int:
        """Declare a local variable and return its index."""
        if name in self._local_index:
            raise BuildError(f"local {name!r} already declared in function {self.name!r}")
        index = len(self.params) + len(self.locals)
        self.locals.append((name, valtype(type_spec)))
        self._local_index[name] = index
        return index

    def local_index(self, name_or_index: Union[str, int]) -> int:
        """Resolve a local by name (or pass an index through)."""
        if isinstance(name_or_index, int):
            return name_or_index
        try:
            return self._local_index[name_or_index]
        except KeyError as exc:
            raise BuildError(f"unknown local {name_or_index!r} in function {self.name!r}") from exc

    # ------------------------------------------------------------------- emit

    def emit(self, mnemonic: str, *operands) -> "FunctionBuilder":
        """Emit one instruction by mnemonic; returns ``self`` for chaining."""
        info = opcodes.info(mnemonic)
        if info.imm == Imm.FUNC and operands and isinstance(operands[0], str):
            self.body.append(Instruction(info, (_FuncRef(operands[0]),)))
            return self
        if info.imm == Imm.GLOBAL and operands and isinstance(operands[0], str):
            self.body.append(Instruction(info, (_GlobalRef(operands[0]),)))
            return self
        if info.imm == Imm.LOCAL and operands and isinstance(operands[0], str):
            operands = (self.local_index(operands[0]),)
        self.body.append(make(mnemonic, *operands))
        return self

    # Typed convenience helpers --------------------------------------------------

    def i32_const(self, value: int) -> "FunctionBuilder":
        """Push a 32-bit integer constant."""
        return self.emit("i32.const", int(value))

    def i64_const(self, value: int) -> "FunctionBuilder":
        """Push a 64-bit integer constant."""
        return self.emit("i64.const", int(value))

    def f32_const(self, value: float) -> "FunctionBuilder":
        """Push a 32-bit float constant."""
        return self.emit("f32.const", float(value))

    def f64_const(self, value: float) -> "FunctionBuilder":
        """Push a 64-bit float constant."""
        return self.emit("f64.const", float(value))

    def get(self, local: Union[str, int]) -> "FunctionBuilder":
        """``local.get``."""
        return self.emit("local.get", self.local_index(local))

    def set(self, local: Union[str, int]) -> "FunctionBuilder":
        """``local.set``."""
        return self.emit("local.set", self.local_index(local))

    def tee(self, local: Union[str, int]) -> "FunctionBuilder":
        """``local.tee``."""
        return self.emit("local.tee", self.local_index(local))

    def call(self, target: Union[str, int]) -> "FunctionBuilder":
        """Call a function by symbolic name or index."""
        return self.emit("call", target)

    def drop(self) -> "FunctionBuilder":
        """``drop``."""
        return self.emit("drop")

    def ret(self) -> "FunctionBuilder":
        """``return``."""
        return self.emit("return")

    def load(self, mnemonic: str, offset: int = 0, align: int = 0) -> "FunctionBuilder":
        """Emit a load instruction with a static offset."""
        return self.emit(mnemonic, MemArg(align, offset))

    def store(self, mnemonic: str, offset: int = 0, align: int = 0) -> "FunctionBuilder":
        """Emit a store instruction with a static offset."""
        return self.emit(mnemonic, MemArg(align, offset))

    # Structured control flow ----------------------------------------------------

    @contextlib.contextmanager
    def block(self, result: Optional[Union[str, ValType]] = None):
        """``block ... end`` region; ``br`` depth 0 exits it."""
        self.emit("block", valtype(result) if result is not None else None)
        self._depth += 1
        yield self
        self._depth -= 1
        self.emit("end")

    @contextlib.contextmanager
    def loop(self, result: Optional[Union[str, ValType]] = None):
        """``loop ... end`` region; ``br`` depth 0 repeats it."""
        self.emit("loop", valtype(result) if result is not None else None)
        self._depth += 1
        yield self
        self._depth -= 1
        self.emit("end")

    @contextlib.contextmanager
    def if_(self, result: Optional[Union[str, ValType]] = None):
        """``if ... end`` region consuming the i32 on top of the stack."""
        self.emit("if", valtype(result) if result is not None else None)
        self._depth += 1
        yield self
        self._depth -= 1
        self.emit("end")

    def else_(self) -> "FunctionBuilder":
        """Start the else arm of the innermost ``if``."""
        return self.emit("else")

    def br(self, depth: int) -> "FunctionBuilder":
        """Unconditional branch to the ``depth``-th enclosing label."""
        return self.emit("br", depth)

    def br_if(self, depth: int) -> "FunctionBuilder":
        """Conditional branch consuming the i32 condition on the stack."""
        return self.emit("br_if", depth)

    # Higher-level loop helper ---------------------------------------------------

    @contextlib.contextmanager
    def for_range(self, counter: str, start_local: Optional[str] = None, end_local: str = "",
                  start_const: int = 0, step: int = 1):
        """Counted loop: ``for counter in range(start, end, step)``.

        The counter local must already exist; the end bound is read from
        ``end_local`` on every iteration.  Inside the body the counter holds
        the current value.
        """
        counter_idx = self.local_index(counter)
        if start_local is not None:
            self.get(start_local).set(counter_idx)
        else:
            self.i32_const(start_const).set(counter_idx)
        self.emit("block", None)
        self.emit("loop", None)
        self._depth += 2
        # Exit when counter >= end.
        self.get(counter_idx).get(end_local).emit("i32.ge_s").br_if(1)
        yield self
        # Increment and continue.
        self.get(counter_idx).i32_const(step).emit("i32.add").set(counter_idx)
        self.br(0)
        self._depth -= 2
        self.emit("end")
        self.emit("end")

    # --------------------------------------------------------------- finishing

    def func_type(self) -> FuncType:
        """Signature of the function being built."""
        return FuncType(tuple(t for _n, t in self.params), tuple(self.results))

    def build_function(self, type_index: int) -> Function:
        """Materialise the :class:`repro.wasm.module.Function` record."""
        return Function(
            type_index=type_index,
            locals=[t for _n, t in self.locals],
            body=list(self.body),
            name=self.name,
        )


class ModuleBuilder:
    """Assembles a complete Wasm module.

    Typical use::

        mb = ModuleBuilder(name="kernel")
        mb.add_memory(min_pages=16, export=True)
        mpi_init = mb.import_function("env", "MPI_Init", ["i32", "i32"], ["i32"])
        f = mb.function("_start", export=True)
        f.i32_const(0).i32_const(0).call("MPI_Init").drop()
        ...
        module = mb.build()
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._imports: List[Import] = []
        self._import_func_names: Dict[str, int] = {}
        self._func_builders: List[FunctionBuilder] = []
        self._func_names: Dict[str, FunctionBuilder] = {}
        self._globals: List[Tuple[str, Global]] = []
        self._global_names: Dict[str, int] = {}
        self._memories: List[MemoryType] = []
        self._memory_export: Optional[str] = None
        self._data: List[DataSegment] = []
        self._extra_exports: List[Export] = []
        self._start_name: Optional[str] = None
        self._types: List[FuncType] = []

    # ----------------------------------------------------------------- imports

    def _intern_type(self, func_type: FuncType) -> int:
        for i, existing in enumerate(self._types):
            if existing == func_type:
                return i
        self._types.append(func_type)
        return len(self._types) - 1

    def import_function(
        self, module: str, name: str, params: Sequence = (), results: Sequence = ()
    ) -> int:
        """Declare a function import and return its function index.

        Imported functions occupy the start of the function index space, so
        all imports must be declared before :meth:`build` is called (but may
        be interleaved with :meth:`function` calls -- references are symbolic).
        """
        if name in self._import_func_names:
            return self._import_func_names[name]
        func_type = FuncType.of(params, results)
        type_index = self._intern_type(func_type)
        self._imports.append(Import(module=module, name=name, kind=ExternKind.FUNC, desc=type_index))
        index = len([i for i in self._imports if i.kind == ExternKind.FUNC]) - 1
        self._import_func_names[name] = index
        return index

    # --------------------------------------------------------------- functions

    def function(
        self,
        name: str,
        params: Sequence = (),
        results: Sequence = (),
        export: Optional[bool] = None,
    ) -> FunctionBuilder:
        """Start building a function; returns its :class:`FunctionBuilder`."""
        if name in self._func_names or name in self._import_func_names:
            raise BuildError(f"function {name!r} already defined or imported")
        fb = FunctionBuilder(self, name, params, results, export=bool(export))
        self._func_builders.append(fb)
        self._func_names[name] = fb
        return fb

    def has_function(self, name: str) -> bool:
        """Whether a function with this name is defined or imported."""
        return name in self._func_names or name in self._import_func_names

    # ----------------------------------------------------- memory/globals/data

    def add_memory(self, min_pages: int, max_pages: Optional[int] = None, export: bool = True,
                   export_name: str = "memory") -> int:
        """Define a linear memory; returns its index (always 0 here)."""
        if self._memories:
            raise BuildError("only one linear memory is supported by Wasm 1.0")
        self._memories.append(MemoryType(Limits(min_pages, max_pages)))
        if export:
            self._memory_export = export_name
        return 0

    def add_global(self, name: str, type_spec, init_value, mutable: bool = True) -> int:
        """Define a global with a constant initializer; returns its index."""
        if name in self._global_names:
            raise BuildError(f"global {name!r} already defined")
        vt = valtype(type_spec)
        const_op = {
            ValType.I32: "i32.const",
            ValType.I64: "i64.const",
            ValType.F32: "f32.const",
            ValType.F64: "f64.const",
        }[vt]
        g = Global(type=GlobalType(vt, mutable), init=[make(const_op, init_value)])
        self._globals.append((name, g))
        index = len(self._globals) - 1
        self._global_names[name] = index
        return index

    def add_data(self, offset: int, data: bytes, memory_index: int = 0) -> None:
        """Add an active data segment at a constant offset."""
        self._data.append(
            DataSegment(memory_index=memory_index, offset=[make("i32.const", offset)], data=bytes(data))
        )

    def set_start(self, func_name: str) -> None:
        """Mark a defined function as the module's start function."""
        self._start_name = func_name

    def export_function(self, name: str, export_name: Optional[str] = None) -> None:
        """Explicitly export an already-defined or imported function."""
        self._extra_exports.append(Export(name=export_name or name, kind=ExternKind.FUNC, index=-1))
        # The index placeholder (-1) is resolved in build(); stash the target.
        self._extra_exports[-1]._target = name  # type: ignore[attr-defined]

    # ------------------------------------------------------------------- build

    def _function_index(self, name: str) -> int:
        if name in self._import_func_names:
            return self._import_func_names[name]
        if name in self._func_names:
            n_imports = len(self._import_func_names)
            return n_imports + self._func_builders.index(self._func_names[name])
        raise BuildError(f"reference to unknown function {name!r}")

    def _resolve(self, instr: Instruction) -> Instruction:
        if instr.operands and isinstance(instr.operands[0], _FuncRef):
            return Instruction(instr.info, (self._function_index(instr.operands[0].name),))
        if instr.operands and isinstance(instr.operands[0], _GlobalRef):
            gname = instr.operands[0].name
            if gname not in self._global_names:
                raise BuildError(f"reference to unknown global {gname!r}")
            return Instruction(instr.info, (self._global_names[gname],))
        return instr

    def build(self) -> Module:
        """Resolve symbolic references and produce the final :class:`Module`."""
        module = Module(name=self.name)
        module.types = list(self._types)
        module.imports = list(self._imports)
        module.memories = list(self._memories)
        module.globals = [g for _n, g in self._globals]
        module.data = list(self._data)

        n_import_funcs = len(self._import_func_names)
        for fb in self._func_builders:
            type_index = None
            ft = fb.func_type()
            for i, existing in enumerate(module.types):
                if existing == ft:
                    type_index = i
                    break
            if type_index is None:
                module.types.append(ft)
                type_index = len(module.types) - 1
            function = fb.build_function(type_index)
            function.body = [self._resolve(i) for i in function.body]
            module.functions.append(function)

        for fb in self._func_builders:
            if fb.export:
                module.exports.append(
                    Export(name=fb.name, kind=ExternKind.FUNC, index=self._function_index(fb.name))
                )
        for export in self._extra_exports:
            target = getattr(export, "_target", export.name)
            module.exports.append(
                Export(name=export.name, kind=ExternKind.FUNC, index=self._function_index(target))
            )
        if self._memory_export is not None:
            module.exports.append(Export(name=self._memory_export, kind=ExternKind.MEMORY, index=0))
        if self._start_name is not None:
            module.start = self._function_index(self._start_name)
        return module
