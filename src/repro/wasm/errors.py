"""Trap and validation error types for the Wasm runtime."""

from __future__ import annotations


class WasmError(RuntimeError):
    """Base class for all Wasm runtime/validation errors."""


class Trap(WasmError):
    """A runtime trap: execution of the module is aborted.

    Traps are the enforcement mechanism of the Wasm sandbox -- out-of-bounds
    memory accesses, integer division by zero, invalid conversions, indirect
    call mismatches and ``unreachable`` all trap instead of corrupting state
    (§2.2 of the paper).
    """

    def __init__(self, message: str, kind: str = "trap"):
        super().__init__(message)
        self.kind = kind


class MemoryOutOfBoundsTrap(Trap):
    """Linear-memory access outside the module's memory."""

    def __init__(self, address: int, size: int, memory_size: int):
        super().__init__(
            f"out-of-bounds memory access: {size} bytes at address {address} "
            f"(memory is {memory_size} bytes)",
            kind="memory-out-of-bounds",
        )
        self.address = address
        self.size = size


class IntegerDivideByZeroTrap(Trap):
    """Integer division or remainder by zero."""

    def __init__(self) -> None:
        super().__init__("integer divide by zero", kind="divide-by-zero")


class IntegerOverflowTrap(Trap):
    """Integer overflow (e.g. ``INT_MIN / -1`` or out-of-range float truncation)."""

    def __init__(self, message: str = "integer overflow") -> None:
        super().__init__(message, kind="integer-overflow")


class UnreachableTrap(Trap):
    """The ``unreachable`` instruction was executed."""

    def __init__(self) -> None:
        super().__init__("unreachable executed", kind="unreachable")


class IndirectCallTrap(Trap):
    """``call_indirect`` through a null or signature-mismatched table entry."""

    def __init__(self, message: str) -> None:
        super().__init__(message, kind="indirect-call")


class StackExhaustionTrap(Trap):
    """Call depth exceeded the runtime's configured limit."""

    def __init__(self, depth: int) -> None:
        super().__init__(f"call stack exhausted at depth {depth}", kind="stack-exhaustion")


class ValidationError(WasmError):
    """The module failed validation (type-checking) before instantiation.

    Carries the failure's coordinates when known -- which function (index and
    name), which instruction offset, which opcode -- so API consumers (the
    serve daemon's 400 responses, analyzer findings) can point at the broken
    instruction instead of echoing a bare "stack underflow".
    """

    def __init__(
        self,
        message: str,
        *,
        func_index: "int | None" = None,
        func_name: "str | None" = None,
        instr_offset: "int | None" = None,
        opcode: "str | None" = None,
    ):
        super().__init__(message)
        self.func_index = func_index
        self.func_name = func_name
        self.instr_offset = instr_offset
        self.opcode = opcode


class LinkError(WasmError):
    """Instantiation failed because an import could not be resolved."""


class ExitTrap(Trap):
    """Raised by the WASI ``proc_exit`` host call to unwind the guest.

    Not an error per se: the embedder catches it and records the exit code,
    mirroring how Wasmer handles ``proc_exit``.
    """

    def __init__(self, exit_code: int) -> None:
        super().__init__(f"proc_exit({exit_code})", kind="proc-exit")
        self.exit_code = exit_code
