"""Numeric value semantics of the Wasm ISA.

Integers are represented internally as *unsigned* Python ints in
``[0, 2**bits)``; floats as Python floats (f32 results are rounded through a
32-bit container to get correct single-precision semantics); ``v128`` values
as 16-byte ``bytes``.  The helpers here implement the exact wrapping,
signedness, truncation-with-trap and bit-twiddling semantics the interpreter
and the code-generating back-end share.
"""

from __future__ import annotations

import math
import struct
from typing import Tuple

from repro.wasm.errors import IntegerDivideByZeroTrap, IntegerOverflowTrap

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF

# Pre-compiled bit-cast codecs: f32 rounding sits on the hot path of every
# single-precision operation, so the format strings are parsed exactly once.
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

# Pre-compiled v128 lane codecs, keyed by lane struct char (same idiom as the
# scalar codecs above).  ``V128_LANE`` packs/unpacks one lane (splat,
# extract_lane, replace_lane); ``V128_VEC`` a whole 16-byte vector.
V128_LANE = {
    "b": struct.Struct("<b"),
    "h": struct.Struct("<h"),
    "i": struct.Struct("<i"),
    "q": struct.Struct("<q"),
    "f": _F32,
    "d": _F64,
}
V128_VEC = {
    "b": struct.Struct("<16b"),
    "h": struct.Struct("<8h"),
    "i": struct.Struct("<4i"),
    "q": struct.Struct("<2q"),
    "f": struct.Struct("<4f"),
    "d": struct.Struct("<2d"),
}


# ----------------------------------------------------------------- int helpers


def wrap32(value: int) -> int:
    """Wrap to unsigned 32-bit."""
    return value & MASK32


def wrap64(value: int) -> int:
    """Wrap to unsigned 64-bit."""
    return value & MASK64


def signed32(value: int) -> int:
    """Interpret an unsigned 32-bit value as signed."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def signed64(value: int) -> int:
    """Interpret an unsigned 64-bit value as signed."""
    value &= MASK64
    return value - 0x10000000000000000 if value & 0x8000000000000000 else value


def unsigned32(value: int) -> int:
    """Interpret a (possibly negative) value as unsigned 32-bit."""
    return value & MASK32


def unsigned64(value: int) -> int:
    """Interpret a (possibly negative) value as unsigned 64-bit."""
    return value & MASK64


def div_s(a: int, b: int, bits: int) -> int:
    """Signed division with Wasm trap semantics (truncates toward zero)."""
    mask = MASK32 if bits == 32 else MASK64
    sa = signed32(a) if bits == 32 else signed64(a)
    sb = signed32(b) if bits == 32 else signed64(b)
    if sb == 0:
        raise IntegerDivideByZeroTrap()
    if sa == -(1 << (bits - 1)) and sb == -1:
        raise IntegerOverflowTrap(f"i{bits}.div_s overflow")
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & mask


def div_u(a: int, b: int, bits: int) -> int:
    """Unsigned division with trap on zero divisor."""
    mask = MASK32 if bits == 32 else MASK64
    a &= mask
    b &= mask
    if b == 0:
        raise IntegerDivideByZeroTrap()
    return (a // b) & mask


def rem_s(a: int, b: int, bits: int) -> int:
    """Signed remainder (sign follows the dividend), trap on zero divisor."""
    mask = MASK32 if bits == 32 else MASK64
    sa = signed32(a) if bits == 32 else signed64(a)
    sb = signed32(b) if bits == 32 else signed64(b)
    if sb == 0:
        raise IntegerDivideByZeroTrap()
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & mask


def rem_u(a: int, b: int, bits: int) -> int:
    """Unsigned remainder, trap on zero divisor."""
    mask = MASK32 if bits == 32 else MASK64
    a &= mask
    b &= mask
    if b == 0:
        raise IntegerDivideByZeroTrap()
    return (a % b) & mask


def shl(a: int, b: int, bits: int) -> int:
    """Shift left (shift count taken modulo the bit width)."""
    mask = MASK32 if bits == 32 else MASK64
    return (a << (b % bits)) & mask


def shr_u(a: int, b: int, bits: int) -> int:
    """Logical shift right."""
    mask = MASK32 if bits == 32 else MASK64
    return ((a & mask) >> (b % bits)) & mask


def shr_s(a: int, b: int, bits: int) -> int:
    """Arithmetic shift right."""
    mask = MASK32 if bits == 32 else MASK64
    sa = signed32(a) if bits == 32 else signed64(a)
    return (sa >> (b % bits)) & mask


def rotl(a: int, b: int, bits: int) -> int:
    """Rotate left."""
    mask = MASK32 if bits == 32 else MASK64
    b %= bits
    a &= mask
    return ((a << b) | (a >> (bits - b))) & mask if b else a


def rotr(a: int, b: int, bits: int) -> int:
    """Rotate right."""
    mask = MASK32 if bits == 32 else MASK64
    b %= bits
    a &= mask
    return ((a >> b) | (a << (bits - b))) & mask if b else a


def clz(a: int, bits: int) -> int:
    """Count leading zero bits."""
    a &= MASK32 if bits == 32 else MASK64
    if a == 0:
        return bits
    return bits - a.bit_length()


def ctz(a: int, bits: int) -> int:
    """Count trailing zero bits."""
    a &= MASK32 if bits == 32 else MASK64
    if a == 0:
        return bits
    return (a & -a).bit_length() - 1


def popcnt(a: int, bits: int) -> int:
    """Count set bits."""
    return bin(a & (MASK32 if bits == 32 else MASK64)).count("1")


def extend_s(a: int, from_bits: int, to_bits: int) -> int:
    """Sign-extend the low ``from_bits`` of ``a`` into a ``to_bits`` value."""
    mask_from = (1 << from_bits) - 1
    mask_to = (1 << to_bits) - 1
    a &= mask_from
    if a & (1 << (from_bits - 1)):
        a -= 1 << from_bits
    return a & mask_to


# --------------------------------------------------------------- float helpers


def round_f32(value: float) -> float:
    """Round a Python float through a 32-bit container (f32 semantics)."""
    return _F32.unpack(_F32.pack(value))[0]


def nearest(value: float) -> float:
    """Round to nearest, ties to even (the Wasm ``nearest`` instruction)."""
    if math.isnan(value) or math.isinf(value):
        return value
    floor_v = math.floor(value)
    diff = value - floor_v
    if diff < 0.5:
        result = floor_v
    elif diff > 0.5:
        result = floor_v + 1
    else:
        result = floor_v if floor_v % 2 == 0 else floor_v + 1
    # Preserve the sign of zero.
    if result == 0 and math.copysign(1.0, value) < 0:
        return -0.0
    return float(result)


def trunc_to_int(value: float, bits: int, signed: bool) -> int:
    """Float-to-integer truncation with the spec's trapping behaviour."""
    if math.isnan(value):
        raise IntegerOverflowTrap("invalid conversion to integer (NaN)")
    truncated = math.trunc(value)
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if truncated < lo or truncated > hi:
        raise IntegerOverflowTrap(f"float value {value} out of range for i{bits}")
    return truncated & ((1 << bits) - 1)


def reinterpret_f32_to_i32(value: float) -> int:
    """Bit-cast f32 -> i32."""
    return _U32.unpack(_F32.pack(value))[0]


def reinterpret_i32_to_f32(value: int) -> float:
    """Bit-cast i32 -> f32."""
    return _F32.unpack(_U32.pack(value & MASK32))[0]


def reinterpret_f64_to_i64(value: float) -> int:
    """Bit-cast f64 -> i64."""
    return _U64.unpack(_F64.pack(value))[0]


def reinterpret_i64_to_f64(value: int) -> float:
    """Bit-cast i64 -> f64."""
    return _F64.unpack(_U64.pack(value & MASK64))[0]


def float_min(a: float, b: float) -> float:
    """Wasm ``min``: NaN-propagating, -0 < +0."""
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == b == 0.0:
        return -0.0 if (math.copysign(1.0, a) < 0 or math.copysign(1.0, b) < 0) else 0.0
    return min(a, b)


def float_max(a: float, b: float) -> float:
    """Wasm ``max``: NaN-propagating, +0 > -0."""
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == b == 0.0:
        return 0.0 if (math.copysign(1.0, a) > 0 or math.copysign(1.0, b) > 0) else -0.0
    return max(a, b)


# ---------------------------------------------------------------- default values


def default_value(valtype_name: str):
    """Zero value of a value type (used to initialise locals)."""
    if valtype_name in ("i32", "i64"):
        return 0
    if valtype_name in ("f32", "f64"):
        return 0.0
    if valtype_name == "v128":
        return bytes(16)
    return 0
