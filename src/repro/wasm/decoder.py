"""Binary decoder: ``.wasm`` bytes -> :class:`repro.wasm.module.Module`.

The inverse of :mod:`repro.wasm.encoder`.  The embedder uses it to load
distributed Wasm binaries, and the round-trip property
``decode(encode(m)) == m`` (up to function/module names, which live in custom
sections we do not emit) is exercised by the hypothesis tests.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.wasm import opcodes
from repro.wasm.encoder import MAGIC, VERSION
from repro.wasm.errors import WasmError
from repro.wasm.instructions import BlockType, Instruction, MemArg
from repro.wasm.module import (
    CustomSection,
    DataSegment,
    ElementSegment,
    Export,
    ExternKind,
    Function,
    Global,
    Import,
    Module,
)
from repro.wasm.opcodes import Imm
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType

# Pre-compiled float-immediate codecs (same spirit as wasm.values: parse the
# format string once, not per decoded constant).
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")


class DecodeError(WasmError, ValueError):
    """Raised when the byte stream is not a valid module for this decoder.

    A :class:`~repro.wasm.errors.WasmError` subclass (and still a
    ``ValueError`` for backwards compatibility), so embedders facing
    untrusted module bytes -- the serve layer maps decode failures to
    HTTP 400 -- can catch one typed error family instead of low-level
    ``struct.error`` / ``IndexError`` leaks.
    """


class _Reader:
    """Byte-stream reader with LEB128 helpers and bounds checking."""

    def __init__(self, data: bytes, pos: int = 0, end: Optional[int] = None):
        self.data = data
        self.pos = pos
        # Clamp to the real data: a declared section/body size larger than
        # the remaining bytes (truncated or hostile input) must surface as a
        # bounds-checked DecodeError from bytes(), never as a short slice
        # that a struct unpack later chokes on.
        self.end = len(data) if end is None else min(end, len(data))

    def eof(self) -> bool:
        return self.pos >= self.end

    def bytes(self, n: int) -> bytes:
        if self.pos + n > self.end:
            raise DecodeError(f"unexpected end of stream at offset {self.pos} (wanted {n} bytes)")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def byte(self) -> int:
        return self.bytes(1)[0]

    def u32(self) -> int:
        result = 0
        shift = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                break
            shift += 7
            if shift > 35:
                raise DecodeError("u32 LEB128 too long")
        return result

    def sleb(self, bits: int) -> int:
        result = 0
        shift = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            shift += 7
            if not b & 0x80:
                if b & 0x40:
                    result |= -(1 << shift)
                break
            if shift > bits + 7:
                raise DecodeError(f"s{bits} LEB128 too long")
        return result

    def s32(self) -> int:
        return self.sleb(32)

    def s64(self) -> int:
        return self.sleb(64)

    def f32(self) -> float:
        return _F32.unpack(self.bytes(4))[0]

    def f64(self) -> float:
        return _F64.unpack(self.bytes(8))[0]

    def name(self) -> str:
        return self.bytes(self.u32()).decode("utf-8")

    def valtype(self) -> ValType:
        return ValType.from_byte(self.byte())

    def limits(self) -> Limits:
        flag = self.byte()
        minimum = self.u32()
        maximum = self.u32() if flag & 0x01 else None
        return Limits(minimum, maximum)


# ---------------------------------------------------------------- instructions


def _decode_instruction(r: _Reader) -> Instruction:
    opcode = r.byte()
    if opcode == 0xFD:
        opcode = 0xFD00 | r.u32()
    elif opcode == 0xFC:
        opcode = 0xFC00 | r.u32()
    try:
        info = opcodes.info(opcode)
    except KeyError as exc:
        raise DecodeError(str(exc)) from exc

    imm = info.imm
    if imm == Imm.NONE:
        return Instruction(info, ())
    if imm == Imm.BLOCKTYPE:
        b = r.byte()
        result = None if b == 0x40 else ValType.from_byte(b)
        return Instruction(info, (BlockType(result),))
    if imm in (Imm.LABEL, Imm.FUNC, Imm.LOCAL, Imm.GLOBAL, Imm.MEMORY, Imm.LANE):
        return Instruction(info, (r.u32(),))
    if imm == Imm.MEMORY_PAIR:
        return Instruction(info, (r.u32(), r.u32()))
    if imm == Imm.LABEL_TABLE:
        n = r.u32()
        targets = tuple(r.u32() for _ in range(n))
        default = r.u32()
        return Instruction(info, (targets, default))
    if imm == Imm.CALL_INDIRECT:
        return Instruction(info, (r.u32(), r.u32()))
    if imm == Imm.MEMARG:
        return Instruction(info, (MemArg(r.u32(), r.u32()),))
    if imm == Imm.I32_CONST:
        return Instruction(info, (r.s32(),))
    if imm == Imm.I64_CONST:
        return Instruction(info, (r.s64(),))
    if imm == Imm.F32_CONST:
        return Instruction(info, (r.f32(),))
    if imm == Imm.F64_CONST:
        return Instruction(info, (r.f64(),))
    if imm == Imm.V128_CONST:
        return Instruction(info, (r.bytes(16),))
    raise DecodeError(f"unhandled immediate kind {imm}")  # pragma: no cover


def _decode_expression(r: _Reader) -> List[Instruction]:
    """Decode instructions until the matching top-level ``end`` (consumed)."""
    body: List[Instruction] = []
    depth = 0
    while True:
        instr = _decode_instruction(r)
        if instr.name in ("block", "loop", "if"):
            depth += 1
        elif instr.name == "end":
            if depth == 0:
                return body
            depth -= 1
        body.append(instr)


# -------------------------------------------------------------------- sections


def _decode_import(r: _Reader) -> Import:
    module = r.name()
    name = r.name()
    kind = ExternKind(r.byte())
    if kind == ExternKind.FUNC:
        desc: object = r.u32()
    elif kind == ExternKind.MEMORY:
        desc = MemoryType(r.limits())
    elif kind == ExternKind.GLOBAL:
        vt = r.valtype()
        desc = GlobalType(vt, bool(r.byte()))
    elif kind == ExternKind.TABLE:
        element = r.valtype()
        desc = TableType(r.limits(), element)
    else:  # pragma: no cover - ExternKind covers all cases
        raise DecodeError(f"unknown import kind {kind}")
    return Import(module=module, name=name, kind=kind, desc=desc)


#: Upper bound on declared locals per function.  Engines impose similar
#: implementation limits (the reference interpreter allows 50k); without one
#: a 5-byte hostile count would make the decoder allocate gigabytes.
MAX_FUNCTION_LOCALS = 100_000


def decode_module(data: bytes) -> Module:
    """Decode ``.wasm`` bytes into a :class:`Module`.

    The byte stream is untrusted input (the serve layer feeds it straight
    from HTTP bodies): *any* malformed, truncated, or hostile input raises
    :class:`DecodeError` -- a typed :class:`~repro.wasm.errors.WasmError` --
    never a raw ``struct.error`` / ``IndexError`` / ``KeyError``.
    """
    try:
        return _decode_module(data)
    except DecodeError:
        raise
    except (IndexError, KeyError, ValueError, OverflowError, UnicodeDecodeError) as exc:
        # Belt-and-braces: low-level decode helpers (valtype/extern-kind
        # lookups, UTF-8 names, float unpacks) must not leak their native
        # exception types to callers handling untrusted bytes.
        raise DecodeError(f"malformed module: {type(exc).__name__}: {exc}") from exc


def _decode_module(data: bytes) -> Module:
    if data[:4] != MAGIC:
        raise DecodeError("not a Wasm module: bad magic")
    if data[4:8] != VERSION:
        raise DecodeError(f"unsupported Wasm version {data[4:8]!r}")
    r = _Reader(data, pos=8)
    module = Module()
    func_type_indices: List[int] = []

    while not r.eof():
        section_id = r.byte()
        size = r.u32()
        if r.pos + size > r.end:
            raise DecodeError(
                f"section {section_id} declares {size} bytes but only "
                f"{r.end - r.pos} remain"
            )
        section = _Reader(r.data, r.pos, r.pos + size)
        r.pos += size

        if section_id == 1:  # type
            for _ in range(section.u32()):
                if section.byte() != 0x60:
                    raise DecodeError("malformed functype")
                params = tuple(section.valtype() for _ in range(section.u32()))
                results = tuple(section.valtype() for _ in range(section.u32()))
                module.types.append(FuncType(params, results))
        elif section_id == 2:  # import
            for _ in range(section.u32()):
                module.imports.append(_decode_import(section))
        elif section_id == 3:  # function (type indices)
            func_type_indices = [section.u32() for _ in range(section.u32())]
        elif section_id == 4:  # table
            for _ in range(section.u32()):
                element = section.valtype()
                module.tables.append(TableType(section.limits(), element))
        elif section_id == 5:  # memory
            for _ in range(section.u32()):
                module.memories.append(MemoryType(section.limits()))
        elif section_id == 6:  # global
            for _ in range(section.u32()):
                vt = section.valtype()
                mutable = bool(section.byte())
                init = _decode_expression(section)
                module.globals.append(Global(GlobalType(vt, mutable), init))
        elif section_id == 7:  # export
            for _ in range(section.u32()):
                name = section.name()
                kind = ExternKind(section.byte())
                index = section.u32()
                module.exports.append(Export(name=name, kind=kind, index=index))
        elif section_id == 8:  # start
            module.start = section.u32()
        elif section_id == 9:  # element
            for _ in range(section.u32()):
                table_index = section.u32()
                offset = _decode_expression(section)
                funcs = [section.u32() for _ in range(section.u32())]
                module.elements.append(ElementSegment(table_index, offset, funcs))
        elif section_id == 10:  # code
            count = section.u32()
            if count != len(func_type_indices):
                raise DecodeError("function and code section counts disagree")
            for type_index in func_type_indices:
                body_size = section.u32()
                if section.pos + body_size > section.end:
                    raise DecodeError(
                        f"function body declares {body_size} bytes but only "
                        f"{section.end - section.pos} remain"
                    )
                body_reader = _Reader(section.data, section.pos, section.pos + body_size)
                section.pos += body_size
                locals_list: List[ValType] = []
                for _ in range(body_reader.u32()):
                    n = body_reader.u32()
                    vt = body_reader.valtype()
                    if len(locals_list) + n > MAX_FUNCTION_LOCALS:
                        raise DecodeError(
                            f"function declares more than {MAX_FUNCTION_LOCALS} locals"
                        )
                    locals_list.extend([vt] * n)
                body = _decode_expression(body_reader)
                module.functions.append(
                    Function(type_index=type_index, locals=locals_list, body=body)
                )
        elif section_id == 11:  # data
            for _ in range(section.u32()):
                memory_index = section.u32()
                offset = _decode_expression(section)
                data_bytes = section.bytes(section.u32())
                module.data.append(DataSegment(memory_index, offset, data_bytes))
        elif section_id == 0:  # custom
            name = section.name()
            module.customs.append(CustomSection(name, section.bytes(section.end - section.pos)))
        else:
            raise DecodeError(f"unknown section id {section_id}")

    return module
