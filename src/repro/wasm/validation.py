"""Module validation (type checking).

Implements the stack-polymorphic validation algorithm of the Wasm
specification appendix for the instruction subset in
:mod:`repro.wasm.opcodes`: every function body is checked instruction by
instruction against a typed operand stack and a stack of control frames, so
ill-typed modules are rejected before instantiation -- the static half of the
sandbox guarantees described in §2.2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.wasm.errors import Trap, ValidationError
from repro.wasm.instructions import BlockType, Instruction
from repro.wasm.module import ExternKind, Module
from repro.wasm.opcodes import Imm
from repro.wasm.types import FuncType, ValType


@dataclass
class _ControlFrame:
    """Validation-time control frame."""

    opcode: str
    start_types: List[ValType]
    end_types: List[ValType]
    height: int
    unreachable: bool = False

    def label_types(self) -> List[ValType]:
        """Types a branch to this frame must provide."""
        return self.start_types if self.opcode == "loop" else self.end_types


class FunctionValidator:
    """Validates a single function body."""

    def __init__(self, module: Module, func_type: FuncType, locals_: Sequence[ValType]):
        self.module = module
        self.func_type = func_type
        self.locals = list(func_type.params) + list(locals_)
        self.stack: List[ValType] = []
        self.frames: List[_ControlFrame] = []

    # ------------------------------------------------------------ stack helpers

    def _push(self, vt: ValType) -> None:
        self.stack.append(vt)

    def _pop(self, expected: Optional[ValType] = None) -> Optional[ValType]:
        frame = self.frames[-1]
        if len(self.stack) == frame.height:
            if frame.unreachable:
                return expected
            raise ValidationError(
                f"stack underflow (expected {expected.short_name if expected else 'a value'})"
            )
        actual = self.stack.pop()
        if expected is not None and actual != expected:
            raise ValidationError(
                f"type mismatch: expected {expected.short_name}, found {actual.short_name}"
            )
        return actual

    def _push_many(self, types: Sequence[ValType]) -> None:
        for t in types:
            self._push(t)

    def _pop_many(self, types: Sequence[ValType]) -> None:
        for t in reversed(list(types)):
            self._pop(t)

    def _push_frame(self, opcode: str, start: Sequence[ValType], end: Sequence[ValType]) -> None:
        self.frames.append(
            _ControlFrame(opcode, list(start), list(end), height=len(self.stack))
        )
        self._push_many(start)

    def _pop_frame(self) -> _ControlFrame:
        frame = self.frames[-1]
        self._pop_many(frame.end_types)
        if len(self.stack) != frame.height and not frame.unreachable:
            raise ValidationError(
                f"values remaining on stack at end of {frame.opcode} "
                f"({len(self.stack) - frame.height} extra)"
            )
        del self.stack[frame.height :]
        self.frames.pop()
        return frame

    def _set_unreachable(self) -> None:
        frame = self.frames[-1]
        del self.stack[frame.height :]
        frame.unreachable = True

    def _label(self, depth: int) -> _ControlFrame:
        if depth >= len(self.frames):
            raise ValidationError(f"branch depth {depth} exceeds nesting {len(self.frames)}")
        return self.frames[-1 - depth]

    # ---------------------------------------------------------------- validate

    def validate(self, body: Sequence[Instruction]) -> None:
        """Validate the instruction sequence of one function body."""
        self._push_frame("func", [], list(self.func_type.results))
        for position, instr in enumerate(body):
            try:
                self._validate_instruction(instr)
            except ValidationError as exc:
                raise ValidationError(
                    f"at instruction {position} ({instr.name}): {exc}",
                    instr_offset=position,
                    opcode=instr.name,
                ) from None
        # The implicit end of the function body.
        frame = self._pop_frame()
        self._push_many(frame.end_types)

    def _validate_instruction(self, instr: Instruction) -> None:  # noqa: C901
        name = instr.name
        info = instr.info

        if name in ("block", "loop"):
            bt: BlockType = instr.operands[0]
            results = [bt.result] if bt.result is not None else []
            self._push_frame(name, [], results)
            return
        if name == "if":
            self._pop(ValType.I32)
            bt = instr.operands[0]
            results = [bt.result] if bt.result is not None else []
            self._push_frame("if", [], results)
            return
        if name == "else":
            frame = self._pop_frame()
            self._push_frame("else", [], frame.end_types)
            return
        if name == "end":
            frame = self._pop_frame()
            self._push_many(frame.end_types)
            return
        if name == "br":
            frame = self._label(instr.operands[0])
            self._pop_many(frame.label_types())
            self._set_unreachable()
            return
        if name == "br_if":
            self._pop(ValType.I32)
            frame = self._label(instr.operands[0])
            self._pop_many(frame.label_types())
            self._push_many(frame.label_types())
            return
        if name == "br_table":
            targets, default = instr.operands
            self._pop(ValType.I32)
            default_types = self._label(default).label_types()
            for t in targets:
                if [x for x in self._label(t).label_types()] != list(default_types):
                    raise ValidationError("br_table targets have inconsistent label types")
            self._pop_many(default_types)
            self._set_unreachable()
            return
        if name == "return":
            self._pop_many(self.func_type.results)
            self._set_unreachable()
            return
        if name == "unreachable":
            self._set_unreachable()
            return
        if name == "call":
            func_index = instr.operands[0]
            if func_index >= self.module.total_functions():
                raise ValidationError(f"call to unknown function index {func_index}")
            ft = self.module.func_type(func_index)
            self._pop_many(ft.params)
            self._push_many(ft.results)
            return
        if name == "call_indirect":
            type_index, table_index = instr.operands
            if type_index >= len(self.module.types):
                raise ValidationError(f"call_indirect references unknown type {type_index}")
            if not self.module.tables and not any(
                imp.kind == ExternKind.TABLE for imp in self.module.imports
            ):
                raise ValidationError("call_indirect requires a table")
            self._pop(ValType.I32)
            ft = self.module.types[type_index]
            self._pop_many(ft.params)
            self._push_many(ft.results)
            return
        if name == "drop":
            self._pop(None)
            return
        if name == "select":
            self._pop(ValType.I32)
            a = self._pop(None)
            b = self._pop(None)
            if a is not None and b is not None and a != b:
                raise ValidationError("select operands must have the same type")
            self._push(a or b or ValType.I32)
            return
        if name in ("local.get", "local.set", "local.tee"):
            index = instr.operands[0]
            if index >= len(self.locals):
                raise ValidationError(f"local index {index} out of range ({len(self.locals)} locals)")
            lt = self.locals[index]
            if name == "local.get":
                self._push(lt)
            elif name == "local.set":
                self._pop(lt)
            else:
                self._pop(lt)
                self._push(lt)
            return
        if name in ("global.get", "global.set"):
            index = instr.operands[0]
            imported = self.module.imported_globals()
            total = len(imported) + len(self.module.globals)
            if index >= total:
                raise ValidationError(f"global index {index} out of range ({total} globals)")
            if index < len(imported):
                gtype = imported[index].desc
            else:
                gtype = self.module.globals[index - len(imported)].type
            if name == "global.get":
                self._push(gtype.value_type)
            else:
                if not gtype.mutable:
                    raise ValidationError(f"global.set on immutable global {index}")
                self._pop(gtype.value_type)
            return
        if info.imm == Imm.MEMARG or name in (
            "memory.size", "memory.grow", "memory.copy", "memory.fill",
        ):
            if not self.module.memories and not self.module.imported_memories():
                raise ValidationError(f"{name} requires a linear memory")
            self._pop_many(info.pops)
            self._push_many(info.pushes)
            return

        # Plain numeric / const / SIMD instructions: use the static signature.
        self._pop_many(info.pops)
        self._push_many(info.pushes)


def validate_module(module: Module) -> None:
    """Validate a whole module; raises :class:`ValidationError` on failure.

    Decoded-but-hostile modules can hold structurally absurd values (indices
    and enum bytes the decoder has no context to reject); whatever low-level
    exception those provoke inside the checks is converted to a typed
    :class:`ValidationError` so callers validating untrusted input handle
    one :class:`~repro.wasm.errors.WasmError` family.
    """
    try:
        _validate_module(module)
    except (ValidationError, Trap):
        raise
    except (IndexError, KeyError, ValueError, TypeError, AttributeError) as exc:
        raise ValidationError(f"malformed module: {type(exc).__name__}: {exc}") from exc


def _validate_module(module: Module) -> None:
    # Type indices referenced by imports and functions must exist.
    for imp in module.imports:
        if imp.kind == ExternKind.FUNC and imp.desc >= len(module.types):
            raise ValidationError(f"import {imp.qualified_name} references unknown type {imp.desc}")
    for func in module.functions:
        if func.type_index >= len(module.types):
            raise ValidationError(
                f"function {func.name or '<anon>'} references unknown type {func.type_index}"
            )

    # Memory limits.
    for mem in module.memories:
        try:
            mem.validate()
        except ValueError as exc:
            raise ValidationError(str(exc)) from None
    if len(module.memories) + len(module.imported_memories()) > 1:
        raise ValidationError("at most one linear memory is allowed")

    # Exports must reference existing entities, with unique names.
    seen = set()
    for export in module.exports:
        if export.name in seen:
            raise ValidationError(f"duplicate export name {export.name!r}")
        seen.add(export.name)
        if export.kind == ExternKind.FUNC and export.index >= module.total_functions():
            raise ValidationError(f"export {export.name!r} references unknown function {export.index}")
        if export.kind == ExternKind.MEMORY and export.index >= (
            len(module.memories) + len(module.imported_memories())
        ):
            raise ValidationError(f"export {export.name!r} references unknown memory {export.index}")

    # Start function must be () -> ().
    if module.start is not None:
        if module.start >= module.total_functions():
            raise ValidationError(f"start function index {module.start} out of range")
        st = module.func_type(module.start)
        if st.params or st.results:
            raise ValidationError("start function must have no parameters and no results")

    # Data segments must target memory 0 with a constant offset.
    for seg in module.data:
        if seg.memory_index != 0:
            raise ValidationError("data segments must target memory 0")

    # Function bodies.
    for i, func in enumerate(module.functions):
        func_type = module.types[func.type_index]
        validator = FunctionValidator(module, func_type, func.locals)
        try:
            validator.validate(func.body)
        except ValidationError as exc:
            # Re-wrap with the function's coordinates, keeping the inner
            # error's instruction offset/opcode so consumers (serve's 400
            # responses, analyzer findings) can point at the instruction.
            raise ValidationError(
                f"function {i} ({func.name or '?'}): {exc}",
                func_index=i,
                func_name=func.name or None,
                instr_offset=getattr(exc, "instr_offset", None),
                opcode=getattr(exc, "opcode", None),
            ) from None
