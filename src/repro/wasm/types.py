"""WebAssembly type system: value types, function types, limits.

The Wasm ISA exposed to HPC applications in the paper uses the four numeric
value types of the Wasm 1.0 specification (``i32``, ``i64``, ``f32``, ``f64``)
plus the 128-bit ``v128`` type of the fixed-width SIMD proposal (enabled with
``-msimd128`` in §4.3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple


class ValType(Enum):
    """A WebAssembly value type (binary encoding in the member value)."""

    I32 = 0x7F
    I64 = 0x7E
    F32 = 0x7D
    F64 = 0x7C
    V128 = 0x7B
    FUNCREF = 0x70

    @property
    def is_numeric(self) -> bool:
        """Whether the type is one of the four scalar numeric types."""
        return self in (ValType.I32, ValType.I64, ValType.F32, ValType.F64)

    @property
    def short_name(self) -> str:
        """Lower-case WAT spelling (``i32``, ``f64``, ``v128``, ...)."""
        return self.name.lower()

    @classmethod
    def from_byte(cls, byte: int) -> "ValType":
        """Decode a value type from its binary byte."""
        for member in cls:
            if member.value == byte:
                return member
        raise ValueError(f"unknown value type byte 0x{byte:02x}")


# WAT spelling -> ValType, for the builder's string-friendly API.
VALTYPE_BY_NAME = {vt.short_name: vt for vt in ValType}


def valtype(spec) -> ValType:
    """Coerce a :class:`ValType` or its WAT spelling into a :class:`ValType`."""
    if isinstance(spec, ValType):
        return spec
    if isinstance(spec, str):
        try:
            return VALTYPE_BY_NAME[spec]
        except KeyError as exc:
            raise ValueError(f"unknown value type {spec!r}") from exc
    raise TypeError(f"cannot interpret {spec!r} as a value type")


@dataclass(frozen=True)
class FuncType:
    """A function signature: parameter types and result types."""

    params: Tuple[ValType, ...] = ()
    results: Tuple[ValType, ...] = ()

    @classmethod
    def of(cls, params=(), results=()) -> "FuncType":
        """Build a signature from value types or their WAT spellings."""
        return cls(tuple(valtype(p) for p in params), tuple(valtype(r) for r in results))

    def wat(self) -> str:
        """WAT rendering, e.g. ``(param i32 i32) (result i32)``."""
        parts = []
        if self.params:
            parts.append("(param " + " ".join(p.short_name for p in self.params) + ")")
        if self.results:
            parts.append("(result " + " ".join(r.short_name for r in self.results) + ")")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FuncType({self.wat() or '(no params/results)'})"


@dataclass(frozen=True)
class Limits:
    """Limits of a memory or table (in pages / elements)."""

    minimum: int
    maximum: Optional[int] = None

    def validate(self, hard_cap: int) -> None:
        """Check internal consistency and the spec's hard cap."""
        if self.minimum < 0:
            raise ValueError("limits minimum must be non-negative")
        if self.minimum > hard_cap:
            raise ValueError(f"limits minimum {self.minimum} exceeds cap {hard_cap}")
        if self.maximum is not None:
            if self.maximum < self.minimum:
                raise ValueError("limits maximum must be >= minimum")
            if self.maximum > hard_cap:
                raise ValueError(f"limits maximum {self.maximum} exceeds cap {hard_cap}")


@dataclass(frozen=True)
class MemoryType:
    """Type of a linear memory: page limits (64 KiB pages, 32-bit addresses)."""

    limits: Limits

    # 32-bit Wasm memories max out at 4 GiB = 65536 pages (§3.8 of the paper).
    PAGE_SIZE = 65536
    MAX_PAGES = 65536

    def validate(self) -> None:
        """Check the page limits against the 4 GiB address-space cap."""
        self.limits.validate(self.MAX_PAGES)


@dataclass(frozen=True)
class TableType:
    """Type of a table (always funcref elements in Wasm 1.0)."""

    limits: Limits
    element: ValType = ValType.FUNCREF


@dataclass(frozen=True)
class GlobalType:
    """Type of a global variable: value type and mutability."""

    value_type: ValType
    mutable: bool = False
