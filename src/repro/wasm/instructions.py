"""Instruction objects: an opcode plus decoded immediate operands.

Instructions are the in-memory representation shared by the builder, the
binary encoder/decoder, the validator, the WAT printer, and the interpreter /
compiler back-ends.  Immediates are stored decoded (Python ints/floats/bytes),
never as raw LEB128 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from repro.wasm import opcodes
from repro.wasm.opcodes import Imm, OpcodeInfo
from repro.wasm.types import ValType


@dataclass(frozen=True)
class BlockType:
    """Result type of a ``block``/``loop``/``if`` construct.

    Wasm 1.0 block types are either empty or a single value type (multi-value
    block signatures are not needed by the toolchain here).
    """

    result: Optional[ValType] = None

    def arity(self) -> int:
        """Number of values the block leaves on the stack."""
        return 0 if self.result is None else 1

    def wat(self) -> str:
        """WAT rendering (empty string or ``(result t)``)."""
        return "" if self.result is None else f"(result {self.result.short_name})"


@dataclass(frozen=True)
class MemArg:
    """Memory-access immediate: alignment exponent and static offset."""

    align: int = 0
    offset: int = 0


@dataclass(frozen=True)
class Instruction:
    """One instruction: opcode info plus its immediate operands.

    ``operands`` holds the decoded immediates in a canonical order:

    * ``block``/``loop``/``if``  -> (:class:`BlockType`,)
    * ``br``/``br_if``           -> (label_depth,)
    * ``br_table``               -> (tuple_of_depths, default_depth)
    * ``call``                   -> (function_index,)
    * ``call_indirect``          -> (type_index, table_index)
    * ``local.*`` / ``global.*`` -> (index,)
    * loads/stores               -> (:class:`MemArg`,)
    * ``memory.size/grow``       -> (memory_index,)
    * ``*.const``                -> (value,)  (int, float, or 16 bytes for v128)
    * SIMD lane ops              -> (lane_index,)
    """

    info: OpcodeInfo
    operands: Tuple = ()

    @property
    def name(self) -> str:
        """WAT mnemonic of the instruction."""
        return self.info.name

    @property
    def opcode(self) -> int:
        """Numeric opcode (SIMD opcodes are ``0xFD00 | sub``)."""
        return self.info.opcode

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.operands:
            return f"<{self.name}>"
        return f"<{self.name} {' '.join(map(str, self.operands))}>"


def make(name: str, *operands) -> Instruction:
    """Build an instruction from its WAT mnemonic and immediates.

    Convenience wrappers: ``make("i32.const", 5)``, ``make("call", 3)``,
    ``make("block", ValType.I32)`` (the value type is wrapped in a
    :class:`BlockType`), ``make("i32.load", MemArg(2, 8))`` or
    ``make("i32.load", 2, 8)`` (align, offset).
    """
    info = opcodes.info(name)
    ops: Tuple = tuple(operands)
    if info.imm == Imm.BLOCKTYPE:
        if not ops:
            ops = (BlockType(None),)
        elif isinstance(ops[0], BlockType):
            ops = (ops[0],)
        elif ops[0] is None:
            ops = (BlockType(None),)
        else:
            ops = (BlockType(ops[0] if isinstance(ops[0], ValType) else ValType(ops[0])),)
    elif info.imm == Imm.MEMARG:
        if not ops:
            ops = (MemArg(),)
        elif isinstance(ops[0], MemArg):
            ops = (ops[0],)
        elif len(ops) == 2:
            ops = (MemArg(int(ops[0]), int(ops[1])),)
        else:
            ops = (MemArg(0, int(ops[0])),)
    elif info.imm == Imm.MEMORY:
        ops = (int(ops[0]) if ops else 0,)
    elif info.imm == Imm.MEMORY_PAIR:
        if len(ops) == 2:
            ops = (int(ops[0]), int(ops[1]))
        else:
            ops = (0, 0)
    elif info.imm == Imm.CALL_INDIRECT:
        if len(ops) == 1:
            ops = (int(ops[0]), 0)
        else:
            ops = (int(ops[0]), int(ops[1]))
    elif info.imm == Imm.LABEL_TABLE:
        targets, default = ops
        ops = (tuple(int(t) for t in targets), int(default))
    elif info.imm == Imm.V128_CONST:
        raw = ops[0]
        if isinstance(raw, int):
            raw = raw.to_bytes(16, "little")
        ops = (bytes(raw),)
        if len(ops[0]) != 16:
            raise ValueError("v128.const immediate must be 16 bytes")
    return Instruction(info, ops)


# Frequently used singletons.
END = make("end")
ELSE = make("else")
RETURN = make("return")
NOP = make("nop")
UNREACHABLE = make("unreachable")
