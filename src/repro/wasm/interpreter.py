"""Threaded-dispatch interpreter over the pre-resolved lowered IR.

This is the execution core shared by the Singlepass and Cranelift back-ends
(:mod:`repro.wasm.compilers`).  Function bodies are lowered once by
:mod:`repro.wasm.lowering` into a flat array of ``(handler, immediate)``
pairs -- handlers resolved to direct function references, branch targets
pre-computed into jump offsets, adjacent instruction pairs fused into
superinstructions -- and the dispatch loop below simply indexes the array and
calls, with no per-step string comparisons or forward scans.

The difference between the two interpreting back-ends is only *when* the
lowering work happens: Singlepass executors lower lazily on a function's
first call (near-zero compile time), Cranelift executors receive the
eagerly-lowered module from compile time.  Numeric semantics are delegated to
:mod:`repro.wasm.values` through the tables in :mod:`repro.wasm.lowering`,
which the code-generating LLVM back-end reuses, so all three back-ends agree
bit-for-bit.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence

from repro.obs import profile as _profile
from repro.wasm.errors import StackExhaustionTrap
from repro.wasm.lowering import (
    LoweredFunction,
    _State,
    build_control_map,
    link,
    lower_function,
    lower_module,
)
from repro.wasm.module import Module
from repro.wasm.runtime import Executor, HostFunction, Instance, WasmFunction

__all__ = ["Interpreter", "MAX_CALL_DEPTH", "build_control_map"]

MAX_CALL_DEPTH = 256


class Interpreter(Executor):
    """The shared threaded-dispatch executor over lowered function bodies.

    ``lowered`` seeds the executor with pre-lowered functions (Cranelift-style
    eager compilation).  ``lazy`` selects Singlepass-style behaviour: nothing
    is lowered until a function's first call.  The default (neither) lowers
    the whole module in :meth:`prepare`.
    """

    name = "interpreter"

    def __init__(
        self,
        lowered: Optional[Sequence[LoweredFunction]] = None,
        lazy: bool = False,
        max_call_depth: int = MAX_CALL_DEPTH,
    ):
        self._functions: Dict[int, LoweredFunction] = (
            dict(enumerate(lowered)) if lowered is not None else {}
        )
        self.lazy = lazy
        self.max_call_depth = max_call_depth

    # ------------------------------------------------------------------ prepare

    def prepare(self, module: Module) -> None:
        """Lower every function ahead of time (eager mode only)."""
        if self.lazy or self._functions:
            return
        self._functions = dict(enumerate(lower_module(module)))

    def configure(self, max_call_depth: Optional[int] = None) -> None:
        """Apply embedder-level execution limits (see :class:`Executor`)."""
        if max_call_depth is not None:
            self.max_call_depth = max_call_depth

    def _lowered(self, module: Module, local_index: int) -> LoweredFunction:
        lowered = self._functions.get(local_index)
        if lowered is None:
            func = module.functions[local_index]
            lowered = lower_function(module, func, module.types[func.type_index])
            self._functions[local_index] = lowered
        return lowered

    # --------------------------------------------------------------------- call

    def call(self, instance: Instance, func_index: int, args: Sequence) -> List:
        target = instance.functions[func_index]
        if isinstance(target, HostFunction):
            result = target(instance, *args)
            if result is None:
                return []
            return list(result) if isinstance(result, (list, tuple)) else [result]
        depth = instance.host_state.get("_call_depth", 0)
        if depth >= self.max_call_depth:
            raise StackExhaustionTrap(depth)
        if depth == 0:
            # Each Wasm call level costs a handful of Python frames (call ->
            # _exec -> call handler -> call_function); make sure the guest
            # hits the Wasm call-depth guard before CPython's own limit.
            # Capped so an extreme max_call_depth cannot push the process
            # limit past C-stack safety (beyond the cap, deep guests get a
            # RecursionError rather than a weakened host-wide guard).
            needed = min(self.max_call_depth, 2048) * 6 + 1000
            if sys.getrecursionlimit() < needed:
                sys.setrecursionlimit(needed)
        instance.host_state["_call_depth"] = depth + 1
        try:
            return self._exec(instance, target, list(args))
        finally:
            instance.host_state["_call_depth"] = depth

    # --------------------------------------------------------------------- exec

    def _exec(self, instance: Instance, target: WasmFunction, args: List) -> List:
        module = instance.module
        local_index = target.func_index - module.num_imported_functions()
        lowered = self._lowered(module, local_index)
        code = lowered.code
        if code is None:
            code = link(lowered)

        st = _State()
        st.instance = instance
        st.memory = instance.memory
        args.extend(lowered.local_defaults)
        st.locals = args
        stack: List = []
        st.stack = stack
        n = len(code)
        # Implicit function frame: branching to it jumps past the end.
        st.frames = [(False, lowered.nresults, 0, n)]

        prof = _profile.ACTIVE
        pc = 0
        if prof is None:
            while pc < n:
                op = code[pc]
                pc = op[0](st, pc, op[1])
        else:
            pc = self._exec_profiled(prof, lowered, local_index, st, code, pc, n)

        if lowered.nresults:
            return stack[len(stack) - lowered.nresults:]
        return []

    def _exec_profiled(self, prof, lowered, local_index: int, st, code, pc: int, n: int) -> int:
        """Instrumented twin of the hot dispatch loop.

        Kept out of line so the common (unprofiled) path pays only one
        ``_profile.ACTIVE`` load per function call.  Counts every
        ``sample_every``-th dispatched handler by name and attributes
        wall-clock self-time to this function (child-call time is subtracted
        by the profiler's enter/exit stack).
        """
        name = lowered.name or f"func[{local_index}]"
        stride = prof.sample_every
        tick = prof.dispatches
        prof.record_ir(name, lowered.ops)
        prof.enter(name)
        try:
            hits = prof.handler_hits
            while pc < n:
                op = code[pc]
                handler = op[0]
                tick += 1
                if tick % stride == 0:
                    hits[handler.__name__] += 1
                pc = handler(st, pc, op[1])
        finally:
            prof.dispatches = tick
            prof.exit(name)
        return pc
