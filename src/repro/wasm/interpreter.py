"""Structured-control-flow interpreter for Wasm function bodies.

This is the execution core shared by the Singlepass and Cranelift back-ends
(:mod:`repro.wasm.compilers`): a value stack, a control-frame stack, and a
dispatch loop over the decoded instruction objects.  The difference between
the two back-ends is only how much work is done ahead of time -- Singlepass
resolves block/else/end matching lazily by scanning forward at run time,
Cranelift precomputes a control map per function at compile time.

Numeric semantics are delegated to :mod:`repro.wasm.values`, which the
code-generating LLVM back-end reuses, so all three back-ends agree bit-for-bit.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.wasm import values as V
from repro.wasm.errors import (
    IndirectCallTrap,
    StackExhaustionTrap,
    Trap,
    UnreachableTrap,
)
from repro.wasm.instructions import BlockType, Instruction, MemArg
from repro.wasm.module import Function, Module
from repro.wasm.runtime import Executor, HostFunction, Instance, WasmFunction
from repro.wasm.types import ValType

MAX_CALL_DEPTH = 256


# ------------------------------------------------------------------ control map


def find_matching(body: Sequence[Instruction], start: int) -> Tuple[Optional[int], int]:
    """Find the ``else``/``end`` indices matching the construct at ``start``.

    ``start`` must index a ``block``, ``loop`` or ``if`` instruction.  Returns
    ``(else_index_or_None, end_index)``.
    """
    depth = 0
    else_index: Optional[int] = None
    i = start + 1
    while i < len(body):
        name = body[i].name
        if name in ("block", "loop", "if"):
            depth += 1
        elif name == "else" and depth == 0:
            else_index = i
        elif name == "end":
            if depth == 0:
                return else_index, i
            depth -= 1
        i += 1
    raise Trap(f"unterminated control construct at instruction {start}")


def build_control_map(body: Sequence[Instruction]) -> Dict[int, Tuple[Optional[int], int]]:
    """Precompute else/end matches for every construct in a function body."""
    result: Dict[int, Tuple[Optional[int], int]] = {}
    stack: List[Tuple[int, Optional[int]]] = []
    for i, instr in enumerate(body):
        name = instr.name
        if name in ("block", "loop", "if"):
            stack.append((i, None))
        elif name == "else":
            if not stack:
                raise Trap(f"else without matching if at instruction {i}")
            start, _ = stack[-1]
            stack[-1] = (start, i)
        elif name == "end":
            if not stack:
                raise Trap(f"unmatched end at instruction {i}")
            start, else_index = stack.pop()
            result[start] = (else_index, i)
    if stack:
        raise Trap(f"unterminated control construct at instruction {stack[-1][0]}")
    return result


# ----------------------------------------------------------------- control frame


@dataclass
class _Frame:
    """One entry of the control stack."""

    kind: str            # "func", "block", "loop", "if"
    arity: int           # values the construct leaves behind when branched to/out of
    height: int          # value-stack height at entry
    start: int           # pc of the first body instruction (for loops: branch target)
    end: int             # pc of the matching end (function: len(body))


# -------------------------------------------------------------------- operations

_I32_BIN = {
    "i32.add": lambda a, b: V.wrap32(a + b),
    "i32.sub": lambda a, b: V.wrap32(a - b),
    "i32.mul": lambda a, b: V.wrap32(a * b),
    "i32.div_s": lambda a, b: V.div_s(a, b, 32),
    "i32.div_u": lambda a, b: V.div_u(a, b, 32),
    "i32.rem_s": lambda a, b: V.rem_s(a, b, 32),
    "i32.rem_u": lambda a, b: V.rem_u(a, b, 32),
    "i32.and": lambda a, b: a & b,
    "i32.or": lambda a, b: a | b,
    "i32.xor": lambda a, b: a ^ b,
    "i32.shl": lambda a, b: V.shl(a, b, 32),
    "i32.shr_s": lambda a, b: V.shr_s(a, b, 32),
    "i32.shr_u": lambda a, b: V.shr_u(a, b, 32),
    "i32.rotl": lambda a, b: V.rotl(a, b, 32),
    "i32.rotr": lambda a, b: V.rotr(a, b, 32),
    "i32.eq": lambda a, b: int(a == b),
    "i32.ne": lambda a, b: int(a != b),
    "i32.lt_s": lambda a, b: int(V.signed32(a) < V.signed32(b)),
    "i32.lt_u": lambda a, b: int(a < b),
    "i32.gt_s": lambda a, b: int(V.signed32(a) > V.signed32(b)),
    "i32.gt_u": lambda a, b: int(a > b),
    "i32.le_s": lambda a, b: int(V.signed32(a) <= V.signed32(b)),
    "i32.le_u": lambda a, b: int(a <= b),
    "i32.ge_s": lambda a, b: int(V.signed32(a) >= V.signed32(b)),
    "i32.ge_u": lambda a, b: int(a >= b),
}

_I64_BIN = {
    "i64.add": lambda a, b: V.wrap64(a + b),
    "i64.sub": lambda a, b: V.wrap64(a - b),
    "i64.mul": lambda a, b: V.wrap64(a * b),
    "i64.div_s": lambda a, b: V.div_s(a, b, 64),
    "i64.div_u": lambda a, b: V.div_u(a, b, 64),
    "i64.rem_s": lambda a, b: V.rem_s(a, b, 64),
    "i64.rem_u": lambda a, b: V.rem_u(a, b, 64),
    "i64.and": lambda a, b: a & b,
    "i64.or": lambda a, b: a | b,
    "i64.xor": lambda a, b: a ^ b,
    "i64.shl": lambda a, b: V.shl(a, b, 64),
    "i64.shr_s": lambda a, b: V.shr_s(a, b, 64),
    "i64.shr_u": lambda a, b: V.shr_u(a, b, 64),
    "i64.rotl": lambda a, b: V.rotl(a, b, 64),
    "i64.rotr": lambda a, b: V.rotr(a, b, 64),
    "i64.eq": lambda a, b: int(a == b),
    "i64.ne": lambda a, b: int(a != b),
    "i64.lt_s": lambda a, b: int(V.signed64(a) < V.signed64(b)),
    "i64.lt_u": lambda a, b: int(a < b),
    "i64.gt_s": lambda a, b: int(V.signed64(a) > V.signed64(b)),
    "i64.gt_u": lambda a, b: int(a > b),
    "i64.le_s": lambda a, b: int(V.signed64(a) <= V.signed64(b)),
    "i64.le_u": lambda a, b: int(a <= b),
    "i64.ge_s": lambda a, b: int(V.signed64(a) >= V.signed64(b)),
    "i64.ge_u": lambda a, b: int(a >= b),
}

_F_BIN = {
    "f32.add": lambda a, b: V.round_f32(a + b),
    "f32.sub": lambda a, b: V.round_f32(a - b),
    "f32.mul": lambda a, b: V.round_f32(a * b),
    "f32.div": lambda a, b: V.round_f32(_fdiv(a, b)),
    "f32.min": lambda a, b: V.round_f32(V.float_min(a, b)),
    "f32.max": lambda a, b: V.round_f32(V.float_max(a, b)),
    "f32.copysign": lambda a, b: V.round_f32(_copysign(a, b)),
    "f64.add": lambda a, b: a + b,
    "f64.sub": lambda a, b: a - b,
    "f64.mul": lambda a, b: a * b,
    "f64.div": lambda a, b: _fdiv(a, b),
    "f64.min": V.float_min,
    "f64.max": V.float_max,
    "f64.copysign": lambda a, b: _copysign(a, b),
    "f32.eq": lambda a, b: int(a == b),
    "f32.ne": lambda a, b: int(a != b),
    "f32.lt": lambda a, b: int(a < b),
    "f32.gt": lambda a, b: int(a > b),
    "f32.le": lambda a, b: int(a <= b),
    "f32.ge": lambda a, b: int(a >= b),
    "f64.eq": lambda a, b: int(a == b),
    "f64.ne": lambda a, b: int(a != b),
    "f64.lt": lambda a, b: int(a < b),
    "f64.gt": lambda a, b: int(a > b),
    "f64.le": lambda a, b: int(a <= b),
    "f64.ge": lambda a, b: int(a >= b),
}


def _fdiv(a: float, b: float) -> float:
    import math

    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.inf if sign > 0 else -math.inf
    return a / b


def _copysign(a: float, b: float) -> float:
    import math

    return math.copysign(a, b)


def _f_unary(name: str, a: float) -> float:
    import math

    base = name.split(".")[1]
    if base == "abs":
        r = abs(a)
    elif base == "neg":
        r = -a
    elif base == "sqrt":
        r = math.sqrt(a) if a >= 0 else math.nan
    elif base == "ceil":
        r = float(math.ceil(a)) if not (math.isnan(a) or math.isinf(a)) else a
    elif base == "floor":
        r = float(math.floor(a)) if not (math.isnan(a) or math.isinf(a)) else a
    elif base == "trunc":
        r = float(math.trunc(a)) if not (math.isnan(a) or math.isinf(a)) else a
    elif base == "nearest":
        r = V.nearest(a)
    else:  # pragma: no cover - table integrity guard
        raise Trap(f"unknown float unary {name}")
    return V.round_f32(r) if name.startswith("f32.") else r


_UNARY_INT = {
    "i32.clz": lambda a: V.clz(a, 32),
    "i32.ctz": lambda a: V.ctz(a, 32),
    "i32.popcnt": lambda a: V.popcnt(a, 32),
    "i64.clz": lambda a: V.clz(a, 64),
    "i64.ctz": lambda a: V.ctz(a, 64),
    "i64.popcnt": lambda a: V.popcnt(a, 64),
    "i32.eqz": lambda a: int(a == 0),
    "i64.eqz": lambda a: int(a == 0),
    "i32.extend8_s": lambda a: V.extend_s(a, 8, 32),
    "i32.extend16_s": lambda a: V.extend_s(a, 16, 32),
    "i64.extend8_s": lambda a: V.extend_s(a, 8, 64),
    "i64.extend16_s": lambda a: V.extend_s(a, 16, 64),
    "i64.extend32_s": lambda a: V.extend_s(a, 32, 64),
}

_CONVERSIONS = {
    "i32.wrap_i64": lambda a: V.wrap32(a),
    "i64.extend_i32_s": lambda a: V.signed32(a) & V.MASK64,
    "i64.extend_i32_u": lambda a: a & V.MASK32,
    "i32.trunc_f32_s": lambda a: V.trunc_to_int(a, 32, True),
    "i32.trunc_f32_u": lambda a: V.trunc_to_int(a, 32, False),
    "i32.trunc_f64_s": lambda a: V.trunc_to_int(a, 32, True),
    "i32.trunc_f64_u": lambda a: V.trunc_to_int(a, 32, False),
    "i64.trunc_f32_s": lambda a: V.trunc_to_int(a, 64, True),
    "i64.trunc_f32_u": lambda a: V.trunc_to_int(a, 64, False),
    "i64.trunc_f64_s": lambda a: V.trunc_to_int(a, 64, True),
    "i64.trunc_f64_u": lambda a: V.trunc_to_int(a, 64, False),
    "f32.convert_i32_s": lambda a: V.round_f32(float(V.signed32(a))),
    "f32.convert_i32_u": lambda a: V.round_f32(float(a & V.MASK32)),
    "f32.convert_i64_s": lambda a: V.round_f32(float(V.signed64(a))),
    "f32.convert_i64_u": lambda a: V.round_f32(float(a & V.MASK64)),
    "f64.convert_i32_s": lambda a: float(V.signed32(a)),
    "f64.convert_i32_u": lambda a: float(a & V.MASK32),
    "f64.convert_i64_s": lambda a: float(V.signed64(a)),
    "f64.convert_i64_u": lambda a: float(a & V.MASK64),
    "f32.demote_f64": lambda a: V.round_f32(a),
    "f64.promote_f32": lambda a: float(a),
    "i32.reinterpret_f32": V.reinterpret_f32_to_i32,
    "i64.reinterpret_f64": V.reinterpret_f64_to_i64,
    "f32.reinterpret_i32": V.reinterpret_i32_to_f32,
    "f64.reinterpret_i64": V.reinterpret_i64_to_f64,
}

# Memory access descriptors: name -> (nbytes, kind) where kind selects the
# store/load conversion ("iN_s", "iN_u", "i", "f32", "f64", "v128").
_LOADS = {
    "i32.load": (4, "u"),
    "i64.load": (8, "u"),
    "f32.load": (4, "f32"),
    "f64.load": (8, "f64"),
    "i32.load8_s": (1, "s32"),
    "i32.load8_u": (1, "u"),
    "i32.load16_s": (2, "s32"),
    "i32.load16_u": (2, "u"),
    "i64.load8_s": (1, "s64"),
    "i64.load8_u": (1, "u"),
    "i64.load16_s": (2, "s64"),
    "i64.load16_u": (2, "u"),
    "i64.load32_s": (4, "s64"),
    "i64.load32_u": (4, "u"),
    "v128.load": (16, "v128"),
}

_STORES = {
    "i32.store": 4,
    "i64.store": 8,
    "f32.store": -4,
    "f64.store": -8,
    "i32.store8": 1,
    "i32.store16": 2,
    "i64.store8": 1,
    "i64.store16": 2,
    "i64.store32": 4,
    "v128.store": 16,
}


def _simd_lanes(name: str) -> Tuple[str, int, int]:
    """Lane format of a SIMD op name: (struct char, lane count, lane bytes)."""
    shape = name.split(".")[0]
    return {
        "i8x16": ("b", 16, 1),
        "i32x4": ("i", 4, 4),
        "i64x2": ("q", 2, 8),
        "f32x4": ("f", 4, 4),
        "f64x2": ("d", 2, 8),
    }[shape]


def _simd_binary(name: str, a: bytes, b: bytes) -> bytes:
    if name.startswith("v128."):
        ia = int.from_bytes(a, "little")
        ib = int.from_bytes(b, "little")
        if name == "v128.and":
            r = ia & ib
        elif name == "v128.or":
            r = ia | ib
        elif name == "v128.xor":
            r = ia ^ ib
        else:  # pragma: no cover
            raise Trap(f"unknown v128 op {name}")
        return r.to_bytes(16, "little")
    fmt, count, _size = _simd_lanes(name)
    la = struct.unpack(f"<{count}{fmt}", a)
    lb = struct.unpack(f"<{count}{fmt}", b)
    op = name.split(".")[1]
    int_lane = fmt in ("b", "i", "q")
    out = []
    for x, y in zip(la, lb):
        if op == "add":
            v = x + y
        elif op == "sub":
            v = x - y
        elif op == "mul":
            v = x * y
        elif op == "div":
            v = _fdiv(x, y)
        elif op == "min":
            v = V.float_min(x, y)
        elif op == "max":
            v = V.float_max(x, y)
        else:  # pragma: no cover
            raise Trap(f"unknown SIMD lane op {name}")
        if int_lane:
            bits = 8 * _size
            v = V.extend_s(v & ((1 << bits) - 1), bits, bits) if False else v
            # wrap to signed lane range for struct packing
            lane_bits = {"b": 8, "i": 32, "q": 64}[fmt]
            v &= (1 << lane_bits) - 1
            if v >= 1 << (lane_bits - 1):
                v -= 1 << lane_bits
        elif fmt == "f":
            v = V.round_f32(v)
        out.append(v)
    return struct.pack(f"<{count}{fmt}", *out)


# ------------------------------------------------------------------ interpreter


class Interpreter(Executor):
    """The shared dispatch-loop executor.

    ``precompute`` selects Cranelift-style behaviour (control maps computed in
    :meth:`prepare`) versus Singlepass-style behaviour (forward scans at run
    time).
    """

    name = "interpreter"

    def __init__(self, precompute: bool = True, max_call_depth: int = MAX_CALL_DEPTH):
        self.precompute = precompute
        self.max_call_depth = max_call_depth
        self._control_maps: Dict[int, Dict[int, Tuple[Optional[int], int]]] = {}

    # ------------------------------------------------------------------ prepare

    def prepare(self, module: Module) -> None:
        """Precompute control maps for every function (Cranelift mode only)."""
        if not self.precompute:
            return
        for i, func in enumerate(module.functions):
            self._control_maps[i] = build_control_map(func.body)

    def _matching(self, module: Module, local_index: int, body, pc: int) -> Tuple[Optional[int], int]:
        if self.precompute:
            cmap = self._control_maps.get(local_index)
            if cmap is None:
                cmap = build_control_map(body)
                self._control_maps[local_index] = cmap
            return cmap[pc]
        return find_matching(body, pc)

    # --------------------------------------------------------------------- call

    def call(self, instance: Instance, func_index: int, args: Sequence) -> List:
        target = instance.functions[func_index]
        if isinstance(target, HostFunction):
            result = target(instance, *args)
            if result is None:
                return []
            return list(result) if isinstance(result, (list, tuple)) else [result]
        depth = instance.host_state.get("_call_depth", 0)
        if depth >= self.max_call_depth:
            raise StackExhaustionTrap(depth)
        instance.host_state["_call_depth"] = depth + 1
        try:
            return self._exec(instance, target, list(args))
        finally:
            instance.host_state["_call_depth"] = depth

    # --------------------------------------------------------------------- exec

    def _exec(self, instance: Instance, target: WasmFunction, args: List) -> List:
        module = instance.module
        func = target.definition
        func_type = target.func_type
        local_index = target.func_index - module.num_imported_functions()

        locals_: List = list(args)
        for vt in func.locals:
            locals_.append(V.default_value(vt.short_name))

        body = func.body
        stack: List = []
        frames: List[_Frame] = [
            _Frame(kind="func", arity=len(func_type.results), height=0, start=0, end=len(body))
        ]
        memory = instance.memory
        pc = 0

        def do_branch(depth: int) -> int:
            """Execute a branch to label ``depth``; returns the pc to continue at."""
            frame = frames[-1 - depth]
            if frame.kind == "loop":
                # Branching to a loop label repeats the loop: keep the loop
                # frame, drop everything nested inside it.
                if depth:
                    del frames[len(frames) - depth :]
                del stack[frame.height :]
                return frame.start
            # block / if / func: the branch carries the label's result values.
            results = stack[len(stack) - frame.arity :] if frame.arity else []
            del frames[len(frames) - 1 - depth :]
            del stack[frame.height :]
            stack.extend(results)
            if frame.kind == "func":
                return len(body)
            return frame.end + 1  # continue after the matching 'end'

        while pc < len(body):
            instr = body[pc]
            name = instr.name

            # ----- control ----------------------------------------------------
            if name == "nop":
                pc += 1
            elif name == "unreachable":
                raise UnreachableTrap()
            elif name in ("block", "loop"):
                else_idx, end_idx = self._matching(module, local_index, body, pc)
                bt: BlockType = instr.operands[0]
                frames.append(
                    _Frame(
                        kind=name,
                        arity=bt.arity() if name == "block" else 0,
                        height=len(stack),
                        start=pc + 1,
                        end=end_idx,
                    )
                )
                pc += 1
            elif name == "if":
                else_idx, end_idx = self._matching(module, local_index, body, pc)
                bt = instr.operands[0]
                cond = stack.pop()
                frames.append(
                    _Frame(kind="if", arity=bt.arity(), height=len(stack), start=pc + 1, end=end_idx)
                )
                if cond:
                    pc += 1
                else:
                    pc = (else_idx + 1) if else_idx is not None else end_idx
            elif name == "else":
                # Reached only by falling out of the then-arm: skip to the end.
                pc = frames[-1].end
            elif name == "end":
                frames.pop()
                pc += 1
            elif name == "br":
                pc = do_branch(instr.operands[0])
            elif name == "br_if":
                if stack.pop():
                    pc = do_branch(instr.operands[0])
                else:
                    pc += 1
            elif name == "br_table":
                targets, default = instr.operands
                idx = stack.pop()
                depth = targets[idx] if idx < len(targets) else default
                pc = do_branch(depth)
            elif name == "return":
                results = stack[len(stack) - len(func_type.results) :] if func_type.results else []
                return list(results)
            elif name == "call":
                callee_index = instr.operands[0]
                callee_type = instance.function_type(callee_index)
                nargs = len(callee_type.params)
                call_args = stack[len(stack) - nargs :] if nargs else []
                del stack[len(stack) - nargs :]
                results = instance.call_function(callee_index, call_args)
                stack.extend(results)
                pc += 1
            elif name == "call_indirect":
                type_index, table_index = instr.operands
                expected = module.types[type_index]
                elem_index = stack.pop()
                if table_index >= len(instance.tables):
                    raise IndirectCallTrap(f"no table at index {table_index}")
                callee_index = instance.tables[table_index].get(elem_index)
                if callee_index is None:
                    raise IndirectCallTrap(f"null funcref at table slot {elem_index}")
                if instance.function_type(callee_index) != expected:
                    raise IndirectCallTrap("indirect call signature mismatch")
                nargs = len(expected.params)
                call_args = stack[len(stack) - nargs :] if nargs else []
                del stack[len(stack) - nargs :]
                stack.extend(instance.call_function(callee_index, call_args))
                pc += 1

            # ----- parametric / variable --------------------------------------
            elif name == "drop":
                stack.pop()
                pc += 1
            elif name == "select":
                cond = stack.pop()
                b = stack.pop()
                a = stack.pop()
                stack.append(a if cond else b)
                pc += 1
            elif name == "local.get":
                stack.append(locals_[instr.operands[0]])
                pc += 1
            elif name == "local.set":
                locals_[instr.operands[0]] = stack.pop()
                pc += 1
            elif name == "local.tee":
                locals_[instr.operands[0]] = stack[-1]
                pc += 1
            elif name == "global.get":
                stack.append(instance.globals[instr.operands[0]].value)
                pc += 1
            elif name == "global.set":
                instance.globals[instr.operands[0]].set(stack.pop())
                pc += 1

            # ----- constants ---------------------------------------------------
            elif name == "i32.const":
                stack.append(V.wrap32(instr.operands[0]))
                pc += 1
            elif name == "i64.const":
                stack.append(V.wrap64(instr.operands[0]))
                pc += 1
            elif name in ("f32.const", "f64.const"):
                stack.append(float(instr.operands[0]))
                pc += 1
            elif name == "v128.const":
                stack.append(bytes(instr.operands[0]))
                pc += 1

            # ----- memory ------------------------------------------------------
            elif name in _LOADS:
                memarg: MemArg = instr.operands[0]
                addr = stack.pop() + memarg.offset
                nbytes, kind = _LOADS[name]
                if kind == "f32":
                    stack.append(memory.load_f32(addr))
                elif kind == "f64":
                    stack.append(memory.load_f64(addr))
                elif kind == "v128":
                    stack.append(memory.read(addr, 16))
                elif kind == "s32":
                    stack.append(memory.load_int(addr, nbytes, signed=True) & V.MASK32)
                elif kind == "s64":
                    stack.append(memory.load_int(addr, nbytes, signed=True) & V.MASK64)
                else:
                    stack.append(memory.load_int(addr, nbytes, signed=False))
                pc += 1
            elif name in _STORES:
                memarg = instr.operands[0]
                value = stack.pop()
                addr = stack.pop() + memarg.offset
                spec = _STORES[name]
                if name == "f32.store":
                    memory.store_f32(addr, value)
                elif name == "f64.store":
                    memory.store_f64(addr, value)
                elif name == "v128.store":
                    memory.write(addr, bytes(value))
                else:
                    memory.store_int(addr, value, abs(spec))
                pc += 1
            elif name == "memory.size":
                stack.append(memory.pages)
                pc += 1
            elif name == "memory.grow":
                delta = stack.pop()
                stack.append(memory.grow(delta) & V.MASK32)
                pc += 1

            # ----- numeric -----------------------------------------------------
            elif name in _I32_BIN:
                b = stack.pop()
                a = stack.pop()
                stack.append(_I32_BIN[name](a, b))
                pc += 1
            elif name in _I64_BIN:
                b = stack.pop()
                a = stack.pop()
                stack.append(_I64_BIN[name](a, b))
                pc += 1
            elif name in _F_BIN:
                b = stack.pop()
                a = stack.pop()
                stack.append(_F_BIN[name](a, b))
                pc += 1
            elif name in _UNARY_INT:
                stack.append(_UNARY_INT[name](stack.pop()))
                pc += 1
            elif name in _CONVERSIONS:
                stack.append(_CONVERSIONS[name](stack.pop()))
                pc += 1
            elif name.startswith(("f32.", "f64.")) and name.split(".")[1] in (
                "abs", "neg", "sqrt", "ceil", "floor", "trunc", "nearest",
            ):
                stack.append(_f_unary(name, stack.pop()))
                pc += 1

            # ----- SIMD --------------------------------------------------------
            elif name.endswith(".splat"):
                fmt, count, size = _simd_lanes(name)
                value = stack.pop()
                if fmt in ("f", "d"):
                    lane = struct.pack(f"<{fmt}", value)
                else:
                    lane = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
                stack.append(lane * count)
                pc += 1
            elif ".extract_lane" in name:
                fmt, count, size = _simd_lanes(name)
                vec = stack.pop()
                lane_idx = instr.operands[0]
                lane = vec[lane_idx * size : (lane_idx + 1) * size]
                if fmt in ("f", "d"):
                    stack.append(struct.unpack(f"<{fmt}", lane)[0])
                else:
                    stack.append(int.from_bytes(lane, "little"))
                pc += 1
            elif ".replace_lane" in name:
                fmt, count, size = _simd_lanes(name)
                value = stack.pop()
                vec = bytearray(stack.pop())
                lane_idx = instr.operands[0]
                if fmt in ("f", "d"):
                    vec[lane_idx * size : (lane_idx + 1) * size] = struct.pack(f"<{fmt}", value)
                else:
                    vec[lane_idx * size : (lane_idx + 1) * size] = (
                        value & ((1 << (8 * size)) - 1)
                    ).to_bytes(size, "little")
                stack.append(bytes(vec))
                pc += 1
            elif name == "v128.not":
                stack.append((~int.from_bytes(stack.pop(), "little") & (2**128 - 1)).to_bytes(16, "little"))
                pc += 1
            elif name == "f64x2.sqrt":
                import math

                a, b = struct.unpack("<2d", stack.pop())
                stack.append(struct.pack("<2d", math.sqrt(a) if a >= 0 else math.nan,
                                         math.sqrt(b) if b >= 0 else math.nan))
                pc += 1
            elif instr.info.is_simd:
                b = stack.pop()
                a = stack.pop()
                stack.append(_simd_binary(name, a, b))
                pc += 1
            else:
                raise Trap(f"instruction {name!r} not implemented by the interpreter")

        # Fell off the end of the body: return the declared results.
        if func_type.results:
            return list(stack[len(stack) - len(func_type.results) :])
        return []
