"""WebAssembly opcode table.

Each opcode carries its binary encoding, the kind of immediate operands it
takes, and -- for plain numeric instructions -- its stack signature (types
popped and pushed), which both the validator and the compiler back-ends use.
Control-flow, variable, call and memory instructions have context-dependent
signatures and are special-cased by the validator.

The table covers the Wasm 1.0 core instructions used by C/C++ HPC codes
compiled through the (customised) WASI-SDK, plus the subset of the
fixed-width SIMD proposal the paper enables with ``-msimd128``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.wasm.types import ValType

I32 = ValType.I32
I64 = ValType.I64
F32 = ValType.F32
F64 = ValType.F64
V128 = ValType.V128


class Imm(Enum):
    """Kinds of immediate operands an instruction can carry."""

    NONE = "none"
    BLOCKTYPE = "blocktype"        # block/loop/if
    LABEL = "label"                # br, br_if
    LABEL_TABLE = "label_table"    # br_table
    FUNC = "func"                  # call
    CALL_INDIRECT = "call_indirect"  # type index + table index
    LOCAL = "local"                # local.get/set/tee
    GLOBAL = "global"              # global.get/set
    MEMARG = "memarg"              # loads/stores: align + offset
    MEMORY = "memory"              # memory.size/grow/fill: memory index (0x00)
    MEMORY_PAIR = "memory_pair"    # memory.copy: dst + src memory indices
    I32_CONST = "i32"
    I64_CONST = "i64"
    F32_CONST = "f32"
    F64_CONST = "f64"
    V128_CONST = "v128"
    LANE = "lane"                  # SIMD extract/replace lane


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one instruction."""

    name: str
    opcode: int                    # full opcode; SIMD opcodes are 0xFD00 | sub
    imm: Imm = Imm.NONE
    pops: Tuple[ValType, ...] = ()
    pushes: Tuple[ValType, ...] = ()
    is_simd: bool = False


# Registry keyed both by name and by opcode.
BY_NAME: Dict[str, OpcodeInfo] = {}
BY_OPCODE: Dict[int, OpcodeInfo] = {}


def _op(name: str, opcode: int, imm: Imm = Imm.NONE, pops=(), pushes=(), simd: bool = False) -> OpcodeInfo:
    info = OpcodeInfo(name=name, opcode=opcode, imm=imm, pops=tuple(pops), pushes=tuple(pushes), is_simd=simd)
    if name in BY_NAME:  # pragma: no cover - table integrity guard
        raise ValueError(f"duplicate opcode name {name}")
    if opcode in BY_OPCODE:  # pragma: no cover - table integrity guard
        raise ValueError(f"duplicate opcode 0x{opcode:x} ({name})")
    BY_NAME[name] = info
    BY_OPCODE[opcode] = info
    return info


# --------------------------------------------------------------------- control
_op("unreachable", 0x00)
_op("nop", 0x01)
_op("block", 0x02, Imm.BLOCKTYPE)
_op("loop", 0x03, Imm.BLOCKTYPE)
_op("if", 0x04, Imm.BLOCKTYPE, pops=(I32,))
_op("else", 0x05)
_op("end", 0x0B)
_op("br", 0x0C, Imm.LABEL)
_op("br_if", 0x0D, Imm.LABEL, pops=(I32,))
_op("br_table", 0x0E, Imm.LABEL_TABLE, pops=(I32,))
_op("return", 0x0F)
_op("call", 0x10, Imm.FUNC)
_op("call_indirect", 0x11, Imm.CALL_INDIRECT)

# ------------------------------------------------------------------ parametric
_op("drop", 0x1A)
_op("select", 0x1B)

# -------------------------------------------------------------------- variable
_op("local.get", 0x20, Imm.LOCAL)
_op("local.set", 0x21, Imm.LOCAL)
_op("local.tee", 0x22, Imm.LOCAL)
_op("global.get", 0x23, Imm.GLOBAL)
_op("global.set", 0x24, Imm.GLOBAL)

# ---------------------------------------------------------------------- memory
_op("i32.load", 0x28, Imm.MEMARG, pops=(I32,), pushes=(I32,))
_op("i64.load", 0x29, Imm.MEMARG, pops=(I32,), pushes=(I64,))
_op("f32.load", 0x2A, Imm.MEMARG, pops=(I32,), pushes=(F32,))
_op("f64.load", 0x2B, Imm.MEMARG, pops=(I32,), pushes=(F64,))
_op("i32.load8_s", 0x2C, Imm.MEMARG, pops=(I32,), pushes=(I32,))
_op("i32.load8_u", 0x2D, Imm.MEMARG, pops=(I32,), pushes=(I32,))
_op("i32.load16_s", 0x2E, Imm.MEMARG, pops=(I32,), pushes=(I32,))
_op("i32.load16_u", 0x2F, Imm.MEMARG, pops=(I32,), pushes=(I32,))
_op("i64.load8_s", 0x30, Imm.MEMARG, pops=(I32,), pushes=(I64,))
_op("i64.load8_u", 0x31, Imm.MEMARG, pops=(I32,), pushes=(I64,))
_op("i64.load16_s", 0x32, Imm.MEMARG, pops=(I32,), pushes=(I64,))
_op("i64.load16_u", 0x33, Imm.MEMARG, pops=(I32,), pushes=(I64,))
_op("i64.load32_s", 0x34, Imm.MEMARG, pops=(I32,), pushes=(I64,))
_op("i64.load32_u", 0x35, Imm.MEMARG, pops=(I32,), pushes=(I64,))
_op("i32.store", 0x36, Imm.MEMARG, pops=(I32, I32))
_op("i64.store", 0x37, Imm.MEMARG, pops=(I32, I64))
_op("f32.store", 0x38, Imm.MEMARG, pops=(I32, F32))
_op("f64.store", 0x39, Imm.MEMARG, pops=(I32, F64))
_op("i32.store8", 0x3A, Imm.MEMARG, pops=(I32, I32))
_op("i32.store16", 0x3B, Imm.MEMARG, pops=(I32, I32))
_op("i64.store8", 0x3C, Imm.MEMARG, pops=(I32, I64))
_op("i64.store16", 0x3D, Imm.MEMARG, pops=(I32, I64))
_op("i64.store32", 0x3E, Imm.MEMARG, pops=(I32, I64))
_op("memory.size", 0x3F, Imm.MEMORY, pushes=(I32,))
_op("memory.grow", 0x40, Imm.MEMORY, pops=(I32,), pushes=(I32,))

# ------------------------------------------------------------------- constants
_op("i32.const", 0x41, Imm.I32_CONST, pushes=(I32,))
_op("i64.const", 0x42, Imm.I64_CONST, pushes=(I64,))
_op("f32.const", 0x43, Imm.F32_CONST, pushes=(F32,))
_op("f64.const", 0x44, Imm.F64_CONST, pushes=(F64,))

# ------------------------------------------------------------- i32 comparisons
_op("i32.eqz", 0x45, pops=(I32,), pushes=(I32,))
_op("i32.eq", 0x46, pops=(I32, I32), pushes=(I32,))
_op("i32.ne", 0x47, pops=(I32, I32), pushes=(I32,))
_op("i32.lt_s", 0x48, pops=(I32, I32), pushes=(I32,))
_op("i32.lt_u", 0x49, pops=(I32, I32), pushes=(I32,))
_op("i32.gt_s", 0x4A, pops=(I32, I32), pushes=(I32,))
_op("i32.gt_u", 0x4B, pops=(I32, I32), pushes=(I32,))
_op("i32.le_s", 0x4C, pops=(I32, I32), pushes=(I32,))
_op("i32.le_u", 0x4D, pops=(I32, I32), pushes=(I32,))
_op("i32.ge_s", 0x4E, pops=(I32, I32), pushes=(I32,))
_op("i32.ge_u", 0x4F, pops=(I32, I32), pushes=(I32,))

# ------------------------------------------------------------- i64 comparisons
_op("i64.eqz", 0x50, pops=(I64,), pushes=(I32,))
_op("i64.eq", 0x51, pops=(I64, I64), pushes=(I32,))
_op("i64.ne", 0x52, pops=(I64, I64), pushes=(I32,))
_op("i64.lt_s", 0x53, pops=(I64, I64), pushes=(I32,))
_op("i64.lt_u", 0x54, pops=(I64, I64), pushes=(I32,))
_op("i64.gt_s", 0x55, pops=(I64, I64), pushes=(I32,))
_op("i64.gt_u", 0x56, pops=(I64, I64), pushes=(I32,))
_op("i64.le_s", 0x57, pops=(I64, I64), pushes=(I32,))
_op("i64.le_u", 0x58, pops=(I64, I64), pushes=(I32,))
_op("i64.ge_s", 0x59, pops=(I64, I64), pushes=(I32,))
_op("i64.ge_u", 0x5A, pops=(I64, I64), pushes=(I32,))

# ------------------------------------------------------------- f32 comparisons
_op("f32.eq", 0x5B, pops=(F32, F32), pushes=(I32,))
_op("f32.ne", 0x5C, pops=(F32, F32), pushes=(I32,))
_op("f32.lt", 0x5D, pops=(F32, F32), pushes=(I32,))
_op("f32.gt", 0x5E, pops=(F32, F32), pushes=(I32,))
_op("f32.le", 0x5F, pops=(F32, F32), pushes=(I32,))
_op("f32.ge", 0x60, pops=(F32, F32), pushes=(I32,))

# ------------------------------------------------------------- f64 comparisons
_op("f64.eq", 0x61, pops=(F64, F64), pushes=(I32,))
_op("f64.ne", 0x62, pops=(F64, F64), pushes=(I32,))
_op("f64.lt", 0x63, pops=(F64, F64), pushes=(I32,))
_op("f64.gt", 0x64, pops=(F64, F64), pushes=(I32,))
_op("f64.le", 0x65, pops=(F64, F64), pushes=(I32,))
_op("f64.ge", 0x66, pops=(F64, F64), pushes=(I32,))

# -------------------------------------------------------------- i32 arithmetic
_op("i32.clz", 0x67, pops=(I32,), pushes=(I32,))
_op("i32.ctz", 0x68, pops=(I32,), pushes=(I32,))
_op("i32.popcnt", 0x69, pops=(I32,), pushes=(I32,))
_op("i32.add", 0x6A, pops=(I32, I32), pushes=(I32,))
_op("i32.sub", 0x6B, pops=(I32, I32), pushes=(I32,))
_op("i32.mul", 0x6C, pops=(I32, I32), pushes=(I32,))
_op("i32.div_s", 0x6D, pops=(I32, I32), pushes=(I32,))
_op("i32.div_u", 0x6E, pops=(I32, I32), pushes=(I32,))
_op("i32.rem_s", 0x6F, pops=(I32, I32), pushes=(I32,))
_op("i32.rem_u", 0x70, pops=(I32, I32), pushes=(I32,))
_op("i32.and", 0x71, pops=(I32, I32), pushes=(I32,))
_op("i32.or", 0x72, pops=(I32, I32), pushes=(I32,))
_op("i32.xor", 0x73, pops=(I32, I32), pushes=(I32,))
_op("i32.shl", 0x74, pops=(I32, I32), pushes=(I32,))
_op("i32.shr_s", 0x75, pops=(I32, I32), pushes=(I32,))
_op("i32.shr_u", 0x76, pops=(I32, I32), pushes=(I32,))
_op("i32.rotl", 0x77, pops=(I32, I32), pushes=(I32,))
_op("i32.rotr", 0x78, pops=(I32, I32), pushes=(I32,))

# -------------------------------------------------------------- i64 arithmetic
_op("i64.clz", 0x79, pops=(I64,), pushes=(I64,))
_op("i64.ctz", 0x7A, pops=(I64,), pushes=(I64,))
_op("i64.popcnt", 0x7B, pops=(I64,), pushes=(I64,))
_op("i64.add", 0x7C, pops=(I64, I64), pushes=(I64,))
_op("i64.sub", 0x7D, pops=(I64, I64), pushes=(I64,))
_op("i64.mul", 0x7E, pops=(I64, I64), pushes=(I64,))
_op("i64.div_s", 0x7F, pops=(I64, I64), pushes=(I64,))
_op("i64.div_u", 0x80, pops=(I64, I64), pushes=(I64,))
_op("i64.rem_s", 0x81, pops=(I64, I64), pushes=(I64,))
_op("i64.rem_u", 0x82, pops=(I64, I64), pushes=(I64,))
_op("i64.and", 0x83, pops=(I64, I64), pushes=(I64,))
_op("i64.or", 0x84, pops=(I64, I64), pushes=(I64,))
_op("i64.xor", 0x85, pops=(I64, I64), pushes=(I64,))
_op("i64.shl", 0x86, pops=(I64, I64), pushes=(I64,))
_op("i64.shr_s", 0x87, pops=(I64, I64), pushes=(I64,))
_op("i64.shr_u", 0x88, pops=(I64, I64), pushes=(I64,))
_op("i64.rotl", 0x89, pops=(I64, I64), pushes=(I64,))
_op("i64.rotr", 0x8A, pops=(I64, I64), pushes=(I64,))

# -------------------------------------------------------------- f32 arithmetic
_op("f32.abs", 0x8B, pops=(F32,), pushes=(F32,))
_op("f32.neg", 0x8C, pops=(F32,), pushes=(F32,))
_op("f32.ceil", 0x8D, pops=(F32,), pushes=(F32,))
_op("f32.floor", 0x8E, pops=(F32,), pushes=(F32,))
_op("f32.trunc", 0x8F, pops=(F32,), pushes=(F32,))
_op("f32.nearest", 0x90, pops=(F32,), pushes=(F32,))
_op("f32.sqrt", 0x91, pops=(F32,), pushes=(F32,))
_op("f32.add", 0x92, pops=(F32, F32), pushes=(F32,))
_op("f32.sub", 0x93, pops=(F32, F32), pushes=(F32,))
_op("f32.mul", 0x94, pops=(F32, F32), pushes=(F32,))
_op("f32.div", 0x95, pops=(F32, F32), pushes=(F32,))
_op("f32.min", 0x96, pops=(F32, F32), pushes=(F32,))
_op("f32.max", 0x97, pops=(F32, F32), pushes=(F32,))
_op("f32.copysign", 0x98, pops=(F32, F32), pushes=(F32,))

# -------------------------------------------------------------- f64 arithmetic
_op("f64.abs", 0x99, pops=(F64,), pushes=(F64,))
_op("f64.neg", 0x9A, pops=(F64,), pushes=(F64,))
_op("f64.ceil", 0x9B, pops=(F64,), pushes=(F64,))
_op("f64.floor", 0x9C, pops=(F64,), pushes=(F64,))
_op("f64.trunc", 0x9D, pops=(F64,), pushes=(F64,))
_op("f64.nearest", 0x9E, pops=(F64,), pushes=(F64,))
_op("f64.sqrt", 0x9F, pops=(F64,), pushes=(F64,))
_op("f64.add", 0xA0, pops=(F64, F64), pushes=(F64,))
_op("f64.sub", 0xA1, pops=(F64, F64), pushes=(F64,))
_op("f64.mul", 0xA2, pops=(F64, F64), pushes=(F64,))
_op("f64.div", 0xA3, pops=(F64, F64), pushes=(F64,))
_op("f64.min", 0xA4, pops=(F64, F64), pushes=(F64,))
_op("f64.max", 0xA5, pops=(F64, F64), pushes=(F64,))
_op("f64.copysign", 0xA6, pops=(F64, F64), pushes=(F64,))

# ----------------------------------------------------------------- conversions
_op("i32.wrap_i64", 0xA7, pops=(I64,), pushes=(I32,))
_op("i32.trunc_f32_s", 0xA8, pops=(F32,), pushes=(I32,))
_op("i32.trunc_f32_u", 0xA9, pops=(F32,), pushes=(I32,))
_op("i32.trunc_f64_s", 0xAA, pops=(F64,), pushes=(I32,))
_op("i32.trunc_f64_u", 0xAB, pops=(F64,), pushes=(I32,))
_op("i64.extend_i32_s", 0xAC, pops=(I32,), pushes=(I64,))
_op("i64.extend_i32_u", 0xAD, pops=(I32,), pushes=(I64,))
_op("i64.trunc_f32_s", 0xAE, pops=(F32,), pushes=(I64,))
_op("i64.trunc_f32_u", 0xAF, pops=(F32,), pushes=(I64,))
_op("i64.trunc_f64_s", 0xB0, pops=(F64,), pushes=(I64,))
_op("i64.trunc_f64_u", 0xB1, pops=(F64,), pushes=(I64,))
_op("f32.convert_i32_s", 0xB2, pops=(I32,), pushes=(F32,))
_op("f32.convert_i32_u", 0xB3, pops=(I32,), pushes=(F32,))
_op("f32.convert_i64_s", 0xB4, pops=(I64,), pushes=(F32,))
_op("f32.convert_i64_u", 0xB5, pops=(I64,), pushes=(F32,))
_op("f32.demote_f64", 0xB6, pops=(F64,), pushes=(F32,))
_op("f64.convert_i32_s", 0xB7, pops=(I32,), pushes=(F64,))
_op("f64.convert_i32_u", 0xB8, pops=(I32,), pushes=(F64,))
_op("f64.convert_i64_s", 0xB9, pops=(I64,), pushes=(F64,))
_op("f64.convert_i64_u", 0xBA, pops=(I64,), pushes=(F64,))
_op("f64.promote_f32", 0xBB, pops=(F32,), pushes=(F64,))
_op("i32.reinterpret_f32", 0xBC, pops=(F32,), pushes=(I32,))
_op("i64.reinterpret_f64", 0xBD, pops=(F64,), pushes=(I64,))
_op("f32.reinterpret_i32", 0xBE, pops=(I32,), pushes=(F32,))
_op("f64.reinterpret_i64", 0xBF, pops=(I64,), pushes=(F64,))
_op("i32.extend8_s", 0xC0, pops=(I32,), pushes=(I32,))
_op("i32.extend16_s", 0xC1, pops=(I32,), pushes=(I32,))
_op("i64.extend8_s", 0xC2, pops=(I64,), pushes=(I64,))
_op("i64.extend16_s", 0xC3, pops=(I64,), pushes=(I64,))
_op("i64.extend32_s", 0xC4, pops=(I64,), pushes=(I64,))

# ---------------------------------------------------- bulk memory (0xFC prefix)
# Opcodes are 0xFC00 | subopcode, matching the bulk-memory-operations proposal.
_op("memory.copy", 0xFC0A, Imm.MEMORY_PAIR, pops=(I32, I32, I32))
_op("memory.fill", 0xFC0B, Imm.MEMORY, pops=(I32, I32, I32))

# ----------------------------------------------------------- SIMD (0xFD prefix)
# Opcodes are 0xFD00 | subopcode, matching the fixed-width SIMD proposal.
def _simd(name: str, sub: int, imm: Imm = Imm.NONE, pops=(), pushes=()) -> OpcodeInfo:
    return _op(name, 0xFD00 | sub, imm, pops, pushes, simd=True)


_simd("v128.load", 0x00, Imm.MEMARG, pops=(I32,), pushes=(V128,))
_simd("v128.store", 0x0B, Imm.MEMARG, pops=(I32, V128))
_simd("v128.const", 0x0C, Imm.V128_CONST, pushes=(V128,))
_simd("i8x16.splat", 0x0F, pops=(I32,), pushes=(V128,))
_simd("i16x8.splat", 0x10, pops=(I32,), pushes=(V128,))
_simd("i32x4.splat", 0x11, pops=(I32,), pushes=(V128,))
_simd("i64x2.splat", 0x12, pops=(I64,), pushes=(V128,))
_simd("f32x4.splat", 0x13, pops=(F32,), pushes=(V128,))
_simd("f64x2.splat", 0x14, pops=(F64,), pushes=(V128,))
_simd("i8x16.extract_lane_s", 0x15, Imm.LANE, pops=(V128,), pushes=(I32,))
_simd("i8x16.extract_lane_u", 0x16, Imm.LANE, pops=(V128,), pushes=(I32,))
_simd("i8x16.replace_lane", 0x17, Imm.LANE, pops=(V128, I32), pushes=(V128,))
_simd("i16x8.extract_lane_s", 0x18, Imm.LANE, pops=(V128,), pushes=(I32,))
_simd("i16x8.extract_lane_u", 0x19, Imm.LANE, pops=(V128,), pushes=(I32,))
_simd("i16x8.replace_lane", 0x1A, Imm.LANE, pops=(V128, I32), pushes=(V128,))
_simd("i32x4.extract_lane", 0x1B, Imm.LANE, pops=(V128,), pushes=(I32,))
_simd("i32x4.replace_lane", 0x1C, Imm.LANE, pops=(V128, I32), pushes=(V128,))
_simd("i64x2.extract_lane", 0x1D, Imm.LANE, pops=(V128,), pushes=(I64,))
_simd("i64x2.replace_lane", 0x1E, Imm.LANE, pops=(V128, I64), pushes=(V128,))
_simd("f32x4.extract_lane", 0x1F, Imm.LANE, pops=(V128,), pushes=(F32,))
_simd("f32x4.replace_lane", 0x20, Imm.LANE, pops=(V128, F32), pushes=(V128,))
_simd("f64x2.extract_lane", 0x21, Imm.LANE, pops=(V128,), pushes=(F64,))
_simd("f64x2.replace_lane", 0x22, Imm.LANE, pops=(V128, F64), pushes=(V128,))
_simd("v128.not", 0x4D, pops=(V128,), pushes=(V128,))
_simd("v128.and", 0x4E, pops=(V128, V128), pushes=(V128,))
_simd("v128.or", 0x50, pops=(V128, V128), pushes=(V128,))
_simd("v128.xor", 0x51, pops=(V128, V128), pushes=(V128,))

# SIMD lane-wise comparisons: each lane yields all-ones (true) or all-zeros.
_simd("i8x16.eq", 0x23, pops=(V128, V128), pushes=(V128,))
_simd("i8x16.ne", 0x24, pops=(V128, V128), pushes=(V128,))
_simd("i16x8.eq", 0x2D, pops=(V128, V128), pushes=(V128,))
_simd("i16x8.ne", 0x2E, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.eq", 0x37, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.ne", 0x38, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.lt_s", 0x39, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.lt_u", 0x3A, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.gt_s", 0x3B, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.gt_u", 0x3C, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.le_s", 0x3D, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.le_u", 0x3E, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.ge_s", 0x3F, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.ge_u", 0x40, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.eq", 0x41, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.ne", 0x42, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.lt", 0x43, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.gt", 0x44, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.le", 0x45, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.ge", 0x46, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.eq", 0x47, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.ne", 0x48, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.lt", 0x49, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.gt", 0x4A, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.le", 0x4B, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.ge", 0x4C, pops=(V128, V128), pushes=(V128,))

# SIMD lane arithmetic.
_simd("i8x16.neg", 0x61, pops=(V128,), pushes=(V128,))
_simd("i8x16.add", 0x6E, pops=(V128, V128), pushes=(V128,))
_simd("i8x16.sub", 0x71, pops=(V128, V128), pushes=(V128,))
_simd("i16x8.neg", 0x81, pops=(V128,), pushes=(V128,))
_simd("i16x8.add", 0x8E, pops=(V128, V128), pushes=(V128,))
_simd("i16x8.sub", 0x91, pops=(V128, V128), pushes=(V128,))
_simd("i16x8.mul", 0x95, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.abs", 0xA0, pops=(V128,), pushes=(V128,))
_simd("i32x4.neg", 0xA1, pops=(V128,), pushes=(V128,))
_simd("i32x4.add", 0xAE, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.sub", 0xB1, pops=(V128, V128), pushes=(V128,))
_simd("i32x4.mul", 0xB5, pops=(V128, V128), pushes=(V128,))
_simd("i64x2.neg", 0xC1, pops=(V128,), pushes=(V128,))
_simd("i64x2.add", 0xCE, pops=(V128, V128), pushes=(V128,))
_simd("i64x2.sub", 0xD1, pops=(V128, V128), pushes=(V128,))
_simd("i64x2.mul", 0xD5, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.abs", 0xE0, pops=(V128,), pushes=(V128,))
_simd("f32x4.neg", 0xE1, pops=(V128,), pushes=(V128,))
_simd("f32x4.sqrt", 0xE3, pops=(V128,), pushes=(V128,))
_simd("f32x4.add", 0xE4, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.sub", 0xE5, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.mul", 0xE6, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.div", 0xE7, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.min", 0xE8, pops=(V128, V128), pushes=(V128,))
_simd("f32x4.max", 0xE9, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.abs", 0xEC, pops=(V128,), pushes=(V128,))
_simd("f64x2.neg", 0xED, pops=(V128,), pushes=(V128,))
_simd("f64x2.sqrt", 0xEF, pops=(V128,), pushes=(V128,))
_simd("f64x2.add", 0xF0, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.sub", 0xF1, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.mul", 0xF2, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.div", 0xF3, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.min", 0xF4, pops=(V128, V128), pushes=(V128,))
_simd("f64x2.max", 0xF5, pops=(V128, V128), pushes=(V128,))


def info(name_or_opcode) -> OpcodeInfo:
    """Look up an opcode by WAT name or by numeric opcode."""
    if isinstance(name_or_opcode, str):
        try:
            return BY_NAME[name_or_opcode]
        except KeyError as exc:
            raise KeyError(f"unknown instruction {name_or_opcode!r}") from exc
    try:
        return BY_OPCODE[name_or_opcode]
    except KeyError as exc:
        raise KeyError(f"unknown opcode 0x{name_or_opcode:x}") from exc


#: Total number of instructions in the table (used by tests).
def count() -> int:
    """Number of instructions defined in the opcode table."""
    return len(BY_NAME)
