"""Linear memory with bounds-checked access.

A Wasm module's memory is a contiguous, byte-addressable array grown in
64 KiB pages, addressed with 32-bit offsets (which is why the paper notes the
4 GiB per-module limit, §3.8).  All loads and stores are bounds-checked and
raise :class:`MemoryOutOfBoundsTrap` on violation -- the software-fault-
isolation property of the Wasm sandbox.

The embedder's zero-copy path (§3.5) is exposed through :meth:`view`:
a writable ``memoryview`` of a region of the linear memory that can be handed
straight to the host MPI library, which is exactly how MPIWasm passes guest
buffers to OpenMPI without copying.
"""

from __future__ import annotations

import struct
from typing import Optional

import numpy as np

from repro.wasm.errors import MemoryOutOfBoundsTrap, Trap
from repro.wasm.types import Limits, MemoryType

PAGE_SIZE = MemoryType.PAGE_SIZE

# Pre-compiled scalar codecs: parsing "<f"/"<d" format strings on every load
# and store is measurable on the interpreter's hot path.
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")


class LinearMemory:
    """A bounds-checked, growable linear memory."""

    def __init__(self, memory_type: MemoryType):
        memory_type.validate()
        self.type = memory_type
        self._pages = memory_type.limits.minimum
        self._max_pages = (
            memory_type.limits.maximum
            if memory_type.limits.maximum is not None
            else MemoryType.MAX_PAGES
        )
        self._buffer = bytearray(self._pages * PAGE_SIZE)

    # ------------------------------------------------------------------- sizes

    @property
    def pages(self) -> int:
        """Current size in 64 KiB pages (``memory.size``)."""
        return self._pages

    @property
    def size(self) -> int:
        """Current size in bytes."""
        return self._pages * PAGE_SIZE

    def grow(self, delta_pages: int) -> int:
        """Grow by ``delta_pages``; returns the old page count or -1 on failure."""
        if delta_pages < 0:
            return -1
        new_pages = self._pages + delta_pages
        if new_pages > self._max_pages:
            return -1
        old = self._pages
        self._buffer.extend(bytes(delta_pages * PAGE_SIZE))
        self._pages = new_pages
        return old

    # ---------------------------------------------------------------- raw access

    def _check(self, address: int, nbytes: int) -> None:
        if address < 0 or nbytes < 0 or address + nbytes > self.size:
            raise MemoryOutOfBoundsTrap(address, nbytes, self.size)

    def read(self, address: int, nbytes: int) -> bytes:
        """Copy ``nbytes`` out of memory (bounds-checked)."""
        self._check(address, nbytes)
        return bytes(self._buffer[address : address + nbytes])

    def write(self, address: int, data: bytes) -> None:
        """Copy ``data`` into memory (bounds-checked)."""
        self._check(address, len(data))
        self._buffer[address : address + len(data)] = data

    def view(self, address: int, nbytes: int) -> memoryview:
        """Writable zero-copy view of a memory region (bounds-checked).

        This is the host-address-translation primitive of §3.5: the embedder
        converts a 32-bit guest pointer into a host view by offsetting into
        the module's base buffer, and the host MPI library reads/writes the
        guest's buffer directly.
        """
        self._check(address, nbytes)
        return memoryview(self._buffer)[address : address + nbytes]

    def ndarray(self, address: int, count: int, dtype) -> np.ndarray:
        """Zero-copy NumPy view of ``count`` elements of ``dtype`` at ``address``."""
        dt = np.dtype(dtype)
        self._check(address, count * dt.itemsize)
        return np.frombuffer(self._buffer, dtype=dt, count=count, offset=address)

    def fill(self, address: int, value: int, nbytes: int) -> None:
        """memset-style fill (bounds-checked)."""
        self._check(address, nbytes)
        self._buffer[address : address + nbytes] = bytes([value & 0xFF]) * nbytes

    def copy_within(self, dst: int, src: int, nbytes: int) -> None:
        """memmove-style copy inside the memory (bounds-checked, overlap-safe).

        This is the ``memory.copy`` primitive: slicing the source first makes
        a copy, so overlapping ranges behave like ``memmove``, as the
        bulk-memory proposal requires.
        """
        self._check(dst, nbytes)
        self._check(src, nbytes)
        self._buffer[dst : dst + nbytes] = self._buffer[src : src + nbytes]

    # ------------------------------------------------------------ scalar access

    def load_int(self, address: int, nbytes: int, signed: bool = False) -> int:
        """Load a little-endian integer of ``nbytes`` bytes."""
        raw = self.read(address, nbytes)
        return int.from_bytes(raw, "little", signed=signed)

    def store_int(self, address: int, value: int, nbytes: int) -> None:
        """Store a little-endian integer of ``nbytes`` bytes (wraps silently)."""
        mask = (1 << (8 * nbytes)) - 1
        self.write(address, (value & mask).to_bytes(nbytes, "little"))

    def load_f32(self, address: int) -> float:
        """Load an IEEE-754 single."""
        self._check(address, 4)
        return _F32.unpack_from(self._buffer, address)[0]

    def store_f32(self, address: int, value: float) -> None:
        """Store an IEEE-754 single."""
        self._check(address, 4)
        _F32.pack_into(self._buffer, address, value)

    def load_f64(self, address: int) -> float:
        """Load an IEEE-754 double."""
        self._check(address, 8)
        return _F64.unpack_from(self._buffer, address)[0]

    def store_f64(self, address: int, value: float) -> None:
        """Store an IEEE-754 double."""
        self._check(address, 8)
        _F64.pack_into(self._buffer, address, value)

    # ---------------------------------------------------------- string helpers

    def read_cstring(self, address: int, max_len: int = 1 << 20) -> str:
        """Read a NUL-terminated UTF-8 string (bounds-checked)."""
        end = address
        limit = min(self.size, address + max_len)
        while end < limit and self._buffer[end] != 0:
            end += 1
        if end >= limit and (end >= self.size or self._buffer[end] != 0):
            raise Trap(f"unterminated string at address {address}")
        return bytes(self._buffer[address:end]).decode("utf-8", errors="replace")

    def write_cstring(self, address: int, text: str) -> int:
        """Write a NUL-terminated UTF-8 string; returns bytes written."""
        raw = text.encode("utf-8") + b"\x00"
        self.write(address, raw)
        return len(raw)
