"""Module instantiation and the runtime object model.

An :class:`Instance` is a loaded module: resolved imports, an allocated
linear memory, initialised globals and tables, and an executor (provided by
one of the compiler back-ends) that runs its functions.  Host functions --
the WASI and ``env.MPI_*`` implementations the embedder provides -- are plain
Python callables wrapped in :class:`HostFunction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.wasm.errors import LinkError, Trap
from repro.wasm.instructions import Instruction
from repro.wasm.memory import LinearMemory
from repro.wasm.module import ExternKind, Function, Module
from repro.wasm.types import FuncType, GlobalType, MemoryType, TableType, ValType
from repro.wasm.values import default_value


@dataclass
class HostFunction:
    """A function provided by the embedder to the module.

    ``callable`` receives the already-instantiated :class:`Instance` (so it can
    reach the linear memory) followed by the positional Wasm arguments, and
    returns ``None``, a single value, or a tuple of values matching the
    declared result types.
    """

    name: str
    func_type: FuncType
    callable: Callable

    def __call__(self, instance: "Instance", *args):
        return self.callable(instance, *args)


@dataclass
class WasmFunction:
    """A function defined by the module itself."""

    func_index: int
    func_type: FuncType
    definition: Function


FunctionLike = Union[HostFunction, WasmFunction]


@dataclass
class GlobalInstance:
    """A global variable at runtime."""

    type: GlobalType
    value: object

    def set(self, value) -> None:
        """Assign the global (trap if immutable)."""
        if not self.type.mutable:
            raise Trap(f"assignment to immutable global")
        self.value = value


class TableInstance:
    """A funcref table at runtime (used by ``call_indirect``)."""

    def __init__(self, table_type: TableType):
        self.type = table_type
        self.elements: List[Optional[int]] = [None] * table_type.limits.minimum

    def get(self, index: int) -> Optional[int]:
        """Function index stored at ``index`` (``None`` = null funcref)."""
        if not 0 <= index < len(self.elements):
            raise Trap(f"table index {index} out of bounds")
        return self.elements[index]

    def set(self, index: int, func_index: Optional[int]) -> None:
        """Store a function index at ``index``."""
        if not 0 <= index < len(self.elements):
            raise Trap(f"table index {index} out of bounds")
        self.elements[index] = func_index


class ImportObject:
    """Collection of host-provided imports, grouped by module namespace.

    The embedder builds one of these with its ``env`` (MPI) and
    ``wasi_snapshot_preview1`` namespaces before instantiating a module --
    mirroring Wasmer's ``ImportObject``.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, Dict[str, HostFunction]] = {}

    def register(self, namespace: str, name: str, func_type: FuncType, fn: Callable) -> None:
        """Register one host function under ``namespace.name``."""
        self._functions.setdefault(namespace, {})[name] = HostFunction(
            name=f"{namespace}.{name}", func_type=func_type, callable=fn
        )

    def register_module(self, namespace: str, functions: Dict[str, HostFunction]) -> None:
        """Register a whole namespace of prebuilt host functions."""
        self._functions.setdefault(namespace, {}).update(functions)

    def lookup(self, namespace: str, name: str) -> Optional[HostFunction]:
        """Find a host function (``None`` if missing)."""
        return self._functions.get(namespace, {}).get(name)

    def namespaces(self) -> List[str]:
        """All registered namespaces."""
        return sorted(self._functions)


class Executor:
    """Interface implemented by the compiler back-ends.

    ``call(instance, func_index, args)`` executes the module-defined function
    at ``func_index`` (function index space) and returns its result values as
    a list.
    """

    name = "abstract"

    def prepare(self, module: Module) -> None:
        """Hook for ahead-of-time work (compilation); called once per module."""

    def configure(self, max_call_depth: Optional[int] = None) -> None:
        """Apply embedder-level execution limits.

        The embedder calls this after :meth:`prepare` with the knobs from its
        :class:`repro.core.config.EmbedderConfig`; back-ends ignore what they
        do not support.
        """

    def call(self, instance: "Instance", func_index: int, args: Sequence) -> List:
        """Execute a module-defined function."""
        raise NotImplementedError


class Instance:
    """A fully linked, executable module instance."""

    def __init__(
        self,
        module: Module,
        imports: Optional[ImportObject] = None,
        executor: Optional[Executor] = None,
        memory_pages_override: Optional[int] = None,
    ):
        from repro.wasm.compilers import default_executor  # local import to avoid a cycle

        self.module = module
        self.imports = imports or ImportObject()
        self.executor = executor or default_executor()
        self.functions: List[FunctionLike] = []
        self.globals: List[GlobalInstance] = []
        self.tables: List[TableInstance] = []
        self.memory: Optional[LinearMemory] = None
        self.exit_code: Optional[int] = None
        # Arbitrary embedder-attached state (the MPIWasm Env structure hangs here).
        self.host_state: Dict[str, object] = {}

        self._link_functions()
        self._allocate_memory(memory_pages_override)
        self._init_globals()
        self._init_tables()
        self._apply_data_segments()
        self.executor.prepare(module)

    # ------------------------------------------------------------------ linking

    def _link_functions(self) -> None:
        for imp in self.module.imports:
            if imp.kind != ExternKind.FUNC:
                continue
            host = self.imports.lookup(imp.module, imp.name)
            if host is None:
                raise LinkError(f"unresolved import {imp.qualified_name}")
            expected = self.module.types[imp.desc]
            if host.func_type != expected:
                raise LinkError(
                    f"import {imp.qualified_name} signature mismatch: "
                    f"module wants {expected.wat()!r}, host provides {host.func_type.wat()!r}"
                )
            self.functions.append(host)
        base = len(self.functions)
        for i, func in enumerate(self.module.functions):
            self.functions.append(
                WasmFunction(
                    func_index=base + i,
                    func_type=self.module.types[func.type_index],
                    definition=func,
                )
            )

    def _allocate_memory(self, pages_override: Optional[int]) -> None:
        mem_types = list(self.module.memories)
        for imp in self.module.imports:
            if imp.kind == ExternKind.MEMORY:
                mem_types.insert(0, imp.desc)
        if not mem_types:
            return
        mem_type = mem_types[0]
        if pages_override is not None and pages_override > mem_type.limits.minimum:
            mem_type = MemoryType(
                limits=type(mem_type.limits)(pages_override, mem_type.limits.maximum)
            )
        self.memory = LinearMemory(mem_type)

    def _init_globals(self) -> None:
        for glob in self.module.globals:
            value = self._eval_const(glob.init)
            self.globals.append(GlobalInstance(glob.type, value))

    def _init_tables(self) -> None:
        for table_type in self.module.tables:
            self.tables.append(TableInstance(table_type))
        for element in self.module.elements:
            if element.table_index >= len(self.tables):
                raise LinkError(f"element segment references missing table {element.table_index}")
            offset = int(self._eval_const(element.offset))
            table = self.tables[element.table_index]
            for i, func_index in enumerate(element.func_indices):
                table.set(offset + i, func_index)

    def _apply_data_segments(self) -> None:
        for segment in self.module.data:
            if self.memory is None:
                raise LinkError("data segment present but module has no memory")
            offset = int(self._eval_const(segment.offset))
            self.memory.write(offset, segment.data)

    def _eval_const(self, expr: List[Instruction]):
        """Evaluate a constant initializer expression (const or global.get)."""
        if not expr:
            return 0
        instr = expr[0]
        if instr.name in ("i32.const", "i64.const", "f32.const", "f64.const"):
            return instr.operands[0]
        if instr.name == "global.get":
            return self.globals[instr.operands[0]].value
        raise LinkError(f"unsupported constant expression starting with {instr.name}")

    # ---------------------------------------------------------------- execution

    def function_type(self, func_index: int) -> FuncType:
        """Signature of any function in the index space."""
        return self.functions[func_index].func_type

    def call_function(self, func_index: int, args: Sequence = ()) -> List:
        """Call a function by index (host or module-defined)."""
        target = self.functions[func_index]
        if isinstance(target, HostFunction):
            result = target(self, *args)
            if result is None:
                return []
            if isinstance(result, (list, tuple)):
                return list(result)
            return [result]
        return self.executor.call(self, func_index, list(args))

    def invoke(self, export_name: str, *args) -> List:
        """Call an exported function by name."""
        export = self.module.export_by_name(export_name)
        if export is None or export.kind != ExternKind.FUNC:
            raise LinkError(f"module does not export a function named {export_name!r}")
        return self.call_function(export.index, list(args))

    def exported_memory(self) -> LinearMemory:
        """The module's (exported) linear memory; raises if there is none."""
        if self.memory is None:
            raise LinkError("module has no linear memory")
        return self.memory

    def has_export(self, name: str) -> bool:
        """Whether the module exports ``name`` (any kind)."""
        return self.module.export_by_name(name) is not None

    def run_start(self) -> None:
        """Run the module's start function, if any."""
        if self.module.start is not None:
            self.call_function(self.module.start, [])
