"""The WebAssembly module model.

A :class:`Module` is the in-memory form of a ``.wasm`` file: type, import,
function, table, memory, global, export, element, data and custom sections.
It is produced by :class:`repro.wasm.builder.ModuleBuilder` (the toolchain
path) or by :func:`repro.wasm.decoder.decode_module` (loading a binary), and
consumed by the validator, the WAT printer, the binary encoder and the
embedder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.wasm.instructions import Instruction
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType


class ExternKind(Enum):
    """Kind of an import or export (binary encoding in the member value)."""

    FUNC = 0x00
    TABLE = 0x01
    MEMORY = 0x02
    GLOBAL = 0x03


@dataclass
class Import:
    """One import: ``(module, name)`` plus a kind-specific descriptor.

    ``desc`` is a type index for functions, a :class:`MemoryType`,
    :class:`TableType` or :class:`GlobalType` otherwise.
    """

    module: str
    name: str
    kind: ExternKind
    desc: object

    @property
    def qualified_name(self) -> str:
        """``module.name`` as printed in diagnostics."""
        return f"{self.module}.{self.name}"


@dataclass
class Export:
    """One export: a name plus the index of the exported entity."""

    name: str
    kind: ExternKind
    index: int


@dataclass
class Function:
    """A function defined inside the module (imported functions live in imports).

    ``type_index`` points into the module's type section; ``locals`` lists the
    declared local variables (parameters are not repeated here); ``body`` is
    the instruction sequence *without* the terminating ``end`` (the encoder
    adds it back).
    """

    type_index: int
    locals: List[ValType] = field(default_factory=list)
    body: List[Instruction] = field(default_factory=list)
    name: str = ""


@dataclass
class Global:
    """A global variable definition with its constant initializer expression."""

    type: GlobalType
    init: List[Instruction] = field(default_factory=list)


@dataclass
class ElementSegment:
    """An active element segment populating a table with function indices."""

    table_index: int
    offset: List[Instruction]
    func_indices: List[int]


@dataclass
class DataSegment:
    """An active data segment initializing a range of linear memory."""

    memory_index: int
    offset: List[Instruction]
    data: bytes


@dataclass
class CustomSection:
    """An uninterpreted custom section (name + payload)."""

    name: str
    data: bytes


@dataclass
class Module:
    """A complete WebAssembly module."""

    types: List[FuncType] = field(default_factory=list)
    imports: List[Import] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)
    tables: List[TableType] = field(default_factory=list)
    memories: List[MemoryType] = field(default_factory=list)
    globals: List[Global] = field(default_factory=list)
    exports: List[Export] = field(default_factory=list)
    start: Optional[int] = None
    elements: List[ElementSegment] = field(default_factory=list)
    data: List[DataSegment] = field(default_factory=list)
    customs: List[CustomSection] = field(default_factory=list)
    name: str = ""

    # -------------------------------------------------------- index-space maps

    def imported_functions(self) -> List[Import]:
        """Function imports, in index order (they precede defined functions)."""
        return [imp for imp in self.imports if imp.kind == ExternKind.FUNC]

    def num_imported_functions(self) -> int:
        """Number of imported functions (offset of the first defined function)."""
        return len(self.imported_functions())

    def imported_memories(self) -> List[Import]:
        """Memory imports, in index order."""
        return [imp for imp in self.imports if imp.kind == ExternKind.MEMORY]

    def imported_globals(self) -> List[Import]:
        """Global imports, in index order."""
        return [imp for imp in self.imports if imp.kind == ExternKind.GLOBAL]

    def func_type(self, func_index: int) -> FuncType:
        """Signature of the function at ``func_index`` in the function index space."""
        imported = self.imported_functions()
        if func_index < len(imported):
            return self.types[imported[func_index].desc]
        local_index = func_index - len(imported)
        if local_index >= len(self.functions):
            raise IndexError(f"function index {func_index} out of range")
        return self.types[self.functions[local_index].type_index]

    def total_functions(self) -> int:
        """Size of the function index space (imports + definitions)."""
        return self.num_imported_functions() + len(self.functions)

    def export_by_name(self, name: str) -> Optional[Export]:
        """Find an export by name (``None`` if absent)."""
        for export in self.exports:
            if export.name == name:
                return export
        return None

    def exported_functions(self) -> Dict[str, int]:
        """Mapping of exported function name to function index."""
        return {e.name: e.index for e in self.exports if e.kind == ExternKind.FUNC}

    def type_index_for(self, func_type: FuncType) -> int:
        """Index of ``func_type`` in the type section, adding it if missing."""
        for i, existing in enumerate(self.types):
            if existing == func_type:
                return i
        self.types.append(func_type)
        return len(self.types) - 1

    def summary(self) -> Dict[str, int]:
        """Size summary used by reports and tests."""
        return {
            "types": len(self.types),
            "imports": len(self.imports),
            "functions": len(self.functions),
            "exports": len(self.exports),
            "globals": len(self.globals),
            "memories": len(self.memories) + len(self.imported_memories()),
            "data_segments": len(self.data),
            "instructions": sum(len(f.body) for f in self.functions),
        }
