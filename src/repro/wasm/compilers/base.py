"""Compiler back-end interface and registry.

MPIWasm (like Wasmer) can translate Wasm to executable form with one of three
back-ends -- Singlepass, Cranelift, or LLVM -- trading compile time for run
time (Table 1 of the paper).  The analogues here share that exact trade-off
structure, all rebased on the pre-resolved IR of :mod:`repro.wasm.lowering`:

* :class:`repro.wasm.compilers.singlepass.SinglepassBackend` does essentially
  no ahead-of-time work; its executor lowers each function lazily on first
  call,
* :class:`repro.wasm.compilers.cranelift.CraneliftBackend` spends compile time
  eagerly lowering every function body (pre-resolved handlers, jump offsets
  and superinstructions),
* :class:`repro.wasm.compilers.llvm.LLVMBackend` consumes the lowered IR as
  the input to its Python code generator (its "shared object"), pays the
  largest compile cost and runs fastest.

All three produce a :class:`CompiledModule` whose ``artifact`` is a
*serializable* payload -- what the content-addressed cache in
:mod:`repro.wasm.compilers.cache` stores on disk (§3.3), stamped with the IR
version so format changes invalidate stale entries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from repro.wasm.lowering import IR_VERSION
from repro.wasm.module import Module
from repro.wasm.runtime import Executor


@dataclass
class CompiledModule:
    """Result of ahead-of-time compiling a module with one back-end.

    ``artifact`` is back-end specific but always plain serializable data: a
    summary record for Singlepass, the serialized lowered IR for Cranelift,
    and the generated Python source for LLVM (the analogue of the shared
    object Wasmer's LLVM backend emits).  ``ir_version`` stamps the lowered
    representation the artifact was produced against.
    """

    backend_name: str
    module: Module
    compile_seconds: float
    artifact: Optional[object] = None
    function_count: int = 0
    ir_version: int = IR_VERSION

    def make_executor(self) -> Executor:
        """Build a fresh executor bound to this compiled artifact."""
        backend = get_backend(self.backend_name)
        return backend.executor_for(self)


class CompilerBackend:
    """A named compiler back-end."""

    name = "abstract"

    def compile(self, module: Module) -> CompiledModule:
        """Ahead-of-time compile ``module`` and return the artifact record."""
        start = time.perf_counter()
        artifact = self._compile(module)
        elapsed = time.perf_counter() - start
        return CompiledModule(
            backend_name=self.name,
            module=module,
            compile_seconds=elapsed,
            artifact=artifact,
            function_count=len(module.functions),
            ir_version=IR_VERSION,
        )

    def _compile(self, module: Module) -> Optional[object]:
        """Back-end specific compilation work (may be trivial)."""
        raise NotImplementedError

    def executor_for(self, compiled: CompiledModule) -> Executor:
        """Create an :class:`Executor` that runs the compiled artifact."""
        raise NotImplementedError


from repro.api.registry import BACKENDS as _BACKENDS  # noqa: E402 - leaf module

#: Live backing dict of the unified registry (kept for back-compat).
_REGISTRY: Dict[str, CompilerBackend] = _BACKENDS.entries


def register_backend(backend: CompilerBackend) -> CompilerBackend:
    """Add a back-end instance to the unified registry (replacing any holder).

    Third-party back-ends should prefer the decorator form
    ``repro.api.register_backend``, which supports ``override`` semantics.
    """
    _BACKENDS.register(backend.name, obj=backend, override=True)
    return backend


def get_backend(name: str) -> CompilerBackend:
    """Look up a back-end by name (``singlepass``, ``cranelift``, ``llvm``).

    Unknown names raise :class:`repro.api.registry.UnknownEntryError` (a
    ``KeyError``) listing every registered back-end.
    """
    return _BACKENDS.get(name)


def backend_names() -> List[str]:
    """Names of all registered back-ends."""
    return _BACKENDS.names()
