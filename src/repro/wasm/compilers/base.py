"""Compiler back-end interface and registry.

MPIWasm (like Wasmer) can translate Wasm to executable form with one of three
back-ends -- Singlepass, Cranelift, or LLVM -- trading compile time for run
time (Table 1 of the paper).  The analogues here share that exact trade-off
structure:

* :class:`repro.wasm.compilers.singlepass.SinglepassBackend` does essentially
  no ahead-of-time work and interprets the structured instruction stream,
  resolving control-flow matches by scanning at run time,
* :class:`repro.wasm.compilers.cranelift.CraneliftBackend` spends compile time
  pre-resolving control flow and pre-indexing function metadata,
* :class:`repro.wasm.compilers.llvm.LLVMBackend` translates every function
  body into generated Python source (its "shared object"), pays the largest
  compile cost and runs fastest.

All three produce a :class:`CompiledModule` artifact that records what was
produced and how long compilation took; the artifact is what the embedder's
filesystem cache stores (§3.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from repro.wasm.module import Module
from repro.wasm.runtime import Executor


@dataclass
class CompiledModule:
    """Result of ahead-of-time compiling a module with one back-end.

    ``artifact`` is back-end specific: ``None`` for Singlepass, the control
    maps for Cranelift, and the generated Python source text for LLVM (the
    analogue of the shared object Wasmer's LLVM backend emits, which is what
    gets cached on disk).
    """

    backend_name: str
    module: Module
    compile_seconds: float
    artifact: Optional[object] = None
    function_count: int = 0

    def make_executor(self) -> Executor:
        """Build a fresh executor bound to this compiled artifact."""
        backend = get_backend(self.backend_name)
        return backend.executor_for(self)


class CompilerBackend:
    """A named compiler back-end."""

    name = "abstract"

    def compile(self, module: Module) -> CompiledModule:
        """Ahead-of-time compile ``module`` and return the artifact record."""
        start = time.perf_counter()
        artifact = self._compile(module)
        elapsed = time.perf_counter() - start
        return CompiledModule(
            backend_name=self.name,
            module=module,
            compile_seconds=elapsed,
            artifact=artifact,
            function_count=len(module.functions),
        )

    def _compile(self, module: Module) -> Optional[object]:
        """Back-end specific compilation work (may be trivial)."""
        raise NotImplementedError

    def executor_for(self, compiled: CompiledModule) -> Executor:
        """Create an :class:`Executor` that runs the compiled artifact."""
        raise NotImplementedError


_REGISTRY: Dict[str, CompilerBackend] = {}


def register_backend(backend: CompilerBackend) -> CompilerBackend:
    """Add a back-end instance to the global registry."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> CompilerBackend:
    """Look up a back-end by name (``singlepass``, ``cranelift``, ``llvm``)."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(f"unknown compiler backend {name!r}; known: {sorted(_REGISTRY)}") from exc


def backend_names() -> List[str]:
    """Names of all registered back-ends."""
    return sorted(_REGISTRY)
