"""Cranelift back-end: moderate compile work, moderate execution speed.

Cranelift translates Wasm through its own IR with local optimisations; the
analogue here spends its compile time pre-resolving every function's control
flow (the ``block``/``else``/``end`` matching) and pre-computing per-function
metadata, so the shared interpreter never scans forward at run time.  Compile
duration sits between Singlepass and LLVM, as does execution speed -- the
middle row of Table 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.wasm.compilers.base import CompiledModule, CompilerBackend, register_backend
from repro.wasm.interpreter import Interpreter, build_control_map
from repro.wasm.module import Module
from repro.wasm.runtime import Executor


class CraneliftBackend(CompilerBackend):
    """Pre-decodes control flow into per-function maps at compile time."""

    name = "cranelift"

    def _compile(self, module: Module) -> Optional[object]:
        control_maps: Dict[int, Dict[int, Tuple[Optional[int], int]]] = {}
        for i, func in enumerate(module.functions):
            control_maps[i] = build_control_map(func.body)
        return control_maps

    def executor_for(self, compiled: CompiledModule) -> Executor:
        interpreter = Interpreter(precompute=True)
        if isinstance(compiled.artifact, dict):
            interpreter._control_maps = dict(compiled.artifact)
        else:  # pragma: no cover - defensive: recompute if the artifact is missing
            interpreter.prepare(compiled.module)
        return interpreter


register_backend(CraneliftBackend())
