"""Cranelift back-end: moderate compile work, moderate execution speed.

Cranelift translates Wasm through its own IR with local optimisations; the
analogue here spends its compile time running the full lowering pass of
:mod:`repro.wasm.lowering` over every function -- opcode handlers resolved to
direct references, branch targets pre-computed, adjacent pairs fused into
superinstructions -- and ships the serialized lowered IR as its artifact, so
executors (and cache hits) skip all of that work.  Compile duration sits
between Singlepass and LLVM, as does execution speed -- the middle row of
Table 1.
"""

from __future__ import annotations

from repro.wasm.compilers.base import CompiledModule, CompilerBackend, register_backend
from repro.wasm.interpreter import Interpreter
from repro.wasm.lowering import deserialize_lowered, lower_module, serialize_lowered
from repro.wasm.module import Module
from repro.wasm.runtime import Executor


class CraneliftBackend(CompilerBackend):
    """Eagerly lowers every function to the pre-resolved IR at compile time."""

    name = "cranelift"

    def _compile(self, module: Module) -> dict:
        lowered = lower_module(module)
        # Stash the in-memory form so the cold path does not round-trip
        # through its own serialization; the deserialize branch below is
        # then exclusive to real cache hits (fresh process, on-disk artifact).
        module._cranelift_runtime = lowered
        return serialize_lowered(lowered)

    def executor_for(self, compiled: CompiledModule) -> Executor:
        # Cache loads hand every rank a *fresh* CompiledModule, but all of
        # them share the Module object -- stash the rebuilt runtime form
        # there so deserialize+link is a once-per-process cost.
        module = compiled.module
        lowered = getattr(module, "_cranelift_runtime", None)
        if lowered is None:
            lowered = deserialize_lowered(compiled.artifact)
            if lowered is None:  # missing or stale artifact: re-lower
                lowered = lower_module(module)
            module._cranelift_runtime = lowered
        return Interpreter(lowered=lowered)


register_backend(CraneliftBackend())
