"""Singlepass back-end: minimal compile work, slowest execution.

Wasmer's Singlepass compiler emits machine code in a single linear pass with
no optimisation; its analogue here performs only a linear well-formedness scan
at compile time (so compile duration stays near zero and proportional to code
size) and defers all lowering to run time: the executor lowers each function
body on its *first call* and memoizes the result, so cold functions pay the
lowering cost inline -- which is what makes it the slowest of the three
back-ends at run time, matching the ordering in Table 1 of the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.wasm.compilers.base import CompiledModule, CompilerBackend, register_backend
from repro.wasm.interpreter import Interpreter
from repro.wasm.lowering import IR_VERSION
from repro.wasm.module import Module
from repro.wasm.runtime import Executor


class SinglepassBackend(CompilerBackend):
    """Linear-time "code emission": a single scan over every function body."""

    name = "singlepass"

    def _compile(self, module: Module) -> Optional[object]:
        # One linear pass: count instructions and check that control constructs
        # are balanced.  The artifact is only a summary record (there is no
        # ahead-of-time lowering to cache -- that is the point of Singlepass).
        instruction_count = 0
        for func in module.functions:
            depth = 0
            for instr in func.body:
                if instr.name in ("block", "loop", "if"):
                    depth += 1
                elif instr.name == "end":
                    depth -= 1
            if depth != 0:
                raise ValueError(
                    f"unbalanced control flow in function {func.name or '<anon>'}"
                )
            instruction_count += len(func.body)
        return {
            "kind": "singlepass-scan",
            "ir_version": IR_VERSION,
            "instruction_count": instruction_count,
        }

    def executor_for(self, compiled: CompiledModule) -> Executor:
        return Interpreter(lazy=True)


register_backend(SinglepassBackend())
