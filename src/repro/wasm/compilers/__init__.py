"""Compiler back-ends: Singlepass, Cranelift and LLVM analogues.

Importing this package registers all three back-ends with the registry in
:mod:`repro.wasm.compilers.base`; :func:`default_executor` returns a fresh
executor for the default back-end (Cranelift -- a good compile-time/run-time
balance for tests, while the embedder defaults to LLVM like the paper).  The
content-addressed artifact cache shared by the back-ends lives in
:mod:`repro.wasm.compilers.cache`.
"""

from repro.wasm.compilers.base import (
    CompiledModule,
    CompilerBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.wasm.compilers import singlepass as _singlepass  # noqa: F401 - registration
from repro.wasm.compilers import cranelift as _cranelift  # noqa: F401 - registration
from repro.wasm.compilers import llvm as _llvm  # noqa: F401 - registration
from repro.wasm.compilers.cache import (
    GLOBAL_CACHE,
    FileSystemCache,
    InMemoryCache,
    TieredCache,
    module_hash,
)
from repro.wasm.compilers.cranelift import CraneliftBackend
from repro.wasm.compilers.llvm import LLVMBackend, PythonCodeGenerator
from repro.wasm.compilers.singlepass import SinglepassBackend
from repro.wasm.interpreter import Interpreter
from repro.wasm.lowering import IR_VERSION

DEFAULT_BACKEND = "cranelift"


def default_executor():
    """Executor used when an Instance is created without an explicit backend."""
    return Interpreter()


__all__ = [
    "CompiledModule",
    "CompilerBackend",
    "CraneliftBackend",
    "LLVMBackend",
    "SinglepassBackend",
    "PythonCodeGenerator",
    "FileSystemCache",
    "InMemoryCache",
    "TieredCache",
    "GLOBAL_CACHE",
    "module_hash",
    "IR_VERSION",
    "backend_names",
    "get_backend",
    "register_backend",
    "default_executor",
    "DEFAULT_BACKEND",
]
