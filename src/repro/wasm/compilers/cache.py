"""Content-addressed ahead-of-time compilation cache (§3.3).

MPIWasm offsets the LLVM back-end's long compile times by caching the
generated shared object in the filesystem, keyed by a Blake-3 hash of the
Wasm module.  Since the lowering refactor *every* back-end produces a
serializable artifact (lowered IR for the interpreting back-ends, generated
Python source for LLVM), so the cache is useful for all three -- repeated
launches of the same application skip lowering and code generation entirely.

Keys are a ``blake2b`` hash over module bytes + back-end name + IR version
(Blake-3 is not packaged offline; the only property used is collision-
resistant content addressing, so the substitution is behaviour-preserving).
Including :data:`repro.wasm.lowering.IR_VERSION` in the key means an IR
format change transparently invalidates stale artifacts instead of loading
them into a newer runtime.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.wasm.compilers.base import CompiledModule
from repro.wasm.lowering import IR_VERSION
from repro.wasm.module import Module


def module_hash(wasm_bytes: bytes, backend_name: str, ir_version: int = IR_VERSION) -> str:
    """Content hash of a (module bytes, back-end, IR version) combination."""
    h = hashlib.blake2b(digest_size=32)
    h.update(backend_name.encode("utf-8"))
    h.update(b"\x00")
    h.update(str(ir_version).encode("ascii"))
    h.update(b"\x00")
    h.update(wasm_bytes)
    return h.hexdigest()


class _CacheStatsMixin:
    """Hit/miss accounting shared by both cache flavours.

    ``last_hit_tier`` records which tier served the most recent lookup
    (``"memory"``, ``"fs"``, or ``None`` on a miss) so the embedder can
    attribute each compile's cache outcome in the metrics registry.
    """

    hits: int
    misses: int
    last_hit_tier: Optional[str]

    def stats(self) -> Dict[str, int]:
        """Counters in the shape the metrics registry and reports consume."""
        return {"hits": self.hits, "misses": self.misses}


class FileSystemCache(_CacheStatsMixin):
    """Filesystem-backed cache of compilation artifacts, safe under
    concurrent writers.

    Any change to the module bytes (or the back-end, or the IR version)
    changes the hash, which transparently triggers recompilation; repeated
    executions of the same application hit the cache and skip the compile
    step entirely.

    Concurrency contract (the campaign runner shares one directory between
    N worker processes):

    * **Publishes are atomic.**  Artifacts are written to a private temporary
      file and published with :func:`os.replace`, so a reader either sees no
      artifact or a complete one -- never a torn read.
    * **Each module compiles once.**  :meth:`load_or_compute` guards the
      compile step with a per-key lock file (``O_CREAT | O_EXCL``); losers
      wait for the winner's publish instead of recompiling.  A crashed
      winner's stale lock is broken after :data:`LOCK_TIMEOUT` seconds.
    * **Counters aggregate across processes.**  Every hit / miss / compile
      appends one line to ``_stats/events.log`` (``O_APPEND`` writes below
      the pipe-buffer size are atomic on POSIX), so :meth:`global_stats`
      reflects the whole worker pool, not just this process.
    """

    #: Seconds after which another process's compile lock is considered stale.
    LOCK_TIMEOUT = 60.0
    #: Polling interval while waiting for a concurrent compiler's publish.
    LOCK_POLL = 0.005

    def __init__(self, directory: Union[Path, str]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._stats_dir = self.directory / "_stats"
        self._stats_dir.mkdir(exist_ok=True)
        self._tmp_counter = itertools.count()
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.last_hit_tier: Optional[str] = None

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.mpiwasm"

    def _lock_path(self, key: str) -> Path:
        return self.directory / f"{key}.lock"

    @property
    def _events_path(self) -> Path:
        return self._stats_dir / "events.log"

    # --------------------------------------------------- cross-process stats

    def _log_event(self, kind: str, key: str) -> None:
        line = f"{kind} {key}\n".encode("ascii")
        fd = os.open(self._events_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def _events(self) -> List[Tuple[str, str]]:
        try:
            text = self._events_path.read_text(encoding="ascii")
        except FileNotFoundError:
            return []
        events = []
        for raw in text.splitlines():
            kind, _, key = raw.partition(" ")
            if kind:
                events.append((kind, key))
        return events

    def event_count(self) -> int:
        """Number of events logged so far; a baseline for ``since`` arguments.

        The log grows by one short line per lookup and is only reset by
        :meth:`clear` -- acceptable for per-campaign cache directories; a
        long-lived shared directory should be cleared periodically.
        """
        return len(self._events())

    def global_stats(self, since: int = 0) -> Dict[str, int]:
        """Hit/miss/compile totals across *every* process using this directory.

        ``since`` skips that many leading events, so a caller can scope the
        totals to its own run of a persistent directory by snapshotting
        :meth:`event_count` first.
        """
        totals = {"hits": 0, "misses": 0, "compiles": 0}
        for kind, _key in self._events()[since:]:
            if kind == "hit":
                totals["hits"] += 1
            elif kind == "miss":
                totals["misses"] += 1
            elif kind == "compile":
                totals["compiles"] += 1
        return totals

    def compiled_keys(self, since: int = 0) -> List[str]:
        """Keys actually compiled (not cache-served), in publish order,
        aggregated across every process using this directory."""
        return [key for kind, key in self._events()[since:] if kind == "compile"]

    # ------------------------------------------------------------ store/load

    def contains(self, key: str) -> bool:
        """Whether an artifact for ``key`` is cached."""
        return self._path(key).exists()

    def store(self, key: str, compiled: CompiledModule) -> Path:
        """Persist a compilation artifact under ``key`` (atomic publish)."""
        payload = {
            "backend": compiled.backend_name,
            "ir_version": compiled.ir_version,
            "compile_seconds": compiled.compile_seconds,
            "function_count": compiled.function_count,
            "artifact": compiled.artifact,
        }
        path = self._path(key)
        # Private temporary name (pid + per-instance counter), then an atomic
        # rename: concurrent readers never observe a partially written file.
        tmp = self.directory / f"{key}.{os.getpid()}.{next(self._tmp_counter)}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    def _read(self, key: str, module: Module) -> Optional[CompiledModule]:
        """Load an artifact without touching the hit/miss counters."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return None
        except (EOFError, pickle.UnpicklingError, OSError):
            # Corrupt or unreadable artifact (should not happen with atomic
            # publishes, but never poison the caller): treat as a miss.
            return None
        if payload.get("ir_version", IR_VERSION) != IR_VERSION:
            # Stale artifact from an older IR: treat as a miss and recompile.
            return None
        return CompiledModule(
            backend_name=payload["backend"],
            module=module,
            compile_seconds=0.0,  # cache hits skip compilation
            artifact=payload["artifact"],
            function_count=payload["function_count"],
            ir_version=payload.get("ir_version", IR_VERSION),
        )

    def load(self, key: str, module: Module) -> Optional[CompiledModule]:
        """Load a cached artifact for ``key`` (``None`` on miss)."""
        compiled = self._read(key, module)
        if compiled is None:
            self.misses += 1
            self.last_hit_tier = None
            self._log_event("miss", key)
            return None
        self.hits += 1
        self.last_hit_tier = "fs"
        self._log_event("hit", key)
        return compiled

    # ----------------------------------------------------- compile-once path

    def _stat_lock(self, lock: Path):
        """``os.stat`` of the lock file, ``None`` if it vanished meanwhile.

        A separate method so concurrency tests can interpose between the
        staleness judgment and the identity re-check below.
        """
        try:
            return os.stat(lock)
        except FileNotFoundError:
            return None

    def _break_stale_lock(self, lock: Path, observed) -> None:
        """Break ``lock``, but only if it is still the exact file ``observed``.

        Two waiters can both judge the same lock stale; the first unlink wins
        the break and a third process may immediately re-acquire by creating
        a *fresh* lock at the same path.  An unconditional second unlink
        would then delete that fresh lock and let two compiles run
        concurrently.  Re-stat immediately before unlinking and compare the
        file's identity (device, inode, mtime) with the stat that justified
        the staleness judgment: a mismatch means the stale lock is already
        gone and whatever sits at the path now is someone else's live lock.
        """
        current = self._stat_lock(lock)
        if current is None:
            return  # released (or broken by another waiter) meanwhile
        if (current.st_dev, current.st_ino, current.st_mtime_ns) != (
            observed.st_dev, observed.st_ino, observed.st_mtime_ns
        ):
            return  # a different (fresh) lock took the path: not ours to break
        try:
            lock.unlink()
        except FileNotFoundError:
            pass  # another breaker got there between the re-stat and here

    def _try_acquire(self, lock: Path) -> bool:
        for _attempt in range(3):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                observed = self._stat_lock(lock)
                if observed is None:
                    continue  # released meanwhile -- retry the acquire
                # Staleness is judged on wall-clock mtime: the holder may be
                # another process, and mtimes are the only clock both share.
                if time.time() - observed.st_mtime <= self.LOCK_TIMEOUT:
                    return False
                # Holder died mid-compile: break the lock (identity-checked).
                self._break_stale_lock(lock, observed)
                continue
            os.close(fd)
            return True
        return False

    def _release(self, lock: Path) -> None:
        try:
            lock.unlink()
        except FileNotFoundError:
            pass

    def load_or_compute(
        self, key: str, module: Module, compute: Callable[[], CompiledModule]
    ) -> Tuple[CompiledModule, bool]:
        """Return ``(artifact, was_hit)``; compile via ``compute`` at most once
        across every process sharing this directory.

        Exactly one hit-or-miss event is recorded per call: a call that got
        the artifact without compiling -- even by waiting out a concurrent
        compiler -- is a hit; a call that ran ``compute`` is a miss.
        """
        compiled = self._read(key, module)
        if compiled is not None:
            self.hits += 1
            self.last_hit_tier = "fs"
            self._log_event("hit", key)
            return compiled, True
        lock = self._lock_path(key)
        # The wait deadline is *monotonic*: it times out a wait happening in
        # this process, where wall-clock steps must not matter (a backwards
        # step would spin far past the intended deadline, a forwards step
        # would give up on a perfectly live compiler).  The lock *staleness*
        # check in _try_acquire stays wall-clock on purpose -- it compares
        # against another process's mtime stamp, and file mtimes are
        # wall-clock (monotonic readings are not comparable across processes).
        deadline = time.monotonic() + 2 * self.LOCK_TIMEOUT
        acquired = False
        try:
            while True:
                acquired = self._try_acquire(lock)
                if acquired:
                    break
                # Somebody else holds the lock: wait for their publish (hit)
                # or their release (retry the acquire) instead of compiling.
                while lock.exists() and time.monotonic() < deadline:
                    compiled = self._read(key, module)
                    if compiled is not None:
                        self.hits += 1
                        self.last_hit_tier = "fs"
                        self._log_event("hit", key)
                        return compiled, True
                    time.sleep(self.LOCK_POLL)
                if time.monotonic() >= deadline:
                    # Liveness backstop: the holder is wedged well past the
                    # stale threshold -- compile without the lock.
                    break
            # Re-check under the lock: the previous holder may have published
            # between our read and the acquire.
            compiled = self._read(key, module)
            if compiled is not None:
                self.hits += 1
                self.last_hit_tier = "fs"
                self._log_event("hit", key)
                return compiled, True
            compiled = compute()
            self.store(key, compiled)
            self.compiles += 1
            self.misses += 1
            self.last_hit_tier = None
            self._log_event("miss", key)
            self._log_event("compile", key)
            return compiled, False
        finally:
            if acquired:
                self._release(lock)

    def log_external_hit(self, key: str) -> None:
        """Record a lookup served by a warm tier fronting this directory.

        A :class:`TieredCache` whose in-memory tier satisfies a lookup calls
        this so the cross-process event log keeps counting one event per
        lookup -- campaign-level hit/miss/compile totals stay comparable
        whether or not a warm session sat in front of the directory.
        """
        self.hits += 1
        self._log_event("hit", key)

    # ------------------------------------------------------------ maintenance

    def entries(self) -> Dict[str, int]:
        """Cache entries and their sizes in bytes."""
        return {p.stem: p.stat().st_size for p in self.directory.glob("*.mpiwasm")}

    def clear(self) -> int:
        """Delete all cached artifacts (and locks, and the event log);
        returns the number of artifacts removed.  Tolerates concurrent
        removals -- another process releasing its lock mid-clear is fine."""
        removed = 0
        for p in self.directory.glob("*.mpiwasm"):
            try:
                p.unlink()
                removed += 1
            except FileNotFoundError:
                pass
        for p in self.directory.glob("*.lock"):
            try:
                p.unlink()
            except FileNotFoundError:
                pass
        try:
            self._events_path.unlink()
        except FileNotFoundError:
            pass
        return removed


class InMemoryCache(_CacheStatsMixin):
    """Process-local artifact cache used when no cache directory is configured."""

    def __init__(self) -> None:
        self._store: Dict[str, CompiledModule] = {}
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.last_hit_tier: Optional[str] = None

    def contains(self, key: str) -> bool:
        """Whether an artifact for ``key`` is cached."""
        return key in self._store

    def store(self, key: str, compiled: CompiledModule) -> None:
        """Keep a compilation artifact in memory."""
        self._store[key] = compiled

    def load(self, key: str, module: Module) -> Optional[CompiledModule]:
        """Load a cached artifact (``None`` on miss)."""
        cached = self._store.get(key)
        if cached is None or cached.ir_version != IR_VERSION:
            self.misses += 1
            self.last_hit_tier = None
            return None
        self.hits += 1
        self.last_hit_tier = "memory"
        return CompiledModule(
            backend_name=cached.backend_name,
            module=module,
            compile_seconds=0.0,
            artifact=cached.artifact,
            function_count=cached.function_count,
            ir_version=cached.ir_version,
        )

    def load_or_compute(
        self, key: str, module: Module, compute: Callable[[], CompiledModule]
    ) -> Tuple[CompiledModule, bool]:
        """Return ``(artifact, was_hit)``, compiling on a miss.

        Same contract as :meth:`FileSystemCache.load_or_compute`, minus the
        cross-process coordination (this cache never crosses a process).
        """
        cached = self.load(key, module)
        if cached is not None:
            return cached, True
        compiled = compute()
        self.store(key, compiled)
        self.compiles += 1
        return compiled, False

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        n = len(self._store)
        self._store.clear()
        return n


class TieredCache(_CacheStatsMixin):
    """A session-lifetime in-memory tier fronting the shared on-disk cache.

    ``repro.api.Session`` hands one of these to its embedders: lookups are
    served from ``memory`` first (no disk round-trip, no pickling), falling
    back to ``disk``'s cross-process compile-once path on a memory miss; every
    artifact obtained from the disk tier is promoted into memory so the next
    job in the same session skips the filesystem entirely.

    Stats contract: exactly one hit-or-miss is recorded per lookup, and a
    memory-tier hit is reported to the disk tier's event log (see
    :meth:`FileSystemCache.log_external_hit`), so campaign-wide counters are
    identical with or without a warm session in front.
    """

    def __init__(self, memory: InMemoryCache, disk: Optional[FileSystemCache] = None):
        self.memory = memory
        self.disk = disk
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.last_hit_tier: Optional[str] = None

    def contains(self, key: str) -> bool:
        """Whether either tier holds an artifact for ``key``."""
        return self.memory.contains(key) or (self.disk is not None and self.disk.contains(key))

    def store(self, key: str, compiled: CompiledModule) -> None:
        """Publish an artifact to both tiers."""
        self.memory.store(key, compiled)
        if self.disk is not None:
            self.disk.store(key, compiled)

    def load(self, key: str, module: Module) -> Optional[CompiledModule]:
        """Load from memory, then disk (promoting on a disk hit)."""
        cached = self.memory.load(key, module)
        if cached is not None:
            self.hits += 1
            self.last_hit_tier = "memory"
            if self.disk is not None:
                self.disk.log_external_hit(key)
            return cached
        if self.disk is None:
            self.misses += 1
            self.last_hit_tier = None
            return None
        cached = self.disk.load(key, module)
        if cached is None:
            self.misses += 1
            self.last_hit_tier = None
            return None
        self.memory.store(key, cached)
        self.hits += 1
        self.last_hit_tier = "fs"
        return cached

    def load_or_compute(
        self, key: str, module: Module, compute: Callable[[], CompiledModule]
    ) -> Tuple[CompiledModule, bool]:
        """Same contract as :meth:`FileSystemCache.load_or_compute`."""
        cached = self.memory.load(key, module)
        if cached is not None:
            self.hits += 1
            self.last_hit_tier = "memory"
            if self.disk is not None:
                self.disk.log_external_hit(key)
            return cached, True
        if self.disk is None:
            compiled = compute()
            self.memory.store(key, compiled)
            self.misses += 1
            self.compiles += 1
            self.last_hit_tier = None
            return compiled, False
        compiled, was_hit = self.disk.load_or_compute(key, module, compute)
        self.memory.store(key, compiled)
        if was_hit:
            self.hits += 1
            self.last_hit_tier = "fs"
        else:
            self.misses += 1
            self.compiles += 1
            self.last_hit_tier = None
        return compiled, was_hit

    def clear(self) -> int:
        """Clear the memory tier only (the disk tier is shared state)."""
        return self.memory.clear()


#: Process-wide shared cache used by default (one per Python process, like the
#: per-node cache directory MPIWasm uses).
GLOBAL_CACHE = InMemoryCache()
