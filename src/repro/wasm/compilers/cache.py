"""Content-addressed ahead-of-time compilation cache (§3.3).

MPIWasm offsets the LLVM back-end's long compile times by caching the
generated shared object in the filesystem, keyed by a Blake-3 hash of the
Wasm module.  Since the lowering refactor *every* back-end produces a
serializable artifact (lowered IR for the interpreting back-ends, generated
Python source for LLVM), so the cache is useful for all three -- repeated
launches of the same application skip lowering and code generation entirely.

Keys are a ``blake2b`` hash over module bytes + back-end name + IR version
(Blake-3 is not packaged offline; the only property used is collision-
resistant content addressing, so the substitution is behaviour-preserving).
Including :data:`repro.wasm.lowering.IR_VERSION` in the key means an IR
format change transparently invalidates stale artifacts instead of loading
them into a newer runtime.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Dict, Optional, Union

from repro.wasm.compilers.base import CompiledModule
from repro.wasm.lowering import IR_VERSION
from repro.wasm.module import Module


def module_hash(wasm_bytes: bytes, backend_name: str, ir_version: int = IR_VERSION) -> str:
    """Content hash of a (module bytes, back-end, IR version) combination."""
    h = hashlib.blake2b(digest_size=32)
    h.update(backend_name.encode("utf-8"))
    h.update(b"\x00")
    h.update(str(ir_version).encode("ascii"))
    h.update(b"\x00")
    h.update(wasm_bytes)
    return h.hexdigest()


class _CacheStatsMixin:
    """Hit/miss accounting shared by both cache flavours."""

    hits: int
    misses: int

    def stats(self) -> Dict[str, int]:
        """Counters in the shape the metrics registry and reports consume."""
        return {"hits": self.hits, "misses": self.misses}


class FileSystemCache(_CacheStatsMixin):
    """Filesystem-backed cache of compilation artifacts.

    Any change to the module bytes (or the back-end, or the IR version)
    changes the hash, which transparently triggers recompilation; repeated
    executions of the same application hit the cache and skip the compile
    step entirely.
    """

    def __init__(self, directory: Union[Path, str]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.mpiwasm"

    def contains(self, key: str) -> bool:
        """Whether an artifact for ``key`` is cached."""
        return self._path(key).exists()

    def store(self, key: str, compiled: CompiledModule) -> Path:
        """Persist a compilation artifact under ``key``."""
        payload = {
            "backend": compiled.backend_name,
            "ir_version": compiled.ir_version,
            "compile_seconds": compiled.compile_seconds,
            "function_count": compiled.function_count,
            "artifact": compiled.artifact,
        }
        path = self._path(key)
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        return path

    def load(self, key: str, module: Module) -> Optional[CompiledModule]:
        """Load a cached artifact for ``key`` (``None`` on miss)."""
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if payload.get("ir_version", IR_VERSION) != IR_VERSION:
            # Stale artifact from an older IR: treat as a miss and recompile.
            self.misses += 1
            return None
        self.hits += 1
        return CompiledModule(
            backend_name=payload["backend"],
            module=module,
            compile_seconds=0.0,  # cache hits skip compilation
            artifact=payload["artifact"],
            function_count=payload["function_count"],
            ir_version=payload.get("ir_version", IR_VERSION),
        )

    def entries(self) -> Dict[str, int]:
        """Cache entries and their sizes in bytes."""
        return {p.stem: p.stat().st_size for p in self.directory.glob("*.mpiwasm")}

    def clear(self) -> int:
        """Delete all cached artifacts; returns the number removed."""
        removed = 0
        for p in self.directory.glob("*.mpiwasm"):
            p.unlink()
            removed += 1
        return removed


class InMemoryCache(_CacheStatsMixin):
    """Process-local artifact cache used when no cache directory is configured."""

    def __init__(self) -> None:
        self._store: Dict[str, CompiledModule] = {}
        self.hits = 0
        self.misses = 0

    def contains(self, key: str) -> bool:
        """Whether an artifact for ``key`` is cached."""
        return key in self._store

    def store(self, key: str, compiled: CompiledModule) -> None:
        """Keep a compilation artifact in memory."""
        self._store[key] = compiled

    def load(self, key: str, module: Module) -> Optional[CompiledModule]:
        """Load a cached artifact (``None`` on miss)."""
        cached = self._store.get(key)
        if cached is None or cached.ir_version != IR_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return CompiledModule(
            backend_name=cached.backend_name,
            module=module,
            compile_seconds=0.0,
            artifact=cached.artifact,
            function_count=cached.function_count,
            ir_version=cached.ir_version,
        )

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        n = len(self._store)
        self._store.clear()
        return n


#: Process-wide shared cache used by default (one per Python process, like the
#: per-node cache directory MPIWasm uses).
GLOBAL_CACHE = InMemoryCache()
