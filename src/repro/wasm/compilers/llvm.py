"""LLVM back-end: translate function bodies to generated Python source.

Wasmer's LLVM back-end lowers Wasm through LLVM-IR into an optimised shared
object that is later ``dlopen``-ed.  The analogue here lowers every function
body into Python source code (the module's "shared object"), compiles it with
``compile``/``exec`` once, and thereafter executes plain Python functions with
no per-instruction dispatch -- the slowest back-end to compile and the fastest
to run, reproducing the LLVM row of Table 1.  The generated source is a plain
string, which is exactly what the embedder's filesystem cache stores and
reloads (§3.3 of the paper).

Structured Wasm control flow is lowered with the label-id scheme: every
``block``/``loop``/``if`` gets a unique integer label, branches set ``_br`` to
the target label and break out of nested Python ``while`` regions until the
epilogue of the target construct consumes the branch.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence

from repro.wasm import values as V
from repro.wasm.compilers.base import CompiledModule, CompilerBackend, register_backend
from repro.wasm.errors import IndirectCallTrap, StackExhaustionTrap, Trap, UnreachableTrap
from repro.wasm.instructions import BlockType, MemArg
from repro.wasm.interpreter import (
    _CONVERSIONS,
    _F_BIN,
    _I32_BIN,
    _I64_BIN,
    _LOADS,
    _STORES,
    _UNARY_INT,
    _f_unary,
    _simd_binary,
    _simd_lanes,
)
from repro.wasm.module import Function, Module
from repro.wasm.runtime import Executor, HostFunction, Instance

MAX_CALL_DEPTH = 256

# Operations inlined directly into generated code for speed; everything else
# falls back to the shared semantic tables (still correct, slightly slower).
_INLINE_I32 = {
    "i32.add": "S.append((_a + _b) & 0xFFFFFFFF)",
    "i32.sub": "S.append((_a - _b) & 0xFFFFFFFF)",
    "i32.mul": "S.append((_a * _b) & 0xFFFFFFFF)",
    "i32.and": "S.append(_a & _b)",
    "i32.or": "S.append(_a | _b)",
    "i32.xor": "S.append(_a ^ _b)",
    "i32.eq": "S.append(int(_a == _b))",
    "i32.ne": "S.append(int(_a != _b))",
    "i32.lt_u": "S.append(int(_a < _b))",
    "i32.gt_u": "S.append(int(_a > _b))",
    "i32.le_u": "S.append(int(_a <= _b))",
    "i32.ge_u": "S.append(int(_a >= _b))",
    "i32.lt_s": "S.append(int(_S32(_a) < _S32(_b)))",
    "i32.gt_s": "S.append(int(_S32(_a) > _S32(_b)))",
    "i32.le_s": "S.append(int(_S32(_a) <= _S32(_b)))",
    "i32.ge_s": "S.append(int(_S32(_a) >= _S32(_b)))",
    "i64.add": "S.append((_a + _b) & 0xFFFFFFFFFFFFFFFF)",
    "i64.sub": "S.append((_a - _b) & 0xFFFFFFFFFFFFFFFF)",
    "i64.mul": "S.append((_a * _b) & 0xFFFFFFFFFFFFFFFF)",
    "i64.and": "S.append(_a & _b)",
    "i64.or": "S.append(_a | _b)",
    "i64.xor": "S.append(_a ^ _b)",
    "f32.add": "S.append(_F32(_a + _b))",
    "f32.sub": "S.append(_F32(_a - _b))",
    "f32.mul": "S.append(_F32(_a * _b))",
    "f64.add": "S.append(_a + _b)",
    "f64.sub": "S.append(_a - _b)",
    "f64.mul": "S.append(_a * _b)",
    "f64.lt": "S.append(int(_a < _b))",
    "f64.gt": "S.append(int(_a > _b))",
    "f64.le": "S.append(int(_a <= _b))",
    "f64.ge": "S.append(int(_a >= _b))",
    "f64.eq": "S.append(int(_a == _b))",
    "f64.ne": "S.append(int(_a != _b))",
}


class _FunctionCodeGen:
    """Generates the Python source for one Wasm function."""

    def __init__(self, module: Module, func: Function, func_name: str):
        self.module = module
        self.func = func
        self.func_name = func_name
        self.lines: List[str] = []
        self.indent = 1
        self.label_counter = 0
        # Stack of (label_id, kind); index -1 is the innermost label.
        self.labels: List[tuple] = []

    # ------------------------------------------------------------------- utils

    def _emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _new_label(self) -> int:
        self.label_counter += 1
        return self.label_counter

    def _target(self, depth: int) -> int:
        return self.labels[-1 - depth][0]

    # ---------------------------------------------------------------- generate

    def generate(self) -> str:
        func_type = self.module.types[self.func.type_index]
        nresults = len(func_type.results)
        self._emit(f"def {self.func_name}(instance, args):")
        self.indent += 1
        self._emit("L = list(args)")
        if self.func.locals:
            defaults = [V.default_value(vt.short_name) for vt in self.func.locals]
            self._emit(f"L.extend({defaults!r})")
        self._emit("S = []")
        self._emit("M = instance.memory")
        self._emit("G = instance.globals")
        self._emit("call = instance.call_function")
        self._emit("_br = None")
        func_label = self._new_label()
        self.labels.append((func_label, "func"))
        self._emit("while True:")
        self.indent += 1
        for instr in self.func.body:
            self._instruction(instr, nresults)
        self._emit("break")
        self.indent -= 1
        self.labels.pop()
        if nresults:
            self._emit(f"return S[-{nresults}:]")
        else:
            self._emit("return []")
        self.indent -= 1
        return "\n".join(self.lines)

    # ------------------------------------------------------------- instructions

    def _instruction(self, instr, nresults: int) -> None:  # noqa: C901 - one big dispatcher
        name = instr.name
        emit = self._emit

        # ----- control flow ------------------------------------------------
        if name == "nop":
            emit("pass")
        elif name == "unreachable":
            emit("raise UnreachableTrap()")
        elif name == "block":
            label = self._new_label()
            self.labels.append((label, "block"))
            emit("while True:")
            self.indent += 1
        elif name == "loop":
            label = self._new_label()
            self.labels.append((label, "loop"))
            emit("while True:")
            self.indent += 1
            emit("while True:")
            self.indent += 1
        elif name == "if":
            label = self._new_label()
            self.labels.append((label, "if"))
            emit("while True:")
            self.indent += 1
            emit("if S.pop():")
            self.indent += 1
            emit("pass")
        elif name == "else":
            self.indent -= 1
            emit("else:")
            self.indent += 1
            emit("pass")
        elif name == "end":
            label, kind = self.labels.pop()
            if kind == "if":
                self.indent -= 1  # close the then/else suite
                emit("_br = None")
                emit("break")
                self.indent -= 1  # close the region while
                emit("if _br is not None:")
                emit(f"    if _br == {label}:")
                emit("        _br = None")
                emit("    else:")
                emit("        break")
            elif kind == "block":
                emit("_br = None")
                emit("break")
                self.indent -= 1
                emit("if _br is not None:")
                emit(f"    if _br == {label}:")
                emit("        _br = None")
                emit("    else:")
                emit("        break")
            elif kind == "loop":
                emit("_br = None")
                emit("break")
                self.indent -= 1  # close the body region
                emit(f"if _br == {label}:")
                emit("    _br = None")
                emit("    continue")
                emit("break")
                self.indent -= 1  # close the driver
                emit("if _br is not None:")
                emit("    break")
            else:  # pragma: no cover - function-level end handled by generate()
                raise Trap("unexpected end at function level")
        elif name == "br":
            emit(f"_br = {self._target(instr.operands[0])}")
            emit("break")
        elif name == "br_if":
            emit("if S.pop():")
            emit(f"    _br = {self._target(instr.operands[0])}")
            emit("    break")
        elif name == "br_table":
            targets, default = instr.operands
            ids = [self._target(d) for d in targets]
            default_id = self._target(default)
            emit("_i = S.pop()")
            emit(f"_br = {ids!r}[_i] if _i < {len(ids)} else {default_id}")
            emit("break")
        elif name == "return":
            func_type = self.module.types[self.func.type_index]
            n = len(func_type.results)
            emit(f"return S[-{n}:]" if n else "return []")
        elif name == "call":
            callee_index = instr.operands[0]
            callee_type = self.module.func_type(callee_index)
            nargs = len(callee_type.params)
            if nargs:
                emit(f"_a = S[-{nargs}:]")
                emit(f"del S[-{nargs}:]")
                emit(f"S.extend(call({callee_index}, _a))")
            else:
                emit(f"S.extend(call({callee_index}, []))")
        elif name == "call_indirect":
            type_index, table_index = instr.operands
            expected = self.module.types[type_index]
            nargs = len(expected.params)
            emit("_i = S.pop()")
            emit(f"_fi = instance.tables[{table_index}].get(_i)")
            emit("if _fi is None:")
            emit("    raise IndirectCallTrap('null funcref in call_indirect')")
            emit(f"if instance.function_type(_fi) != instance.module.types[{type_index}]:")
            emit("    raise IndirectCallTrap('call_indirect signature mismatch')")
            if nargs:
                emit(f"_a = S[-{nargs}:]")
                emit(f"del S[-{nargs}:]")
                emit("S.extend(call(_fi, _a))")
            else:
                emit("S.extend(call(_fi, []))")

        # ----- parametric / variables ----------------------------------------
        elif name == "drop":
            emit("S.pop()")
        elif name == "select":
            emit("_c = S.pop(); _b = S.pop(); _a = S.pop()")
            emit("S.append(_a if _c else _b)")
        elif name == "local.get":
            emit(f"S.append(L[{instr.operands[0]}])")
        elif name == "local.set":
            emit(f"L[{instr.operands[0]}] = S.pop()")
        elif name == "local.tee":
            emit(f"L[{instr.operands[0]}] = S[-1]")
        elif name == "global.get":
            emit(f"S.append(G[{instr.operands[0]}].value)")
        elif name == "global.set":
            emit(f"G[{instr.operands[0]}].set(S.pop())")

        # ----- constants ------------------------------------------------------
        elif name == "i32.const":
            emit(f"S.append({V.wrap32(instr.operands[0])})")
        elif name == "i64.const":
            emit(f"S.append({V.wrap64(instr.operands[0])})")
        elif name == "f32.const":
            emit(f"S.append({V.round_f32(float(instr.operands[0]))!r})")
        elif name == "f64.const":
            emit(f"S.append({float(instr.operands[0])!r})")
        elif name == "v128.const":
            emit(f"S.append({bytes(instr.operands[0])!r})")

        # ----- memory ---------------------------------------------------------
        elif name in _LOADS:
            memarg: MemArg = instr.operands[0]
            off = memarg.offset
            addr = f"S.pop() + {off}" if off else "S.pop()"
            nbytes, kind = _LOADS[name]
            if kind == "f32":
                emit(f"S.append(M.load_f32({addr}))")
            elif kind == "f64":
                emit(f"S.append(M.load_f64({addr}))")
            elif kind == "v128":
                emit(f"S.append(M.read({addr}, 16))")
            elif kind == "s32":
                emit(f"S.append(M.load_int({addr}, {nbytes}, signed=True) & 0xFFFFFFFF)")
            elif kind == "s64":
                emit(f"S.append(M.load_int({addr}, {nbytes}, signed=True) & 0xFFFFFFFFFFFFFFFF)")
            else:
                emit(f"S.append(M.load_int({addr}, {nbytes}))")
        elif name in _STORES:
            memarg = instr.operands[0]
            off = memarg.offset
            addr = f"S.pop() + {off}" if off else "S.pop()"
            emit("_v = S.pop()")
            if name == "f32.store":
                emit(f"M.store_f32({addr}, _v)")
            elif name == "f64.store":
                emit(f"M.store_f64({addr}, _v)")
            elif name == "v128.store":
                emit(f"M.write({addr}, bytes(_v))")
            else:
                emit(f"M.store_int({addr}, _v, {abs(_STORES[name])})")
        elif name == "memory.size":
            emit("S.append(M.pages)")
        elif name == "memory.grow":
            emit("S.append(M.grow(S.pop()) & 0xFFFFFFFF)")

        # ----- numeric --------------------------------------------------------
        elif name in _INLINE_I32:
            emit("_b = S.pop(); _a = S.pop()")
            emit(_INLINE_I32[name])
        elif name in _I32_BIN or name in _I64_BIN or name in _F_BIN:
            emit("_b = S.pop(); _a = S.pop()")
            emit(f"S.append(_BIN[{name!r}](_a, _b))")
        elif name in _UNARY_INT or name in _CONVERSIONS:
            emit(f"S.append(_UN[{name!r}](S.pop()))")
        elif name.startswith(("f32.", "f64.")) and name.split(".")[1] in (
            "abs", "neg", "sqrt", "ceil", "floor", "trunc", "nearest",
        ):
            emit(f"S.append(_FUNARY({name!r}, S.pop()))")

        # ----- SIMD -----------------------------------------------------------
        elif name.endswith(".splat"):
            fmt, count, size = _simd_lanes(name)
            if fmt in ("f", "d"):
                emit(f"S.append(struct.pack('<{fmt}', S.pop()) * {count})")
            else:
                emit(
                    f"S.append((S.pop() & {(1 << (8 * size)) - 1}).to_bytes({size}, 'little') * {count})"
                )
        elif ".extract_lane" in name:
            fmt, count, size = _simd_lanes(name)
            lane = instr.operands[0]
            lo, hi = lane * size, (lane + 1) * size
            if fmt in ("f", "d"):
                emit(f"S.append(struct.unpack('<{fmt}', S.pop()[{lo}:{hi}])[0])")
            else:
                emit(f"S.append(int.from_bytes(S.pop()[{lo}:{hi}], 'little'))")
        elif ".replace_lane" in name:
            fmt, count, size = _simd_lanes(name)
            lane = instr.operands[0]
            lo, hi = lane * size, (lane + 1) * size
            emit("_v = S.pop(); _vec = bytearray(S.pop())")
            if fmt in ("f", "d"):
                emit(f"_vec[{lo}:{hi}] = struct.pack('<{fmt}', _v)")
            else:
                emit(f"_vec[{lo}:{hi}] = (_v & {(1 << (8 * size)) - 1}).to_bytes({size}, 'little')")
            emit("S.append(bytes(_vec))")
        elif instr.info.is_simd:
            emit("_b = S.pop(); _a = S.pop()")
            emit(f"S.append(_SIMD_BIN({name!r}, _a, _b))")
        else:
            raise Trap(f"LLVM backend cannot lower instruction {name!r}")


class PythonCodeGenerator:
    """Generates one Python module of source text for a whole Wasm module."""

    def __init__(self, module: Module):
        self.module = module

    @staticmethod
    def function_symbol(local_index: int) -> str:
        """Python name of the generated function for a module-local index."""
        return f"__wasm_func_{local_index}"

    def generate(self) -> str:
        """Generate the full source ("shared object") for the module."""
        header = [
            "# Generated by the repro LLVM backend -- Wasm lowered to Python.",
            "# This text is the cacheable compilation artifact (cf. MPIWasm §3.3).",
        ]
        chunks: List[str] = ["\n".join(header)]
        for i, func in enumerate(self.module.functions):
            gen = _FunctionCodeGen(self.module, func, self.function_symbol(i))
            # Each function is generated at module level (indent starts at 0).
            gen.indent = 0
            chunks.append(gen.generate())
        return "\n\n\n".join(chunks) + "\n"


def _exec_namespace() -> Dict[str, object]:
    """Globals injected into the generated code's namespace."""
    merged_bin = {}
    merged_bin.update(_I32_BIN)
    merged_bin.update(_I64_BIN)
    merged_bin.update(_F_BIN)
    merged_un = {}
    merged_un.update(_UNARY_INT)
    merged_un.update(_CONVERSIONS)
    return {
        "struct": struct,
        "V": V,
        "_BIN": merged_bin,
        "_UN": merged_un,
        "_FUNARY": _f_unary,
        "_SIMD_BIN": _simd_binary,
        "_S32": V.signed32,
        "_S64": V.signed64,
        "_F32": V.round_f32,
        "UnreachableTrap": UnreachableTrap,
        "IndirectCallTrap": IndirectCallTrap,
        "Trap": Trap,
    }


def load_artifact(source: str, function_count: int) -> List:
    """Execute generated source and return the compiled callables in order."""
    namespace = _exec_namespace()
    code = compile(source, "<wasm-llvm-artifact>", "exec")
    exec(code, namespace)  # noqa: S102 - the artifact is generated by this backend
    return [namespace[PythonCodeGenerator.function_symbol(i)] for i in range(function_count)]


class LLVMExecutor(Executor):
    """Executes the Python callables produced by the code generator."""

    name = "llvm"

    def __init__(self, compiled_functions: List, max_call_depth: int = MAX_CALL_DEPTH):
        self._functions = compiled_functions
        self.max_call_depth = max_call_depth

    def prepare(self, module: Module) -> None:
        """No per-instance work: compilation already happened."""

    def call(self, instance: Instance, func_index: int, args: Sequence) -> List:
        target = instance.functions[func_index]
        if isinstance(target, HostFunction):
            result = target(instance, *args)
            if result is None:
                return []
            return list(result) if isinstance(result, (list, tuple)) else [result]
        local_index = func_index - instance.module.num_imported_functions()
        depth = instance.host_state.get("_call_depth", 0)
        if depth >= self.max_call_depth:
            raise StackExhaustionTrap(depth)
        instance.host_state["_call_depth"] = depth + 1
        try:
            return self._functions[local_index](instance, list(args))
        finally:
            instance.host_state["_call_depth"] = depth


class LLVMBackend(CompilerBackend):
    """Code-generating back-end (slowest compile, fastest execution)."""

    name = "llvm"

    def _compile(self, module: Module) -> str:
        source = PythonCodeGenerator(module).generate()
        # Force the bytecode compilation now so the cost is attributed to
        # compile time, as with LLVM's optimisation pipeline.
        compile(source, "<wasm-llvm-artifact>", "exec")
        return source

    def executor_for(self, compiled: CompiledModule) -> Executor:
        functions = load_artifact(str(compiled.artifact), len(compiled.module.functions))
        return LLVMExecutor(functions)


register_backend(LLVMBackend())
