"""LLVM back-end: translate lowered function bodies to generated Python source.

Wasmer's LLVM back-end lowers Wasm through LLVM-IR into an optimised shared
object that is later ``dlopen``-ed.  The analogue here consumes the
pre-resolved IR of :mod:`repro.wasm.lowering` -- the same lowered form the
interpreting back-ends execute, including fused superinstructions -- and
translates it into Python source code (the module's "shared object"), compiles
it with ``compile``/``exec`` once, and thereafter executes plain Python
functions with no per-instruction dispatch: the slowest back-end to compile
and the fastest to run, reproducing the LLVM row of Table 1.  The generated
source travels inside a serializable artifact dict, which is exactly what the
compilation cache stores and reloads (§3.3 of the paper).

Structured Wasm control flow is lowered with the label-id scheme: every
``block``/``loop``/``if`` gets a unique integer label, branches set ``_br`` to
the target label and break out of nested Python ``while`` regions until the
epilogue of the target construct consumes the branch.
"""

from __future__ import annotations

import math
import re
import struct
from typing import Dict, List, Optional, Sequence

from repro.wasm import values as V
from repro.wasm.compilers.base import CompiledModule, CompilerBackend, register_backend
from repro.wasm.errors import IndirectCallTrap, StackExhaustionTrap, Trap, UnreachableTrap
from repro.wasm.lowering import (
    IR_VERSION,
    LoweredFunction,
    _BINOPS,
    _UNOPS,
    _simd_binary,
    _simd_unary,
    lower_module,
)
from repro.wasm.module import Module
from repro.wasm.runtime import Executor, HostFunction, Instance

MAX_CALL_DEPTH = 256

# Binary operations inlined as expressions in generated code; everything else
# falls back to the shared semantic tables (still correct, slightly slower).
_INLINE_EXPR = {
    "i32.add": "(({a}) + ({b})) & 0xFFFFFFFF",
    "i32.sub": "(({a}) - ({b})) & 0xFFFFFFFF",
    "i32.mul": "(({a}) * ({b})) & 0xFFFFFFFF",
    "i32.and": "({a}) & ({b})",
    "i32.or": "({a}) | ({b})",
    "i32.xor": "({a}) ^ ({b})",
    "i32.shl": "(({a}) << (({b}) % 32)) & 0xFFFFFFFF",
    "i32.shr_u": "({a}) >> (({b}) % 32)",
    "i32.shr_s": "(_S32({a}) >> (({b}) % 32)) & 0xFFFFFFFF",
    "i32.eq": "int(({a}) == ({b}))",
    "i32.ne": "int(({a}) != ({b}))",
    "i32.lt_u": "int(({a}) < ({b}))",
    "i32.gt_u": "int(({a}) > ({b}))",
    "i32.le_u": "int(({a}) <= ({b}))",
    "i32.ge_u": "int(({a}) >= ({b}))",
    # Signed comparisons use the xor-bias trick: flipping the sign bit maps
    # signed order onto unsigned order, so no _S32/_S64 call is needed.
    "i32.lt_s": "int((({a}) ^ 0x80000000) < (({b}) ^ 0x80000000))",
    "i32.gt_s": "int((({a}) ^ 0x80000000) > (({b}) ^ 0x80000000))",
    "i32.le_s": "int((({a}) ^ 0x80000000) <= (({b}) ^ 0x80000000))",
    "i32.ge_s": "int((({a}) ^ 0x80000000) >= (({b}) ^ 0x80000000))",
    "i64.add": "(({a}) + ({b})) & 0xFFFFFFFFFFFFFFFF",
    "i64.sub": "(({a}) - ({b})) & 0xFFFFFFFFFFFFFFFF",
    "i64.mul": "(({a}) * ({b})) & 0xFFFFFFFFFFFFFFFF",
    "i64.and": "({a}) & ({b})",
    "i64.or": "({a}) | ({b})",
    "i64.xor": "({a}) ^ ({b})",
    "i64.shl": "(({a}) << (({b}) % 64)) & 0xFFFFFFFFFFFFFFFF",
    "i64.shr_u": "({a}) >> (({b}) % 64)",
    "i64.shr_s": "(_S64({a}) >> (({b}) % 64)) & 0xFFFFFFFFFFFFFFFF",
    "i64.eq": "int(({a}) == ({b}))",
    "i64.ne": "int(({a}) != ({b}))",
    "i64.lt_u": "int(({a}) < ({b}))",
    "i64.gt_u": "int(({a}) > ({b}))",
    "i64.le_u": "int(({a}) <= ({b}))",
    "i64.ge_u": "int(({a}) >= ({b}))",
    "i64.lt_s": "int((({a}) ^ 0x8000000000000000) < (({b}) ^ 0x8000000000000000))",
    "i64.gt_s": "int((({a}) ^ 0x8000000000000000) > (({b}) ^ 0x8000000000000000))",
    "i64.le_s": "int((({a}) ^ 0x8000000000000000) <= (({b}) ^ 0x8000000000000000))",
    "i64.ge_s": "int((({a}) ^ 0x8000000000000000) >= (({b}) ^ 0x8000000000000000))",
    "f32.add": "_F32(({a}) + ({b}))",
    "f32.sub": "_F32(({a}) - ({b}))",
    "f32.mul": "_F32(({a}) * ({b}))",
    "f64.add": "({a}) + ({b})",
    "f64.sub": "({a}) - ({b})",
    "f64.mul": "({a}) * ({b})",
    "f32.eq": "int(({a}) == ({b}))",
    "f32.ne": "int(({a}) != ({b}))",
    "f32.lt": "int(({a}) < ({b}))",
    "f32.gt": "int(({a}) > ({b}))",
    "f32.le": "int(({a}) <= ({b}))",
    "f32.ge": "int(({a}) >= ({b}))",
    "f64.eq": "int(({a}) == ({b}))",
    "f64.ne": "int(({a}) != ({b}))",
    "f64.lt": "int(({a}) < ({b}))",
    "f64.gt": "int(({a}) > ({b}))",
    "f64.le": "int(({a}) <= ({b}))",
    "f64.ge": "int(({a}) >= ({b}))",
}


def _binexpr(name: str, a: str, b: str) -> str:
    """Python expression computing binary op ``name`` over operand exprs."""
    template = _INLINE_EXPR.get(name)
    if template is not None:
        return template.format(a=a, b=b)
    return f"_BIN[{name!r}]({a}, {b})"


def _as_test(expr: str) -> str:
    """Strip the ``int(...)`` wrapper when an expression feeds an ``if``.

    Comparison templates produce ``int(<cmp>)`` because Wasm comparisons
    push an i32, but in test position the bool is enough and the call is
    pure overhead.
    """
    if expr.startswith("int(") and expr.endswith(")"):
        inner = expr[4:-1]
        if inner.count("(") == inner.count(")"):
            return inner
    return expr


# An expression is foldable when deferring its evaluation to the consuming
# statement cannot change behaviour: no stack traffic, no memory/global/call
# effects, and no lower-case scratch temporaries (those are reassigned by
# later statements).  Locals (``L[i]``) are safe because folding only ever
# spans the immediately preceding push -- nothing can mutate ``L`` in between.
_IMPURE = re.compile(r"S\.|call\(|M\.|G\[|instance|\b_[a-z][a-z0-9]*\b")


class _FunctionCodeGen:
    """Generates the Python source for one lowered Wasm function."""

    def __init__(self, lowered: LoweredFunction, func_name: str):
        self.lowered = lowered
        self.func_name = func_name
        self.lines: List[str] = []
        self.indent = 0
        self.label_counter = 0
        # Stack of (label_id, kind); index -1 is the innermost label.
        self.labels: List[tuple] = []

    # ------------------------------------------------------------------- utils

    def _emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _new_label(self) -> int:
        self.label_counter += 1
        return self.label_counter

    def _target(self, depth: int) -> int:
        return self.labels[-1 - depth][0]

    def _pop_expr(self) -> Optional[str]:
        """Stack-to-expression peephole: reclaim the last pushed pure value.

        When the immediately preceding emitted line is ``S.append(<expr>)``
        at the current indent and ``<expr>`` is side-effect free, delete the
        push and hand the expression to the consumer, eliding the stack
        round trip entirely.  The one-line lookback means a fold can never
        cross another statement, a control-flow join (those dedent), or a
        mutation of anything the expression reads.
        """
        if self.lines:
            prefix = "    " * self.indent + "S.append("
            line = self.lines[-1]
            if line.startswith(prefix) and line.endswith(")"):
                expr = line[len(prefix):-1]
                if _IMPURE.search(expr) is None:
                    self.lines.pop()
                    return expr
        return None

    def _pop_or_runtime(self) -> str:
        expr = self._pop_expr()
        return expr if expr is not None else "S.pop()"

    def _addr(self, offset: int) -> str:
        base = self._pop_or_runtime()
        return f"{base} + {offset}" if offset else base

    def _bin_operands(self) -> tuple:
        """Operand expressions for a two-operand consumer, fold-aware.

        ``b`` (top of stack) can only fold if it was the last push, and ``a``
        only if ``b`` folded too, so stack pop order is preserved; when
        neither folds the caller must spill through temporaries because every
        inline template evaluates ``a`` textually first.
        """
        b = self._pop_expr()
        if b is None:
            return None, None
        return self._pop_or_runtime(), b

    # ---------------------------------------------------------------- generate

    def generate(self) -> str:
        nresults = self.lowered.nresults
        self._emit(f"def {self.func_name}(instance, args):")
        self.indent += 1
        self._emit("L = list(args)")
        if self.lowered.local_defaults:
            self._emit(f"L.extend({list(self.lowered.local_defaults)!r})")
        self._emit("S = []")
        self._emit("M = instance.memory")
        self._emit("G = instance.globals")
        self._emit("call = instance.call_function")
        self._emit("_br = None")
        func_label = self._new_label()
        self.labels.append((func_label, "func"))
        self._emit("while True:")
        self.indent += 1
        for kind, imm in self.lowered.ops:
            self._op(kind, imm)
        self._emit("break")
        self.indent -= 1
        self.labels.pop()
        if nresults:
            self._emit(f"return S[-{nresults}:]")
        else:
            self._emit("return []")
        self.indent -= 1
        return "\n".join(self.lines)

    # --------------------------------------------------------------------- ops

    def _branch_stmts(self, depth: int) -> None:
        for stmt in self._branch_code(depth):
            self._emit("    " + stmt)

    def _branch_code(self, depth: int) -> List[str]:
        """Statements realising a branch to relative ``depth``.

        A depth-0 branch needs no label plumbing: the innermost region is
        the target, so a bare ``continue`` (loop back-edge) or ``break``
        (block/if/function exit, with ``_br`` still ``None``) lands exactly
        on the target's fallthrough path.
        """
        label, kind = self.labels[-1 - depth]
        if depth == 0:
            return ["continue" if kind == "loop" else "break"]
        return [f"_br = {label}", "break"]

    def _op(self, kind: str, imm) -> None:  # noqa: C901 - one big dispatcher
        emit = self._emit

        # ----- control flow ------------------------------------------------
        if kind == "fused.pad":
            return  # interior of a superinstruction: unreachable by construction
        if kind == "nop":
            emit("pass")
        elif kind == "unreachable":
            emit("raise UnreachableTrap()")
        elif kind == "block":
            label = self._new_label()
            self.labels.append((label, "block"))
            emit("while True:")
            self.indent += 1
        elif kind == "loop":
            label = self._new_label()
            self.labels.append((label, "loop"))
            emit("while True:")
            self.indent += 1
            emit("while True:")
            self.indent += 1
        elif kind == "if":
            label = self._new_label()
            self.labels.append((label, "if"))
            cond = _as_test(self._pop_or_runtime())
            emit("while True:")
            self.indent += 1
            emit(f"if {cond}:")
            self.indent += 1
            emit("pass")
        elif kind == "else":
            self.indent -= 1
            emit("else:")
            self.indent += 1
            emit("pass")
        elif kind == "end":
            label, label_kind = self.labels.pop()
            if label_kind in ("if", "block"):
                if label_kind == "if":
                    self.indent -= 1  # close the then/else suite
                emit("_br = None")
                emit("break")
                self.indent -= 1  # close the region while
                emit("if _br is not None:")
                emit(f"    if _br == {label}:")
                emit("        _br = None")
                emit("    else:")
                emit("        break")
            elif label_kind == "loop":
                emit("_br = None")
                emit("break")
                self.indent -= 1  # close the body region
                emit(f"if _br == {label}:")
                emit("    _br = None")
                emit("    continue")
                emit("break")
                self.indent -= 1  # close the driver
                emit("if _br is not None:")
                emit("    break")
            else:  # pragma: no cover - function-level end handled by generate()
                raise Trap("unexpected end at function level")
        elif kind == "br":
            for stmt in self._branch_code(imm):
                emit(stmt)
        elif kind == "br_if":
            emit(f"if {_as_test(self._pop_or_runtime())}:")
            self._branch_stmts(imm)
        elif kind == "br_table":
            targets, default = imm
            ids = [self._target(d) for d in targets]
            default_id = self._target(default)
            emit("_i = S.pop()")
            emit(f"_br = {ids!r}[_i] if _i < {len(ids)} else {default_id}")
            emit("break")
        elif kind == "return":
            n = self.lowered.nresults
            emit(f"return S[-{n}:]" if n else "return []")
        elif kind == "call":
            callee_index, nargs = imm
            if nargs:
                emit(f"_a = S[-{nargs}:]")
                emit(f"del S[-{nargs}:]")
                emit(f"S.extend(call({callee_index}, _a))")
            else:
                emit(f"S.extend(call({callee_index}, []))")
        elif kind == "call_indirect":
            type_index, table_index, nargs = imm
            emit("_i = S.pop()")
            emit(f"_fi = instance.tables[{table_index}].get(_i)")
            emit("if _fi is None:")
            emit("    raise IndirectCallTrap('null funcref in call_indirect')")
            emit(f"if instance.function_type(_fi) != instance.module.types[{type_index}]:")
            emit("    raise IndirectCallTrap('call_indirect signature mismatch')")
            if nargs:
                emit(f"_a = S[-{nargs}:]")
                emit(f"del S[-{nargs}:]")
                emit("S.extend(call(_fi, _a))")
            else:
                emit("S.extend(call(_fi, []))")

        # ----- parametric / variables ----------------------------------------
        elif kind == "drop":
            if self._pop_expr() is None:
                emit("S.pop()")
        elif kind == "select":
            emit("_c = S.pop(); _b = S.pop(); _a = S.pop()")
            emit("S.append(_a if _c else _b)")
        elif kind == "local.get":
            emit(f"S.append(L[{imm}])")
        elif kind == "local.set":
            emit(f"L[{imm}] = {self._pop_or_runtime()}")
        elif kind == "local.tee":
            emit(f"L[{imm}] = S[-1]")
        elif kind == "global.get":
            emit(f"S.append(G[{imm}].value)")
        elif kind == "global.set":
            emit(f"G[{imm}].set({self._pop_or_runtime()})")

        # ----- constants (pre-validated at lower time) -----------------------
        elif kind == "const":
            emit(f"S.append({imm!r})")

        # ----- memory ---------------------------------------------------------
        elif kind == "load.u":
            emit(f"S.append(M.load_int({self._addr(imm[0])}, {imm[1]}))")
        elif kind == "load.s32":
            emit(f"S.append(M.load_int({self._addr(imm[0])}, {imm[1]}, signed=True) & 0xFFFFFFFF)")
        elif kind == "load.s64":
            emit(
                f"S.append(M.load_int({self._addr(imm[0])}, {imm[1]}, signed=True)"
                " & 0xFFFFFFFFFFFFFFFF)"
            )
        elif kind == "load.f32":
            emit(f"S.append(M.load_f32({self._addr(imm)}))")
        elif kind == "load.f64":
            emit(f"S.append(M.load_f64({self._addr(imm)}))")
        elif kind == "load.v128":
            emit(f"S.append(M.read({self._addr(imm)}, 16))")
        elif kind == "store.i":
            v = self._pop_expr()
            if v is None:
                emit("_v = S.pop()")
                v = "_v"
            emit(f"M.store_int({self._addr(imm[0])}, {v}, {imm[1]})")
        elif kind == "store.f32":
            v = self._pop_expr()
            if v is None:
                emit("_v = S.pop()")
                v = "_v"
            emit(f"M.store_f32({self._addr(imm)}, {v})")
        elif kind == "store.f64":
            v = self._pop_expr()
            if v is None:
                emit("_v = S.pop()")
                v = "_v"
            emit(f"M.store_f64({self._addr(imm)}, {v})")
        elif kind == "store.v128":
            emit("_v = S.pop()")
            emit(f"M.write({self._addr(imm)}, bytes(_v))")
        elif kind == "memory.size":
            emit("S.append(M.pages)")
        elif kind == "memory.grow":
            emit("S.append(M.grow(S.pop()) & 0xFFFFFFFF)")
        elif kind == "memory.copy":
            emit("_n = S.pop(); _s = S.pop()")
            emit("M.copy_within(S.pop(), _s, _n)")
        elif kind == "memory.fill":
            emit("_n = S.pop(); _v = S.pop()")
            emit("M.fill(S.pop(), _v, _n)")

        # ----- numeric --------------------------------------------------------
        elif kind == "bin":
            a, b = self._bin_operands()
            if b is None:
                emit("_b = S.pop(); _a = S.pop()")
                a, b = "_a", "_b"
            emit(f"S.append({_binexpr(imm, a, b)})")
        elif kind == "un":
            emit(f"S.append(_UN[{imm!r}]({self._pop_or_runtime()}))")

        # ----- superinstructions ---------------------------------------------
        elif kind == "fused.get_get_bin":
            a, b, name = imm
            emit(f"S.append({_binexpr(name, f'L[{a}]', f'L[{b}]')})")
        elif kind == "fused.get_const_bin":
            a, const, name = imm
            emit(f"S.append({_binexpr(name, f'L[{a}]', repr(const))})")
        elif kind == "fused.get_const_store":
            a, value, offset, nbytes = imm
            base = f"L[{a}] + {offset}" if offset else f"L[{a}]"
            emit(f"M.store_int({base}, {value!r}, {nbytes})")
        elif kind == "fused.cmp_br_if":
            name, depth = imm
            a, b = self._bin_operands()
            if b is None:
                emit("_b = S.pop(); _a = S.pop()")
                a, b = "_a", "_b"
            emit(f"if {_as_test(_binexpr(name, a, b))}:")
            self._branch_stmts(depth)
        elif kind == "fused.eqz_br_if":
            emit(f"if not ({_as_test(self._pop_or_runtime())}):")
            self._branch_stmts(imm)
        elif kind == "fused.get_get_cmp_br_if":
            a, b, name, depth = imm
            emit(f"if {_as_test(_binexpr(name, f'L[{a}]', f'L[{b}]'))}:")
            self._branch_stmts(depth)
        elif kind == "fused.get_get_bin_set":
            a, b, name, dest = imm
            emit(f"L[{dest}] = {_binexpr(name, f'L[{a}]', f'L[{b}]')}")
        elif kind == "fused.get_const_bin_set":
            a, const, name, dest = imm
            emit(f"L[{dest}] = {_binexpr(name, f'L[{a}]', repr(const))}")
        elif kind == "fused.bin_set":
            name, dest = imm
            a, b = self._bin_operands()
            if b is None:
                emit("_b = S.pop(); _a = S.pop()")
                a, b = "_a", "_b"
            emit(f"L[{dest}] = {_binexpr(name, a, b)}")
        elif kind == "fused.get_get_bin_set_br":
            a, b, name, dest, depth = imm
            emit(f"L[{dest}] = {_binexpr(name, f'L[{a}]', f'L[{b}]')}")
            for stmt in self._branch_code(depth):
                emit(stmt)
        elif kind == "fused.get_const_bin_set_br":
            a, const, name, dest, depth = imm
            emit(f"L[{dest}] = {_binexpr(name, f'L[{a}]', repr(const))}")
            for stmt in self._branch_code(depth):
                emit(stmt)
        elif kind == "fused.set_br":
            dest, depth = imm
            emit(f"L[{dest}] = {self._pop_or_runtime()}")
            for stmt in self._branch_code(depth):
                emit(stmt)
        elif kind == "fused.mined":
            # A mined chain is just its constituents back-to-back: generated
            # code has no dispatch loop, so emitting them inline is exact.
            for sub_kind, sub_imm in zip(*imm):
                self._op(sub_kind, sub_imm)

        # ----- SIMD -----------------------------------------------------------
        elif kind == "splat":
            fmt, count, size = imm
            if fmt in ("f", "d"):
                emit(f"S.append(_V128L[{fmt!r}].pack(S.pop()) * {count})")
            else:
                emit(
                    f"S.append((S.pop() & {(1 << (8 * size)) - 1}).to_bytes({size}, 'little')"
                    f" * {count})"
                )
        elif kind == "extract_lane":
            fmt, size, lane, signed = imm
            lo, hi = lane * size, (lane + 1) * size
            if fmt in ("f", "d"):
                emit(f"S.append(_V128L[{fmt!r}].unpack(S.pop()[{lo}:{hi}])[0])")
            elif signed:
                emit(
                    f"S.append(int.from_bytes(S.pop()[{lo}:{hi}], 'little', signed=True)"
                    " & 0xFFFFFFFF)"
                )
            else:
                emit(f"S.append(int.from_bytes(S.pop()[{lo}:{hi}], 'little'))")
        elif kind == "replace_lane":
            fmt, size, lane = imm
            lo, hi = lane * size, (lane + 1) * size
            emit("_v = S.pop(); _vec = bytearray(S.pop())")
            if fmt in ("f", "d"):
                emit(f"_vec[{lo}:{hi}] = _V128L[{fmt!r}].pack(_v)")
            else:
                emit(f"_vec[{lo}:{hi}] = (_v & {(1 << (8 * size)) - 1}).to_bytes({size}, 'little')")
            emit("S.append(bytes(_vec))")
        elif kind == "v128.not":
            emit(
                "S.append((~int.from_bytes(S.pop(), 'little') & ((1 << 128) - 1))"
                ".to_bytes(16, 'little'))"
            )
        elif kind == "simd.bin":
            emit("_b = S.pop(); _a = S.pop()")
            emit(f"S.append(_SIMD_BIN({imm!r}, _a, _b))")
        elif kind == "simd.un":
            emit(f"S.append(_SIMD_UN({imm!r}, S.pop()))")
        else:
            raise Trap(f"LLVM backend cannot translate lowered op {kind!r}")


class PythonCodeGenerator:
    """Generates one Python module of source text for a whole Wasm module.

    Consumes the lowered IR (lowering the module itself when none is
    supplied), so code generation starts from pre-resolved jump targets,
    pre-validated constants and fused superinstructions.
    """

    def __init__(self, module: Module, lowered: Optional[Sequence[LoweredFunction]] = None):
        self.module = module
        self.lowered = list(lowered) if lowered is not None else lower_module(module)

    @staticmethod
    def function_symbol(local_index: int) -> str:
        """Python name of the generated function for a module-local index."""
        return f"__wasm_func_{local_index}"

    def generate(self) -> str:
        """Generate the full source ("shared object") for the module."""
        header = [
            "# Generated by the repro LLVM backend -- lowered Wasm IR to Python.",
            "# This text is the cacheable compilation artifact (cf. MPIWasm §3.3).",
        ]
        chunks: List[str] = ["\n".join(header)]
        for i, lowered in enumerate(self.lowered):
            gen = _FunctionCodeGen(lowered, self.function_symbol(i))
            chunks.append(gen.generate())
        return "\n\n\n".join(chunks) + "\n"


def _exec_namespace() -> Dict[str, object]:
    """Globals injected into the generated code's namespace."""
    return {
        "struct": struct,
        "math": math,
        # repr() of non-finite floats emits the bare names inf/-inf/nan in
        # generated constants; bind them so those literals evaluate.
        "inf": math.inf,
        "nan": math.nan,
        "V": V,
        "_BIN": _BINOPS,
        "_UN": _UNOPS,
        "_SIMD_BIN": _simd_binary,
        "_SIMD_UN": _simd_unary,
        "_V128L": V.V128_LANE,
        "_S32": V.signed32,
        "_S64": V.signed64,
        "_F32": V.round_f32,
        "UnreachableTrap": UnreachableTrap,
        "IndirectCallTrap": IndirectCallTrap,
        "Trap": Trap,
    }


def load_artifact(source: str, function_count: int) -> List:
    """Execute generated source and return the compiled callables in order."""
    namespace = _exec_namespace()
    code = compile(source, "<wasm-llvm-artifact>", "exec")
    exec(code, namespace)  # noqa: S102 - the artifact is generated by this backend
    return [namespace[PythonCodeGenerator.function_symbol(i)] for i in range(function_count)]


class LLVMExecutor(Executor):
    """Executes the Python callables produced by the code generator."""

    name = "llvm"

    def __init__(self, compiled_functions: List, max_call_depth: int = MAX_CALL_DEPTH):
        self._functions = compiled_functions
        self.max_call_depth = max_call_depth

    def prepare(self, module: Module) -> None:
        """No per-instance work: compilation already happened."""

    def configure(self, max_call_depth: Optional[int] = None) -> None:
        """Apply embedder-level execution limits (see :class:`Executor`)."""
        if max_call_depth is not None:
            self.max_call_depth = max_call_depth

    def call(self, instance: Instance, func_index: int, args: Sequence) -> List:
        target = instance.functions[func_index]
        if isinstance(target, HostFunction):
            result = target(instance, *args)
            if result is None:
                return []
            return list(result) if isinstance(result, (list, tuple)) else [result]
        local_index = func_index - instance.module.num_imported_functions()
        depth = instance.host_state.get("_call_depth", 0)
        if depth >= self.max_call_depth:
            raise StackExhaustionTrap(depth)
        instance.host_state["_call_depth"] = depth + 1
        try:
            return self._functions[local_index](instance, list(args))
        finally:
            instance.host_state["_call_depth"] = depth


class LLVMBackend(CompilerBackend):
    """Code-generating back-end (slowest compile, fastest execution)."""

    name = "llvm"

    def _compile(self, module: Module) -> dict:
        lowered = lower_module(module)
        source = PythonCodeGenerator(module, lowered).generate()
        # Force the bytecode compilation now so the cost is attributed to
        # compile time, as with LLVM's optimisation pipeline.
        compile(source, "<wasm-llvm-artifact>", "exec")
        return {"kind": "python-source", "ir_version": IR_VERSION, "source": source}

    def executor_for(self, compiled: CompiledModule) -> Executor:
        # Cache loads hand every rank a *fresh* CompiledModule, but all of
        # them share the Module object -- stash the exec()'d callables there
        # so loading the artifact is a once-per-process cost.
        module = compiled.module
        functions = getattr(module, "_llvm_runtime", None)
        if functions is None:
            artifact = compiled.artifact
            source = artifact["source"] if isinstance(artifact, dict) else str(artifact)
            functions = load_artifact(source, len(module.functions))
            module._llvm_runtime = functions
        return LLVMExecutor(functions)


register_backend(LLVMBackend())
