"""Lowering pass: decoded function bodies -> a pre-resolved, flat IR.

The interpreter used to dispatch on opcode *name strings* and (in the
Singlepass back-end) re-scan function bodies at run time for the ``else``/
``end`` matching a construct.  This module lowers each decoded body exactly
once into a flat code array of ``(handler, immediate)`` pairs:

* opcode handlers are resolved to direct function references at lower time --
  the dispatch loop indexes the array and calls, with no per-step lookups,
* ``block``/``if``/``else`` jump targets are pre-computed into absolute
  offsets (subsuming the old per-backend control maps),
* constants are pre-validated (wrapped/rounded) at lower time,
* common adjacent instruction pairs are fused into superinstructions
  (``local.get+local.get+binop``, ``local.get+const+binop``,
  ``local.get+const+store``, compare+``br_if``).

The lowered form exists in two representations: the *serial* form
(``LoweredFunction.ops`` -- plain ``(kind, immediate)`` tuples of picklable
values, what the on-disk compilation cache stores, versioned by
:data:`IR_VERSION`) and the *linked* form (``LoweredFunction.code`` --
``(handler, immediate)`` pairs produced by :func:`link`, rebuilt on load).

All three compiler back-ends are rebased on this IR: Singlepass lowers lazily
per first call, Cranelift lowers eagerly at compile time, and the LLVM
back-end consumes the lowered ops as the input to its Python code generator --
so the back-ends still differ only in *when* the work happens, exactly as in
Table 1 of the paper.

The numeric semantic tables (shared with the LLVM code generator so all
back-ends agree bit-for-bit) live here as well; they delegate to
:mod:`repro.wasm.values`.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.wasm import values as V
from repro.wasm.errors import IndirectCallTrap, Trap, UnreachableTrap
from repro.wasm.instructions import BlockType, Instruction, MemArg
from repro.wasm.module import Function, Module

#: Version stamp of the lowered representation.  Part of the compilation-cache
#: key: bumping it transparently invalidates every cached artifact.
#: Version 2: bulk memory (``memory.copy``/``memory.fill``), the full SIMD
#: lane-arithmetic set (NumPy-backed), signedness-aware ``extract_lane``
#: immediates, and the mined-superinstruction op kind ``fused.mined`` plus the
#: serialized fusion table.
IR_VERSION = 2


# ------------------------------------------------------------ semantic tables

_I32_BIN = {
    "i32.add": lambda a, b: V.wrap32(a + b),
    "i32.sub": lambda a, b: V.wrap32(a - b),
    "i32.mul": lambda a, b: V.wrap32(a * b),
    "i32.div_s": lambda a, b: V.div_s(a, b, 32),
    "i32.div_u": lambda a, b: V.div_u(a, b, 32),
    "i32.rem_s": lambda a, b: V.rem_s(a, b, 32),
    "i32.rem_u": lambda a, b: V.rem_u(a, b, 32),
    "i32.and": lambda a, b: a & b,
    "i32.or": lambda a, b: a | b,
    "i32.xor": lambda a, b: a ^ b,
    "i32.shl": lambda a, b: V.shl(a, b, 32),
    "i32.shr_s": lambda a, b: V.shr_s(a, b, 32),
    "i32.shr_u": lambda a, b: V.shr_u(a, b, 32),
    "i32.rotl": lambda a, b: V.rotl(a, b, 32),
    "i32.rotr": lambda a, b: V.rotr(a, b, 32),
    "i32.eq": lambda a, b: int(a == b),
    "i32.ne": lambda a, b: int(a != b),
    "i32.lt_s": lambda a, b: int(V.signed32(a) < V.signed32(b)),
    "i32.lt_u": lambda a, b: int(a < b),
    "i32.gt_s": lambda a, b: int(V.signed32(a) > V.signed32(b)),
    "i32.gt_u": lambda a, b: int(a > b),
    "i32.le_s": lambda a, b: int(V.signed32(a) <= V.signed32(b)),
    "i32.le_u": lambda a, b: int(a <= b),
    "i32.ge_s": lambda a, b: int(V.signed32(a) >= V.signed32(b)),
    "i32.ge_u": lambda a, b: int(a >= b),
}

_I64_BIN = {
    "i64.add": lambda a, b: V.wrap64(a + b),
    "i64.sub": lambda a, b: V.wrap64(a - b),
    "i64.mul": lambda a, b: V.wrap64(a * b),
    "i64.div_s": lambda a, b: V.div_s(a, b, 64),
    "i64.div_u": lambda a, b: V.div_u(a, b, 64),
    "i64.rem_s": lambda a, b: V.rem_s(a, b, 64),
    "i64.rem_u": lambda a, b: V.rem_u(a, b, 64),
    "i64.and": lambda a, b: a & b,
    "i64.or": lambda a, b: a | b,
    "i64.xor": lambda a, b: a ^ b,
    "i64.shl": lambda a, b: V.shl(a, b, 64),
    "i64.shr_s": lambda a, b: V.shr_s(a, b, 64),
    "i64.shr_u": lambda a, b: V.shr_u(a, b, 64),
    "i64.rotl": lambda a, b: V.rotl(a, b, 64),
    "i64.rotr": lambda a, b: V.rotr(a, b, 64),
    "i64.eq": lambda a, b: int(a == b),
    "i64.ne": lambda a, b: int(a != b),
    "i64.lt_s": lambda a, b: int(V.signed64(a) < V.signed64(b)),
    "i64.lt_u": lambda a, b: int(a < b),
    "i64.gt_s": lambda a, b: int(V.signed64(a) > V.signed64(b)),
    "i64.gt_u": lambda a, b: int(a > b),
    "i64.le_s": lambda a, b: int(V.signed64(a) <= V.signed64(b)),
    "i64.le_u": lambda a, b: int(a <= b),
    "i64.ge_s": lambda a, b: int(V.signed64(a) >= V.signed64(b)),
    "i64.ge_u": lambda a, b: int(a >= b),
}


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.inf if sign > 0 else -math.inf
    return a / b


_F_BIN = {
    "f32.add": lambda a, b: V.round_f32(a + b),
    "f32.sub": lambda a, b: V.round_f32(a - b),
    "f32.mul": lambda a, b: V.round_f32(a * b),
    "f32.div": lambda a, b: V.round_f32(_fdiv(a, b)),
    "f32.min": lambda a, b: V.round_f32(V.float_min(a, b)),
    "f32.max": lambda a, b: V.round_f32(V.float_max(a, b)),
    "f32.copysign": lambda a, b: V.round_f32(math.copysign(a, b)),
    "f64.add": lambda a, b: a + b,
    "f64.sub": lambda a, b: a - b,
    "f64.mul": lambda a, b: a * b,
    "f64.div": _fdiv,
    "f64.min": V.float_min,
    "f64.max": V.float_max,
    "f64.copysign": lambda a, b: math.copysign(a, b),
    "f32.eq": lambda a, b: int(a == b),
    "f32.ne": lambda a, b: int(a != b),
    "f32.lt": lambda a, b: int(a < b),
    "f32.gt": lambda a, b: int(a > b),
    "f32.le": lambda a, b: int(a <= b),
    "f32.ge": lambda a, b: int(a >= b),
    "f64.eq": lambda a, b: int(a == b),
    "f64.ne": lambda a, b: int(a != b),
    "f64.lt": lambda a, b: int(a < b),
    "f64.gt": lambda a, b: int(a > b),
    "f64.le": lambda a, b: int(a <= b),
    "f64.ge": lambda a, b: int(a >= b),
}


def _f_unary(name: str, a: float) -> float:
    base = name.split(".")[1]
    if base == "abs":
        r = abs(a)
    elif base == "neg":
        r = -a
    elif base == "sqrt":
        r = math.sqrt(a) if a >= 0 else math.nan
    elif base == "ceil":
        r = float(math.ceil(a)) if not (math.isnan(a) or math.isinf(a)) else a
    elif base == "floor":
        r = float(math.floor(a)) if not (math.isnan(a) or math.isinf(a)) else a
    elif base == "trunc":
        r = float(math.trunc(a)) if not (math.isnan(a) or math.isinf(a)) else a
    elif base == "nearest":
        r = V.nearest(a)
    else:  # pragma: no cover - table integrity guard
        raise Trap(f"unknown float unary {name}")
    return V.round_f32(r) if name.startswith("f32.") else r


_UNARY_INT = {
    "i32.clz": lambda a: V.clz(a, 32),
    "i32.ctz": lambda a: V.ctz(a, 32),
    "i32.popcnt": lambda a: V.popcnt(a, 32),
    "i64.clz": lambda a: V.clz(a, 64),
    "i64.ctz": lambda a: V.ctz(a, 64),
    "i64.popcnt": lambda a: V.popcnt(a, 64),
    "i32.eqz": lambda a: int(a == 0),
    "i64.eqz": lambda a: int(a == 0),
    "i32.extend8_s": lambda a: V.extend_s(a, 8, 32),
    "i32.extend16_s": lambda a: V.extend_s(a, 16, 32),
    "i64.extend8_s": lambda a: V.extend_s(a, 8, 64),
    "i64.extend16_s": lambda a: V.extend_s(a, 16, 64),
    "i64.extend32_s": lambda a: V.extend_s(a, 32, 64),
}

_CONVERSIONS = {
    "i32.wrap_i64": lambda a: V.wrap32(a),
    "i64.extend_i32_s": lambda a: V.signed32(a) & V.MASK64,
    "i64.extend_i32_u": lambda a: a & V.MASK32,
    "i32.trunc_f32_s": lambda a: V.trunc_to_int(a, 32, True),
    "i32.trunc_f32_u": lambda a: V.trunc_to_int(a, 32, False),
    "i32.trunc_f64_s": lambda a: V.trunc_to_int(a, 32, True),
    "i32.trunc_f64_u": lambda a: V.trunc_to_int(a, 32, False),
    "i64.trunc_f32_s": lambda a: V.trunc_to_int(a, 64, True),
    "i64.trunc_f32_u": lambda a: V.trunc_to_int(a, 64, False),
    "i64.trunc_f64_s": lambda a: V.trunc_to_int(a, 64, True),
    "i64.trunc_f64_u": lambda a: V.trunc_to_int(a, 64, False),
    "f32.convert_i32_s": lambda a: V.round_f32(float(V.signed32(a))),
    "f32.convert_i32_u": lambda a: V.round_f32(float(a & V.MASK32)),
    "f32.convert_i64_s": lambda a: V.round_f32(float(V.signed64(a))),
    "f32.convert_i64_u": lambda a: V.round_f32(float(a & V.MASK64)),
    "f64.convert_i32_s": lambda a: float(V.signed32(a)),
    "f64.convert_i32_u": lambda a: float(a & V.MASK32),
    "f64.convert_i64_s": lambda a: float(V.signed64(a)),
    "f64.convert_i64_u": lambda a: float(a & V.MASK64),
    "f32.demote_f64": lambda a: V.round_f32(a),
    "f64.promote_f32": lambda a: float(a),
    "i32.reinterpret_f32": V.reinterpret_f32_to_i32,
    "i64.reinterpret_f64": V.reinterpret_f64_to_i64,
    "f32.reinterpret_i32": V.reinterpret_i32_to_f32,
    "f64.reinterpret_i64": V.reinterpret_i64_to_f64,
}

_FLOAT_UNARY_BASES = ("abs", "neg", "sqrt", "ceil", "floor", "trunc", "nearest")

#: Merged binary/unary operator tables -- the lower-time resolution targets.
_BINOPS: Dict[str, Callable] = {**_I32_BIN, **_I64_BIN, **_F_BIN}
_UNOPS: Dict[str, Callable] = {**_UNARY_INT, **_CONVERSIONS}
for _prefix in ("f32", "f64"):
    for _base in _FLOAT_UNARY_BASES:
        _name = f"{_prefix}.{_base}"
        _UNOPS[_name] = (lambda a, _n=_name: _f_unary(_n, a))
del _prefix, _base, _name

# Memory access descriptors: name -> (nbytes, kind) where kind selects the
# store/load conversion ("s32"/"s64" sign-extending, "u", "f32", "f64", "v128").
_LOADS = {
    "i32.load": (4, "u"),
    "i64.load": (8, "u"),
    "f32.load": (4, "f32"),
    "f64.load": (8, "f64"),
    "i32.load8_s": (1, "s32"),
    "i32.load8_u": (1, "u"),
    "i32.load16_s": (2, "s32"),
    "i32.load16_u": (2, "u"),
    "i64.load8_s": (1, "s64"),
    "i64.load8_u": (1, "u"),
    "i64.load16_s": (2, "s64"),
    "i64.load16_u": (2, "u"),
    "i64.load32_s": (4, "s64"),
    "i64.load32_u": (4, "u"),
    "v128.load": (16, "v128"),
}

_STORES = {
    "i32.store": 4,
    "i64.store": 8,
    "f32.store": -4,
    "f64.store": -8,
    "i32.store8": 1,
    "i32.store16": 2,
    "i64.store8": 1,
    "i64.store16": 2,
    "i64.store32": 4,
    "v128.store": 16,
}


def _simd_lanes(name: str) -> Tuple[str, int, int]:
    """Lane format of a SIMD op name: (struct char, lane count, lane bytes)."""
    shape = name.split(".")[0]
    return {
        "i8x16": ("b", 16, 1),
        "i16x8": ("h", 8, 2),
        "i32x4": ("i", 4, 4),
        "i64x2": ("q", 2, 8),
        "f32x4": ("f", 4, 4),
        "f64x2": ("d", 2, 8),
    }[shape]


# NumPy lane dtypes: one handler dispatch does all 16 bytes of lane work.
_NP_LANES = {
    "b": np.int8,
    "h": np.int16,
    "i": np.int32,
    "q": np.int64,
    "f": np.float32,
    "d": np.float64,
}
_NP_UNSIGNED = {"b": np.uint8, "h": np.uint16, "i": np.uint32, "q": np.uint64}
# Comparison results are integer lane masks of the operand's lane width.
_NP_MASK = {
    "b": np.int8,
    "h": np.int16,
    "i": np.int32,
    "q": np.int64,
    "f": np.int32,
    "d": np.int64,
}


def _np_minmax(x: np.ndarray, y: np.ndarray, is_min: bool) -> np.ndarray:
    """Wasm float lane min/max: NaN-propagating (canonical NaN), -0 < +0."""
    dt = x.dtype
    r = np.minimum(x, y) if is_min else np.maximum(x, y)
    both_zero = (x == 0) & (y == 0)
    if both_zero.any():
        sx, sy = np.signbit(x), np.signbit(y)
        neg = (sx | sy) if is_min else (sx & sy)
        r = np.where(both_zero, np.where(neg, dt.type(-0.0), dt.type(0.0)), r)
    return np.where(np.isnan(x) | np.isnan(y), dt.type(np.nan), r)


def _simd_binary(name: str, a: bytes, b: bytes) -> bytes:
    """All-lanes binary SIMD op on two 16-byte vectors (NumPy-vectorized).

    Shared by the interpreter and every back-end, which is what keeps the
    engines bit-for-bit identical.  NaN results are canonicalized so the
    output never depends on platform NaN payload conventions.
    """
    if name.startswith("v128."):
        ia = int.from_bytes(a, "little")
        ib = int.from_bytes(b, "little")
        if name == "v128.and":
            r = ia & ib
        elif name == "v128.or":
            r = ia | ib
        elif name == "v128.xor":
            r = ia ^ ib
        else:  # pragma: no cover
            raise Trap(f"unknown v128 op {name}")
        return r.to_bytes(16, "little")
    fmt, _count, _size = _simd_lanes(name)
    op = name.split(".")[1]
    x = np.frombuffer(a, dtype=_NP_LANES[fmt])
    y = np.frombuffer(b, dtype=_NP_LANES[fmt])
    if op.endswith("_u") and fmt in _NP_UNSIGNED:
        x = x.view(_NP_UNSIGNED[fmt])
        y = y.view(_NP_UNSIGNED[fmt])
        op = op[:-2]
    elif op.endswith("_s"):
        op = op[:-2]
    with np.errstate(all="ignore"):
        if op == "add":
            r = x + y
        elif op == "sub":
            r = x - y
        elif op == "mul":
            r = x * y
        elif op == "div":
            r = x / y
            r = np.where(np.isnan(r), r.dtype.type(np.nan), r)
        elif op == "min":
            r = _np_minmax(x, y, True)
        elif op == "max":
            r = _np_minmax(x, y, False)
        elif op in ("eq", "ne", "lt", "gt", "le", "ge"):
            if op == "eq":
                cond = x == y
            elif op == "ne":
                cond = x != y
            elif op == "lt":
                cond = x < y
            elif op == "gt":
                cond = x > y
            elif op == "le":
                cond = x <= y
            else:
                cond = x >= y
            # All-ones lanes for true, zero for false.
            r = np.zeros(len(cond), dtype=_NP_MASK[fmt])
            r[cond] = -1
        else:  # pragma: no cover
            raise Trap(f"unknown SIMD lane op {name}")
    return r.tobytes()


def _simd_unary(name: str, a: bytes) -> bytes:
    """All-lanes unary SIMD op (neg/abs/sqrt) on one 16-byte vector."""
    fmt, _count, _size = _simd_lanes(name)
    op = name.split(".")[1]
    x = np.frombuffer(a, dtype=_NP_LANES[fmt])
    with np.errstate(all="ignore"):
        if op == "neg":
            r = -x
        elif op == "abs":
            # Integer abs wraps (|INT_MIN| stays INT_MIN), matching the spec.
            r = np.abs(x)
        elif op == "sqrt":
            r = np.sqrt(x)
            r = np.where(np.isnan(r), r.dtype.type(np.nan), r)
        else:  # pragma: no cover
            raise Trap(f"unknown SIMD unary op {name}")
    return r.tobytes()


# --------------------------------------------------------------- control scan


def build_control_map(body: Sequence[Instruction]) -> Dict[int, Tuple[Optional[int], int]]:
    """One linear scan matching every ``block``/``loop``/``if`` to its
    ``else``/``end``: construct index -> (else_index_or_None, end_index)."""
    result: Dict[int, Tuple[Optional[int], int]] = {}
    stack: List[Tuple[int, Optional[int]]] = []
    for i, instr in enumerate(body):
        name = instr.name
        if name in ("block", "loop", "if"):
            stack.append((i, None))
        elif name == "else":
            if not stack:
                raise Trap(f"else without matching if at instruction {i}")
            start, _ = stack[-1]
            stack[-1] = (start, i)
        elif name == "end":
            if not stack:
                raise Trap(f"unmatched end at instruction {i}")
            start, else_index = stack.pop()
            result[start] = (else_index, i)
    if stack:
        raise Trap(f"unterminated control construct at instruction {stack[-1][0]}")
    return result


# ------------------------------------------------------------- execution state


class _State:
    """Mutable execution state threaded through the opcode handlers."""

    __slots__ = ("stack", "locals", "frames", "instance", "memory")


def _branch(st: _State, depth: int) -> int:
    """Take a branch to label ``depth``; returns the pc to continue at.

    Frames are ``(is_loop, arity, stack_height, target)`` tuples where
    ``target`` is the pre-resolved continuation: the loop header for loops,
    the offset just past the matching ``end`` for blocks/ifs, and ``len(ops)``
    for the implicit function frame.
    """
    frames = st.frames
    frame = frames[-1 - depth]
    stack = st.stack
    if frame[0]:  # loop: repeat, keep the loop frame, drop nested state
        if depth:
            del frames[len(frames) - depth:]
        del stack[frame[2]:]
        return frame[3]
    arity = frame[1]
    if arity:
        results = stack[len(stack) - arity:]
        del frames[len(frames) - 1 - depth:]
        del stack[frame[2]:]
        stack.extend(results)
    else:
        del frames[len(frames) - 1 - depth:]
        del stack[frame[2]:]
    return frame[3]


# ------------------------------------------------------------------- handlers

_HANDLERS: Dict[str, Callable] = {}
_LINKERS: Dict[str, Callable] = {}


def _op_handler(kind: str, linker: Optional[Callable] = None):
    def register(fn: Callable) -> Callable:
        _HANDLERS[kind] = fn
        if linker is not None:
            _LINKERS[kind] = linker
        return fn

    return register


@_op_handler("nop")
def _h_nop(st, pc, imm):
    return pc + 1


@_op_handler("fused.pad")
def _h_pad(st, pc, imm):  # pragma: no cover - unreachable by construction
    raise Trap("jump into the middle of a fused superinstruction")


@_op_handler("unreachable")
def _h_unreachable(st, pc, imm):
    raise UnreachableTrap()


@_op_handler("block")
def _h_block(st, pc, imm):
    # imm = (arity, end_index + 1)
    st.frames.append((False, imm[0], len(st.stack), imm[1]))
    return pc + 1


@_op_handler("loop")
def _h_loop(st, pc, imm):
    st.frames.append((True, 0, len(st.stack), pc + 1))
    return pc + 1


@_op_handler("if")
def _h_if(st, pc, imm):
    # imm = (arity, false_target, end_index + 1)
    cond = st.stack.pop()
    st.frames.append((False, imm[0], len(st.stack), imm[2]))
    return pc + 1 if cond else imm[1]


@_op_handler("else")
def _h_else(st, pc, imm):
    # Reached only by falling out of the then-arm: jump to the 'end' op
    # (which pops the frame).
    return imm


@_op_handler("end")
def _h_end(st, pc, imm):
    st.frames.pop()
    return pc + 1


@_op_handler("br")
def _h_br(st, pc, imm):
    return _branch(st, imm)


@_op_handler("br_if")
def _h_br_if(st, pc, imm):
    if st.stack.pop():
        return _branch(st, imm)
    return pc + 1


@_op_handler("br_table")
def _h_br_table(st, pc, imm):
    targets, default = imm
    idx = st.stack.pop()
    return _branch(st, targets[idx] if idx < len(targets) else default)


@_op_handler("return")
def _h_return(st, pc, imm):
    # imm = len(ops): jump past the end of the body; the epilogue collects
    # the top `nresults` values exactly like falling off the end.
    return imm


@_op_handler("call")
def _h_call(st, pc, imm):
    callee_index, nargs = imm
    stack = st.stack
    if nargs:
        args = stack[len(stack) - nargs:]
        del stack[len(stack) - nargs:]
    else:
        args = []
    stack.extend(st.instance.call_function(callee_index, args))
    return pc + 1


@_op_handler("call_indirect")
def _h_call_indirect(st, pc, imm):
    type_index, table_index, nargs = imm
    instance = st.instance
    stack = st.stack
    elem_index = stack.pop()
    if table_index >= len(instance.tables):
        raise IndirectCallTrap(f"no table at index {table_index}")
    callee_index = instance.tables[table_index].get(elem_index)
    if callee_index is None:
        raise IndirectCallTrap(f"null funcref at table slot {elem_index}")
    if instance.function_type(callee_index) != instance.module.types[type_index]:
        raise IndirectCallTrap("indirect call signature mismatch")
    if nargs:
        args = stack[len(stack) - nargs:]
        del stack[len(stack) - nargs:]
    else:
        args = []
    stack.extend(instance.call_function(callee_index, args))
    return pc + 1


@_op_handler("drop")
def _h_drop(st, pc, imm):
    st.stack.pop()
    return pc + 1


@_op_handler("select")
def _h_select(st, pc, imm):
    stack = st.stack
    cond = stack.pop()
    b = stack.pop()
    if not cond:
        stack[-1] = b
    return pc + 1


@_op_handler("local.get")
def _h_local_get(st, pc, imm):
    st.stack.append(st.locals[imm])
    return pc + 1


@_op_handler("local.set")
def _h_local_set(st, pc, imm):
    st.locals[imm] = st.stack.pop()
    return pc + 1


@_op_handler("local.tee")
def _h_local_tee(st, pc, imm):
    st.locals[imm] = st.stack[-1]
    return pc + 1


@_op_handler("global.get")
def _h_global_get(st, pc, imm):
    st.stack.append(st.instance.globals[imm].value)
    return pc + 1


@_op_handler("global.set")
def _h_global_set(st, pc, imm):
    st.instance.globals[imm].set(st.stack.pop())
    return pc + 1


@_op_handler("const")
def _h_const(st, pc, imm):
    st.stack.append(imm)
    return pc + 1


@_op_handler("load.u")
def _h_load_u(st, pc, imm):
    stack = st.stack
    stack[-1] = st.memory.load_int(stack[-1] + imm[0], imm[1], False)
    return pc + 1


@_op_handler("load.s32")
def _h_load_s32(st, pc, imm):
    stack = st.stack
    stack[-1] = st.memory.load_int(stack[-1] + imm[0], imm[1], True) & V.MASK32
    return pc + 1


@_op_handler("load.s64")
def _h_load_s64(st, pc, imm):
    stack = st.stack
    stack[-1] = st.memory.load_int(stack[-1] + imm[0], imm[1], True) & V.MASK64
    return pc + 1


@_op_handler("load.f32")
def _h_load_f32(st, pc, imm):
    stack = st.stack
    stack[-1] = st.memory.load_f32(stack[-1] + imm)
    return pc + 1


@_op_handler("load.f64")
def _h_load_f64(st, pc, imm):
    stack = st.stack
    stack[-1] = st.memory.load_f64(stack[-1] + imm)
    return pc + 1


@_op_handler("load.v128")
def _h_load_v128(st, pc, imm):
    stack = st.stack
    stack[-1] = st.memory.read(stack[-1] + imm, 16)
    return pc + 1


@_op_handler("store.i")
def _h_store_i(st, pc, imm):
    stack = st.stack
    value = stack.pop()
    st.memory.store_int(stack.pop() + imm[0], value, imm[1])
    return pc + 1


@_op_handler("store.f32")
def _h_store_f32(st, pc, imm):
    stack = st.stack
    value = stack.pop()
    st.memory.store_f32(stack.pop() + imm, value)
    return pc + 1


@_op_handler("store.f64")
def _h_store_f64(st, pc, imm):
    stack = st.stack
    value = stack.pop()
    st.memory.store_f64(stack.pop() + imm, value)
    return pc + 1


@_op_handler("store.v128")
def _h_store_v128(st, pc, imm):
    stack = st.stack
    value = stack.pop()
    st.memory.write(stack.pop() + imm, bytes(value))
    return pc + 1


@_op_handler("memory.size")
def _h_memory_size(st, pc, imm):
    st.stack.append(st.memory.pages)
    return pc + 1


@_op_handler("memory.grow")
def _h_memory_grow(st, pc, imm):
    stack = st.stack
    stack[-1] = st.memory.grow(stack[-1]) & V.MASK32
    return pc + 1


@_op_handler("memory.copy")
def _h_memory_copy(st, pc, imm):
    stack = st.stack
    n = stack.pop()
    src = stack.pop()
    st.memory.copy_within(stack.pop(), src, n)
    return pc + 1


@_op_handler("memory.fill")
def _h_memory_fill(st, pc, imm):
    stack = st.stack
    n = stack.pop()
    value = stack.pop()
    st.memory.fill(stack.pop(), value, n)
    return pc + 1


@_op_handler("bin", linker=lambda name: _BINOPS[name])
def _h_bin(st, pc, imm):
    stack = st.stack
    b = stack.pop()
    stack[-1] = imm(stack[-1], b)
    return pc + 1


@_op_handler("un", linker=lambda name: _UNOPS[name])
def _h_un(st, pc, imm):
    stack = st.stack
    stack[-1] = imm(stack[-1])
    return pc + 1


@_op_handler("splat")
def _h_splat(st, pc, imm):
    fmt, count, size = imm
    stack = st.stack
    value = stack.pop()
    if fmt in ("f", "d"):
        lane = V.V128_LANE[fmt].pack(value)
    else:
        lane = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
    stack.append(lane * count)
    return pc + 1


@_op_handler("extract_lane")
def _h_extract_lane(st, pc, imm):
    # imm = (fmt, size, lane index, sign-extend?)
    fmt, size, lane_idx, signed = imm
    stack = st.stack
    lane = stack[-1][lane_idx * size: (lane_idx + 1) * size]
    if fmt in ("f", "d"):
        stack[-1] = V.V128_LANE[fmt].unpack(lane)[0]
    elif signed:
        stack[-1] = int.from_bytes(lane, "little", signed=True) & V.MASK32
    else:
        stack[-1] = int.from_bytes(lane, "little")
    return pc + 1


@_op_handler("replace_lane")
def _h_replace_lane(st, pc, imm):
    fmt, size, lane_idx = imm
    stack = st.stack
    value = stack.pop()
    vec = bytearray(stack[-1])
    if fmt in ("f", "d"):
        vec[lane_idx * size: (lane_idx + 1) * size] = V.V128_LANE[fmt].pack(value)
    else:
        vec[lane_idx * size: (lane_idx + 1) * size] = (
            value & ((1 << (8 * size)) - 1)
        ).to_bytes(size, "little")
    stack[-1] = bytes(vec)
    return pc + 1


@_op_handler("v128.not")
def _h_v128_not(st, pc, imm):
    stack = st.stack
    stack[-1] = (~int.from_bytes(stack[-1], "little") & (2**128 - 1)).to_bytes(16, "little")
    return pc + 1


@_op_handler("f64x2.sqrt")
def _h_f64x2_sqrt(st, pc, imm):
    # Legacy kind kept for handler-table compatibility; lowering now emits
    # ("simd.un", "f64x2.sqrt") instead.
    stack = st.stack
    stack[-1] = _simd_unary("f64x2.sqrt", stack[-1])
    return pc + 1


@_op_handler("simd.bin")
def _h_simd_bin(st, pc, imm):
    stack = st.stack
    b = stack.pop()
    stack[-1] = _simd_binary(imm, stack[-1], b)
    return pc + 1


@_op_handler("simd.un")
def _h_simd_un(st, pc, imm):
    stack = st.stack
    stack[-1] = _simd_unary(imm, stack[-1])
    return pc + 1


# ---- superinstructions -------------------------------------------------------


def _link_fused_bin(imm):
    a, b, name = imm
    return (a, b, _BINOPS[name])


@_op_handler("fused.get_get_bin", linker=_link_fused_bin)
def _h_get_get_bin(st, pc, imm):
    a, b, op = imm
    locals_ = st.locals
    st.stack.append(op(locals_[a], locals_[b]))
    return pc + 3


@_op_handler("fused.get_const_bin", linker=_link_fused_bin)
def _h_get_const_bin(st, pc, imm):
    a, c, op = imm
    st.stack.append(op(st.locals[a], c))
    return pc + 3


@_op_handler("fused.get_const_store")
def _h_get_const_store(st, pc, imm):
    a, value, offset, nbytes = imm
    st.memory.store_int(st.locals[a] + offset, value, nbytes)
    return pc + 3


@_op_handler("fused.cmp_br_if", linker=lambda imm: (_BINOPS[imm[0]], imm[1]))
def _h_cmp_br_if(st, pc, imm):
    op, depth = imm
    stack = st.stack
    b = stack.pop()
    if op(stack.pop(), b):
        return _branch(st, depth)
    return pc + 2


@_op_handler("fused.eqz_br_if")
def _h_eqz_br_if(st, pc, imm):
    if not st.stack.pop():
        return _branch(st, imm)
    return pc + 2


def _link_fused_cmp(imm):
    a, b, name, depth = imm
    return (a, b, _BINOPS[name], depth)


@_op_handler("fused.get_get_cmp_br_if", linker=_link_fused_cmp)
def _h_get_get_cmp_br_if(st, pc, imm):
    a, b, op, depth = imm
    locals_ = st.locals
    if op(locals_[a], locals_[b]):
        return _branch(st, depth)
    return pc + 4


def _link_fused_bin_set(imm):
    a, b, name, dest = imm
    return (a, b, _BINOPS[name], dest)


@_op_handler("fused.get_get_bin_set", linker=_link_fused_bin_set)
def _h_get_get_bin_set(st, pc, imm):
    # local.get a ; local.get b ; binop ; local.set dest -- never touches the
    # value stack at all.
    a, b, op, dest = imm
    locals_ = st.locals
    locals_[dest] = op(locals_[a], locals_[b])
    return pc + 4


@_op_handler("fused.get_const_bin_set", linker=_link_fused_bin_set)
def _h_get_const_bin_set(st, pc, imm):
    a, c, op, dest = imm
    locals_ = st.locals
    locals_[dest] = op(locals_[a], c)
    return pc + 4


@_op_handler("fused.bin_set", linker=lambda imm: (_BINOPS[imm[0]], imm[1]))
def _h_bin_set(st, pc, imm):
    op, dest = imm
    stack = st.stack
    b = stack.pop()
    st.locals[dest] = op(stack.pop(), b)
    return pc + 2


# Loop back-edge superinstructions: an induction-variable update followed by
# an unconditional ``br`` (the tail of every counted loop) collapses into one
# dispatch that updates the local and takes the branch.


def _link_fused_bin_set_br(imm):
    a, b, name, dest, depth = imm
    return (a, b, _BINOPS[name], dest, depth)


@_op_handler("fused.get_get_bin_set_br", linker=_link_fused_bin_set_br)
def _h_get_get_bin_set_br(st, pc, imm):
    a, b, op, dest, depth = imm
    locals_ = st.locals
    locals_[dest] = op(locals_[a], locals_[b])
    return _branch(st, depth)


@_op_handler("fused.get_const_bin_set_br", linker=_link_fused_bin_set_br)
def _h_get_const_bin_set_br(st, pc, imm):
    a, c, op, dest, depth = imm
    locals_ = st.locals
    locals_[dest] = op(locals_[a], c)
    return _branch(st, depth)


@_op_handler("fused.set_br")
def _h_set_br(st, pc, imm):
    dest, depth = imm
    st.locals[dest] = st.stack.pop()
    return _branch(st, depth)


# ---- profile-guided superinstruction mining ---------------------------------

#: Op kinds safe to chain into a mined superinstruction: every handler here
#: unconditionally returns ``pc + 1`` (no branching, no calls), so a chain of
#: them can be executed back-to-back in one dispatch.
_CHAINABLE_KINDS = frozenset({
    "nop", "drop", "select",
    "local.get", "local.set", "local.tee", "global.get", "global.set",
    "const", "bin", "un",
    "load.u", "load.s32", "load.s64", "load.f32", "load.f64", "load.v128",
    "store.i", "store.f32", "store.f64", "store.v128",
    "memory.size", "memory.grow", "memory.copy", "memory.fill",
    "splat", "extract_lane", "replace_lane", "v128.not",
    "simd.bin", "simd.un",
})

#: Memoized chain executors, keyed by the tuple of constituent op kinds.  The
#: closure's ``__name__`` encodes the chain so profiler histograms attribute
#: mined superinstructions by name.
_CHAIN_CACHE: Dict[Tuple[str, ...], Callable] = {}


def _chain_handler(kinds: Tuple[str, ...]) -> Callable:
    """The executor for one mined chain: run the linked constituents in order."""
    kinds = tuple(kinds)
    cached = _CHAIN_CACHE.get(kinds)
    if cached is not None:
        return cached
    width = len(kinds)

    def _h_mined(st, pc, imm):
        for handler, sub in imm:
            handler(st, pc, sub)
        return pc + width

    _h_mined.__name__ = "_h_fused_mined__" + "__".join(
        k.replace(".", "_") for k in kinds
    )
    _CHAIN_CACHE[kinds] = _h_mined
    return _h_mined


def _link_mined(imm) -> Tuple:
    """Link a ``fused.mined`` immediate: (kinds, imms) -> ((handler, imm), ...)."""
    kinds, imms = imm
    pairs = []
    for kind, sub in zip(kinds, imms):
        linker = _LINKERS.get(kind)
        pairs.append((_HANDLERS[kind], linker(sub) if linker is not None else sub))
    return tuple(pairs)


def _serial_jump_targets(ops: Sequence[Tuple[str, object]]) -> set:
    """Offsets a lowered op may jump to, recovered from the serial form.

    Branch immediates are pre-resolved at lower time, so the set is exactly:
    function entry, ``block``/``if`` continuations, ``else`` jump targets,
    and loop headers.
    """
    targets = {0}
    for pc, (kind, imm) in enumerate(ops):
        if kind == "block":
            targets.add(imm[1])
        elif kind == "if":
            targets.add(imm[1])
            targets.add(imm[2])
        elif kind == "else":
            targets.add(imm)
        elif kind == "loop":
            targets.add(pc + 1)
    return targets


def _iter_chains(ops: Sequence[Tuple[str, object]], max_width: int):
    """Yield (start, kinds_tuple) for every fusable straight-line run."""
    targets = _serial_jump_targets(ops)
    n = len(ops)
    for i in range(n):
        if ops[i][0] not in _CHAINABLE_KINDS:
            continue
        for width in range(2, max_width + 1):
            end = i + width
            if end > n:
                break
            if ops[end - 1][0] not in _CHAINABLE_KINDS:
                break
            if any(j in targets for j in range(i + 1, end)):
                break
            yield i, tuple(kind for kind, _ in ops[i:end])


def mine_superinstructions(
    functions: Iterable,
    histogram: Optional[Dict[str, int]] = None,
    max_width: int = 3,
    min_occurrences: int = 2,
    top: int = 8,
) -> List[dict]:
    """Profile-guided superinstruction discovery.

    ``functions`` is an iterable of :class:`LoweredFunction` objects or raw
    serial op lists (e.g. the IR traces recorded by
    :class:`repro.obs.profile.InterpreterProfiler`).  ``histogram`` is a
    profiler handler histogram (handler ``__name__`` -> estimated hits); when
    given, chains whose constituent handlers were hot score higher.  Returns
    the fusion table: records sorted by score, each
    ``{"kinds": [...], "width": w, "occurrences": n, "score": s}``.
    """
    counts: Counter = Counter()
    for fn in functions:
        ops = fn.ops if isinstance(fn, LoweredFunction) else list(fn)
        ops = [tuple(op) for op in ops]
        for _start, kinds in _iter_chains(ops, max_width):
            counts[kinds] += 1

    weights: Dict[str, float] = {}
    if histogram:
        for kind in _CHAINABLE_KINDS:
            handler = _HANDLERS.get(kind)
            if handler is not None:
                weights[kind] = float(histogram.get(handler.__name__, 0))

    records = []
    for kinds, occurrences in counts.items():
        if occurrences < min_occurrences:
            continue
        if histogram:
            weight = min(weights.get(k, 0.0) for k in kinds)
            if weight == 0.0:
                continue  # a constituent never fired in the profile
        else:
            weight = 1.0
        records.append({
            "kinds": list(kinds),
            "width": len(kinds),
            "occurrences": occurrences,
            # Dispatches saved per execution of the chain = width - 1.
            "score": occurrences * weight * (len(kinds) - 1),
        })
    records.sort(key=lambda r: (-r["score"], -r["width"], r["kinds"]))
    return records[:top]


def apply_fusion_table(
    lowered: Sequence["LoweredFunction"], table: Sequence[dict]
) -> int:
    """Rewrite lowered ops in place with the mined ``fused.mined`` chains.

    Longest chains first; interior offsets become pads exactly like the
    static fusion pass.  Returns the number of chains formed.
    """
    patterns = sorted(
        (tuple(rec["kinds"]) for rec in table), key=len, reverse=True
    )
    formed = 0
    for lf in lowered:
        ops = lf.ops
        targets = _serial_jump_targets(ops)
        n = len(ops)
        i = 0
        while i < n:
            for kinds in patterns:
                width = len(kinds)
                end = i + width
                if end > n:
                    continue
                if any(j in targets for j in range(i + 1, end)):
                    continue
                if tuple(kind for kind, _ in ops[i:end]) != kinds:
                    continue
                ops[i] = ("fused.mined", (kinds, tuple(imm for _, imm in ops[i:end])))
                for j in range(i + 1, end):
                    ops[j] = _PAD
                formed += 1
                i = end - 1
                break
            i += 1
        lf.code = None  # force a re-link
    return formed


# ----------------------------------------------------------------- lowered IR


@dataclass
class LoweredFunction:
    """One function body in the pre-resolved flat representation.

    ``ops`` is the serial form: picklable ``(kind, immediate)`` tuples (what
    the compilation cache stores).  ``code`` is the linked form -- handlers
    resolved to direct function references -- built on demand by :func:`link`
    and never serialized.
    """

    ops: List[Tuple[str, object]]
    nresults: int
    local_defaults: Tuple
    name: str = ""
    code: Optional[List[Tuple[Callable, object]]] = field(
        default=None, repr=False, compare=False
    )

    def to_payload(self) -> dict:
        """Plain-data form for the on-disk artifact."""
        return {
            "ops": [list(op) for op in self.ops],
            "nresults": self.nresults,
            "local_defaults": list(self.local_defaults),
            "name": self.name,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LoweredFunction":
        """Rebuild from :meth:`to_payload` output (handlers re-linked lazily)."""
        return cls(
            ops=[(kind, imm) for kind, imm in payload["ops"]],
            nresults=payload["nresults"],
            local_defaults=tuple(payload["local_defaults"]),
            name=payload.get("name", ""),
        )


def link(lowered: LoweredFunction) -> List[Tuple[Callable, object]]:
    """Resolve the serial ops to ``(handler, immediate)`` pairs (memoized)."""
    code = []
    for kind, imm in lowered.ops:
        if kind == "fused.mined":
            kinds = tuple(imm[0])
            code.append((_chain_handler(kinds), _link_mined((kinds, imm[1]))))
            continue
        handler = _HANDLERS.get(kind)
        if handler is None:
            raise Trap(f"unknown lowered op kind {kind!r} (IR version skew?)")
        linker = _LINKERS.get(kind)
        code.append((handler, linker(imm) if linker is not None else imm))
    lowered.code = code
    return code


# -------------------------------------------------------------- lowering pass


def _lower_instruction(
    module: Module,
    instr: Instruction,
    pc: int,
    cmap: Dict[int, Tuple[Optional[int], int]],
    else_to_end: Dict[int, int],
    nops: int,
) -> Tuple[str, object]:
    name = instr.name

    # ----- control
    if name == "nop":
        return ("nop", None)
    if name == "unreachable":
        return ("unreachable", None)
    if name == "block":
        _else, end = cmap[pc]
        bt: BlockType = instr.operands[0]
        return ("block", (bt.arity(), end + 1))
    if name == "loop":
        return ("loop", None)
    if name == "if":
        else_idx, end = cmap[pc]
        bt = instr.operands[0]
        false_target = (else_idx + 1) if else_idx is not None else end
        return ("if", (bt.arity(), false_target, end + 1))
    if name == "else":
        return ("else", else_to_end[pc])
    if name == "end":
        return ("end", None)
    if name == "br":
        return ("br", instr.operands[0])
    if name == "br_if":
        return ("br_if", instr.operands[0])
    if name == "br_table":
        targets, default = instr.operands
        return ("br_table", (tuple(targets), default))
    if name == "return":
        return ("return", nops)
    if name == "call":
        callee_index = instr.operands[0]
        nargs = len(module.func_type(callee_index).params)
        return ("call", (callee_index, nargs))
    if name == "call_indirect":
        type_index, table_index = instr.operands
        nargs = len(module.types[type_index].params)
        return ("call_indirect", (type_index, table_index, nargs))

    # ----- parametric / variables
    if name == "drop":
        return ("drop", None)
    if name == "select":
        return ("select", None)
    if name in ("local.get", "local.set", "local.tee", "global.get", "global.set"):
        return (name, instr.operands[0])

    # ----- constants (pre-validated at lower time)
    if name == "i32.const":
        return ("const", V.wrap32(instr.operands[0]))
    if name == "i64.const":
        return ("const", V.wrap64(instr.operands[0]))
    if name == "f32.const":
        return ("const", V.round_f32(float(instr.operands[0])))
    if name == "f64.const":
        return ("const", float(instr.operands[0]))
    if name == "v128.const":
        return ("const", bytes(instr.operands[0]))

    # ----- memory
    if name in _LOADS:
        memarg: MemArg = instr.operands[0]
        nbytes, kind = _LOADS[name]
        if kind == "f32":
            return ("load.f32", memarg.offset)
        if kind == "f64":
            return ("load.f64", memarg.offset)
        if kind == "v128":
            return ("load.v128", memarg.offset)
        if kind == "s32":
            return ("load.s32", (memarg.offset, nbytes))
        if kind == "s64":
            return ("load.s64", (memarg.offset, nbytes))
        return ("load.u", (memarg.offset, nbytes))
    if name in _STORES:
        memarg = instr.operands[0]
        if name == "f32.store":
            return ("store.f32", memarg.offset)
        if name == "f64.store":
            return ("store.f64", memarg.offset)
        if name == "v128.store":
            return ("store.v128", memarg.offset)
        return ("store.i", (memarg.offset, abs(_STORES[name])))
    if name == "memory.size":
        return ("memory.size", None)
    if name == "memory.grow":
        return ("memory.grow", None)
    if name == "memory.copy":
        return ("memory.copy", None)
    if name == "memory.fill":
        return ("memory.fill", None)

    # ----- numeric
    if name in _BINOPS:
        return ("bin", name)
    if name in _UNOPS:
        return ("un", name)

    # ----- SIMD
    if name.endswith(".splat"):
        return ("splat", _simd_lanes(name))
    if ".extract_lane" in name:
        fmt, _count, size = _simd_lanes(name)
        return ("extract_lane", (fmt, size, instr.operands[0], name.endswith("_s")))
    if ".replace_lane" in name:
        fmt, _count, size = _simd_lanes(name)
        return ("replace_lane", (fmt, size, instr.operands[0]))
    if name == "v128.not":
        return ("v128.not", None)
    if instr.info.is_simd:
        if name.split(".")[1] in ("neg", "abs", "sqrt"):
            return ("simd.un", name)
        return ("simd.bin", name)

    raise Trap(f"instruction {name!r} not supported by the lowering pass")


def _jump_targets(
    body: Sequence[Instruction], cmap: Dict[int, Tuple[Optional[int], int]]
) -> set:
    """All offsets any lowered op may jump to (fusion must not span them)."""
    targets = {0}
    for start, (else_idx, end) in cmap.items():
        targets.add(end)
        targets.add(end + 1)
        if else_idx is not None:
            targets.add(else_idx + 1)
        if body[start].name == "loop":
            targets.add(start + 1)
    return targets


_PAD = ("fused.pad", None)


def _fuse(ops: List[Tuple[str, object]], targets: set) -> int:
    """Rewrite common adjacent op sequences into superinstructions in place.

    The interior offsets of a fused run are replaced with pads; runs never
    span a jump target, so the pads are unreachable.  Returns the number of
    superinstructions formed.
    """
    n = len(ops)
    fused = 0
    i = 0
    while i < n:
        kind = ops[i][0]
        if kind == "local.get":
            # local.get a ; local.get b ; cmp ; br_if  -> one compare-branch
            if (
                i + 3 < n
                and i + 1 not in targets and i + 2 not in targets and i + 3 not in targets
                and ops[i + 1][0] == "local.get"
                and ops[i + 2][0] == "bin"
                and ops[i + 3][0] == "br_if"
            ):
                ops[i] = (
                    "fused.get_get_cmp_br_if",
                    (ops[i][1], ops[i + 1][1], ops[i + 2][1], ops[i + 3][1]),
                )
                ops[i + 1] = ops[i + 2] = ops[i + 3] = _PAD
                fused += 1
                i += 4
                continue
            if i + 2 < n and i + 1 not in targets and i + 2 not in targets:
                k1, v1 = ops[i + 1]
                k2, v2 = ops[i + 2]
                # Four-wide forms ending in local.set bypass the value stack
                # entirely (the inner loop of every reduction kernel).
                tail_set = (
                    i + 3 < n and i + 3 not in targets and ops[i + 3][0] == "local.set"
                )
                if k1 == "local.get" and k2 == "bin":
                    if tail_set:
                        ops[i] = (
                            "fused.get_get_bin_set",
                            (ops[i][1], v1, v2, ops[i + 3][1]),
                        )
                        ops[i + 1] = ops[i + 2] = ops[i + 3] = _PAD
                        fused += 1
                        i += 4
                        continue
                    ops[i] = ("fused.get_get_bin", (ops[i][1], v1, v2))
                    ops[i + 1] = ops[i + 2] = _PAD
                    fused += 1
                    i += 3
                    continue
                if k1 == "const" and k2 == "bin":
                    if tail_set:
                        ops[i] = (
                            "fused.get_const_bin_set",
                            (ops[i][1], v1, v2, ops[i + 3][1]),
                        )
                        ops[i + 1] = ops[i + 2] = ops[i + 3] = _PAD
                        fused += 1
                        i += 4
                        continue
                    ops[i] = ("fused.get_const_bin", (ops[i][1], v1, v2))
                    ops[i + 1] = ops[i + 2] = _PAD
                    fused += 1
                    i += 3
                    continue
                if k1 == "const" and k2 == "store.i":
                    ops[i] = ("fused.get_const_store", (ops[i][1], v1, v2[0], v2[1]))
                    ops[i + 1] = ops[i + 2] = _PAD
                    fused += 1
                    i += 3
                    continue
        elif kind == "bin" and i + 1 < n and i + 1 not in targets and ops[i + 1][0] == "br_if":
            ops[i] = ("fused.cmp_br_if", (ops[i][1], ops[i + 1][1]))
            ops[i + 1] = _PAD
            fused += 1
            i += 2
            continue
        elif kind == "bin" and i + 1 < n and i + 1 not in targets and ops[i + 1][0] == "local.set":
            ops[i] = ("fused.bin_set", (ops[i][1], ops[i + 1][1]))
            ops[i + 1] = _PAD
            fused += 1
            i += 2
            continue
        elif (
            kind == "un"
            and ops[i][1] in ("i32.eqz", "i64.eqz")
            and i + 1 < n
            and i + 1 not in targets
            and ops[i + 1][0] == "br_if"
        ):
            ops[i] = ("fused.eqz_br_if", ops[i + 1][1])
            ops[i + 1] = _PAD
            fused += 1
            i += 2
            continue
        i += 1

    # Back-edge sweep: an induction-variable update superinstruction (or a
    # bare local.set) immediately followed by an unconditional br is the tail
    # of every counted loop -- collapse the pair into one dispatch.
    i = 0
    while i < n:
        width = _SET_BR_WIDTHS.get(ops[i][0])
        if width is not None:
            j = i + width
            if j < n and j not in targets and ops[j][0] == "br":
                kind, imm = ops[i]
                if kind == "local.set":
                    ops[i] = ("fused.set_br", (imm, ops[j][1]))
                else:
                    ops[i] = (kind + "_br", (*imm, ops[j][1]))
                ops[j] = _PAD
                fused += 1
                i = j + 1
                continue
        i += 1
    return fused


#: Slot widths of the set-style ops eligible for back-edge fusion.
_SET_BR_WIDTHS = {
    "fused.get_get_bin_set": 4,
    "fused.get_const_bin_set": 4,
    "local.set": 1,
}


def lower_function(module: Module, func: Function, func_type) -> LoweredFunction:
    """Lower one decoded function body to the flat pre-resolved form."""
    body = func.body
    cmap = build_control_map(body)
    else_to_end = {e: end for (e, end) in cmap.values() if e is not None}
    nops = len(body)
    ops = [
        _lower_instruction(module, instr, pc, cmap, else_to_end, nops)
        for pc, instr in enumerate(body)
    ]
    _fuse(ops, _jump_targets(body, cmap))
    return LoweredFunction(
        ops=ops,
        nresults=len(func_type.results),
        local_defaults=tuple(V.default_value(vt.short_name) for vt in func.locals),
        name=func.name,
    )


def lower_module(module: Module) -> List[LoweredFunction]:
    """Lower every defined function of a module, in definition order."""
    return [
        lower_function(module, func, module.types[func.type_index])
        for func in module.functions
    ]


# --------------------------------------------------------------- serialization


def serialize_lowered(
    lowered: Sequence[LoweredFunction],
    fusion_table: Optional[Sequence[dict]] = None,
) -> dict:
    """Serial artifact payload for a lowered module (IR-versioned).

    ``fusion_table`` is the learned superinstruction table from
    :func:`mine_superinstructions`; when given it is persisted alongside the
    ops (which already contain the applied ``fused.mined`` chains), so a
    cached artifact replays the profile-guided fusion decisions.
    """
    payload = {
        "kind": "lowered-ir",
        "ir_version": IR_VERSION,
        "functions": [lf.to_payload() for lf in lowered],
    }
    if fusion_table is not None:
        payload["fusion_table"] = [dict(rec) for rec in fusion_table]
    return payload


#: Process-wide default for :func:`deserialize_lowered`'s ``verify``
#: parameter.  Off by default (trusted in-process artifacts, benchmark
#: paths); the serve worker pool flips it on so artifacts loaded from the
#: shared on-disk cache -- possibly written by another process -- are
#: statically verified before they are linked and executed.
VERIFY_ON_LOAD = False


def deserialize_lowered(
    payload: object, verify: Optional[bool] = None
) -> Optional[List[LoweredFunction]]:
    """Rebuild lowered functions from an artifact payload.

    Returns ``None`` when the payload is not a lowered-IR artifact of the
    current :data:`IR_VERSION` (the caller then re-lowers from the module).

    With ``verify=True`` (default: the :data:`VERIFY_ON_LOAD` process flag)
    the payload is first run through the static verifier
    (:mod:`repro.analysis.ir_verify`); a structurally-broken artifact raises
    :class:`~repro.wasm.errors.ValidationError` instead of being linked.
    """
    if not isinstance(payload, dict) or payload.get("kind") != "lowered-ir":
        return None
    if payload.get("ir_version") != IR_VERSION:
        return None
    if verify if verify is not None else VERIFY_ON_LOAD:
        # Imported lazily: repro.analysis.ir_verify imports this module.
        from repro.analysis.ir_verify import verify_payload
        from repro.wasm.errors import ValidationError

        verify_payload(payload).raise_if_error(
            ValidationError, "lowered-IR artifact rejected: "
        )
    return [LoweredFunction.from_payload(p) for p in payload["functions"]]
