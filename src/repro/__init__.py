"""repro -- Python reproduction of *Exploring the Use of WebAssembly in HPC* (PPoPP '23).

The package implements MPIWasm -- a WebAssembly embedder for MPI-based HPC
applications -- together with every substrate it needs on a laptop: a Wasm
module format, validator, interpreter and AoT compiler back-ends; a WASI
layer with capability-based filesystem isolation; an MPI-2.2 library over a
discrete-event cluster simulation calibrated against the paper's two test
systems; the guest benchmark suites used by the paper's evaluation (Intel MPI
Benchmarks, NPB IS/DT, IOR, HPCG); a Faasm-like baseline; and an experiment
harness that regenerates every table and figure.

See ``examples/quickstart.py`` and README.md for the full tour.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
