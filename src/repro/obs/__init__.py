"""repro.obs -- tracing, profiling, and timeline export.

Three cooperating pieces:

* :mod:`repro.obs.trace` -- the :class:`TraceRecorder` span/instant API
  behind the module-level ``ENABLED`` fast path; the MPI runtime, the
  collective schedule executor, and the pt2pt matching engine emit into
  it when tracing is on (``Session(trace=True)``, ``REPRO_TRACE=1``, or
  ``repro-harness trace``).
* :mod:`repro.obs.profile` -- opt-in sampled interpreter profiling
  (handler/superinstruction histograms, hot-function self time) behind
  the ``ACTIVE`` fast path; surfaced by ``repro-harness profile``.
* :mod:`repro.obs.export` / :mod:`repro.obs.validate` -- Chrome
  trace-event JSON (Perfetto-loadable) and JSON-lines exporters, plus a
  structural validator used by tests and CI.
"""

from repro.obs.export import (
    merge_traces,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profile import (
    InterpreterProfiler,
    format_profile_report,
    profiling,
)
from repro.obs.trace import (
    TraceRecorder,
    disable_tracing,
    enable_tracing,
    tracing,
)
from repro.obs.validate import validate_chrome_trace

__all__ = [
    "InterpreterProfiler",
    "TraceRecorder",
    "disable_tracing",
    "enable_tracing",
    "format_profile_report",
    "merge_traces",
    "profiling",
    "to_chrome_trace",
    "to_jsonl",
    "tracing",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
