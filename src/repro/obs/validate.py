"""Structural validation of Chrome trace-event JSON documents.

Checks the subset of the trace-event format this repo emits: every event
carries ``ph``/``ts``/``pid``/``tid``, complete events carry a
non-negative ``dur``, and within each (pid, tid) lane the complete-event
spans nest properly (no partial overlap).  Runnable as a module for CI::

    python -m repro.obs.validate trace.json
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Tuple

__all__ = ["validate_chrome_trace", "validate_file"]

_REQUIRED = ("ph", "ts", "pid", "tid")
# Sub-microsecond float slop when comparing span boundaries.
_EPS = 1e-6


def validate_chrome_trace(doc: dict) -> List[str]:
    """Return a list of structural problems (empty when the doc is valid)."""
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    lanes: Dict[Tuple[object, object], List[Tuple[float, float, str]]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{i} is not an object")
            continue
        missing = [key for key in _REQUIRED if key not in event]
        if missing:
            problems.append(f"event #{i} ({event.get('name', '?')}) "
                            f"missing {', '.join(missing)}")
            continue
        ph = event["ph"]
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event #{i} ({event.get('name', '?')}) "
                                f"has invalid dur {dur!r}")
                continue
            lane = lanes.setdefault((event["pid"], event["tid"]), [])
            lane.append((float(event["ts"]), float(dur), str(event.get("name", "?"))))
    for (pid, tid), spans in sorted(lanes.items(), key=lambda kv: str(kv[0])):
        problems.extend(_check_nesting(pid, tid, spans))
    return problems


def _check_nesting(pid, tid, spans: List[Tuple[float, float, str]]) -> List[str]:
    """Sweep spans in start order; each must close before its parent does."""
    problems: List[str] = []
    # Ties on start time order longest-first so a parent precedes children
    # it starts simultaneously with.
    ordered = sorted(spans, key=lambda s: (s[0], -s[1]))
    stack: List[Tuple[float, float, str]] = []
    for ts, dur, name in ordered:
        while stack and stack[-1][0] + stack[-1][1] <= ts + _EPS:
            stack.pop()
        if stack and ts + dur > stack[-1][0] + stack[-1][1] + _EPS:
            parent = stack[-1]
            problems.append(
                f"lane pid={pid} tid={tid}: span '{name}' "
                f"[{ts}, {ts + dur}] partially overlaps '{parent[2]}' "
                f"[{parent[0]}, {parent[0] + parent[1]}]")
            continue
        stack.append((ts, dur, name))
    return problems


def validate_file(path) -> List[str]:
    """Load ``path`` and validate it; JSON errors become problems."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    if not isinstance(doc, dict):
        return [f"{path}: top-level JSON value is not an object"]
    return validate_chrome_trace(doc)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate <trace.json>", file=sys.stderr)
        return 2
    problems = validate_file(argv[0])
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    print(f"{argv[0]}: valid Chrome trace")
    return 0


if __name__ == "__main__":
    sys.exit(main())
