"""Exporters from :class:`repro.obs.trace.TraceRecorder` snapshots.

Two formats:

* **Chrome trace-event JSON** (``{"traceEvents": [...]}``) -- loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  The
  simulated clock is the timeline axis (converted to microseconds, the
  unit the format requires); the host wall clock rides along in each
  event's ``args``.  Campaign merges map job lanes to Chrome *processes*
  (``pid``) and MPI ranks to *threads* (``tid``).
* **JSON-lines** -- one event dict per line, for ad-hoc ``jq``/pandas
  analysis of raw event streams.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "merge_traces",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]

_SECONDS_TO_US = 1e6

Snapshot = Dict[str, object]


def _event_list(snapshot_or_events: Union[Snapshot, Sequence[dict]]) -> List[dict]:
    if isinstance(snapshot_or_events, dict):
        return list(snapshot_or_events.get("events", []))  # type: ignore[arg-type]
    return list(snapshot_or_events)


def _chrome_event(event: dict, pid: int) -> dict:
    out = {
        "name": event.get("name", "?"),
        "ph": event.get("ph", "i"),
        "pid": pid,
        "tid": int(event.get("tid", 0)),
        "ts": float(event.get("ts", 0.0)) * _SECONDS_TO_US,
    }
    args = dict(event.get("args", {}))
    if "wall" in event:
        args["wall_s"] = event["wall"]
    if out["ph"] == "X":
        out["dur"] = float(event.get("dur", 0.0)) * _SECONDS_TO_US
        if "wall_dur" in event:
            args["wall_dur_s"] = event["wall_dur"]
    elif out["ph"] == "i":
        # Thread-scoped instants render as small arrows on the rank lane.
        out["s"] = "t"
    if args:
        out["args"] = args
    return out


def _metadata(pid: int, process_name: Optional[str], tids: Iterable[int]) -> List[dict]:
    events: List[dict] = []
    if process_name:
        events.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                       "ts": 0, "args": {"name": process_name}})
    for tid in sorted(set(tids)):
        events.append({"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                       "ts": 0, "args": {"name": f"rank {tid}"}})
    return events


def to_chrome_trace(snapshot_or_events: Union[Snapshot, Sequence[dict]],
                    *, pid: int = 1,
                    process_name: Optional[str] = None) -> dict:
    """Convert one recorder snapshot (or raw event list) to a Chrome trace doc."""
    events = _event_list(snapshot_or_events)
    doc_events = _metadata(pid, process_name, (e.get("tid", 0) for e in events))
    doc_events.extend(_chrome_event(e, pid) for e in events)
    doc: dict = {"traceEvents": doc_events, "displayTimeUnit": "ms"}
    if isinstance(snapshot_or_events, dict):
        doc["metadata"] = {
            "dropped_events": snapshot_or_events.get("dropped", 0),
            "unbalanced_ends": snapshot_or_events.get("unbalanced", 0),
            "clock": "simulated seconds scaled to microseconds",
        }
    return doc


def merge_traces(labeled: Sequence[Tuple[str, Union[Snapshot, Sequence[dict]]]]) -> dict:
    """Merge per-job snapshots into one timeline: job lanes become Chrome
    processes (``pid`` = 1..n, named after the job), ranks stay threads."""
    merged: List[dict] = []
    dropped = 0
    unbalanced = 0
    for pid, (label, snap) in enumerate(labeled, start=1):
        events = _event_list(snap)
        merged.extend(_metadata(pid, label, (e.get("tid", 0) for e in events)))
        merged.extend(_chrome_event(e, pid) for e in events)
        if isinstance(snap, dict):
            dropped += int(snap.get("dropped", 0))  # type: ignore[arg-type]
            unbalanced += int(snap.get("unbalanced", 0))  # type: ignore[arg-type]
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "metadata": {
            "jobs": len(labeled),
            "dropped_events": dropped,
            "unbalanced_ends": unbalanced,
            "clock": "simulated seconds scaled to microseconds",
        },
    }


def write_chrome_trace(path, doc_or_snapshot: Union[dict, Sequence[dict]], **kwargs) -> Path:
    """Write a Chrome trace JSON file; accepts a finished doc or a snapshot."""
    if isinstance(doc_or_snapshot, dict) and "traceEvents" in doc_or_snapshot:
        doc = doc_or_snapshot
    else:
        doc = to_chrome_trace(doc_or_snapshot, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return Path(path)


def to_jsonl(snapshot_or_events: Union[Snapshot, Sequence[dict]]) -> str:
    """One JSON object per line, in record order."""
    return "".join(json.dumps(e, sort_keys=True) + "\n"
                   for e in _event_list(snapshot_or_events))


def write_jsonl(path, snapshot_or_events: Union[Snapshot, Sequence[dict]]) -> Path:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_jsonl(snapshot_or_events))
    return Path(path)
