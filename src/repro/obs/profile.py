"""Opt-in sampled profiling hooks for the threaded-dispatch interpreter.

The interpreter's dispatch loop (:mod:`repro.wasm.interpreter`) checks the
module-level :data:`ACTIVE` slot once per function call; when it is
``None`` (the default) the plain loop runs and profiling costs one
attribute read per *call*, not per instruction.  When a profiler is
installed the instrumented loop counts every ``sample_every``-th handler
hit -- handler function names are the histogram keys, so fused
superinstructions (``_h_get_get_bin``, ``_h_get_const_bin``, ...) show up
as first-class rows, proving which fusions actually fire -- and tracks
per-function call counts and self/total wall time via an enter/exit
stack.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "ACTIVE",
    "InterpreterProfiler",
    "format_profile_report",
    "profiling",
]

# Module-level fast path: ``interpreter._exec`` reads this once per call.
ACTIVE: Optional["InterpreterProfiler"] = None


class InterpreterProfiler:
    """Handler-hit histogram plus per-function call/self-time accounting.

    ``sample_every=1`` counts every dispatched handler (exact); larger
    strides count one in N and the report scales the estimate back up.
    """

    def __init__(self, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        # Exact dispatch count, maintained by the interpreter loop so the
        # modulo sampling keeps its phase across function calls.
        self.dispatches = 0
        self.handler_hits: Counter = Counter()
        self.calls: Counter = Counter()
        self.self_seconds: Dict[str, float] = {}
        self.total_seconds: Dict[str, float] = {}
        # Enter/exit stack entries: [function name, start wall, child time].
        self._stack: List[List] = []
        # Serial IR op lists per executed function, recorded once on first
        # profiled entry -- the input (together with the handler histogram)
        # for lowering.mine_superinstructions().
        self.ir_traces: Dict[str, List] = {}

    # -------------------------------------------------- interpreter callbacks

    def enter(self, name: str) -> None:
        self.calls[name] += 1
        self._stack.append([name, time.perf_counter(), 0.0])

    def record_ir(self, name: str, ops) -> None:
        """Record a function's serial lowered ops (first profiled entry wins)."""
        if name not in self.ir_traces:
            self.ir_traces[name] = list(ops)

    def exit(self, name: str) -> None:
        frame = self._stack.pop()
        total = time.perf_counter() - frame[1]
        self.self_seconds[name] = self.self_seconds.get(name, 0.0) + total - frame[2]
        self.total_seconds[name] = self.total_seconds.get(name, 0.0) + total
        if self._stack:
            self._stack[-1][2] += total

    # ------------------------------------------------------------------ query

    def handler_histogram(self) -> Dict[str, int]:
        """Estimated dispatch counts per handler, scaled by the stride."""
        return {name: hits * self.sample_every
                for name, hits in sorted(self.handler_hits.items(),
                                         key=lambda kv: (-kv[1], kv[0]))}

    _FUSED_HANDLERS = (
        "_h_get_get_bin", "_h_get_const_bin", "_h_get_const_store",
        "_h_cmp_br_if", "_h_eqz_br_if", "_h_get_get_cmp_br_if",
        "_h_get_get_bin_set", "_h_get_const_bin_set", "_h_bin_set",
        "_h_get_get_bin_set_br", "_h_get_const_bin_set_br", "_h_set_br",
        "_h_pad",
    )

    def fused_hits(self) -> int:
        """Estimated dispatches that went through a fused superinstruction."""
        return sum(hits * self.sample_every
                   for name, hits in self.handler_hits.items()
                   if name in self._FUSED_HANDLERS or "fused" in name)

    def mined_hits(self) -> Dict[str, int]:
        """Estimated dispatches per *mined* superinstruction, by chain name.

        Mined chain executors carry ``__name__ = "_h_fused_mined__<kinds>"``
        (see ``lowering._chain_handler``), so their histogram rows attribute
        each learned fusion individually.
        """
        return {name: hits * self.sample_every
                for name, hits in sorted(self.handler_hits.items(),
                                         key=lambda kv: (-kv[1], kv[0]))
                if name.startswith("_h_fused_mined__")}

    def report(self) -> dict:
        """Plain-data profile report (the ``--json`` CLI output)."""
        functions = []
        for name in sorted(self.total_seconds,
                           key=lambda n: -self.self_seconds.get(n, 0.0)):
            functions.append({
                "name": name,
                "calls": self.calls.get(name, 0),
                "self_seconds": self.self_seconds.get(name, 0.0),
                "total_seconds": self.total_seconds.get(name, 0.0),
            })
        return {
            "sample_every": self.sample_every,
            "dispatches": self.dispatches,
            "sampled_dispatches": sum(self.handler_hits.values()),
            "estimated_dispatches": sum(self.handler_hits.values()) * self.sample_every,
            "fused_dispatches": self.fused_hits(),
            "mined_superinstructions": self.mined_hits(),
            "handlers": self.handler_histogram(),
            "functions": functions,
        }

    def clear(self) -> None:
        self.dispatches = 0
        self.handler_hits.clear()
        self.calls.clear()
        self.self_seconds.clear()
        self.total_seconds.clear()
        self._stack.clear()
        self.ir_traces.clear()


def format_profile_report(profiler: InterpreterProfiler, top: int = 15) -> str:
    """Human-readable report: handler histogram then hot functions."""
    report = profiler.report()
    lines = ["interpreter profile "
             f"(stride {report['sample_every']}, "
             f"{report['estimated_dispatches']} dispatches, "
             f"{report['fused_dispatches']} via fused superinstructions)", ""]
    lines.append(f"{'handler':<28} {'hits':>12} {'share':>8}")
    total = max(report["estimated_dispatches"], 1)
    for name, hits in list(report["handlers"].items())[:top]:
        lines.append(f"{name:<28} {hits:>12} {hits / total:>7.1%}")
    mined = report.get("mined_superinstructions", {})
    if mined:
        lines.append("")
        lines.append(f"{'mined superinstruction':<48} {'hits':>12}")
        for name, hits in list(mined.items())[:top]:
            chain = " + ".join(name[len("_h_fused_mined__"):].split("__"))
            lines.append(f"{chain:<48} {hits:>12}")
    lines.append("")
    lines.append(f"{'function':<28} {'calls':>10} {'self s':>10} {'total s':>10}")
    for row in report["functions"][:top]:
        lines.append(f"{row['name']:<28} {row['calls']:>10} "
                     f"{row['self_seconds']:>10.6f} {row['total_seconds']:>10.6f}")
    return "\n".join(lines)


@contextmanager
def profiling(sample_every: int = 1,
              profiler: Optional[InterpreterProfiler] = None) -> Iterator[InterpreterProfiler]:
    """Install a profiler for the duration of the block, restoring prior state."""
    global ACTIVE
    prev = ACTIVE
    ACTIVE = profiler if profiler is not None else InterpreterProfiler(sample_every)
    try:
        yield ACTIVE
    finally:
        ACTIVE = prev
