"""Low-overhead span/instant trace recorder with dual timestamps.

The recorder is the collection half of :mod:`repro.obs`; the export half
(:mod:`repro.obs.export`) turns its snapshots into Chrome trace-event JSON
and JSON-lines.  Design constraints, in order:

* **Near-zero cost when disabled.**  Instrumentation sites in the MPI
  runtime, the schedule executor, and the matching engine guard on the
  module-level :data:`ENABLED` flag *before* evaluating any event
  arguments, so a disabled trace costs one attribute read per site.
* **Bounded memory.**  Events live in a ring buffer; when ``capacity`` is
  exceeded the oldest events are dropped and counted in
  :attr:`TraceRecorder.dropped` rather than silently lost.
* **Dual timestamps.**  Every event carries the simulated clock (``ts``,
  seconds -- the timeline axis the exporters use) and the host monotonic
  clock (``wall``, seconds) so real-time cost can be correlated with
  simulated time.
* **Per-rank streams.**  Events are keyed by an integer ``tid`` (the MPI
  world rank); each tid has its own open-span stack, so per-rank streams
  nest independently.

Events are plain dicts, picklable across the campaign worker-pool
boundary.  Span events use Chrome's complete-event phase (``"X"``:
``ts`` + ``dur``); instant events use ``"i"``.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, Optional

__all__ = [
    "DEFAULT_CAPACITY",
    "ENABLED",
    "RECORDER",
    "TraceRecorder",
    "disable_tracing",
    "enable_tracing",
    "tracing",
]

DEFAULT_CAPACITY = 65536

# Module-level fast path: instrumentation sites check ``trace.ENABLED``
# before building event arguments and only then touch ``trace.RECORDER``.
ENABLED: bool = False
RECORDER: Optional["TraceRecorder"] = None


class TraceRecorder:
    """Bounded ring buffer of span ("X") and instant ("i") events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self.unbalanced = 0
        self._events: Deque[dict] = deque()
        self._open: Dict[int, List[dict]] = {}

    # ----------------------------------------------------------------- record

    def _append(self, event: dict) -> None:
        self._events.append(event)
        if len(self._events) > self.capacity:
            self._events.popleft()
            self.dropped += 1

    def begin(self, name: str, tid: int, ts: float, args: Optional[dict] = None) -> None:
        """Open a span on rank-stream ``tid`` at simulated time ``ts``."""
        span = {"name": name, "ph": "X", "tid": int(tid),
                "ts": float(ts), "wall": time.perf_counter()}
        if args:
            span["args"] = args
        self._open.setdefault(int(tid), []).append(span)

    def end(self, tid: int, ts: float, args: Optional[dict] = None) -> None:
        """Close the innermost open span on ``tid``.

        An ``end`` with no matching ``begin`` is counted in
        :attr:`unbalanced` and otherwise ignored, so a recorder enabled
        mid-flight cannot corrupt the stream.
        """
        stack = self._open.get(int(tid))
        if not stack:
            self.unbalanced += 1
            return
        span = stack.pop()
        span["dur"] = max(float(ts) - span["ts"], 0.0)
        span["wall_dur"] = max(time.perf_counter() - span["wall"], 0.0)
        if args:
            span.setdefault("args", {}).update(args)
        self._append(span)

    def complete(self, name: str, tid: int, ts: float, dur: float,
                 args: Optional[dict] = None) -> None:
        """Record a span whose start and duration are already known."""
        span = {"name": name, "ph": "X", "tid": int(tid), "ts": float(ts),
                "dur": max(float(dur), 0.0), "wall": time.perf_counter(),
                "wall_dur": 0.0}
        if args:
            span["args"] = args
        self._append(span)

    def instant(self, name: str, tid: int, ts: float, args: Optional[dict] = None) -> None:
        """Record a point-in-time event on rank-stream ``tid``."""
        event = {"name": name, "ph": "i", "tid": int(tid),
                 "ts": float(ts), "wall": time.perf_counter()}
        if args:
            event["args"] = args
        self._append(event)

    @contextmanager
    def span(self, name: str, tid: int, now, args: Optional[dict] = None) -> Iterator[None]:
        """Context manager wrapping :meth:`begin`/:meth:`end`.

        ``now`` is a zero-argument callable returning the simulated clock;
        it is sampled on entry and exit so the span tracks simulated time.
        """
        self.begin(name, tid, now(), args)
        try:
            yield
        finally:
            self.end(tid, now())

    # ------------------------------------------------------------------ query

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[dict]:
        """Closed events in record order (open spans are not included)."""
        return list(self._events)

    def open_spans(self, tid: Optional[int] = None) -> int:
        """Number of spans begun but not yet ended (optionally for one tid)."""
        if tid is not None:
            return len(self._open.get(int(tid), []))
        return sum(len(stack) for stack in self._open.values())

    def snapshot(self) -> dict:
        """Plain-data snapshot that survives pickling across processes."""
        return {
            "events": self.events(),
            "dropped": self.dropped,
            "unbalanced": self.unbalanced,
            "open_spans": self.open_spans(),
        }

    def clear(self) -> None:
        """Drop all events, open spans, and drop counters."""
        self._events.clear()
        self._open.clear()
        self.dropped = 0
        self.unbalanced = 0


# ----------------------------------------------------------------- activation


def enable_tracing(recorder: Optional[TraceRecorder] = None,
                   capacity: int = DEFAULT_CAPACITY) -> TraceRecorder:
    """Install ``recorder`` (or a fresh one) and flip the fast-path flag on."""
    global ENABLED, RECORDER
    RECORDER = recorder if recorder is not None else TraceRecorder(capacity)
    ENABLED = True
    return RECORDER


def disable_tracing() -> Optional[TraceRecorder]:
    """Flip the fast-path flag off; returns the recorder that was active."""
    global ENABLED, RECORDER
    recorder, RECORDER = RECORDER, None
    ENABLED = False
    return recorder


@contextmanager
def tracing(recorder: Optional[TraceRecorder] = None,
            capacity: int = DEFAULT_CAPACITY) -> Iterator[TraceRecorder]:
    """Enable tracing for the duration of the block, restoring prior state.

    Nesting is safe: an inner ``tracing()`` block records into its own
    recorder and the outer one resumes afterwards.
    """
    global ENABLED, RECORDER
    prev_enabled, prev_recorder = ENABLED, RECORDER
    active = enable_tracing(recorder, capacity)
    try:
        yield active
    finally:
        ENABLED, RECORDER = prev_enabled, prev_recorder
