"""Wasm <-> host memory address translation (§3.5).

The guest only holds 32-bit offsets into its linear memory; the host MPI
library needs buffers it can read and write directly.  MPIWasm records the
module's memory base address and converts guest pointers by plain offset
arithmetic, handing the host library a pointer *into* the module's memory --
no copy is made in either direction ("zero-copy memory operations").

The Python analogue of a host pointer is a writable ``memoryview`` obtained
from the module's :class:`repro.wasm.memory.LinearMemory`.  The translation is
bounds-checked exactly as §3.5 argues it must be ("since the size of the
linear memory is always known, MPIWasm can perform runtime bound checks for
all memory accesses"), so a malicious or buggy guest pointer can never expose
embedder memory.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.wasm.errors import MemoryOutOfBoundsTrap
from repro.wasm.memory import LinearMemory
from repro.wasm.runtime import Instance


class AddressTranslator:
    """Translates guest (wasm32) pointers to host buffer views and back."""

    def __init__(self, memory: LinearMemory):
        self.memory = memory

    # ---------------------------------------------------------------- to host

    def to_host(self, guest_ptr: int, nbytes: int) -> memoryview:
        """Writable host view of ``nbytes`` at guest address ``guest_ptr``.

        Raises :class:`MemoryOutOfBoundsTrap` when the range does not lie
        inside the module's linear memory -- the embedder-side bound check.
        """
        if guest_ptr < 0 or guest_ptr > 0xFFFFFFFF or nbytes < 0:
            raise MemoryOutOfBoundsTrap(guest_ptr, nbytes, self.memory.size)
        return self.memory.view(guest_ptr, nbytes)

    def to_host_ndarray(self, guest_ptr: int, count: int, dtype) -> np.ndarray:
        """Zero-copy NumPy view of ``count`` elements at ``guest_ptr``."""
        return self.memory.ndarray(guest_ptr, count, dtype)

    def copy_guest_range(self, dst_ptr: int, src_ptr: int, nbytes: int) -> None:
        """Bulk guest-to-guest copy with ``memmove`` overlap semantics."""
        self.memory.copy_within(dst_ptr, src_ptr, nbytes)

    # -------------------------------------------------------------- from host

    def from_host(self, view: memoryview) -> int:
        """Guest address of a view previously produced by :meth:`to_host`.

        The real embedder subtracts the module's base pointer; here the
        equivalent is locating the view's offset inside the linear memory
        buffer.  Only views created by :meth:`to_host` are valid arguments.
        """
        base = self.memory.view(0, self.memory.size)
        if view.nbytes == 0:
            return 0
        # memoryview does not expose its offset directly; recover it through
        # the buffer protocol by comparing addresses via the ctypes-free route.
        target = np.frombuffer(view, dtype=np.uint8)
        whole = np.frombuffer(base, dtype=np.uint8)
        offset = target.__array_interface__["data"][0] - whole.__array_interface__["data"][0]
        if offset < 0 or offset + view.nbytes > self.memory.size:
            raise MemoryOutOfBoundsTrap(offset, view.nbytes, self.memory.size)
        return int(offset)

    # ------------------------------------------------------------------ checks

    def check_range(self, guest_ptr: int, nbytes: int) -> None:
        """Bounds-check a guest range without materialising a view."""
        self.memory._check(guest_ptr, nbytes)  # noqa: SLF001 - deliberate reuse

    def is_zero_copy(self, guest_ptr: int, nbytes: int) -> bool:
        """Verify that :meth:`to_host` aliases the module memory (no copy).

        Used by tests to assert the zero-copy property: writing through the
        returned view must be visible to the guest immediately.
        """
        if nbytes == 0:
            return True
        view = self.to_host(guest_ptr, nbytes)
        original = self.memory.read(guest_ptr, 1)
        probe = (original[0] ^ 0xFF) & 0xFF
        view[0] = probe
        visible = self.memory.read(guest_ptr, 1)[0] == probe
        view[0] = original[0]
        return visible


def translator_for(instance: Instance) -> AddressTranslator:
    """Build an :class:`AddressTranslator` for an instantiated module."""
    return AddressTranslator(instance.exported_memory())


# --------------------------------------------------------- bulk handle arrays
#
# MPI array calls (Waitall/Testall/Waitany) move arrays of 32-bit guest
# handles across the boundary.  These helpers replace the per-element
# ``load_int``/``store_int`` loops with one vectorized NumPy cast over the
# whole array; handles are little-endian u32 regardless of host endianness.

_HANDLE_DTYPE = np.dtype("<u4")


def read_handle_array(memory: LinearMemory, guest_ptr: int, count: int) -> np.ndarray:
    """Bulk-read ``count`` guest u32 handles as a host-owned copy."""
    if count <= 0:
        return np.empty(0, dtype=_HANDLE_DTYPE)
    return memory.ndarray(guest_ptr, count, _HANDLE_DTYPE).copy()


def write_handle_array(memory: LinearMemory, guest_ptr: int, values) -> None:
    """Bulk-write u32 handles into guest memory in one vectorized store."""
    arr = np.asarray(values, dtype=_HANDLE_DTYPE)
    if arr.size == 0:
        return
    memory.ndarray(guest_ptr, arr.size, _HANDLE_DTYPE)[:] = arr
